//! Quickstart: compute a spatial distance histogram on the simulated
//! GPU, letting the planner pick the kernel — the paper's envisioned
//! "automatic framework" in action.
//!
//! Run with: `cargo run --release -p tbs-examples --bin quickstart`

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::driver::PairwisePlan;
use tbs_apps::sdh::{sdh_gpu, SdhOutputMode};
use tbs_core::analytic::OutputPath;
use tbs_core::plan::{choose_plan, ProblemOutput, ProblemSpec};
use tbs_core::HistogramSpec;

fn main() {
    // 1. A synthetic dataset: 16,384 uniform points in a 100³ box (the
    //    paper's workload, scaled to what a functional simulation chews
    //    through in seconds).
    let n = 16 * 1024;
    let pts = tbs_datagen::uniform_points::<3>(n, 100.0, 42);
    let spec = HistogramSpec::new(512, tbs_datagen::box_diagonal(100.0, 3));

    // 2. Ask the planner (the paper's §V vision) for the best kernel.
    let cfg = DeviceConfig::titan_x();
    let problem = ProblemSpec {
        n: n as u32,
        dims: 3,
        dist_cost: 7,
        output: ProblemOutput::Histogram {
            buckets: spec.buckets,
        },
    };
    let plan = choose_plan(&problem, &cfg);
    println!(
        "planner chose: {} + {} (B = {}), predicted {:.3} ms",
        plan.spec.input.name(),
        plan.spec.output.name(),
        plan.block_size,
        plan.predicted_seconds * 1e3,
    );

    // 3. Run it functionally on the simulated Titan X.
    let mut dev = Device::new(cfg);
    let output = if matches!(plan.spec.output, OutputPath::SharedHistogram { .. }) {
        SdhOutputMode::Privatized
    } else {
        SdhOutputMode::GlobalAtomics
    };
    let pairwise = PairwisePlan {
        input: plan.spec.input,
        intra: plan.spec.intra,
        block_size: plan.block_size,
    };
    let result = sdh_gpu(&mut dev, &pts, spec, pairwise, output).expect("launch");

    // 4. Inspect the results.
    let expected_pairs = n as u64 * (n as u64 - 1) / 2;
    println!(
        "histogram total = {} pairs (expected {expected_pairs})",
        result.histogram.total()
    );
    assert_eq!(result.histogram.total(), expected_pairs);
    println!(
        "simulated GPU time: {:.3} ms  (occupancy {:.0}%, bottleneck: {})",
        result.total_seconds() * 1e3,
        result.pair_run.occupancy.occupancy * 100.0,
        result.pair_run.timing.bottleneck.name(),
    );
    let peak = result
        .histogram
        .counts()
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .unwrap();
    println!(
        "busiest bucket: #{} (r ≈ {:.1}) with {} pairs",
        peak.0,
        (peak.0 as f32 + 0.5) * spec.bucket_width(),
        peak.1
    );
}
