//! Molecular-dynamics scenario: the radial distribution function g(r) of
//! a simulated liquid — the RDF application the paper cites (Levine et
//! al.) as a flagship Type-II 2-BS.
//!
//! A toy "liquid" is modeled as clustered molecules; g(r) then shows the
//! short-range structure peak that distinguishes it from an ideal gas.
//!
//! Run with: `cargo run --release -p tbs-examples --bin molecular_rdf`

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::driver::PairwisePlan;
use tbs_apps::rdf::rdf_gpu;
use tbs_core::analytic::InputPath;
use tbs_core::kernels::IntraMode;
use tbs_core::HistogramSpec;

fn main() {
    let edge = 60.0f32;
    let n = 12 * 1024;
    // "Molecules" in loose clusters, like a droplet-forming fluid.
    let pts = tbs_datagen::clustered_points::<3>(n, edge, 96, 1.8, 7);
    let spec = HistogramSpec::new(256, tbs_datagen::box_diagonal(edge, 3));

    // The paper's best Type-II configuration: Reg-ROC-Out.
    let plan = PairwisePlan {
        input: InputPath::RegisterRoc,
        intra: IntraMode::LoadBalanced,
        block_size: 256,
    };
    let mut dev = Device::new(DeviceConfig::titan_x());
    let (rdf, sdh) = rdf_gpu(&mut dev, &pts, spec, edge, plan).expect("launch");

    println!("g(r) for a {n}-molecule toy liquid (box {edge}³):\n");
    let max_g = rdf.g.iter().take(96).cloned().fold(0.0f64, f64::max);
    for i in (0..96).step_by(4) {
        let bar = "#".repeat((rdf.g[i] / max_g * 50.0) as usize);
        println!("r = {:5.1}  g = {:6.2}  {}", rdf.r[i], rdf.g[i], bar);
    }
    println!(
        "\nfirst-shell peak g(r) = {:.1} (ideal gas would be 1.0)",
        max_g
    );
    println!(
        "simulated GPU time: {:.2} ms on {} (kernel: {} + privatized output)",
        sdh.total_seconds() * 1e3,
        dev.config().name,
        sdh.pair_run.kernel,
    );
}
