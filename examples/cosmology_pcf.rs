//! Cosmology scenario: the 2-point correlation function of a clustered
//! "galaxy catalog" — the astrophysics application the paper names for
//! Type-I 2-BS — with every kernel variant cross-checked against the
//! multi-core CPU baseline.
//!
//! Run with: `cargo run --release -p tbs-examples --bin cosmology_pcf`

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::driver::PairwisePlan;
use tbs_apps::pcf::pcf_gpu;
use tbs_core::analytic::InputPath;
use tbs_core::kernels::IntraMode;
use tbs_cpu::{pcf_parallel, Schedule};

fn main() {
    let n = 8 * 1024;
    let radius = 4.0;
    // Galaxies cluster: compare against a uniform random catalog to
    // estimate the correlation excess.
    let galaxies = tbs_datagen::clustered_points::<3>(n, 100.0, 64, 2.5, 99);
    let randoms = tbs_datagen::uniform_points::<3>(n, 100.0, 100);

    println!("2-PCF of an {n}-galaxy toy catalog, r < {radius}:\n");
    let mut reference = None;
    for input in [
        InputPath::Naive,
        InputPath::ShmShm,
        InputPath::RegisterShm,
        InputPath::RegisterRoc,
        InputPath::Shuffle,
    ] {
        let plan = PairwisePlan {
            input,
            intra: IntraMode::LoadBalanced,
            block_size: 256,
        };
        let mut dev = Device::new(DeviceConfig::titan_x());
        let res = pcf_gpu(&mut dev, &galaxies, radius, plan).expect("launch");
        println!(
            "  {:<13} -> {:>8} pairs, simulated {:>8.3} ms (bottleneck: {})",
            input.name(),
            res.count,
            res.run.timing.seconds * 1e3,
            res.run.timing.bottleneck.name(),
        );
        match reference {
            None => reference = Some(res.count),
            Some(r) => assert_eq!(r, res.count, "kernel variants must agree"),
        }
    }
    let dd = reference.unwrap();

    // CPU baseline agreement.
    let cpu = pcf_parallel(&galaxies, radius, 4, Schedule::Guided);
    assert_eq!(cpu, dd, "CPU and GPU must agree");

    // Correlation estimate: DD/RR − 1 (natural estimator).
    let rr = pcf_parallel(&randoms, radius, 4, Schedule::Guided);
    println!("\nDD = {dd}, RR = {rr}");
    println!(
        "correlation excess xi(r<{radius}) ≈ DD/RR − 1 = {:.1} (clustered catalogs ≫ 0)",
        dd as f64 / rr as f64 - 1.0
    );
}
