//! Spatial-join scenario: a distance self-join with quadratic-sized
//! output — the paper's Type-III class (relational joins on GPUs, He et
//! al.), using the warp-aggregated output allocation this reproduction
//! adds as its Type-III extension.
//!
//! The join radius is deliberately large (dense hits): with several
//! matches per warp, per-lane cursor allocation serializes match-count
//! deep while the aggregated scheme issues one atomic per warp.
//!
//! Run with: `cargo run --release -p tbs-examples --bin spatial_join`

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::driver::PairwisePlan;
use tbs_apps::join::{distance_join_gpu, distance_join_reference};

fn main() {
    let n = 4096;
    let radius = 25.0;
    let pts = tbs_datagen::uniform_points::<2>(n, 100.0, 77);
    let plan = PairwisePlan::register_shm(128);

    println!("distance self-join, {n} points, r < {radius}:\n");
    let mut naive_time = 0.0;
    for aggregated in [false, true] {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let res =
            distance_join_gpu(&mut dev, &pts, radius, 1 << 21, aggregated, plan).expect("launch");
        let label = if aggregated {
            "warp-aggregated"
        } else {
            "per-lane cursor"
        };
        println!(
            "  {label:<16} -> {:>6} matches, simulated {:>8.3} ms, cursor atomics serialized {:>6}x",
            res.total_matches,
            res.run.timing.seconds * 1e3,
            res.run.tally.global_atomic_serial,
        );
        if aggregated {
            println!(
                "\nwarp aggregation speedup on the output stage: {:.2}x",
                naive_time / res.run.timing.seconds
            );
        } else {
            naive_time = res.run.timing.seconds;
        }
    }

    // Verify against the host reference.
    let mut dev = Device::new(DeviceConfig::titan_x());
    let res = distance_join_gpu(&mut dev, &pts, radius, 1 << 21, true, plan).expect("launch");
    let reference = distance_join_reference(&pts, radius);
    assert_eq!(res.pairs, reference);
    println!(
        "verified against host reference: {} matching pairs",
        reference.len()
    );
}
