//! Recommender-system scenario: pairwise item similarity — the paper's
//! §II motivation (content-based filtering compares all item pairs). We
//! embed items in a feature space, find each item's nearest neighbors
//! (kNN, Type-I) and the density of its neighborhood (KDE).
//!
//! Run with: `cargo run --release -p tbs-examples --bin recommender_knn`

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::driver::PairwisePlan;
use tbs_apps::kde::kde_gpu;
use tbs_apps::knn::knn_gpu;

fn main() {
    // 4,096 "items" with 3-D taste embeddings in a few genres (clusters).
    let n = 4096;
    let items = tbs_datagen::clustered_points::<3>(n, 10.0, 6, 0.4, 2024);

    let plan = PairwisePlan::register_shm(128);
    let mut dev = Device::new(DeviceConfig::titan_x());
    let knn = knn_gpu::<3, 5>(&mut dev, &items, plan).expect("launch");

    println!("item-to-item 5-NN on a {n}-item catalog (6 genres):\n");
    for item in [0usize, 1, 2] {
        let ids = knn.neighbors[item];
        let ds = knn.distances[item];
        println!(
            "  item {item:4}: neighbors {:?} at distances [{:.2}, {:.2}, {:.2}, {:.2}, {:.2}]",
            ids, ds[0], ds[1], ds[2], ds[3], ds[4]
        );
    }
    println!(
        "\nkNN kernel: simulated {:.2} ms ({} ordered pairs)",
        knn.run.timing.seconds * 1e3,
        n * (n - 1),
    );

    // Neighborhood density — items in dense genre cores are "safe"
    // recommendations; sparse outliers are cold-start risks.
    let mut dev2 = Device::new(DeviceConfig::titan_x());
    let kde = kde_gpu(&mut dev2, &items, 0.5, plan).expect("launch");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| kde.weight_sums[a].total_cmp(&kde.weight_sums[b]));
    println!(
        "density extremes: sparsest item {} (w = {:.1}), densest item {} (w = {:.1})",
        idx[0],
        kde.weight_sums[idx[0]],
        idx[n - 1],
        kde.weight_sums[idx[n - 1]],
    );
    assert!(kde.weight_sums[idx[n - 1]] > kde.weight_sums[idx[0]]);
}
