//! Differential suite for the query service: coalescing must be
//! invisible in the answers.
//!
//! The batcher's contract is that a coalesced multi-consumer sweep is
//! **bit-identical** to running each query alone — same counts, same
//! histogram buckets — for any admission mix, any shard split, any
//! worker count, and under both simulator exec modes. Counts and
//! histograms are integer-exact, so "equals the CPU reference" *is*
//! bit-identity; kNN and the gridded route are additionally pinned
//! across exec modes on a scripted workload.

use gpu_sim::{DeviceConfig, ExecMode};
use proptest::prelude::*;
use tbs_apps::serve::{Query, QueryResult, ServeConfig, ServeError, Server};
use tbs_core::histogram::HistogramSpec;
use tbs_core::point::SoaPoints;
use tbs_cpu::{count_within_reference, sdh_reference};

const BOX: f32 = 60.0;

#[derive(Debug, Clone, Copy)]
enum Layout {
    Uniform,
    Clustered,
    OnePoint,
}

fn catalog(layout: Layout, n: usize, seed: u64) -> SoaPoints<3> {
    match layout {
        Layout::Uniform => tbs_datagen::uniform_points(n, BOX, seed),
        Layout::Clustered => tbs_datagen::clustered_points(n, BOX, 5, 2.0, seed),
        Layout::OnePoint => SoaPoints::from_points(&vec![[3.0, 4.0, 5.0]; n]),
    }
}

/// The ground truth for one batchable query, integer-exact.
fn oracle(pts: &SoaPoints<3>, q: &Query) -> QueryResult {
    match q {
        Query::PairCounts { radii } => QueryResult::Counts(
            radii
                .iter()
                .map(|&r| count_within_reference(pts, r))
                .collect(),
        ),
        Query::Sdh { buckets, width } => QueryResult::Histogram(sdh_reference(
            pts,
            HistogramSpec::new(*buckets, width * *buckets as f32),
        )),
        Query::CountWithin { radius, .. } => {
            QueryResult::Counts(vec![count_within_reference(pts, *radius)])
        }
        Query::Knn { .. } => unreachable!("kNN has no batch oracle here"),
    }
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        0u32..3,
        prop::collection::vec(prop::sample::select(vec![2.0f32, 8.0, 15.0, 40.0]), 1..4),
        prop::sample::select(vec![1u32, 4, 16, 33]),
        prop::sample::select(vec![1.0f32, 2.5]),
        prop::sample::select(vec![5.0f32, 20.0]),
    )
        .prop_map(|(kind, radii, buckets, width, radius)| match kind {
            0 => Query::PairCounts { radii },
            1 => Query::Sdh { buckets, width },
            _ => Query::CountWithin {
                radius,
                gridded: false,
            },
        })
}

fn exec_strategy() -> impl Strategy<Value = ExecMode> {
    prop::sample::select(vec![
        ExecMode::Sequential,
        ExecMode::Parallel { threads: 2 },
    ])
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop::sample::select(vec![Layout::Uniform, Layout::Clustered, Layout::OnePoint])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core service contract: a coalesced batch == one-at-a-time
    /// submissions == the CPU oracle, bit for bit, for any admission
    /// mix, worker count, shard split, and exec mode.
    #[test]
    fn batched_queries_equal_singles_and_oracles(
        n in 16usize..192,
        layout in layout_strategy(),
        seed in 0u64..1_000,
        queries in prop::collection::vec(query_strategy(), 1..5),
        workers in 1usize..4,
        shards in 1usize..5,
        exec in exec_strategy(),
    ) {
        let pts = catalog(layout, n, seed);
        let mut cfg = ServeConfig::default().with_workers(workers);
        cfg.shards = shards;
        cfg.device = DeviceConfig::titan_x().with_exec_mode(exec);
        Server::run(cfg, |h| {
            h.register_dataset("d", pts.clone()).expect("register");
            let batched = h.submit_batch("d", queries.clone()).expect("batch");
            prop_assert_eq!(batched.len(), queries.len());
            for (q, got) in queries.iter().zip(&batched) {
                let single = h.submit("d", q.clone()).expect("single");
                prop_assert_eq!(got, &single, "batched vs single mismatch for {:?}", q);
                prop_assert_eq!(got, &oracle(&pts, q), "oracle mismatch for {:?}", q);
            }
        });
    }
}

/// The same scripted workload on a sequential-exec server and a
/// parallel-exec server: answers AND accumulated simulated seconds must
/// be bit-identical (the engine's determinism contract extends through
/// the service).
#[test]
fn exec_modes_serve_identically() {
    let pts = tbs_datagen::uniform_points::<3>(512, BOX, 42);
    let script = |h: tbs_apps::serve::ServerHandle| {
        h.register_dataset("d", pts.clone()).expect("register");
        let mut results = h
            .submit_batch(
                "d",
                vec![
                    Query::PairCounts {
                        radii: vec![4.0, 9.0, 30.0],
                    },
                    Query::Sdh {
                        buckets: 24,
                        width: 2.0,
                    },
                    Query::CountWithin {
                        radius: 12.0,
                        gridded: false,
                    },
                ],
            )
            .expect("batch");
        results.push(
            h.submit(
                "d",
                Query::CountWithin {
                    radius: 12.0,
                    gridded: true,
                },
            )
            .expect("gridded"),
        );
        results.push(h.submit("d", Query::Knn { k: 3 }).expect("knn"));
        let stats = h.stats().expect("stats");
        (results, stats)
    };
    let mut cfg = ServeConfig::default().with_workers(2);
    cfg.device = DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential);
    let (seq_results, seq_stats) = Server::run(cfg.clone(), script);
    cfg.device = DeviceConfig::titan_x().with_exec_mode(ExecMode::Parallel { threads: 3 });
    let (par_results, par_stats) = Server::run(cfg, script);
    assert_eq!(seq_results, par_results);
    assert_eq!(
        seq_stats.sim_seconds.to_bits(),
        par_stats.sim_seconds.to_bits(),
        "simulated time must not depend on host parallelism"
    );
    assert_eq!(seq_stats.queries, par_stats.queries);
    assert_eq!(seq_stats.tasks, par_stats.tasks);

    // And the gridded route really pruned to the same integer count.
    assert_eq!(seq_results[2], seq_results[3]);
}

/// A burst of gridded count-withins coalesces into one packed sweep
/// over a shared covering catalog — and every count still equals its
/// solo run and the CPU oracle, bit for bit.
#[test]
fn gridded_queries_coalesce_and_stay_exact() {
    let pts = tbs_datagen::uniform_points::<3>(384, BOX, 23);
    let radii = [4.0f32, 11.0, 7.0, 11.0, 2.5];
    Server::run(ServeConfig::default().with_workers(2), |h| {
        h.register_dataset("d", pts.clone()).expect("register");
        let queries: Vec<Query> = radii
            .iter()
            .map(|&radius| Query::CountWithin {
                radius,
                gridded: true,
            })
            .collect();
        let before = h.stats().expect("stats");
        let batched = h.submit_batch("d", queries.clone()).expect("batch");
        let after = h.stats().expect("stats");
        assert_eq!(
            after.batches - before.batches,
            1,
            "the whole gridded burst must share one sweep"
        );
        assert_eq!(after.coalesced_queries - before.coalesced_queries, 5);
        for (q, got) in queries.iter().zip(&batched) {
            assert_eq!(got, &oracle(&pts, q), "oracle mismatch for {q:?}");
            let solo = h.submit("d", q.clone()).expect("solo");
            assert_eq!(got, &solo, "batched vs solo mismatch for {q:?}");
        }
        // Solo repeats ride the covering catalog built for the burst.
        let final_stats = h.stats().expect("stats");
        assert!(
            final_stats.cache_hits >= 5,
            "repeat gridded queries must reuse the covering grid: {final_stats:?}"
        );
    });
}

/// Concurrent clients hammering one server stay exact: every reply
/// equals the oracle no matter how the dispatcher interleaves or
/// coalesces the stream.
#[test]
fn concurrent_clients_get_exact_answers() {
    let pts = tbs_datagen::uniform_points::<3>(256, BOX, 7);
    let cfg = ServeConfig::default().with_workers(2);
    Server::run(cfg, |h| {
        h.register_dataset("d", pts.clone()).expect("register");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                let pts = &pts;
                s.spawn(move || {
                    for i in 0..3u64 {
                        let radius = 3.0 + (t * 3 + i) as f32 * 2.0;
                        let q = Query::PairCounts {
                            radii: vec![radius],
                        };
                        let got = h.submit("d", q.clone()).expect("submit");
                        assert_eq!(got, oracle(pts, &q), "client {t} query {i}");
                    }
                });
            }
        });
        let stats = h.stats().expect("stats");
        assert_eq!(stats.queries, 12);
        assert!(
            stats.cache_hits > 0,
            "repeat queries must hit the shard cache: {stats:?}"
        );
    });
}

/// Admission is atomic per batch and precise per error.
#[test]
fn admission_errors_are_atomic_and_precise() {
    let pts = tbs_datagen::uniform_points::<3>(64, BOX, 1);
    Server::run(ServeConfig::default(), |h| {
        h.register_dataset("d", pts.clone()).expect("register");
        // Unknown dataset.
        match h.submit("nope", Query::Knn { k: 2 }) {
            Err(ServeError::UnknownDataset(name)) => assert_eq!(name, "nope"),
            other => panic!("expected UnknownDataset, got {other:?}"),
        }
        // One bad member rejects the whole batch — including the valid
        // members, which must not run.
        let before = h.stats().expect("stats");
        let res = h.submit_batch(
            "d",
            vec![
                Query::PairCounts { radii: vec![5.0] },
                Query::Sdh {
                    buckets: 0,
                    width: 1.0,
                },
            ],
        );
        assert!(matches!(res, Err(ServeError::BadQuery(_))), "{res:?}");
        let after = h.stats().expect("stats");
        assert_eq!(
            before.batches, after.batches,
            "a rejected batch must not launch a sweep"
        );
        // Parameter validation catches each bad shape.
        for bad in [
            Query::PairCounts { radii: vec![] },
            Query::PairCounts {
                radii: vec![f32::NAN],
            },
            Query::CountWithin {
                radius: -1.0,
                gridded: false,
            },
            Query::Knn { k: 0 },
            Query::Knn { k: 9 },
            Query::Knn { k: 64 },
        ] {
            assert!(
                matches!(h.submit("d", bad.clone()), Err(ServeError::BadQuery(_))),
                "{bad:?} must be rejected"
            );
        }
    });
}

/// Re-registering a dataset swaps the data *and* invalidates every
/// worker cache: answers reflect the new points immediately.
#[test]
fn reregistration_serves_fresh_data() {
    let a = tbs_datagen::uniform_points::<3>(128, BOX, 11);
    let b = tbs_datagen::uniform_points::<3>(96, BOX, 12);
    Server::run(ServeConfig::default().with_workers(2), |h| {
        let q = Query::PairCounts { radii: vec![10.0] };
        let g0 = h.register_dataset("d", a.clone()).expect("register a");
        assert_eq!(h.submit("d", q.clone()).expect("a"), oracle(&a, &q));
        let g1 = h.register_dataset("d", b.clone()).expect("register b");
        assert!(g1 > g0, "generation must advance on re-registration");
        assert_eq!(h.submit("d", q.clone()).expect("b"), oracle(&b, &q));
        let stats = h.stats().expect("stats");
        assert_eq!(stats.datasets, 1, "same name re-registered");
    });
}
