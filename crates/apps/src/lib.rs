//! # tbs-apps — 2-body statistics applications
//!
//! End-to-end applications assembled from the `tbs-core` framework,
//! covering all three of the paper's output classes (§III-B):
//!
//! | app | type | output |
//! |---|---|---|
//! | [`pcf`] — 2-point correlation function | I | scalar pair count |
//! | [`knn`] — all-point k-nearest neighbors | I | k registers per point |
//! | [`kde`] — kernel density estimation | I | one register per point |
//! | [`sdh`] — spatial distance histogram | II | privatized histogram |
//! | [`rdf`] — radial distribution function | II | normalized SDH |
//! | [`join`] — spatial distance join | III | pair list in global memory |
//! | [`gram`] — kernel (Gram) matrix | III | dense N×N matrix |
//! | [`multi_gpu`] — multi-device SDH decomposition | II | chunked self/cross tasks |
//! | [`serve`] — batched, sharded, concurrent query service | I+II | coalesced multi-query sinks |
//!
//! Every app takes a [`driver::PairwisePlan`] selecting the input-staging
//! variant (Naive / SHM-SHM / Register-SHM / Register-ROC / Shuffle),
//! block size, and intra-block scheme, and returns its numeric result
//! together with the simulated [`gpu_sim::KernelRun`] profile. All entry
//! points go through [`gpu_sim::Device::try_launch`]: a simulated fault
//! (out-of-bounds access, invalid launch, …) surfaces as a
//! [`gpu_sim::SimError`] for the caller to handle — one bad configuration
//! fails its own run, never a whole experiment sweep.

//! ```
//! use gpu_sim::{Device, DeviceConfig};
//! use tbs_apps::{pcf_gpu, PairwisePlan};
//!
//! let pts = tbs_datagen::uniform_points::<3>(600, 100.0, 9);
//! let mut dev = Device::new(DeviceConfig::titan_x());
//! let res = pcf_gpu(&mut dev, &pts, 25.0, PairwisePlan::register_shm(64)).expect("launch");
//! assert_eq!(res.count, tbs_cpu::pcf_reference(&pts, 25.0));
//! ```

pub mod driver;
pub mod gram;
pub mod gridded;
pub mod join;
pub mod kde;
pub mod knn;
pub mod multi_gpu;
pub mod pcf;
pub mod rdf;
pub mod sdh;
pub mod serve;

pub use driver::{launch_pairwise, PairwisePlan};
pub use gram::{gram_gpu, GramResult};
pub use gridded::{
    estimate_packed_launches, gridded_count_within, gridded_count_within_multi,
    gridded_count_within_routed, gridded_cross_radial_histogram,
    gridded_cross_radial_histogram_routed, gridded_radial_histogram,
    gridded_radial_histogram_routed, GriddedCatalog, GriddedCountResult, GriddedHistogramResult,
    GriddedRoute, GriddedRun, MAX_PACKED_BLOCKS_PER_LAUNCH,
};
pub use join::{
    distance_join_gpu, distance_join_reference, distance_join_two_gpu, distance_join_two_reference,
    JoinResult,
};
pub use kde::{kde_gpu, kde_reference, KdeResult};
pub use knn::{knn_gpu, knn_reference, KnnResult};
pub use multi_gpu::{build_tasks, chunk_ranges, lpt_schedule, sdh_multi_gpu, MultiGpuSdh, SdhTask};
pub use pcf::{landy_szalay, ls_pair_counts, pcf_gpu, LsPairCounts, PcfResult};
pub use rdf::{normalize_sdh, rdf_gpu, rdf_gpu_periodic, Rdf};
pub use sdh::{sdh_gpu, sdh_gpu_with, SdhOutputMode, SdhResult};
pub use serve::{Query, QueryResult, ServeConfig, ServeError, Server, ServerHandle, ServerStats};
