//! Kernel (Gram) matrix computation — the paper's §III-B Type-III
//! example "Kernel methods which compute kernel functions for all pairs
//! of data in the feature space" (SVM training).
//!
//! The N×N output is quadratic in the input: it can only live in global
//! memory. Stores are issued into the row of the broadcast operand so
//! they coalesce; the mirrored entry costs a strided store (the honest
//! price of symmetric Type-III output, measured by the benches).

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::DistanceKernel;
use tbs_core::kernels::PairScope;
use tbs_core::output::MatrixWriteAction;
use tbs_core::point::SoaPoints;

/// Gram-matrix result.
#[derive(Debug, Clone)]
pub struct GramResult {
    /// Row-major N×N kernel matrix.
    pub matrix: Vec<f32>,
    /// Matrix dimension.
    pub n: usize,
    /// Kernel profile.
    pub run: KernelRun,
}

impl GramResult {
    /// Entry (i, j).
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.matrix[i * self.n + j]
    }
}

/// Compute the Gram matrix of `pts` under kernel `k` (diagonal entries
/// are filled on the host with `k(x, x)` — the pair kernels only visit
/// `i ≠ j`).
pub fn gram_gpu<const D: usize, K: DistanceKernel<D> + Copy>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    k: K,
    plan: PairwisePlan,
) -> Result<GramResult, SimError> {
    let input = pts.upload(dev);
    let n = input.n;
    let out = dev.alloc_f32_zeroed((n as usize) * (n as usize));
    let action = MatrixWriteAction {
        out,
        n,
        symmetric: true,
    };
    let run = launch_pairwise(dev, input, k, action, plan, PairScope::HalfPairs)?;
    let mut matrix = dev.f32_slice(out).to_vec();
    for i in 0..n as usize {
        let p = pts.point(i);
        matrix[i * n as usize + i] = k.eval_host(&p, &p);
    }
    Ok(GramResult {
        matrix,
        n: n as usize,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use tbs_core::distance::{DotProduct, GaussianRbf};

    #[test]
    fn gram_matrix_matches_host_evaluation() {
        let pts = tbs_datagen::uniform_points::<3>(128, 10.0, 107);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let g =
            gram_gpu(&mut dev, &pts, DotProduct, PairwisePlan::register_shm(32)).expect("launch");
        for i in (0..128).step_by(17) {
            for j in (0..128).step_by(13) {
                let expect = <DotProduct as DistanceKernel<3>>::eval_host(
                    &DotProduct,
                    &pts.point(i),
                    &pts.point(j),
                );
                assert!(
                    (g.at(i, j) - expect).abs() < 1e-3,
                    "({i},{j}): {} vs {expect}",
                    g.at(i, j)
                );
            }
        }
    }

    #[test]
    fn gram_matrix_is_symmetric_with_unit_rbf_diagonal() {
        let pts = tbs_datagen::uniform_points::<2>(96, 10.0, 109);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let g = gram_gpu(
            &mut dev,
            &pts,
            GaussianRbf::new(2.0),
            PairwisePlan::register_shm(32),
        )
        .expect("launch");
        for i in 0..96 {
            assert!((g.at(i, i) - 1.0).abs() < 1e-6, "diagonal {i}");
            for j in 0..96 {
                assert_eq!(g.at(i, j), g.at(j, i), "symmetry ({i},{j})");
            }
        }
    }

    #[test]
    fn type_iii_output_traffic_is_quadratic() {
        let pts = tbs_datagen::uniform_points::<2>(256, 10.0, 113);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let g =
            gram_gpu(&mut dev, &pts, DotProduct, PairwisePlan::register_shm(64)).expect("launch");
        // Two stores per pair (symmetric): bytes ≈ 2 × pairs × 4.
        let pairs = 256u64 * 255 / 2;
        assert_eq!(g.run.tally.global_store_bytes % 4, 0);
        assert!(g.run.tally.global_store_bytes >= 2 * pairs * 4);
    }
}
