//! All-point k-nearest neighbors (small k) — a Type-I application per the
//! paper's §III-B classification: per-point results fit in registers.
//!
//! Runs in [`PairScope::AllPairs`] mode: unlike 2-PCF/SDH, every point
//! must observe every other point, so each ordered pair is evaluated.

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::kernels::{pair_launch, PairScope};
use tbs_core::output::KnnAction;
use tbs_core::point::SoaPoints;

/// k-NN result: per point, the k nearest neighbor indices and distances,
/// ascending.
#[derive(Debug, Clone)]
pub struct KnnResult<const K: usize> {
    /// `neighbors[i]` = indices of point `i`'s k nearest neighbors.
    pub neighbors: Vec<[u32; K]>,
    /// Matching distances.
    pub distances: Vec<[f32; K]>,
    /// Kernel profile.
    pub run: KernelRun,
}

/// Compute exact k-NN for every point on the simulated GPU.
pub fn knn_gpu<const D: usize, const K: usize>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    plan: PairwisePlan,
) -> Result<KnnResult<K>, SimError> {
    let input = pts.upload(dev);
    let n = input.n;
    let lc = pair_launch(n, plan.block_size);
    let slots = (lc.total_threads() as usize).max(n as usize) * K;
    let out_dist = dev.alloc_f32(vec![f32::INFINITY; slots]);
    let out_idx = dev.alloc_u32(vec![u32::MAX; slots]);
    let run = launch_pairwise(
        dev,
        input,
        Euclidean,
        KnnAction::<K> {
            out_dist,
            out_idx,
            n,
        },
        plan,
        PairScope::AllPairs,
    )?;
    // Device layout is out[k*n + i]; transpose back per point.
    let d = dev.f32_slice(out_dist);
    let ix = dev.u32_slice(out_idx);
    let mut neighbors = Vec::with_capacity(n as usize);
    let mut distances = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        neighbors.push(std::array::from_fn(|k| ix[k * n as usize + i]));
        distances.push(std::array::from_fn(|k| d[k * n as usize + i]));
    }
    Ok(KnnResult {
        neighbors,
        distances,
        run,
    })
}

/// Host-side exact reference.
pub fn knn_reference<const D: usize, const K: usize>(
    pts: &SoaPoints<D>,
) -> (Vec<[u32; K]>, Vec<[f32; K]>) {
    let n = pts.len();
    let mut nbrs = Vec::with_capacity(n);
    let mut dists = Vec::with_capacity(n);
    for i in 0..n {
        let a = pts.point(i);
        let mut all: Vec<(f32, u32)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let b = pts.point(j);
                let mut s = 0.0f32;
                for d in 0..D {
                    let diff = a[d] - b[d];
                    s = diff.mul_add(diff, s);
                }
                (s.sqrt(), j as u32)
            })
            .collect();
        all.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        nbrs.push(std::array::from_fn(|k| all[k].1));
        dists.push(std::array::from_fn(|k| all[k].0));
    }
    (nbrs, dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use tbs_core::analytic::profiles::InputPath;
    use tbs_core::kernels::IntraMode;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn gpu_knn_distances_match_reference() {
        let pts = tbs_datagen::uniform_points::<3>(256, 100.0, 61);
        let (_, ref_d) = knn_reference::<3, 4>(&pts);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = knn_gpu::<3, 4>(&mut dev, &pts, PairwisePlan::register_shm(64)).expect("launch");
        for i in 0..pts.len() {
            for k in 0..4 {
                assert!(
                    (got.distances[i][k] - ref_d[i][k]).abs() < 1e-4,
                    "point {i} k={k}: {} vs {}",
                    got.distances[i][k],
                    ref_d[i][k]
                );
            }
            // Distances ascending.
            for k in 1..4 {
                assert!(got.distances[i][k] >= got.distances[i][k - 1]);
            }
        }
    }

    #[test]
    fn neighbor_indices_are_valid_and_not_self() {
        let pts = tbs_datagen::uniform_points::<2>(200, 100.0, 67);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = knn_gpu::<2, 3>(&mut dev, &pts, PairwisePlan::register_shm(64)).expect("launch");
        for (i, nb) in got.neighbors.iter().enumerate() {
            for &j in nb {
                assert!(
                    j != i as u32 && (j as usize) < pts.len(),
                    "point {i}: neighbor {j}"
                );
            }
            assert!(nb[0] != nb[1] && nb[1] != nb[2] && nb[0] != nb[2]);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn knn_agrees_across_input_paths() {
        let pts = tbs_datagen::uniform_points::<3>(160, 100.0, 71);
        let mut reference: Option<Vec<[f32; 2]>> = None;
        for input in [InputPath::Naive, InputPath::RegisterShm, InputPath::Shuffle] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let plan = PairwisePlan {
                input,
                intra: IntraMode::Regular,
                block_size: 32,
            };
            let got = knn_gpu::<3, 2>(&mut dev, &pts, plan).expect("launch");
            match &reference {
                None => reference = Some(got.distances),
                Some(r) => {
                    for i in 0..pts.len() {
                        for k in 0..2 {
                            assert!(
                                (got.distances[i][k] - r[i][k]).abs() < 1e-5,
                                "{input:?} point {i}"
                            );
                        }
                    }
                }
            }
        }
    }
}
