//! Multi-GPU 2-BS decomposition — the paper's §V future work: "Our work
//! can also be extended to a multi-GPU environment or even cluster-level
//! optimization to handle very large input/output data."
//!
//! Decomposition: split the input into `G` contiguous chunks. The pair
//! triangle then factors into *self* tasks (the triangle within chunk
//! `g`, computed by the paper's Register-SHM kernel) and *cross* tasks
//! (the full `c_g × c_h` rectangle between chunks `g < h`, computed by
//! the bipartite [`CrossShmKernel`]). Tasks are scheduled onto devices
//! by longest-processing-time-first (LPT) over their exact pair counts;
//! each device reduces its private histogram copies locally and the host
//! merges per-task results — inter-device traffic is `O(G · H)`, not
//! `O(N²)`.

use crate::driver::PairwisePlan;
use gpu_sim::{Device, DeviceConfig, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::histogram::{Histogram, HistogramSpec};
use tbs_core::kernels::{
    pair_launch, CrossShmKernel, HistogramReduceKernel, PairScope, RegisterShmKernel,
};
use tbs_core::output::SharedHistogramAction;
use tbs_core::point::SoaPoints;

/// A unit of work in the decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdhTask {
    /// The triangle within one chunk.
    SelfJoin { chunk: usize },
    /// The rectangle between two chunks.
    CrossJoin { left: usize, right: usize },
}

impl SdhTask {
    /// Exact pair count of this task given the chunk sizes.
    pub fn pairs(&self, sizes: &[usize]) -> u64 {
        match *self {
            SdhTask::SelfJoin { chunk } => {
                let c = sizes[chunk] as u64;
                // `saturating_sub`: an empty chunk has zero pairs, not a
                // debug-build underflow panic.
                c * c.saturating_sub(1) / 2
            }
            SdhTask::CrossJoin { left, right } => sizes[left] as u64 * sizes[right] as u64,
        }
    }
}

/// Result of a multi-GPU SDH run.
#[derive(Debug, Clone)]
pub struct MultiGpuSdh {
    /// The merged final histogram (equal to a single-device run).
    pub histogram: Histogram,
    /// Simulated busy seconds per device.
    pub device_seconds: Vec<f64>,
    /// The schedule: `(device, task, simulated seconds)`.
    pub schedule: Vec<(usize, SdhTask, f64)>,
}

impl MultiGpuSdh {
    /// Simulated wall-clock: the busiest device.
    pub fn makespan(&self) -> f64 {
        self.device_seconds.iter().cloned().fold(0.0, f64::max)
    }

    /// Scaling efficiency vs. a perfect split of the total work.
    pub fn efficiency(&self) -> f64 {
        let total: f64 = self.device_seconds.iter().sum();
        let g = self.device_seconds.len() as f64;
        total / (g * self.makespan().max(1e-30))
    }
}

/// Split `n` into `g` near-equal contiguous chunk ranges.
pub fn chunk_ranges(n: usize, g: usize) -> Vec<std::ops::Range<usize>> {
    let g = g.max(1);
    let base = n / g;
    let extra = n % g;
    let mut out = Vec::with_capacity(g);
    let mut start = 0;
    for i in 0..g {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Build the task list for chunk sizes `sizes`: one self-join per chunk
/// with ≥ 2 points, one cross-join per non-empty chunk pair — `G`
/// self-joins + `G(G−1)/2` cross-joins when nothing is empty.
pub fn build_tasks(sizes: &[usize]) -> Vec<SdhTask> {
    let g = sizes.len();
    let mut tasks = Vec::new();
    for i in 0..g {
        if sizes[i] >= 2 {
            tasks.push(SdhTask::SelfJoin { chunk: i });
        }
        for j in (i + 1)..g {
            if sizes[i] > 0 && sizes[j] > 0 {
                tasks.push(SdhTask::CrossJoin { left: i, right: j });
            }
        }
    }
    tasks
}

/// LPT-schedule tasks over `devices` by pair count; returns per-device
/// task lists.
pub fn lpt_schedule(tasks: &[SdhTask], sizes: &[usize], devices: usize) -> Vec<Vec<SdhTask>> {
    let mut order: Vec<&SdhTask> = tasks.iter().collect();
    order.sort_by_key(|t| std::cmp::Reverse(t.pairs(sizes)));
    let mut load = vec![0u64; devices.max(1)];
    let mut assign: Vec<Vec<SdhTask>> = vec![Vec::new(); devices.max(1)];
    for t in order {
        let dev = (0..load.len())
            .min_by_key(|&d| load[d])
            .expect("at least one device");
        load[dev] += t.pairs(sizes);
        assign[dev].push(t.clone());
    }
    assign
}

/// Compute an SDH across `num_devices` simulated GPUs.
///
/// A simulated fault in any task's kernel aborts only this computation
/// and surfaces as `Err`, so sweeps over device counts / plans can skip
/// the bad configuration and continue.
pub fn sdh_multi_gpu<const D: usize>(
    pts: &SoaPoints<D>,
    spec: HistogramSpec,
    plan: PairwisePlan,
    num_devices: usize,
    cfg: &DeviceConfig,
) -> Result<MultiGpuSdh, SimError> {
    let g = num_devices.max(1);
    let ranges = chunk_ranges(pts.len(), g);
    let chunks: Vec<SoaPoints<D>> = ranges.iter().map(|r| pts.slice(r.clone())).collect();
    let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();

    let tasks = build_tasks(&sizes);
    let assignment = lpt_schedule(&tasks, &sizes, g);

    let mut histogram = Histogram::zeroed(spec.buckets);
    let mut device_seconds = vec![0.0f64; g];
    let mut schedule = Vec::new();

    for (dev_id, dev_tasks) in assignment.iter().enumerate() {
        // One simulated device per id; it holds copies of the chunks it
        // needs (the host broadcasts chunks once — O(N) traffic).
        let mut dev = Device::new(cfg.clone());
        let uploaded: Vec<_> = chunks.iter().map(|c| c.upload(&mut dev)).collect();
        for task in dev_tasks {
            let (lc, run_secs, partial) = match *task {
                SdhTask::SelfJoin { chunk } => {
                    let input = uploaded[chunk];
                    let lc = pair_launch(input.n, plan.block_size.min(input.n.max(32)));
                    let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
                    let k = RegisterShmKernel::new(
                        input,
                        Euclidean,
                        SharedHistogramAction { spec, private },
                        lc.block_dim,
                        PairScope::HalfPairs,
                        plan.intra,
                    );
                    let run = dev.try_launch(&k, lc)?;
                    (lc, run.timing.seconds, private)
                }
                SdhTask::CrossJoin { left, right } => {
                    let (a, b) = (uploaded[left], uploaded[right]);
                    let lc = pair_launch(a.n, plan.block_size.min(a.n.max(32)));
                    let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
                    let k = CrossShmKernel::new(
                        a,
                        b,
                        Euclidean,
                        SharedHistogramAction { spec, private },
                        lc.block_dim,
                    );
                    let run = dev.try_launch(&k, lc)?;
                    (lc, run.timing.seconds, private)
                }
            };
            // Local reduction of this task's private copies.
            let out = dev.alloc_u64_zeroed(spec.buckets as usize);
            let reduce = HistogramReduceKernel {
                private: partial,
                out,
                buckets: spec.buckets,
                copies: lc.grid_dim,
            };
            let rrun = dev.try_launch(&reduce, reduce.launch_config(256))?;
            let secs = run_secs + rrun.timing.seconds;
            device_seconds[dev_id] += secs;
            schedule.push((dev_id, task.clone(), secs));
            histogram.merge(&Histogram::from_counts(dev.u64_slice(out).to_vec()));
        }
    }

    Ok(MultiGpuSdh {
        histogram,
        device_seconds,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::{box_diagonal, uniform_points, DEFAULT_BOX};

    fn spec() -> HistogramSpec {
        HistogramSpec::new(96, box_diagonal(DEFAULT_BOX, 3))
    }

    #[test]
    fn chunking_partitions_exactly() {
        let r = chunk_ranges(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(2, 4).iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(chunk_ranges(0, 2).iter().map(|r| r.len()).sum::<usize>(), 0);
    }

    #[test]
    fn lpt_balances_loads() {
        let sizes = vec![100usize, 100, 100, 100];
        let tasks: Vec<SdhTask> = (0..4)
            .flat_map(|i| {
                let mut v = vec![SdhTask::SelfJoin { chunk: i }];
                v.extend(((i + 1)..4).map(move |j| SdhTask::CrossJoin { left: i, right: j }));
                v
            })
            .collect();
        let assign = lpt_schedule(&tasks, &sizes, 2);
        let load = |ts: &Vec<SdhTask>| ts.iter().map(|t| t.pairs(&sizes)).sum::<u64>();
        let (a, b) = (load(&assign[0]), load(&assign[1]));
        let imbalance = a.abs_diff(b) as f64 / (a + b) as f64;
        assert!(imbalance < 0.2, "imbalance {imbalance}");
    }

    #[test]
    fn multi_gpu_histogram_equals_single_device() {
        let pts = uniform_points::<3>(700, DEFAULT_BOX, 61);
        let single = tbs_cpu::sdh_reference(&pts, spec());
        for devices in [1usize, 2, 3, 4] {
            let got = sdh_multi_gpu(
                &pts,
                spec(),
                PairwisePlan::register_shm(64),
                devices,
                &DeviceConfig::titan_x(),
            )
            .expect("launch");
            assert_eq!(got.histogram, single, "devices = {devices}");
            assert_eq!(got.histogram.total(), 700 * 699 / 2);
        }
    }

    /// A deliberately small device (4 SMs, 4 block slots) that the tiny
    /// functional workloads of this test suite can *saturate* — on a full
    /// Titan X, sub-task grids at test sizes are grid-limited and the
    /// timing model (correctly!) shows chunking not paying off until N is
    /// far beyond what a functional test should execute.
    fn small_device() -> DeviceConfig {
        DeviceConfig {
            num_sms: 4,
            max_blocks_per_sm: 4,
            ..DeviceConfig::titan_x()
        }
    }

    #[test]
    fn two_devices_reduce_the_makespan_when_chunks_fill_the_device() {
        let pts = uniform_points::<3>(3072, DEFAULT_BOX, 67);
        let cfg = small_device();
        let plan = PairwisePlan::register_shm(64);
        let one = sdh_multi_gpu(&pts, spec(), plan, 1, &cfg).expect("launch");
        let two = sdh_multi_gpu(&pts, spec(), plan, 2, &cfg).expect("launch");
        assert_eq!(one.histogram, two.histogram);
        assert!(
            two.makespan() < one.makespan() * 0.7,
            "2-device makespan {} vs 1-device {}",
            two.makespan(),
            one.makespan()
        );
        assert!(two.efficiency() > 0.6, "efficiency {}", two.efficiency());
    }

    #[test]
    fn grid_limited_chunking_does_not_pay_on_a_big_device() {
        // The counterpart claim: on the full 24-SM Titan X, this same
        // workload is too small to split — the model shows no speedup.
        let pts = uniform_points::<3>(2048, DEFAULT_BOX, 69);
        let cfg = DeviceConfig::titan_x();
        let plan = PairwisePlan::register_shm(64);
        let one = sdh_multi_gpu(&pts, spec(), plan, 1, &cfg).expect("launch");
        let four = sdh_multi_gpu(&pts, spec(), plan, 4, &cfg).expect("launch");
        assert_eq!(one.histogram, four.histogram);
        assert!(
            four.makespan() > one.makespan() * 0.8,
            "splitting a grid-limited workload should not help: {} vs {}",
            four.makespan(),
            one.makespan()
        );
    }

    #[test]
    fn empty_chunk_pair_counts_do_not_underflow() {
        // Regression: `SelfJoin.pairs` on an empty (or singleton) chunk
        // used `c * (c - 1) / 2`, which underflows in debug builds when
        // c = 0. A shard plan over more workers than points produces
        // exactly such empty chunks.
        let sizes = vec![0usize, 1, 5];
        assert_eq!(SdhTask::SelfJoin { chunk: 0 }.pairs(&sizes), 0);
        assert_eq!(SdhTask::SelfJoin { chunk: 1 }.pairs(&sizes), 0);
        assert_eq!(SdhTask::SelfJoin { chunk: 2 }.pairs(&sizes), 10);
        // And the task builder + scheduler stay consistent around them:
        // empty shards spawn no tasks, and scheduling what remains works.
        let tasks = build_tasks(&sizes);
        assert_eq!(
            tasks,
            vec![
                SdhTask::CrossJoin { left: 1, right: 2 },
                SdhTask::SelfJoin { chunk: 2 },
            ]
        );
        let assign = lpt_schedule(&tasks, &sizes, 4);
        let assigned: usize = assign.iter().map(Vec::len).sum();
        assert_eq!(assigned, tasks.len());
    }

    #[test]
    fn multi_gpu_with_more_devices_than_points_is_fine() {
        // End-to-end shape of the same regression: 3 points over 8
        // devices yields empty chunks; the run must still merge to the
        // single-device truth.
        let pts = uniform_points::<3>(3, DEFAULT_BOX, 71);
        let got = sdh_multi_gpu(
            &pts,
            spec(),
            PairwisePlan::register_shm(64),
            8,
            &DeviceConfig::titan_x(),
        )
        .expect("launch");
        assert_eq!(got.histogram, tbs_cpu::sdh_reference(&pts, spec()));
        assert_eq!(got.histogram.total(), 3);
    }

    #[test]
    fn task_pair_counts_cover_the_whole_triangle() {
        let sizes = vec![50usize, 60, 70];
        let mut total = 0u64;
        for i in 0..3 {
            total += SdhTask::SelfJoin { chunk: i }.pairs(&sizes);
            for j in (i + 1)..3 {
                total += SdhTask::CrossJoin { left: i, right: j }.pairs(&sizes);
            }
        }
        let n = 180u64;
        assert_eq!(total, n * (n - 1) / 2);
    }
}
