//! The spatial distance histogram (SDH) — the paper's Type-II example
//! application (§IV-D): all pairwise Euclidean distances binned into a
//! histogram small enough for shared memory.

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::histogram::{Histogram, HistogramSpec};
use tbs_core::kernels::{pair_launch, HistogramReduceKernel, PairScope};
use tbs_core::output::{GlobalHistogramAction, SharedHistogramAction};
use tbs_core::point::SoaPoints;

/// Output-stage strategy for the SDH.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdhOutputMode {
    /// The paper's privatization technique (Algorithm 3 + Figure 3): a
    /// private shared-memory copy per block, then a reduction kernel.
    Privatized,
    /// Straight atomics on the final histogram in global memory (the
    /// un-optimized output stage the `*-Out` kernels improve on).
    GlobalAtomics,
}

/// Result of a GPU SDH computation.
#[derive(Debug, Clone)]
pub struct SdhResult {
    /// The final histogram.
    pub histogram: Histogram,
    /// Profile of the pairwise kernel.
    pub pair_run: KernelRun,
    /// Profile of the reduction kernel (privatized mode only).
    pub reduce_run: Option<KernelRun>,
}

impl SdhResult {
    /// Total simulated GPU time (pair stage + reduction).
    pub fn total_seconds(&self) -> f64 {
        self.pair_run.timing.seconds + self.reduce_run.as_ref().map_or(0.0, |r| r.timing.seconds)
    }
}

/// Compute the SDH of `pts` with the standard Euclidean distance.
pub fn sdh_gpu<const D: usize>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    spec: HistogramSpec,
    plan: PairwisePlan,
    output: SdhOutputMode,
) -> Result<SdhResult, SimError> {
    sdh_gpu_with(dev, pts, Euclidean, spec, plan, output)
}

/// Compute a distance histogram under an arbitrary distance function
/// (e.g. [`tbs_core::distance::PeriodicEuclidean`] for minimum-image
/// molecular-dynamics analysis).
pub fn sdh_gpu_with<const D: usize, F>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    dist: F,
    spec: HistogramSpec,
    plan: PairwisePlan,
    output: SdhOutputMode,
) -> Result<SdhResult, SimError>
where
    F: tbs_core::distance::DistanceKernel<D> + Copy,
{
    let input = pts.upload(dev);
    let lc = pair_launch(input.n, plan.block_size);
    match output {
        SdhOutputMode::Privatized => {
            let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
            let pair_run = launch_pairwise(
                dev,
                input,
                dist,
                SharedHistogramAction { spec, private },
                plan,
                PairScope::HalfPairs,
            )?;
            let out = dev.alloc_u64_zeroed(spec.buckets as usize);
            let reduce = HistogramReduceKernel {
                private,
                out,
                buckets: spec.buckets,
                copies: lc.grid_dim,
            };
            let reduce_run = dev.try_launch(&reduce, reduce.launch_config(256))?;
            Ok(SdhResult {
                histogram: Histogram::from_counts(dev.u64_slice(out).to_vec()),
                pair_run,
                reduce_run: Some(reduce_run),
            })
        }
        SdhOutputMode::GlobalAtomics => {
            let out = dev.alloc_u64_zeroed(spec.buckets as usize);
            let pair_run = launch_pairwise(
                dev,
                input,
                dist,
                GlobalHistogramAction { spec, out },
                plan,
                PairScope::HalfPairs,
            )?;
            Ok(SdhResult {
                histogram: Histogram::from_counts(dev.u64_slice(out).to_vec()),
                pair_run,
                reduce_run: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use tbs_core::analytic::profiles::InputPath;
    use tbs_core::kernels::IntraMode;

    fn spec() -> HistogramSpec {
        HistogramSpec::new(128, tbs_datagen::box_diagonal(100.0, 3))
    }

    #[test]
    fn privatized_sdh_matches_cpu_reference() {
        let pts = tbs_datagen::uniform_points::<3>(512, 100.0, 31);
        let expect = tbs_cpu::sdh_reference(&pts, spec());
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = sdh_gpu(
            &mut dev,
            &pts,
            spec(),
            PairwisePlan::register_shm(64),
            SdhOutputMode::Privatized,
        )
        .expect("launch");
        assert_eq!(got.histogram, expect);
        assert!(got.reduce_run.is_some());
        assert!(got.total_seconds() > got.pair_run.timing.seconds);
    }

    #[test]
    fn global_atomics_sdh_matches_too() {
        let pts = tbs_datagen::uniform_points::<3>(384, 100.0, 37);
        let expect = tbs_cpu::sdh_reference(&pts, spec());
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = sdh_gpu(
            &mut dev,
            &pts,
            spec(),
            PairwisePlan::register_shm(128),
            SdhOutputMode::GlobalAtomics,
        )
        .expect("launch");
        assert_eq!(got.histogram, expect);
        assert!(got.reduce_run.is_none());
    }

    #[test]
    fn every_variant_and_output_mode_agrees() {
        let pts = tbs_datagen::uniform_points::<3>(256, 100.0, 41);
        let expect = tbs_cpu::sdh_reference(&pts, spec());
        for input in [InputPath::Naive, InputPath::RegisterRoc, InputPath::Shuffle] {
            for output in [SdhOutputMode::Privatized, SdhOutputMode::GlobalAtomics] {
                let mut dev = Device::new(DeviceConfig::titan_x());
                let plan = PairwisePlan {
                    input,
                    intra: IntraMode::Regular,
                    block_size: 64,
                };
                let got = sdh_gpu(&mut dev, &pts, spec(), plan, output).expect("launch");
                assert_eq!(got.histogram, expect, "{input:?}/{output:?}");
            }
        }
    }

    #[test]
    fn privatization_beats_global_atomics_in_simulated_time() {
        // The §IV-D headline: the privatized output stage is ~an order of
        // magnitude faster.
        let pts = tbs_datagen::uniform_points::<3>(2048, 100.0, 43);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let plan = PairwisePlan::register_shm(128);
        let privatized = sdh_gpu(&mut dev, &pts, spec(), plan, SdhOutputMode::Privatized)
            .expect("launch")
            .total_seconds();
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let global = sdh_gpu(&mut dev2, &pts, spec(), plan, SdhOutputMode::GlobalAtomics)
            .expect("launch")
            .total_seconds();
        // At this test size (n = 2048, 16 blocks) the grid cannot even
        // fill the 24 SMs, which compresses the gap; the paper-scale
        // ~10× ratio is reproduced by the fig4 bench at full occupancy.
        assert!(
            global > 3.0 * privatized,
            "global atomics {global:.6}s vs privatized {privatized:.6}s"
        );
    }
}
