//! The radial distribution function g(r) — "a normalized form of SDH"
//! (paper §III-B, citing Levine et al.'s GPU RDF work).
//!
//! For a homogeneous system of `N` points at density ρ in volume `V`,
//! `g(r) = h(r) / (N/2 · 4π r² Δr · ρ)` where `h(r)` is the SDH bucket
//! count at radius `r`. g(r) → 1 for uncorrelated (uniform) data at
//! radii far from the box scale.

use crate::driver::PairwisePlan;
use crate::sdh::{sdh_gpu, SdhOutputMode, SdhResult};
use gpu_sim::{Device, SimError};
use tbs_core::histogram::{Histogram, HistogramSpec};
use tbs_core::point::SoaPoints;

/// An RDF curve: bucket mid-radii and g(r) values.
#[derive(Debug, Clone, PartialEq)]
pub struct Rdf {
    /// Mid-point radius of each bucket.
    pub r: Vec<f64>,
    /// g(r) per bucket.
    pub g: Vec<f64>,
    /// The SDH it was derived from.
    pub histogram: Histogram,
}

/// Normalize an SDH into g(r) for `n` points in a box of volume `volume`.
pub fn normalize_sdh(hist: &Histogram, spec: HistogramSpec, n: u64, volume: f64) -> Rdf {
    let rho = n as f64 / volume;
    let dr = spec.bucket_width() as f64;
    let mut r = Vec::with_capacity(hist.counts().len());
    let mut g = Vec::with_capacity(hist.counts().len());
    for (i, &c) in hist.counts().iter().enumerate() {
        let rmid = (i as f64 + 0.5) * dr;
        // Ideal-gas pair count in the shell [r, r+dr): N/2 · ρ · 4πr²dr.
        let ideal = n as f64 / 2.0 * rho * 4.0 * std::f64::consts::PI * rmid * rmid * dr;
        r.push(rmid);
        g.push(if ideal > 0.0 { c as f64 / ideal } else { 0.0 });
    }
    Rdf {
        r,
        g,
        histogram: hist.clone(),
    }
}

/// Compute the RDF under periodic boundary conditions (minimum-image
/// convention): the standard molecular-dynamics analysis. The histogram
/// range should not exceed `box_edge / 2` — beyond the half-box the
/// minimum-image shell volume is no longer `4πr²Δr`.
pub fn rdf_gpu_periodic(
    dev: &mut Device,
    pts: &SoaPoints<3>,
    spec: HistogramSpec,
    box_edge: f32,
    plan: PairwisePlan,
) -> Result<(Rdf, SdhResult), SimError> {
    assert!(
        spec.max_distance <= box_edge / 2.0 + 1e-4,
        "periodic RDF histograms must stop at half the box edge"
    );
    let dist = tbs_core::distance::PeriodicEuclidean::new(box_edge);
    let sdh = crate::sdh::sdh_gpu_with(dev, pts, dist, spec, plan, SdhOutputMode::Privatized)?;
    let volume = (box_edge as f64).powi(3);
    let mut rdf = normalize_sdh(&sdh.histogram, spec, pts.len() as u64, volume);
    // Minimum-image distances in 3-D reach up to (√3/2)·L along box
    // diagonals; everything past the histogram range clamps into the
    // final bucket. That bucket is not a physical shell — drop it from
    // the curve, as MD analysis codes conventionally do.
    rdf.r.pop();
    rdf.g.pop();
    Ok((rdf, sdh))
}

/// Compute the RDF of a 3-D point set on the simulated GPU (SDH with the
/// paper's best Type-II configuration, then host-side normalization).
pub fn rdf_gpu(
    dev: &mut Device,
    pts: &SoaPoints<3>,
    spec: HistogramSpec,
    box_edge: f32,
    plan: PairwisePlan,
) -> Result<(Rdf, SdhResult), SimError> {
    let sdh = sdh_gpu(dev, pts, spec, plan, SdhOutputMode::Privatized)?;
    let volume = (box_edge as f64).powi(3);
    let rdf = normalize_sdh(&sdh.histogram, spec, pts.len() as u64, volume);
    Ok((rdf, sdh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    #[test]
    fn uniform_gas_has_unit_g_at_small_radii() {
        // For uniform data, g(r) ≈ 1 at radii well below the box edge
        // (no boundary truncation yet).
        let edge = 100.0f32;
        let pts = tbs_datagen::uniform_points::<3>(4096, edge, 47);
        let spec = HistogramSpec::new(200, tbs_datagen::box_diagonal(edge, 3));
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (rdf, _) =
            rdf_gpu(&mut dev, &pts, spec, edge, PairwisePlan::register_shm(128)).expect("launch");
        // Buckets covering r in [2, 8): above the r→0 shot noise, and
        // small enough that the finite-box shell truncation (≈ 3r/2L
        // relative loss without periodic boundaries) stays below ~10 %.
        let w = spec.bucket_width();
        let lo = (2.0 / w) as usize;
        let hi = (8.0 / w) as usize;
        let mean: f64 = rdf.g[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        assert!((0.85..1.1).contains(&mean), "mean g(r) in [2,8) = {mean}");
    }

    #[test]
    fn g_rolls_off_beyond_the_box_scale() {
        let edge = 50.0f32;
        let pts = tbs_datagen::uniform_points::<3>(2048, edge, 53);
        let spec = HistogramSpec::new(100, tbs_datagen::box_diagonal(edge, 3));
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (rdf, _) =
            rdf_gpu(&mut dev, &pts, spec, edge, PairwisePlan::register_shm(64)).expect("launch");
        // Near the diagonal there are almost no pairs: g ≈ 0.
        let tail: f64 = rdf.g.iter().rev().take(5).sum::<f64>() / 5.0;
        assert!(tail < 0.2, "tail g = {tail}");
    }

    #[test]
    fn clustered_data_shows_short_range_structure() {
        let edge = 100.0f32;
        let pts = tbs_datagen::clustered_points::<3>(2048, edge, 8, 2.0, 59);
        let spec = HistogramSpec::new(200, tbs_datagen::box_diagonal(edge, 3));
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (rdf, _) =
            rdf_gpu(&mut dev, &pts, spec, edge, PairwisePlan::register_shm(64)).expect("launch");
        // Short-range g(r) must be strongly enhanced vs. uniform.
        let w = spec.bucket_width();
        let near = rdf.g[(1.0 / w) as usize..(4.0 / w) as usize]
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(near > 5.0, "clustered short-range g = {near}");
    }

    #[test]
    fn periodic_rdf_is_flat_for_uniform_gas() {
        // With minimum-image distances there is no boundary truncation:
        // g(r) ≈ 1 all the way to L/2 for an ideal gas.
        let edge = 60.0f32;
        let pts = tbs_datagen::uniform_points::<3>(4096, edge, 71);
        let spec = HistogramSpec::new(60, edge / 2.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (rdf, _) =
            rdf_gpu_periodic(&mut dev, &pts, spec, edge, PairwisePlan::register_shm(128))
                .expect("launch");
        // Skip the first few shot-noise buckets; everything else ≈ 1.
        for (i, &g) in rdf.g.iter().enumerate().skip(8) {
            assert!((0.8..1.2).contains(&g), "bucket {i}: g = {g}");
        }
        let mean: f64 = rdf.g[8..].iter().sum::<f64>() / (rdf.g.len() - 8) as f64;
        assert!((0.95..1.05).contains(&mean), "mean g = {mean}");
    }

    #[test]
    #[should_panic(expected = "half the box edge")]
    fn periodic_rdf_rejects_over_long_histograms() {
        let pts = tbs_datagen::uniform_points::<3>(64, 10.0, 1);
        let spec = HistogramSpec::new(10, 9.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let _ = rdf_gpu_periodic(&mut dev, &pts, spec, 10.0, PairwisePlan::register_shm(32));
    }

    #[test]
    fn normalization_math() {
        // One count in a known shell must produce exactly 1/ideal.
        let spec = HistogramSpec::new(10, 10.0);
        let mut h = Histogram::zeroed(10);
        h.add(3);
        let rdf = normalize_sdh(&h, spec, 100, 1000.0);
        let rmid = 3.5;
        let ideal = 50.0 * (100.0 / 1000.0) * 4.0 * std::f64::consts::PI * rmid * rmid * 1.0;
        assert!((rdf.g[3] - 1.0 / ideal).abs() < 1e-12);
        assert_eq!(rdf.r[3], 3.5);
    }
}
