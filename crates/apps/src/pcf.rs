//! The 2-point correlation function (2-PCF) — the paper's Type-I example
//! application (§IV-B): "the output is of very small size: one scalar
//! describing the number of points within a radius" — plus the
//! cosmology-grade estimator built on it: binned DD/DR/RR pair counts
//! over a random catalog and the Landy–Szalay ξ(r), running through the
//! grid-pruned executor ([`crate::gridded`]) so N = 10⁶–10⁷ catalogs
//! are tractable.

use crate::driver::{launch_pairwise, PairwisePlan};
use crate::gridded::{
    gridded_cross_radial_histogram, gridded_radial_histogram, GriddedCatalog, GriddedRun,
};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::grid::{GridGeometry, GridOptions, RadialBins};
use tbs_core::histogram::Histogram;
use tbs_core::kernels::{pair_launch, PairScope};
use tbs_core::output::CountWithinRadius;
use tbs_core::point::SoaPoints;

/// Result of a GPU 2-PCF computation.
#[derive(Debug, Clone)]
pub struct PcfResult {
    /// Number of pairs with distance strictly below the radius.
    pub count: u64,
    /// Profile of the pairwise kernel.
    pub run: KernelRun,
}

/// Compute the 2-PCF of `pts` at `radius` on a simulated device.
pub fn pcf_gpu<const D: usize>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    radius: f32,
    plan: PairwisePlan,
) -> Result<PcfResult, SimError> {
    let input = pts.upload(dev);
    let lc = pair_launch(input.n, plan.block_size);
    let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
    let run = launch_pairwise(
        dev,
        input,
        Euclidean,
        CountWithinRadius { radius, out },
        plan,
        PairScope::HalfPairs,
    )?;
    // Type-I: per-thread register outputs are transmitted back to the
    // host and summed there (§IV-C "transmit such data back to host when
    // kernel exits").
    let count = dev.u64_slice(out).iter().sum();
    Ok(PcfResult { count, run })
}

/// Binned DD/DR/RR pair counts of a data catalog against a random
/// catalog, all three computed through the grid-pruned executor over
/// one shared grid geometry.
#[derive(Debug, Clone)]
pub struct LsPairCounts {
    /// Data–data pair counts per radial bin (unordered pairs).
    pub dd: Histogram,
    /// Data–random pair counts per radial bin (ordered pairs).
    pub dr: Histogram,
    /// Random–random pair counts per radial bin (unordered pairs).
    pub rr: Histogram,
    /// Catalog sizes (data, random).
    pub nd: u64,
    pub nr: u64,
    /// The binning the counts were taken over.
    pub bins: RadialBins,
    /// Launch profiles of the three passes.
    pub dd_run: GriddedRun,
    pub dr_run: GriddedRun,
    pub rr_run: GriddedRun,
}

impl LsPairCounts {
    /// Total simulated kernel seconds across DD + DR + RR.
    pub fn total_seconds(&self) -> f64 {
        self.dd_run.seconds + self.dr_run.seconds + self.rr_run.seconds
    }
}

/// Compute DD, DR and RR radial pair counts for `data` against `rand`
/// with one shared grid geometry fit over both catalogs (required for
/// the bipartite DR pass and convenient for the other two).
pub fn ls_pair_counts<const D: usize>(
    dev: &mut Device,
    data: &SoaPoints<D>,
    rand: &SoaPoints<D>,
    bins: RadialBins,
    plan: PairwisePlan,
    opts: &GridOptions,
) -> Result<LsPairCounts, SimError> {
    let geom = GridGeometry::fit(&[data, rand], bins.r_max, opts);
    let dcat = GriddedCatalog::build(dev, geom.clone(), data);
    let rcat = GriddedCatalog::build(dev, geom, rand);
    let dd = gridded_radial_histogram(dev, &dcat, bins, plan)?;
    let dr = gridded_cross_radial_histogram(dev, &dcat, &rcat, bins, plan)?;
    let rr = gridded_radial_histogram(dev, &rcat, bins, plan)?;
    Ok(LsPairCounts {
        dd: dd.histogram,
        dr: dr.histogram,
        rr: rr.histogram,
        nd: data.len() as u64,
        nr: rand.len() as u64,
        bins,
        dd_run: dd.run,
        dr_run: dr.run,
        rr_run: rr.run,
    })
}

/// The Landy–Szalay estimator ξ(r) = (DD̂ − 2·DR̂ + RR̂) / RR̂ per
/// radial bin, with each count normalized by its number of possible
/// pairs (DD: N_d(N_d−1)/2, DR: N_d·N_r, RR: N_r(N_r−1)/2). Bins whose
/// RR count is zero (no pairs to calibrate against) yield `NaN`.
pub fn landy_szalay(counts: &LsPairCounts) -> Vec<f64> {
    let (nd, nr) = (counts.nd as f64, counts.nr as f64);
    let dd_pairs = nd * (nd - 1.0) / 2.0;
    let dr_pairs = nd * nr;
    let rr_pairs = nr * (nr - 1.0) / 2.0;
    counts
        .dd
        .counts()
        .iter()
        .zip(counts.dr.counts())
        .zip(counts.rr.counts())
        .map(|((&dd, &dr), &rr)| {
            if rr == 0 {
                f64::NAN
            } else {
                let dd_hat = dd as f64 / dd_pairs;
                let dr_hat = dr as f64 / dr_pairs;
                let rr_hat = rr as f64 / rr_pairs;
                (dd_hat - 2.0 * dr_hat + rr_hat) / rr_hat
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use tbs_core::analytic::profiles::InputPath;
    use tbs_core::kernels::IntraMode;

    #[test]
    fn gpu_pcf_matches_cpu_reference() {
        let pts = tbs_datagen::uniform_points::<3>(512, 100.0, 23);
        let expect = tbs_cpu::pcf_reference(&pts, 25.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = pcf_gpu(&mut dev, &pts, 25.0, PairwisePlan::register_shm(128)).expect("launch");
        assert_eq!(got.count, expect);
        assert!(got.run.timing.seconds > 0.0);
    }

    #[test]
    fn all_input_paths_agree_with_cpu() {
        let pts = tbs_datagen::uniform_points::<3>(384, 100.0, 29);
        let expect = tbs_cpu::pcf_reference(&pts, 40.0);
        for input in [
            InputPath::Naive,
            InputPath::ShmShm,
            InputPath::RegisterShm,
            InputPath::RegisterRoc,
            InputPath::Shuffle,
        ] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let plan = PairwisePlan {
                input,
                intra: IntraMode::LoadBalanced,
                block_size: 128,
            };
            let got = pcf_gpu(&mut dev, &pts, 40.0, plan).expect("launch");
            assert_eq!(got.count, expect, "{input:?}");
        }
    }

    #[test]
    fn ls_estimator_is_near_zero_for_unclustered_data() {
        // Uniform "data" vs a uniform random catalog: no excess
        // clustering, so ξ(r) ≈ 0 in well-populated bins.
        let data = tbs_datagen::uniform_points::<3>(3000, 100.0, 51);
        let rand = tbs_datagen::uniform_points::<3>(3000, 100.0, 52);
        let bins = RadialBins::new(8, 20.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let counts = ls_pair_counts(
            &mut dev,
            &data,
            &rand,
            bins,
            PairwisePlan::register_shm(128),
            &GridOptions::default(),
        )
        .expect("launch");
        assert_eq!(counts.nd, 3000);
        let xi = landy_szalay(&counts);
        assert_eq!(xi.len(), 8);
        // Outer bins have tens of thousands of pairs; Poisson noise is
        // at the percent level.
        for (i, &x) in xi.iter().enumerate().skip(3) {
            assert!(x.abs() < 0.2, "bin {i}: xi = {x}");
        }
    }

    #[test]
    fn ls_estimator_detects_clustering() {
        // Strongly clustered data vs a uniform random catalog: ξ must
        // be clearly positive at small separations.
        let data = tbs_datagen::clustered_points::<3>(2000, 100.0, 8, 2.0, 53);
        let rand = tbs_datagen::uniform_points::<3>(4000, 100.0, 54);
        let bins = RadialBins::new(8, 16.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let counts = ls_pair_counts(
            &mut dev,
            &data,
            &rand,
            bins,
            PairwisePlan::register_shm(128),
            &GridOptions::default(),
        )
        .expect("launch");
        let xi = landy_szalay(&counts);
        assert!(xi[0] > 1.0, "xi(0) = {}", xi[0]);
        // DD/DR/RR totals are consistent with the pair universes.
        assert!(counts.dd.total() <= counts.nd * (counts.nd - 1) / 2);
        assert!(counts.dr.total() <= counts.nd * counts.nr);
    }
}
