//! The 2-point correlation function (2-PCF) — the paper's Type-I example
//! application (§IV-B): "the output is of very small size: one scalar
//! describing the number of points within a radius".

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::kernels::{pair_launch, PairScope};
use tbs_core::output::CountWithinRadius;
use tbs_core::point::SoaPoints;

/// Result of a GPU 2-PCF computation.
#[derive(Debug, Clone)]
pub struct PcfResult {
    /// Number of pairs with distance strictly below the radius.
    pub count: u64,
    /// Profile of the pairwise kernel.
    pub run: KernelRun,
}

/// Compute the 2-PCF of `pts` at `radius` on a simulated device.
pub fn pcf_gpu<const D: usize>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    radius: f32,
    plan: PairwisePlan,
) -> Result<PcfResult, SimError> {
    let input = pts.upload(dev);
    let lc = pair_launch(input.n, plan.block_size);
    let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
    let run = launch_pairwise(
        dev,
        input,
        Euclidean,
        CountWithinRadius { radius, out },
        plan,
        PairScope::HalfPairs,
    )?;
    // Type-I: per-thread register outputs are transmitted back to the
    // host and summed there (§IV-C "transmit such data back to host when
    // kernel exits").
    let count = dev.u64_slice(out).iter().sum();
    Ok(PcfResult { count, run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use tbs_core::analytic::profiles::InputPath;
    use tbs_core::kernels::IntraMode;

    #[test]
    fn gpu_pcf_matches_cpu_reference() {
        let pts = tbs_datagen::uniform_points::<3>(512, 100.0, 23);
        let expect = tbs_cpu::pcf_reference(&pts, 25.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = pcf_gpu(&mut dev, &pts, 25.0, PairwisePlan::register_shm(128)).expect("launch");
        assert_eq!(got.count, expect);
        assert!(got.run.timing.seconds > 0.0);
    }

    #[test]
    fn all_input_paths_agree_with_cpu() {
        let pts = tbs_datagen::uniform_points::<3>(384, 100.0, 29);
        let expect = tbs_cpu::pcf_reference(&pts, 40.0);
        for input in [
            InputPath::Naive,
            InputPath::ShmShm,
            InputPath::RegisterShm,
            InputPath::RegisterRoc,
            InputPath::Shuffle,
        ] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let plan = PairwisePlan {
                input,
                intra: IntraMode::LoadBalanced,
                block_size: 128,
            };
            let got = pcf_gpu(&mut dev, &pts, 40.0, plan).expect("launch");
            assert_eq!(got.count, expect, "{input:?}");
        }
    }
}
