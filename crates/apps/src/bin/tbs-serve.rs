//! `tbs-serve` — run the 2-body-statistics query service.
//!
//! Two modes:
//!
//! * `tbs-serve --smoke [--n N] [--workers W]` — self-contained service
//!   smoke test: starts a server, submits a mixed batch (2-PCF at many
//!   radii + SDH + count-within), asserts the coalesced answers are
//!   bit-identical to single-query submissions *and* to the CPU
//!   references, exercises the gridded and kNN solo routes and the
//!   re-registration cache invalidation, then shuts down gracefully and
//!   prints a JSON report. Exit code 0 iff everything matched. This is
//!   what CI's `service-smoke` job runs.
//!
//! * `tbs-serve` (no flag) — line protocol on stdin/stdout, one JSON
//!   object per line:
//!
//!   ```text
//!   {"cmd":"gen","name":"d","n":4096,"extent":100.0,"seed":7}
//!   {"cmd":"query","dataset":"d","query":{"type":"sdh","buckets":32,"width":2.0}}
//!   {"cmd":"batch","dataset":"d","queries":[{"type":"pair_counts","radii":[5.0,10.0]}]}
//!   {"cmd":"stats"}
//!   {"cmd":"shutdown"}
//!   ```
//!
//!   Query objects: `pair_counts {radii}`, `sdh {buckets, width}`,
//!   `count_within {radius, gridded?}`, `knn {k}`. Each request gets one
//!   JSON reply line (`{"ok":...}` or `{"error":...}`).

use std::io::BufRead;
use tbs_apps::serve::{Query, QueryResult, ServeConfig, Server, ServerHandle};
use tbs_json::Json;

fn main() {
    let mut smoke = false;
    let mut n: usize = 4096;
    let mut workers: usize = 2;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            "--help" | "-h" => {
                eprintln!("usage: tbs-serve [--smoke] [--n N] [--workers W]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }
    let cfg = ServeConfig::default().with_workers(workers);
    let code = if smoke {
        Server::run(cfg, |h| run_smoke(h, n))
    } else {
        Server::run(cfg, run_protocol)
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------
// --smoke
// ---------------------------------------------------------------------

/// Panic-free check helper: returns 1 (and prints why) on mismatch.
macro_rules! check {
    ($cond:expr, $($why:tt)*) => {
        if !$cond {
            println!(
                "{}",
                Json::obj()
                    .with("ok", false)
                    .with("failed", format!($($why)*))
                    .render()
                    .expect("render")
            );
            return 1;
        }
    };
}

fn run_smoke(h: ServerHandle, n: usize) -> i32 {
    let pts = tbs_datagen::uniform_points::<3>(n, 100.0, 20160808);
    let radii = [5.0f32, 10.0, 20.0];
    h.register_dataset("pts", pts.clone()).expect("register");

    // The mixed batch: every member coalesces into one sharded sweep.
    let batch = vec![
        Query::PairCounts {
            radii: radii.to_vec(),
        },
        Query::Sdh {
            buckets: 32,
            width: 2.0,
        },
        Query::CountWithin {
            radius: 8.0,
            gridded: false,
        },
    ];
    let batched = match h.submit_batch("pts", batch.clone()) {
        Ok(r) => r,
        Err(e) => {
            check!(false, "batch failed: {e}");
            unreachable!()
        }
    };

    // Oracle 1: single-query submissions must match bit-for-bit.
    for (q, want) in batch.iter().zip(&batched) {
        match h.submit("pts", q.clone()) {
            Ok(got) => check!(&got == want, "batched vs single mismatch for {q:?}"),
            Err(e) => check!(false, "single {q:?} failed: {e}"),
        }
    }

    // Oracle 2: CPU references (exact — counts are integers; the
    // device-semantics reference mirrors the GPU's sqrt-then-compare).
    if let QueryResult::Counts(counts) = &batched[0] {
        for (r, got) in radii.iter().zip(counts) {
            let want = tbs_cpu::count_within_reference(&pts, *r);
            check!(*got == want, "pair count r={r}: got {got}, want {want}");
        }
    } else {
        check!(false, "batched[0] is not Counts");
    }
    if let QueryResult::Histogram(hist) = &batched[1] {
        let spec = tbs_core::histogram::HistogramSpec::new(32, 64.0);
        let want = tbs_cpu::sdh_reference(&pts, spec);
        check!(hist == &want, "SDH mismatch vs CPU reference");
    } else {
        check!(false, "batched[1] is not Histogram");
    }

    // Solo routes: the gridded count agrees with the dense sweep, and
    // kNN agrees with the host reference.
    let dense = batched[2].clone();
    match h.submit(
        "pts",
        Query::CountWithin {
            radius: 8.0,
            gridded: true,
        },
    ) {
        Ok(gridded) => check!(gridded == dense, "gridded vs dense count-within mismatch"),
        Err(e) => check!(false, "gridded count failed: {e}"),
    }
    match h.submit("pts", Query::Knn { k: 4 }) {
        Ok(QueryResult::Knn { neighbors, .. }) => {
            let (want, _) = tbs_apps::knn_reference::<3, 4>(&pts);
            check!(neighbors.len() == want.len(), "kNN result length mismatch");
            for (got, want) in neighbors.iter().zip(&want) {
                check!(got[..] == want[..], "kNN neighbor mismatch");
            }
        }
        Ok(other) => check!(false, "kNN returned {other:?}"),
        Err(e) => check!(false, "kNN failed: {e}"),
    }

    // Cache behavior: the repeat submissions above should have hit the
    // shard cache, and re-registration must invalidate it.
    let s1 = h.stats().expect("stats");
    check!(s1.cache_hits > 0, "expected shard-cache hits on repeats");
    check!(s1.coalesced_queries >= 3, "mixed batch should coalesce");
    h.register_dataset("pts", pts.clone()).expect("re-register");
    h.submit("pts", Query::PairCounts { radii: vec![5.0] })
        .expect("post-invalidation query");
    let s2 = h.stats().expect("stats");
    check!(
        s2.cache_misses > s1.cache_misses,
        "re-registration must evict cached shards"
    );

    let report = Json::obj()
        .with("ok", true)
        .with("n", n as u64)
        .with("queries", s2.queries)
        .with("batches", s2.batches)
        .with("coalesced_queries", s2.coalesced_queries)
        .with("tasks", s2.tasks)
        .with("cache_hits", s2.cache_hits)
        .with("cache_misses", s2.cache_misses)
        .with("cache_hit_rate", s2.cache_hit_rate())
        .with("sim_seconds", s2.sim_seconds);
    println!("{}", report.render().expect("render"));
    0
}

// ---------------------------------------------------------------------
// stdin line protocol
// ---------------------------------------------------------------------

fn run_protocol(h: ServerHandle) -> i32 {
    use std::io::Write;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(&h, &line) {
            Some(reply) => {
                let text = reply.render_compact().expect("render");
                // A hung-up client (EPIPE) is a normal way to end the
                // session, not a crash.
                if writeln!(out, "{text}").and_then(|_| out.flush()).is_err() {
                    break;
                }
            }
            None => return 0, // graceful shutdown
        }
    }
    0
}

/// `None` means "shutdown requested".
fn handle_line(h: &ServerHandle, line: &str) -> Option<Json> {
    let req = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return Some(error(format!("parse: {e}"))),
    };
    let cmd = match req.get("cmd").and_then(Json::as_str) {
        Some(c) => c.to_string(),
        None => return Some(error("missing \"cmd\"")),
    };
    match cmd.as_str() {
        "gen" => {
            let name = match req.get("name").and_then(Json::as_str) {
                Some(n) => n.to_string(),
                None => return Some(error("gen: missing \"name\"")),
            };
            let n = req.get("n").and_then(Json::as_u64).unwrap_or(4096) as usize;
            let extent = req.get("extent").and_then(Json::as_f64).unwrap_or(100.0) as f32;
            let seed = req.get("seed").and_then(Json::as_u64).unwrap_or(1);
            let pts = tbs_datagen::uniform_points::<3>(n, extent, seed);
            match h.register_dataset(&name, pts) {
                Ok(generation) => Some(
                    Json::obj()
                        .with("ok", true)
                        .with("dataset", name)
                        .with("n", n as u64)
                        .with("generation", generation),
                ),
                Err(e) => Some(error(e.to_string())),
            }
        }
        "query" => {
            let dataset = match req.get("dataset").and_then(Json::as_str) {
                Some(d) => d.to_string(),
                None => return Some(error("query: missing \"dataset\"")),
            };
            let query = match req.get("query").map(parse_query) {
                Some(Ok(q)) => q,
                Some(Err(e)) => return Some(error(e)),
                None => return Some(error("query: missing \"query\"")),
            };
            match h.submit(&dataset, query) {
                Ok(r) => Some(
                    Json::obj()
                        .with("ok", true)
                        .with("result", render_result(&r)),
                ),
                Err(e) => Some(error(e.to_string())),
            }
        }
        "batch" => {
            let dataset = match req.get("dataset").and_then(Json::as_str) {
                Some(d) => d.to_string(),
                None => return Some(error("batch: missing \"dataset\"")),
            };
            let raw = match req.get("queries").and_then(Json::as_arr) {
                Some(a) => a,
                None => return Some(error("batch: missing \"queries\"")),
            };
            let mut queries = Vec::with_capacity(raw.len());
            for q in raw {
                match parse_query(q) {
                    Ok(q) => queries.push(q),
                    Err(e) => return Some(error(e)),
                }
            }
            match h.submit_batch(&dataset, queries) {
                Ok(rs) => Some(
                    Json::obj()
                        .with("ok", true)
                        .with("results", rs.iter().map(render_result).collect::<Vec<_>>()),
                ),
                Err(e) => Some(error(e.to_string())),
            }
        }
        "stats" => match h.stats() {
            Ok(s) => Some(
                Json::obj()
                    .with("ok", true)
                    .with("datasets", s.datasets)
                    .with("queries", s.queries)
                    .with("batches", s.batches)
                    .with("coalesced_queries", s.coalesced_queries)
                    .with("tasks", s.tasks)
                    .with("cache_hits", s.cache_hits)
                    .with("cache_misses", s.cache_misses)
                    .with("cache_hit_rate", s.cache_hit_rate())
                    .with("sim_seconds", s.sim_seconds),
            ),
            Err(e) => Some(error(e.to_string())),
        },
        "shutdown" => None,
        other => Some(error(format!("unknown cmd {other:?}"))),
    }
}

fn parse_query(j: &Json) -> Result<Query, String> {
    match j.get("type").and_then(Json::as_str) {
        Some("pair_counts") => {
            let radii = j
                .get("radii")
                .and_then(Json::as_arr)
                .ok_or("pair_counts: missing \"radii\"")?
                .iter()
                .map(|r| r.as_f64().map(|v| v as f32).ok_or("radii must be numbers"))
                .collect::<Result<Vec<f32>, _>>()?;
            Ok(Query::PairCounts { radii })
        }
        Some("sdh") => Ok(Query::Sdh {
            buckets: j
                .get("buckets")
                .and_then(Json::as_u64)
                .ok_or("sdh: missing \"buckets\"")? as u32,
            width: j
                .get("width")
                .and_then(Json::as_f64)
                .ok_or("sdh: missing \"width\"")? as f32,
        }),
        Some("count_within") => Ok(Query::CountWithin {
            radius: j
                .get("radius")
                .and_then(Json::as_f64)
                .ok_or("count_within: missing \"radius\"")? as f32,
            gridded: j.get("gridded").and_then(Json::as_bool).unwrap_or(false),
        }),
        Some("knn") => Ok(Query::Knn {
            k: j.get("k")
                .and_then(Json::as_u64)
                .ok_or("knn: missing \"k\"")? as u32,
        }),
        Some(other) => Err(format!("unknown query type {other:?}")),
        None => Err("query object needs a \"type\"".to_string()),
    }
}

fn render_result(r: &QueryResult) -> Json {
    match r {
        QueryResult::Counts(c) => Json::obj().with(
            "counts",
            c.iter().map(|&v| Json::from(v)).collect::<Vec<_>>(),
        ),
        QueryResult::Histogram(h) => Json::obj().with(
            "histogram",
            h.counts()
                .iter()
                .map(|&v| Json::from(v))
                .collect::<Vec<_>>(),
        ),
        QueryResult::Knn {
            neighbors,
            distances,
        } => Json::obj()
            .with(
                "neighbors",
                neighbors
                    .iter()
                    .map(|row| Json::from(row.iter().map(|&v| Json::from(v)).collect::<Vec<_>>()))
                    .collect::<Vec<_>>(),
            )
            .with(
                "distances",
                distances
                    .iter()
                    .map(|row| {
                        Json::from(
                            row.iter()
                                .map(|&v| Json::from(v as f64))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect::<Vec<_>>(),
            ),
    }
}

fn error(msg: impl Into<String>) -> Json {
    Json::obj().with("ok", false).with("error", msg.into())
}
