//! Per-worker dataset caches: shard uploads and gridded catalogs.
//!
//! Every worker owns one simulated device, and device transfers are the
//! service's repeat-query tax: re-uploading a dataset's shards (or
//! re-binning its grid) on every query would swamp the pairwise stage at
//! CI sizes. Each cache is keyed by the dataset's *generation* — a
//! counter the dispatcher bumps on re-registration — so the invalidation
//! rule is simply "a new generation evicts every entry of the old one".
//! Evicted entries release host bookkeeping immediately; the simulated
//! device never frees allocations (like a real allocator without a
//! `free`), which is fine for a cache whose entries are meant to live as
//! long as the dataset does.

use crate::gridded::GriddedCatalog;
use crate::multi_gpu::chunk_ranges;
use gpu_sim::Device;
use std::collections::HashMap;
use tbs_core::point::{DeviceSoa, SoaPoints};

/// Identity of one dataset revision as the workers see it.
pub(crate) type DatasetKey = (String, u64);

/// A worker's device-resident dataset state.
#[derive(Default)]
pub(crate) struct WorkerCache {
    /// Shard uploads keyed by (dataset, generation, shard count).
    shards: HashMap<(String, u64, usize), Vec<DeviceSoa<3>>>,
    /// Gridded catalogs keyed by (dataset, generation, radius bits).
    grids: HashMap<(String, u64, u32), GriddedCatalog<3>>,
    /// Cache probes that found their entry.
    pub hits: u64,
    /// Cache probes that had to build their entry.
    pub misses: u64,
}

impl WorkerCache {
    /// The shard uploads of `key` split `shards` ways, uploading on
    /// first use. A different generation of the same dataset evicts
    /// every stale entry first.
    pub fn shard_uploads(
        &mut self,
        dev: &mut Device,
        key: &DatasetKey,
        pts: &SoaPoints<3>,
        shards: usize,
    ) -> &[DeviceSoa<3>] {
        self.evict_stale(key);
        let full = (key.0.clone(), key.1, shards);
        if self.shards.contains_key(&full) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let uploads = chunk_ranges(pts.len(), shards)
                .into_iter()
                .map(|r| pts.slice(r).upload(dev))
                .collect();
            self.shards.insert(full.clone(), uploads);
        }
        &self.shards[&full]
    }

    /// The gridded catalog of `key` sized for `radius`, binning and
    /// uploading on first use.
    pub fn grid(
        &mut self,
        dev: &mut Device,
        key: &DatasetKey,
        pts: &SoaPoints<3>,
        radius: f32,
    ) -> &GriddedCatalog<3> {
        self.evict_stale(key);
        let full = (key.0.clone(), key.1, radius.to_bits());
        if self.grids.contains_key(&full) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let cat = GriddedCatalog::build_self(
                dev,
                pts,
                radius,
                &tbs_core::grid::GridOptions::default(),
            );
            self.grids.insert(full.clone(), cat);
        }
        &self.grids[&full]
    }

    /// A gridded catalog of `key` whose `r_max` covers `radius`: an
    /// exact-radius entry if cached, else the *tightest* cached grid
    /// with `r_max ≥ radius` (any covering grid yields bit-identical
    /// counts — pruning is invisible in the outputs), else a fresh
    /// build at `radius`. This is what lets a whole burst of gridded
    /// queries with different radii share one catalog.
    pub fn grid_covering(
        &mut self,
        dev: &mut Device,
        key: &DatasetKey,
        pts: &SoaPoints<3>,
        radius: f32,
    ) -> &GriddedCatalog<3> {
        self.evict_stale(key);
        let exact = (key.0.clone(), key.1, radius.to_bits());
        if self.grids.contains_key(&exact) {
            self.hits += 1;
            return &self.grids[&exact];
        }
        let covering = self
            .grids
            .iter()
            .filter(|((name, gen, _), cat)| {
                name == &key.0 && *gen == key.1 && cat.grid.geom.r_max >= radius
            })
            .min_by(|(_, a), (_, b)| a.grid.geom.r_max.total_cmp(&b.grid.geom.r_max))
            .map(|(k, _)| k.clone());
        if let Some(k) = covering {
            self.hits += 1;
            return &self.grids[&k];
        }
        self.grid(dev, key, pts, radius)
    }

    /// Drop every entry of `key.0` whose generation differs from
    /// `key.1` (the re-registration invalidation rule).
    fn evict_stale(&mut self, key: &DatasetKey) {
        self.shards
            .retain(|(name, gen, _), _| name != &key.0 || *gen == key.1);
        self.grids
            .retain(|(name, gen, _), _| name != &key.0 || *gen == key.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    #[test]
    fn shard_cache_hits_on_repeat_and_evicts_on_new_generation() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let mut cache = WorkerCache::default();
        let pts = tbs_datagen::uniform_points::<3>(64, 100.0, 3);
        let key = ("d".to_string(), 0);
        assert_eq!(cache.shard_uploads(&mut dev, &key, &pts, 2).len(), 2);
        assert_eq!((cache.hits, cache.misses), (0, 1));
        cache.shard_uploads(&mut dev, &key, &pts, 2);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // A different shard split is its own entry.
        cache.shard_uploads(&mut dev, &key, &pts, 3);
        assert_eq!((cache.hits, cache.misses), (1, 2));
        // A new generation evicts both old entries.
        let key1 = ("d".to_string(), 1);
        cache.shard_uploads(&mut dev, &key1, &pts, 2);
        assert_eq!((cache.hits, cache.misses), (1, 3));
        assert_eq!(cache.shards.len(), 1);
        // The old generation is gone: re-requesting it rebuilds.
        cache.shard_uploads(&mut dev, &key, &pts, 2);
        assert_eq!((cache.hits, cache.misses), (1, 4));
    }

    #[test]
    fn covering_grid_is_shared_across_smaller_radii() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let mut cache = WorkerCache::default();
        let pts = tbs_datagen::uniform_points::<3>(128, 100.0, 5);
        let key = ("d".to_string(), 0);
        cache.grid(&mut dev, &key, &pts, 20.0);
        // A smaller radius rides the cached 20.0 grid instead of
        // rebuilding.
        let cat = cache.grid_covering(&mut dev, &key, &pts, 7.0);
        assert_eq!(cat.grid.geom.r_max, 20.0);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // A larger radius cannot be covered: fresh build.
        cache.grid_covering(&mut dev, &key, &pts, 30.0);
        assert_eq!((cache.hits, cache.misses), (1, 2));
        // The tightest covering grid wins (20.0, not 30.0).
        let cat = cache.grid_covering(&mut dev, &key, &pts, 15.0);
        assert_eq!(cat.grid.geom.r_max, 20.0);
        assert_eq!((cache.hits, cache.misses), (2, 2));
    }

    #[test]
    fn grid_cache_hits_on_repeat_radius() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let mut cache = WorkerCache::default();
        let pts = tbs_datagen::uniform_points::<3>(128, 100.0, 5);
        let key = ("d".to_string(), 0);
        cache.grid(&mut dev, &key, &pts, 10.0);
        cache.grid(&mut dev, &key, &pts, 10.0);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        cache.grid(&mut dev, &key, &pts, 20.0);
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }
}
