//! The query batcher: coalesce admitted queries that share a dataset
//! into one multi-sink pairwise sweep.
//!
//! A [`SinkPlan`] flattens a group of batchable queries into the sink
//! lists a [`tbs_core::output::MultiQueryAction`] consumes — count sinks
//! first, histogram sinks after, exactly the order the fused
//! `FusedConsumer::Multi` pass feeds them — plus per-query routes to
//! demultiplex the merged sink outputs back into [`QueryResult`]s.
//! Coalescing is *output-level only*: every sink sees the identical
//! distance stream the standalone query would see, which is why a
//! batched answer is bit-identical to a sequential one (enforced by
//! `apps/tests/it_serve.rs` and the route matrix in
//! `core/tests/fused_identity.rs`).
//!
//! Histogram sinks additionally *dedup*: SDH queries with an identical
//! [`HistogramSpec`] share one sink, and every duplicate's route points
//! at it. A count sink costs one compare per pair, so stacking more of
//! them onto a shared sweep is nearly free; a histogram sink replays the
//! whole bucket-scatter (and its bank accounting) per pair, so k
//! distinct-spec SDH sinks cost ~k scatters no matter how they are
//! batched. The fan-in the service actually sees — many clients asking
//! the *same* popular geometry (the paper's millions-of-users scenario)
//! — collapses to one scatter, answered once and replied k times;
//! bit-identity is untouched because the shared sink computes exactly
//! the histogram each duplicate would have computed alone.

use super::query::{Query, QueryResult};
use tbs_core::histogram::{Histogram, HistogramSpec};

/// Where one query's results live inside a [`SinkPlan`]'s merged sink
/// outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryRoute {
    /// Count sinks `[start, start + len)`.
    Counts {
        /// First count-sink index.
        start: usize,
        /// Number of consecutive count sinks.
        len: usize,
    },
    /// Histogram sink `idx`.
    Hist {
        /// Histogram-sink index.
        idx: usize,
    },
}

/// The flattened sink layout of one coalesced batch.
#[derive(Debug, Clone, Default)]
pub(crate) struct SinkPlan {
    /// Radii of the count sinks, in sink order.
    pub counts: Vec<f32>,
    /// Geometries of the histogram sinks, in sink order.
    pub hists: Vec<HistogramSpec>,
    /// One route per query, in admission order.
    pub routes: Vec<QueryRoute>,
}

impl SinkPlan {
    /// Flatten `queries` (all batchable, already validated) into sink
    /// lists + routes.
    pub fn plan(queries: &[Query]) -> SinkPlan {
        let mut plan = SinkPlan::default();
        for q in queries {
            match q {
                Query::PairCounts { radii } => {
                    plan.routes.push(QueryRoute::Counts {
                        start: plan.counts.len(),
                        len: radii.len(),
                    });
                    plan.counts.extend_from_slice(radii);
                }
                Query::CountWithin { radius, .. } => {
                    plan.routes.push(QueryRoute::Counts {
                        start: plan.counts.len(),
                        len: 1,
                    });
                    plan.counts.push(*radius);
                }
                Query::Sdh { buckets, width } => {
                    // Dedup identical geometries (see the module doc):
                    // duplicates route to the first spec's sink. The
                    // linear scan is over admitted-batch hist specs —
                    // a handful at most.
                    let spec = Query::sdh_spec(*buckets, *width);
                    let idx = plan
                        .hists
                        .iter()
                        .position(|h| *h == spec)
                        .unwrap_or_else(|| {
                            plan.hists.push(spec);
                            plan.hists.len() - 1
                        });
                    plan.routes.push(QueryRoute::Hist { idx });
                }
                Query::Knn { .. } => unreachable!("kNN is never batched"),
            }
        }
        plan
    }

    /// Total sinks of the coalesced sweep.
    pub fn sinks(&self) -> usize {
        self.counts.len() + self.hists.len()
    }

    /// Demultiplex merged sink outputs into per-query results (same
    /// order as the `queries` passed to [`SinkPlan::plan`]). A deduped
    /// hist sink answers every query routed to it, so replies clone.
    pub fn demux(&self, counts: &[u64], hists: Vec<Histogram>) -> Vec<QueryResult> {
        self.routes
            .iter()
            .map(|route| match *route {
                QueryRoute::Counts { start, len } => {
                    QueryResult::Counts(counts[start..start + len].to_vec())
                }
                QueryRoute::Hist { idx } => QueryResult::Histogram(hists[idx].clone()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_flattens_in_admission_order_counts_before_hists() {
        let queries = vec![
            Query::Sdh {
                buckets: 16,
                width: 2.0,
            },
            Query::PairCounts {
                radii: vec![1.0, 2.0],
            },
            Query::CountWithin {
                radius: 5.0,
                gridded: false,
            },
            Query::Sdh {
                buckets: 8,
                width: 1.0,
            },
        ];
        let plan = SinkPlan::plan(&queries);
        assert_eq!(plan.counts, vec![1.0, 2.0, 5.0]);
        assert_eq!(plan.hists.len(), 2);
        assert_eq!(plan.sinks(), 5);
        assert_eq!(
            plan.routes,
            vec![
                QueryRoute::Hist { idx: 0 },
                QueryRoute::Counts { start: 0, len: 2 },
                QueryRoute::Counts { start: 2, len: 1 },
                QueryRoute::Hist { idx: 1 },
            ]
        );
        let results = plan.demux(
            &[10, 20, 30],
            vec![
                Histogram::from_counts(vec![1; 16]),
                Histogram::from_counts(vec![2; 8]),
            ],
        );
        assert_eq!(results[1], QueryResult::Counts(vec![10, 20]));
        assert_eq!(results[2], QueryResult::Counts(vec![30]));
        match (&results[0], &results[3]) {
            (QueryResult::Histogram(a), QueryResult::Histogram(b)) => {
                assert_eq!(a.counts().len(), 16);
                assert_eq!(b.counts().len(), 8);
            }
            other => panic!("wrong demux: {other:?}"),
        }
    }

    #[test]
    fn identical_sdh_specs_share_one_sink() {
        let popular = Query::Sdh {
            buckets: 64,
            width: 2.5,
        };
        let queries = vec![
            popular.clone(),
            Query::Sdh {
                buckets: 64,
                width: 1.25, // same bucket count, different geometry
            },
            popular.clone(),
            Query::CountWithin {
                radius: 5.0,
                gridded: false,
            },
            popular.clone(),
        ];
        let plan = SinkPlan::plan(&queries);
        // Three duplicates collapse onto sink 0; the distinct-width
        // query keeps its own sink.
        assert_eq!(plan.hists.len(), 2);
        assert_eq!(plan.sinks(), 3);
        assert_eq!(
            plan.routes,
            vec![
                QueryRoute::Hist { idx: 0 },
                QueryRoute::Hist { idx: 1 },
                QueryRoute::Hist { idx: 0 },
                QueryRoute::Counts { start: 0, len: 1 },
                QueryRoute::Hist { idx: 0 },
            ]
        );
        let results = plan.demux(
            &[7],
            vec![
                Histogram::from_counts(vec![3; 64]),
                Histogram::from_counts(vec![4; 64]),
            ],
        );
        // Every duplicate gets the shared sink's histogram.
        assert_eq!(results[0], results[2]);
        assert_eq!(results[2], results[4]);
        assert_ne!(results[0], results[1]);
        assert_eq!(results[3], QueryResult::Counts(vec![7]));
    }
}
