//! Query and result types of the 2-BS service.
//!
//! A [`Query`] names one 2-body statistic over a registered dataset; the
//! service answers with a [`QueryResult`]. The first three query kinds
//! are *batchable*: they reduce to count/histogram sinks over one
//! Euclidean pairwise sweep, so the batcher coalesces any number of them
//! that share a dataset into a single [`tbs_core::output::MultiQueryAction`]
//! launch per shard task. kNN is order-sensitive (f32 insertion order
//! breaks under re-sharding), so it always runs monolithic.

use tbs_core::histogram::{Histogram, HistogramSpec};

/// One 2-body-statistics query against a named dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Pair counts within each of many radii (the 2-PCF pre-binned
    /// counts; one count sink per radius). Batchable.
    PairCounts {
        /// Strict upper distance bounds, one output count per entry.
        radii: Vec<f32>,
    },
    /// Spatial distance histogram: `buckets` buckets of width `width`
    /// (distances ≥ `buckets · width` clamp into the last bucket, the
    /// device SDH convention). Batchable.
    Sdh {
        /// Number of buckets.
        buckets: u32,
        /// Bucket width.
        width: f32,
    },
    /// Count of pairs with distance strictly below `radius`. Batchable
    /// on the dense route; with `gridded = true` it coalesces with the
    /// other gridded count-withins of its burst into one packed sweep
    /// over the per-dataset cached [`crate::GriddedCatalog`]
    /// (sub-quadratic, identical count).
    CountWithin {
        /// Strict upper distance bound.
        radius: f32,
        /// Route through the cached uniform grid instead of the dense
        /// sweep.
        gridded: bool,
    },
    /// All-point k-nearest neighbors, `1 ≤ k ≤ 8`. Never batched.
    Knn {
        /// Neighbors per point.
        k: u32,
    },
}

impl Query {
    /// Whether the batcher may coalesce this query into a shared
    /// multi-sink sweep.
    pub fn batchable(&self) -> bool {
        match self {
            Query::PairCounts { .. } | Query::Sdh { .. } => true,
            Query::CountWithin { gridded, .. } => !gridded,
            Query::Knn { .. } => false,
        }
    }

    /// Validate parameters against a dataset of `n` points.
    pub(crate) fn validate(&self, n: usize) -> Result<(), ServeError> {
        let finite_pos = |r: f32| r.is_finite() && r > 0.0;
        match self {
            Query::PairCounts { radii } => {
                if radii.is_empty() {
                    return Err(ServeError::BadQuery("PairCounts needs at least one radius"));
                }
                if !radii.iter().all(|&r| finite_pos(r)) {
                    return Err(ServeError::BadQuery("radii must be finite and positive"));
                }
            }
            Query::Sdh { buckets, width } => {
                if *buckets == 0 {
                    return Err(ServeError::BadQuery("SDH needs at least one bucket"));
                }
                if !finite_pos(*width) || !finite_pos(*width * *buckets as f32) {
                    return Err(ServeError::BadQuery(
                        "SDH width must be finite and positive",
                    ));
                }
            }
            Query::CountWithin { radius, .. } => {
                if !finite_pos(*radius) {
                    return Err(ServeError::BadQuery("radius must be finite and positive"));
                }
            }
            Query::Knn { k } => {
                if !(1..=8).contains(k) {
                    return Err(ServeError::BadQuery("k must be in 1..=8"));
                }
                if (*k as usize) >= n {
                    return Err(ServeError::BadQuery("k must be below the dataset size"));
                }
            }
        }
        Ok(())
    }

    /// The histogram geometry of an SDH query.
    pub(crate) fn sdh_spec(buckets: u32, width: f32) -> HistogramSpec {
        HistogramSpec::new(buckets, width * buckets as f32)
    }
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Pair counts, one per requested radius (`PairCounts`,
    /// `CountWithin` → length 1).
    Counts(Vec<u64>),
    /// The finalized histogram (`Sdh`).
    Histogram(Histogram),
    /// Per-point neighbor lists, ascending by distance (`Knn`).
    Knn {
        /// `neighbors[i]` = indices of point `i`'s k nearest neighbors.
        neighbors: Vec<Vec<u32>>,
        /// Matching distances.
        distances: Vec<Vec<f32>>,
    },
}

/// Why the service rejected or failed a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The named dataset was never registered (or the server is
    /// shutting down).
    UnknownDataset(String),
    /// Query parameters failed admission validation.
    BadQuery(&'static str),
    /// A simulated kernel fault surfaced while executing the query.
    Sim(String),
    /// The server loop is gone (shut down while the request was queued).
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            ServeError::BadQuery(why) => write!(f, "bad query: {why}"),
            ServeError::Sim(e) => write!(f, "simulated fault: {e}"),
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}
