//! `tbs-serve` — a long-running 2-body-statistics query service layered
//! on the simulated-GPU engine (ROADMAP item 3, the "millions of users"
//! step).
//!
//! ## Shape
//!
//! ```text
//! clients ── mpsc ──► dispatcher ── mpsc ──► workers (one device each)
//!    ▲                   │  batcher + shard planner      │
//!    └──── replies ◄─────┴────────── merged results ◄────┘
//! ```
//!
//! * **Ingest/dispatch** ([`Server::run`]): clients hold a cloneable
//!   [`ServerHandle`] and talk to a single dispatcher thread over std
//!   `mpsc`; each request carries its own reply channel. The dispatcher
//!   drains bursts opportunistically, so concurrent clients' queries
//!   coalesce even when they never heard of each other.
//! * **Batcher** (`batch::SinkPlan`): queries that share a dataset and
//!   the Euclidean distance kernel flatten into the sink lists of one
//!   [`tbs_core::output::MultiQueryAction`] — one pairwise sweep feeds
//!   every consumer, and answers stay bit-identical to sequential runs.
//! * **Shard planner**: each coalesced sweep is decomposed with the
//!   multi-GPU machinery ([`crate::multi_gpu`]) — contiguous chunks,
//!   self/cross tasks, LPT onto the worker pool — and the host merges
//!   per-task integer outputs (sums/histogram merges commute, so the
//!   decomposition is invisible in the results).
//! * **Caches** (`cache::WorkerCache`): per-worker shard uploads and
//!   gridded catalogs keyed by dataset generation; re-registering a
//!   dataset bumps the generation and evicts stale entries.
//!
//! kNN runs monolithic on one worker (its f32 insertion order is not
//! re-shardable). Gridded count-withins coalesce per dataset group into
//! one packed multi-radius sweep over a shared covering
//! [`crate::GriddedCatalog`] from the worker cache. Everything else
//! batches dense.

mod batch;
mod cache;
mod query;

pub use query::{Query, QueryResult, ServeError};

/// Sinks the batcher's coalesced sweep would feed for `queries` (all
/// of which must be [`Query::batchable`]) — after histogram-sink dedup,
/// so benchmarks and capacity planning see the sweep the service
/// actually runs rather than the naive one-sink-per-query count.
pub fn planned_sinks(queries: &[Query]) -> usize {
    SinkPlan::plan(queries).sinks()
}

use crate::driver::PairwisePlan;
use crate::knn::knn_gpu;
use crate::multi_gpu::{build_tasks, chunk_ranges, lpt_schedule, SdhTask};
use batch::SinkPlan;
use cache::{DatasetKey, WorkerCache};
use gpu_sim::{Device, DeviceConfig};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use tbs_core::distance::Euclidean;
use tbs_core::histogram::{Histogram, HistogramSpec};
use tbs_core::kernels::{
    pair_launch, CrossShmKernel, HistogramReduceKernel, PairScope, RegisterShmKernel,
};
use tbs_core::output::{MultiCountSink, MultiHistSink, MultiQueryAction};
use tbs_core::point::SoaPoints;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; each owns one simulated device.
    pub workers: usize,
    /// Shards per dataset for the shard planner (defaults to
    /// `workers`). More shards → more, smaller tasks for LPT to balance.
    pub shards: usize,
    /// Pairwise plan for dense sweeps (block size, intra mode; self
    /// joins run Register-SHM, cross joins the bipartite SHM kernel).
    pub plan: PairwisePlan,
    /// Simulated device configuration for every worker.
    pub device: DeviceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            shards: 2,
            plan: PairwisePlan::register_shm(256),
            device: DeviceConfig::titan_x(),
        }
    }
}

impl ServeConfig {
    /// `workers` workers, `workers` shards.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.shards = self.workers;
        self
    }
}

/// Service counters, returned by [`ServerHandle::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Datasets currently registered.
    pub datasets: u64,
    /// Queries answered (including failed ones).
    pub queries: u64,
    /// Coalesced sweeps executed.
    pub batches: u64,
    /// Queries that shared a sweep with at least one other query.
    pub coalesced_queries: u64,
    /// Shard tasks launched across all workers.
    pub tasks: u64,
    /// Worker cache probes that found their entry.
    pub cache_hits: u64,
    /// Worker cache probes that had to (re)build their entry.
    pub cache_misses: u64,
    /// Total simulated kernel seconds across all workers.
    pub sim_seconds: f64,
}

impl ServerStats {
    /// Hit fraction of the worker caches (0 when never probed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

type Reply<T> = Sender<Result<T, ServeError>>;

enum Request {
    Register {
        name: String,
        pts: Arc<SoaPoints<3>>,
        reply: Reply<u64>,
    },
    Submit {
        dataset: String,
        query: Query,
        reply: Reply<QueryResult>,
    },
    SubmitBatch {
        dataset: String,
        queries: Vec<Query>,
        reply: Reply<Vec<QueryResult>>,
    },
    Stats {
        reply: Sender<ServerStats>,
    },
    Shutdown,
}

/// A cloneable client handle; every method is a blocking round-trip to
/// the dispatcher (queries block until their results are merged).
#[derive(Clone)]
pub struct ServerHandle {
    tx: Sender<Request>,
}

impl ServerHandle {
    /// Register (or replace) dataset `name`; returns its generation.
    /// Re-registration bumps the generation, which evicts every cached
    /// shard upload and gridded catalog of the old revision.
    pub fn register_dataset(&self, name: &str, pts: SoaPoints<3>) -> Result<u64, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(Request::Register {
                name: name.to_string(),
                pts: Arc::new(pts),
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Submit one query and block for its result.
    pub fn submit(&self, dataset: &str, query: Query) -> Result<QueryResult, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(Request::Submit {
                dataset: dataset.to_string(),
                query,
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Submit an atomic admission group: either every query is admitted
    /// (and the batchable ones share one sweep), or the whole group is
    /// rejected. Blocks until all results are in.
    pub fn submit_batch(
        &self,
        dataset: &str,
        queries: Vec<Query>,
    ) -> Result<Vec<QueryResult>, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(Request::SubmitBatch {
                dataset: dataset.to_string(),
                queries,
                reply,
            })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> Result<ServerStats, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(Request::Stats { reply })
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Request graceful shutdown: queued work completes, then the
    /// dispatcher and workers exit. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Request::Shutdown);
    }
}

// ---------------------------------------------------------------------
// Worker protocol
// ---------------------------------------------------------------------

/// Result of one worker's share of a coalesced sweep.
struct TasksOut {
    /// Per count sink, summed over this worker's tasks.
    counts: Vec<u64>,
    /// Per histogram sink, merged over this worker's tasks.
    hists: Vec<Histogram>,
    sim_seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
}

struct SoloOut {
    result: QueryResult,
    sim_seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Result of one worker's coalesced gridded sweep.
struct GriddedOut {
    /// One count per requested radius, in request order.
    counts: Vec<u64>,
    sim_seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
}

enum WorkOrder {
    /// Run `tasks` of the sharded sweep feeding `counts`/`hists` sinks.
    Tasks {
        key: DatasetKey,
        pts: Arc<SoaPoints<3>>,
        shards: usize,
        tasks: Vec<SdhTask>,
        counts: Vec<f32>,
        hists: Vec<HistogramSpec>,
        plan: PairwisePlan,
        reply: Sender<Result<TasksOut, String>>,
    },
    /// Every gridded count-within of one dataset group, coalesced into
    /// a single packed sweep over the cached catalog (one count sink
    /// per radius).
    Gridded {
        key: DatasetKey,
        pts: Arc<SoaPoints<3>>,
        radii: Vec<f32>,
        plan: PairwisePlan,
        reply: Sender<Result<GriddedOut, String>>,
    },
    /// A non-batchable query, run monolithic on this worker.
    Solo {
        key: DatasetKey,
        pts: Arc<SoaPoints<3>>,
        query: Query,
        plan: PairwisePlan,
        reply: Sender<Result<SoloOut, String>>,
    },
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// The query service. See the module docs for the architecture.
pub struct Server;

impl Server {
    /// Run a server with `cfg`, hand a [`ServerHandle`] to `client`,
    /// and shut everything down (gracefully) when `client` returns.
    /// Workers and dispatcher run as scoped threads; the client runs on
    /// the calling thread and may clone the handle into threads of its
    /// own.
    pub fn run<R>(cfg: ServeConfig, client: impl FnOnce(ServerHandle) -> R) -> R {
        let workers = cfg.workers.max(1);
        let (tx, rx) = channel::<Request>();
        std::thread::scope(|s| {
            let mut worker_txs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (wtx, wrx) = channel::<WorkOrder>();
                worker_txs.push(wtx);
                let device = cfg.device.clone();
                s.spawn(move || worker_loop(device, wrx));
            }
            let dcfg = cfg.clone();
            s.spawn(move || Dispatcher::new(dcfg, worker_txs).run(rx));
            let handle = ServerHandle { tx };
            let out = client(handle.clone());
            handle.shutdown();
            out
        })
    }
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

/// Where one admitted query's answer goes.
enum Slot {
    Single(Reply<QueryResult>),
    /// Slot `i` of a [`GroupReply`].
    Grouped(Rc<RefCell<GroupReply>>, usize),
}

impl Slot {
    fn fill(self, result: Result<QueryResult, ServeError>) {
        match self {
            Slot::Single(reply) => {
                let _ = reply.send(result);
            }
            Slot::Grouped(group, i) => {
                let mut g = group.borrow_mut();
                g.slots[i] = Some(result);
                g.flush();
            }
        }
    }
}

/// Aggregates a `SubmitBatch`'s per-query results; replies once full.
struct GroupReply {
    slots: Vec<Option<Result<QueryResult, ServeError>>>,
    reply: Option<Reply<Vec<QueryResult>>>,
}

impl GroupReply {
    fn flush(&mut self) {
        if self.slots.iter().all(Option::is_some) {
            if let Some(reply) = self.reply.take() {
                let mut out = Vec::with_capacity(self.slots.len());
                for s in self.slots.drain(..) {
                    match s.expect("checked full") {
                        Ok(r) => out.push(r),
                        Err(e) => {
                            let _ = reply.send(Err(e));
                            return;
                        }
                    }
                }
                let _ = reply.send(Ok(out));
            }
        }
    }
}

struct Dataset {
    gen: u64,
    pts: Arc<SoaPoints<3>>,
}

struct Dispatcher {
    cfg: ServeConfig,
    worker_txs: Vec<Sender<WorkOrder>>,
    datasets: HashMap<String, Dataset>,
    stats: ServerStats,
    next_gen: u64,
    rr: usize,
}

/// One admitted query bound for the batcher/planner.
struct Admitted {
    dataset: String,
    query: Query,
    slot: Slot,
}

impl Dispatcher {
    fn new(cfg: ServeConfig, worker_txs: Vec<Sender<WorkOrder>>) -> Self {
        Dispatcher {
            cfg,
            worker_txs,
            datasets: HashMap::new(),
            stats: ServerStats::default(),
            next_gen: 0,
            rr: 0,
        }
    }

    fn run(mut self, rx: Receiver<Request>) {
        while let Ok(first) = rx.recv() {
            // Drain the burst: everything already queued coalesces with
            // `first` (bounded so a flood cannot starve the replies).
            let mut burst = vec![first];
            while burst.len() < 1024 {
                match rx.try_recv() {
                    Ok(req) => burst.push(req),
                    Err(_) => break,
                }
            }
            let mut queue = std::collections::VecDeque::from(burst);
            while let Some(req) = queue.pop_front() {
                match req {
                    Request::Register { name, pts, reply } => {
                        let gen = self.next_gen;
                        self.next_gen += 1;
                        if self.datasets.insert(name, Dataset { gen, pts }).is_none() {
                            self.stats.datasets += 1;
                        }
                        let _ = reply.send(Ok(gen));
                    }
                    Request::Stats { reply } => {
                        let _ = reply.send(self.stats.clone());
                    }
                    Request::Shutdown => return,
                    submit => {
                        // Gather the consecutive run of submissions so
                        // same-dataset queries share sweeps; stop at the
                        // next register/stats/shutdown to keep ordering
                        // semantics simple.
                        let mut submits = vec![submit];
                        while matches!(
                            queue.front(),
                            Some(Request::Submit { .. } | Request::SubmitBatch { .. })
                        ) {
                            submits.push(queue.pop_front().expect("just matched"));
                        }
                        self.process_submits(submits);
                    }
                }
            }
        }
    }

    /// Admission-check a run of submissions, then execute them grouped
    /// by dataset: batchable queries coalesce into one sharded sweep
    /// per dataset, the rest run solo on round-robin workers.
    fn process_submits(&mut self, submits: Vec<Request>) {
        let mut admitted: Vec<Admitted> = Vec::new();
        for req in submits {
            match req {
                Request::Submit {
                    dataset,
                    query,
                    reply,
                } => match self.admit(&dataset, &query) {
                    Ok(()) => admitted.push(Admitted {
                        dataset,
                        query,
                        slot: Slot::Single(reply),
                    }),
                    Err(e) => {
                        self.stats.queries += 1;
                        let _ = reply.send(Err(e));
                    }
                },
                Request::SubmitBatch {
                    dataset,
                    queries,
                    reply,
                } => {
                    // Atomic admission: any invalid member rejects the
                    // whole group before any work is scheduled.
                    let verdict = queries.iter().try_for_each(|q| self.admit(&dataset, q));
                    match verdict {
                        Err(e) => {
                            self.stats.queries += queries.len() as u64;
                            let _ = reply.send(Err(e));
                        }
                        Ok(()) => {
                            let group = Rc::new(RefCell::new(GroupReply {
                                slots: vec![None; queries.len()],
                                reply: Some(reply),
                            }));
                            for (i, query) in queries.into_iter().enumerate() {
                                admitted.push(Admitted {
                                    dataset: dataset.clone(),
                                    query,
                                    slot: Slot::Grouped(group.clone(), i),
                                });
                            }
                        }
                    }
                }
                _ => unreachable!("process_submits only receives submissions"),
            }
        }

        // Group by dataset, preserving admission order within a group.
        let mut order: Vec<String> = Vec::new();
        let mut by_dataset: HashMap<String, Vec<Admitted>> = HashMap::new();
        for a in admitted {
            if !by_dataset.contains_key(&a.dataset) {
                order.push(a.dataset.clone());
            }
            by_dataset.entry(a.dataset.clone()).or_default().push(a);
        }
        for name in order {
            let group = by_dataset.remove(&name).expect("grouped above");
            self.run_dataset_group(&name, group);
        }
    }

    fn admit(&self, dataset: &str, query: &Query) -> Result<(), ServeError> {
        let ds = self
            .datasets
            .get(dataset)
            .ok_or_else(|| ServeError::UnknownDataset(dataset.to_string()))?;
        query.validate(ds.pts.len())
    }

    /// Execute one dataset's admitted queries: one coalesced sweep for
    /// the batchable ones + solo orders for the rest, all in flight
    /// across the worker pool at once.
    fn run_dataset_group(&mut self, name: &str, group: Vec<Admitted>) {
        let ds = &self.datasets[name];
        let key: DatasetKey = (name.to_string(), ds.gen);
        let pts = ds.pts.clone();
        let n = pts.len();
        self.stats.queries += group.len() as u64;

        let (batchable, rest): (Vec<Admitted>, Vec<Admitted>) =
            group.into_iter().partition(|a| a.query.batchable());
        let (gridded, solo): (Vec<Admitted>, Vec<Admitted>) = rest
            .into_iter()
            .partition(|a| matches!(a.query, Query::CountWithin { gridded: true, .. }));

        // Launch the solo orders first so they overlap the sweep.
        let mut solo_waits = Vec::new();
        for a in solo {
            let (reply, rx) = channel();
            let wid = self.rr % self.worker_txs.len();
            self.rr += 1;
            let order = WorkOrder::Solo {
                key: key.clone(),
                pts: pts.clone(),
                query: a.query,
                plan: self.cfg.plan,
                reply,
            };
            if self.worker_txs[wid].send(order).is_err() {
                a.slot.fill(Err(ServeError::Closed));
                continue;
            }
            solo_waits.push((a.slot, rx));
        }

        // Gridded count-withins coalesce into ONE packed sweep over the
        // shared cached catalog: one count sink per radius, launches
        // paid once for the whole group instead of once per query.
        let mut gridded_wait = None;
        if !gridded.is_empty() {
            let radii: Vec<f32> = gridded
                .iter()
                .map(|a| match a.query {
                    Query::CountWithin { radius, .. } => radius,
                    _ => unreachable!("partitioned above"),
                })
                .collect();
            self.stats.batches += 1;
            if gridded.len() > 1 {
                self.stats.coalesced_queries += gridded.len() as u64;
            }
            let (reply, rx) = channel();
            // Dataset affinity, not round-robin: the covering catalog
            // lives in one worker's cache, so every gridded order for a
            // dataset goes to the same worker and repeat radii hit it.
            let wid = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                name.hash(&mut h);
                (h.finish() as usize) % self.worker_txs.len()
            };
            let order = WorkOrder::Gridded {
                key: key.clone(),
                pts: pts.clone(),
                radii,
                plan: self.cfg.plan,
                reply,
            };
            if self.worker_txs[wid].send(order).is_ok() {
                gridded_wait = Some((gridded, rx));
            } else {
                for a in gridded {
                    a.slot.fill(Err(ServeError::Closed));
                }
            }
        }

        // The coalesced sweep: flatten sinks, shard, LPT, merge.
        if !batchable.is_empty() {
            let queries: Vec<Query> = batchable.iter().map(|a| a.query.clone()).collect();
            let plan = SinkPlan::plan(&queries);
            debug_assert!(plan.sinks() > 0, "batchable queries always add sinks");
            let shards = self.cfg.shards.clamp(1, n.max(1));
            let sizes: Vec<usize> = chunk_ranges(n, shards).iter().map(|r| r.len()).collect();
            let tasks = build_tasks(&sizes);
            let assignment = lpt_schedule(&tasks, &sizes, self.worker_txs.len());
            self.stats.batches += 1;
            if batchable.len() > 1 {
                self.stats.coalesced_queries += batchable.len() as u64;
            }
            self.stats.tasks += tasks.len() as u64;

            let mut waits = Vec::new();
            for (wid, dev_tasks) in assignment.into_iter().enumerate() {
                if dev_tasks.is_empty() {
                    continue;
                }
                let (reply, rx) = channel();
                let order = WorkOrder::Tasks {
                    key: key.clone(),
                    pts: pts.clone(),
                    shards,
                    tasks: dev_tasks,
                    counts: plan.counts.clone(),
                    hists: plan.hists.clone(),
                    plan: self.cfg.plan,
                    reply,
                };
                if self.worker_txs[wid].send(order).is_ok() {
                    waits.push(rx);
                }
            }

            // Merge every worker's share (integer sums and histogram
            // merges commute — the shard decomposition is invisible).
            let mut counts = vec![0u64; plan.counts.len()];
            let mut hists: Vec<Histogram> = plan
                .hists
                .iter()
                .map(|s| Histogram::zeroed(s.buckets))
                .collect();
            let mut failure: Option<ServeError> = None;
            for rx in waits {
                match rx.recv() {
                    Ok(Ok(out)) => {
                        for (acc, c) in counts.iter_mut().zip(&out.counts) {
                            *acc += c;
                        }
                        for (acc, h) in hists.iter_mut().zip(&out.hists) {
                            acc.merge(h);
                        }
                        self.stats.cache_hits += out.cache_hits;
                        self.stats.cache_misses += out.cache_misses;
                        self.stats.sim_seconds += out.sim_seconds;
                    }
                    Ok(Err(e)) => failure = Some(ServeError::Sim(e)),
                    Err(_) => failure = Some(ServeError::Closed),
                }
            }
            match failure {
                None => {
                    let results = plan.demux(&counts, hists);
                    for (a, r) in batchable.into_iter().zip(results) {
                        a.slot.fill(Ok(r));
                    }
                }
                Some(e) => {
                    for a in batchable {
                        a.slot.fill(Err(e.clone()));
                    }
                }
            }
        }

        if let Some((gridded, rx)) = gridded_wait {
            match rx.recv() {
                Ok(Ok(out)) => {
                    self.stats.cache_hits += out.cache_hits;
                    self.stats.cache_misses += out.cache_misses;
                    self.stats.sim_seconds += out.sim_seconds;
                    for (a, c) in gridded.into_iter().zip(out.counts) {
                        a.slot.fill(Ok(QueryResult::Counts(vec![c])));
                    }
                }
                Ok(Err(e)) => {
                    let e = ServeError::Sim(e);
                    for a in gridded {
                        a.slot.fill(Err(e.clone()));
                    }
                }
                Err(_) => {
                    for a in gridded {
                        a.slot.fill(Err(ServeError::Closed));
                    }
                }
            }
        }

        for (slot, rx) in solo_waits {
            match rx.recv() {
                Ok(Ok(out)) => {
                    self.stats.cache_hits += out.cache_hits;
                    self.stats.cache_misses += out.cache_misses;
                    self.stats.sim_seconds += out.sim_seconds;
                    slot.fill(Ok(out.result));
                }
                Ok(Err(e)) => slot.fill(Err(ServeError::Sim(e))),
                Err(_) => slot.fill(Err(ServeError::Closed)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(device: DeviceConfig, rx: Receiver<WorkOrder>) {
    let mut dev = Device::new(device);
    let mut cache = WorkerCache::default();
    while let Ok(order) = rx.recv() {
        match order {
            WorkOrder::Tasks {
                key,
                pts,
                shards,
                tasks,
                counts,
                hists,
                plan,
                reply,
            } => {
                let (h0, m0) = (cache.hits, cache.misses);
                let out = run_tasks(
                    &mut dev, &mut cache, &key, &pts, shards, &tasks, &counts, &hists, plan,
                )
                .map(|mut out| {
                    out.cache_hits = cache.hits - h0;
                    out.cache_misses = cache.misses - m0;
                    out
                });
                let _ = reply.send(out);
            }
            WorkOrder::Gridded {
                key,
                pts,
                radii,
                plan,
                reply,
            } => {
                let (h0, m0) = (cache.hits, cache.misses);
                let out =
                    run_gridded(&mut dev, &mut cache, &key, &pts, &radii, plan).map(|mut out| {
                        out.cache_hits = cache.hits - h0;
                        out.cache_misses = cache.misses - m0;
                        out
                    });
                let _ = reply.send(out);
            }
            WorkOrder::Solo {
                key,
                pts,
                query,
                plan,
                reply,
            } => {
                let (h0, m0) = (cache.hits, cache.misses);
                let out =
                    run_solo(&mut dev, &mut cache, &key, &pts, &query, plan).map(|mut out| {
                        out.cache_hits = cache.hits - h0;
                        out.cache_misses = cache.misses - m0;
                        out
                    });
                let _ = reply.send(out);
            }
        }
    }
}

/// One worker's share of a coalesced sweep: for each assigned shard
/// task, launch the multi-sink action (self joins on Register-SHM,
/// cross joins on the bipartite SHM kernel), reduce each histogram
/// sink's private copies on-device, and accumulate host-side.
#[allow(clippy::too_many_arguments)]
fn run_tasks(
    dev: &mut Device,
    cache: &mut WorkerCache,
    key: &DatasetKey,
    pts: &SoaPoints<3>,
    shards: usize,
    tasks: &[SdhTask],
    counts: &[f32],
    hists: &[HistogramSpec],
    plan: PairwisePlan,
) -> Result<TasksOut, String> {
    let uploads = cache.shard_uploads(dev, key, pts, shards).to_vec();
    let mut out = TasksOut {
        counts: vec![0; counts.len()],
        hists: hists.iter().map(|s| Histogram::zeroed(s.buckets)).collect(),
        sim_seconds: 0.0,
        cache_hits: 0,
        cache_misses: 0,
    };
    for task in tasks {
        let (a, b) = match *task {
            SdhTask::SelfJoin { chunk } => (uploads[chunk], None),
            SdhTask::CrossJoin { left, right } => (uploads[left], Some(uploads[right])),
        };
        let lc = pair_launch(a.n, plan.block_size.min(a.n.max(32)));
        let count_bufs: Vec<_> = counts
            .iter()
            .map(|_| dev.alloc_u64_zeroed(lc.total_threads() as usize))
            .collect();
        let hist_bufs: Vec<_> = hists
            .iter()
            .map(|s| dev.alloc_u32_zeroed((lc.grid_dim * s.buckets) as usize))
            .collect();
        let action = MultiQueryAction {
            counts: counts
                .iter()
                .zip(&count_bufs)
                .map(|(&radius, &out)| MultiCountSink { radius, out })
                .collect(),
            hists: hists
                .iter()
                .zip(&hist_bufs)
                .map(|(&spec, &private)| MultiHistSink { spec, private })
                .collect(),
        };
        let run = match b {
            None => dev.try_launch(
                &RegisterShmKernel::new(
                    a,
                    Euclidean,
                    action,
                    lc.block_dim,
                    PairScope::HalfPairs,
                    plan.intra,
                ),
                lc,
            ),
            Some(b) => dev.try_launch(
                &CrossShmKernel::new(a, b, Euclidean, action, lc.block_dim),
                lc,
            ),
        }
        .map_err(|e| e.to_string())?;
        out.sim_seconds += run.timing.seconds;
        for (acc, &buf) in out.counts.iter_mut().zip(&count_bufs) {
            *acc += dev.u64_slice(buf).iter().sum::<u64>();
        }
        for ((acc, spec), &private) in out.hists.iter_mut().zip(hists).zip(&hist_bufs) {
            let hout = dev.alloc_u64_zeroed(spec.buckets as usize);
            let reduce = HistogramReduceKernel {
                private,
                out: hout,
                buckets: spec.buckets,
                copies: lc.grid_dim,
            };
            let rrun = dev
                .try_launch(&reduce, reduce.launch_config(256))
                .map_err(|e| e.to_string())?;
            out.sim_seconds += rrun.timing.seconds;
            acc.merge(&Histogram::from_counts(dev.u64_slice(hout).to_vec()));
        }
    }
    Ok(out)
}

/// A dataset group's gridded count-withins, coalesced: ONE covering
/// catalog (cached; built at the group's largest radius on a miss) and
/// ONE packed multi-radius sweep feeding every query its count. Each
/// count is bit-identical to a solo [`crate::gridded_count_within`] at
/// its radius — integer sinks make the sharing invisible.
fn run_gridded(
    dev: &mut Device,
    cache: &mut WorkerCache,
    key: &DatasetKey,
    pts: &SoaPoints<3>,
    radii: &[f32],
    plan: PairwisePlan,
) -> Result<GriddedOut, String> {
    let r_max = radii.iter().copied().fold(0.0f32, f32::max);
    let cat = cache.grid_covering(dev, key, pts, r_max);
    let (counts, run) = crate::gridded::gridded_count_within_multi(dev, cat, radii, plan)
        .map_err(|e| e.to_string())?;
    Ok(GriddedOut {
        counts,
        sim_seconds: run.seconds,
        cache_hits: 0,
        cache_misses: 0,
    })
}

/// A non-batchable query, monolithic on this worker's device.
fn run_solo(
    dev: &mut Device,
    cache: &mut WorkerCache,
    key: &DatasetKey,
    pts: &SoaPoints<3>,
    query: &Query,
    plan: PairwisePlan,
) -> Result<SoloOut, String> {
    match *query {
        Query::CountWithin { radius, gridded } => {
            debug_assert!(gridded, "dense count-within is batchable");
            let out = run_gridded(dev, cache, key, pts, &[radius], plan)?;
            Ok(SoloOut {
                result: QueryResult::Counts(out.counts),
                sim_seconds: out.sim_seconds,
                cache_hits: 0,
                cache_misses: 0,
            })
        }
        Query::Knn { k } => {
            // Monomorphic dispatch over the supported k range; kNN keeps
            // its single-launch insertion order (re-sharding would merge
            // f32 ties differently), so it bypasses the batcher.
            fn go<const K: usize>(
                dev: &mut Device,
                pts: &SoaPoints<3>,
                plan: PairwisePlan,
            ) -> Result<SoloOut, String> {
                let got = knn_gpu::<3, K>(dev, pts, plan).map_err(|e| e.to_string())?;
                Ok(SoloOut {
                    result: QueryResult::Knn {
                        neighbors: got.neighbors.iter().map(|a| a.to_vec()).collect(),
                        distances: got.distances.iter().map(|a| a.to_vec()).collect(),
                    },
                    sim_seconds: got.run.timing.seconds,
                    cache_hits: 0,
                    cache_misses: 0,
                })
            }
            match k {
                1 => go::<1>(dev, pts, plan),
                2 => go::<2>(dev, pts, plan),
                3 => go::<3>(dev, pts, plan),
                4 => go::<4>(dev, pts, plan),
                5 => go::<5>(dev, pts, plan),
                6 => go::<6>(dev, pts, plan),
                7 => go::<7>(dev, pts, plan),
                8 => go::<8>(dev, pts, plan),
                _ => Err("k out of range".to_string()),
            }
        }
        ref q => unreachable!("batchable query {q:?} routed solo"),
    }
}
