//! Spatial distance join — a Type-III application (paper §III-B:
//! "relational join... total number of output tuples can be quadratic").
//!
//! Emits every pair within a radius into a global-memory pair list whose
//! slots are allocated through an atomic cursor. The paper defers
//! Type-III optimization to future work; this module implements both the
//! obvious per-lane allocation and a **warp-aggregated** allocation (one
//! atomic per warp) as the extension studied in `ext_type3` benches.

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::kernels::PairScope;
use tbs_core::output::PairListAction;
use tbs_core::point::SoaPoints;

/// Join result.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Matched pairs `(i, j)`, `i < j`, in canonical sorted order.
    pub pairs: Vec<(u32, u32)>,
    /// Total matches found (may exceed `pairs.len()` if the output
    /// buffer capacity was exceeded).
    pub total_matches: u64,
    /// Kernel profile.
    pub run: KernelRun,
}

/// Self-join `pts` within `radius` on the simulated device.
///
/// `aggregated` selects warp-aggregated output-slot allocation.
pub fn distance_join_gpu<const D: usize>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    radius: f32,
    capacity: u32,
    aggregated: bool,
    plan: PairwisePlan,
) -> Result<JoinResult, SimError> {
    let input = pts.upload(dev);
    let cursor = dev.alloc_u32_zeroed(1);
    let out_left = dev.alloc_u32(vec![u32::MAX; capacity as usize]);
    let out_right = dev.alloc_u32(vec![u32::MAX; capacity as usize]);
    let action = PairListAction {
        radius,
        cursor,
        out_left,
        out_right,
        capacity,
        aggregated,
    };
    let run = launch_pairwise(dev, input, Euclidean, action, plan, PairScope::HalfPairs)?;
    let total_matches = dev.u32_slice(cursor)[0] as u64;
    let stored = (total_matches as usize).min(capacity as usize);
    let l = dev.u32_slice(out_left);
    let r = dev.u32_slice(out_right);
    let mut pairs: Vec<(u32, u32)> = (0..stored)
        .map(|k| (l[k].min(r[k]), l[k].max(r[k])))
        .collect();
    pairs.sort_unstable();
    Ok(JoinResult {
        pairs,
        total_matches,
        run,
    })
}

/// Bipartite distance join `R ⋈_{dist<r} S` between two tables — the
/// relational-join shape of the paper's Type-III example (He et al. join
/// *two* tables; the self-join above is the special case R = S). Runs on
/// the bipartite [`CrossShmKernel`](tbs_core::kernels::CrossShmKernel).
pub fn distance_join_two_gpu<const D: usize>(
    dev: &mut Device,
    left: &SoaPoints<D>,
    right: &SoaPoints<D>,
    radius: f32,
    capacity: u32,
    aggregated: bool,
    block_size: u32,
) -> Result<JoinResult, SimError> {
    use tbs_core::kernels::{pair_launch, CrossShmKernel};
    let dl = left.upload(dev);
    let dr = right.upload(dev);
    let cursor = dev.alloc_u32_zeroed(1);
    let out_left = dev.alloc_u32(vec![u32::MAX; capacity as usize]);
    let out_right = dev.alloc_u32(vec![u32::MAX; capacity as usize]);
    let action = PairListAction {
        radius,
        cursor,
        out_left,
        out_right,
        capacity,
        aggregated,
    };
    let k = CrossShmKernel::new(dl, dr, Euclidean, action, block_size);
    let run = dev.try_launch(&k, pair_launch(dl.n, block_size))?;
    let total_matches = dev.u32_slice(cursor)[0] as u64;
    let stored = (total_matches as usize).min(capacity as usize);
    let l = dev.u32_slice(out_left);
    let r = dev.u32_slice(out_right);
    // Bipartite pairs keep their (left, right) identity — no
    // canonicalization.
    let mut pairs: Vec<(u32, u32)> = (0..stored).map(|i| (l[i], r[i])).collect();
    pairs.sort_unstable();
    Ok(JoinResult {
        pairs,
        total_matches,
        run,
    })
}

/// Host reference for the bipartite join.
pub fn distance_join_two_reference<const D: usize>(
    left: &SoaPoints<D>,
    right: &SoaPoints<D>,
    radius: f32,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for i in 0..left.len() {
        let a = left.point(i);
        for j in 0..right.len() {
            let b = right.point(j);
            let mut s = 0.0f32;
            for d in 0..D {
                let diff = a[d] - b[d];
                s = diff.mul_add(diff, s);
            }
            if s.sqrt() < radius {
                out.push((i as u32, j as u32));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Host reference join.
pub fn distance_join_reference<const D: usize>(pts: &SoaPoints<D>, radius: f32) -> Vec<(u32, u32)> {
    let n = pts.len();
    let mut out = Vec::new();
    for i in 0..n {
        let a = pts.point(i);
        for j in (i + 1)..n {
            let b = pts.point(j);
            let mut s = 0.0f32;
            for d in 0..D {
                let diff = a[d] - b[d];
                s = diff.mul_add(diff, s);
            }
            if s.sqrt() < radius {
                out.push((i as u32, j as u32));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    #[test]
    fn join_matches_reference_exactly() {
        let pts = tbs_datagen::uniform_points::<2>(400, 100.0, 89);
        let expect = distance_join_reference(&pts, 6.0);
        for aggregated in [false, true] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let got = distance_join_gpu(
                &mut dev,
                &pts,
                6.0,
                100_000,
                aggregated,
                PairwisePlan::register_shm(64),
            )
            .expect("launch");
            assert_eq!(got.pairs, expect, "aggregated={aggregated}");
            assert_eq!(got.total_matches as usize, expect.len());
        }
    }

    #[test]
    fn aggregated_allocation_issues_fewer_atomics() {
        // Dense hits (radius ≈ box/2) so most lanes of a warp match:
        // per-lane allocation then serializes ~hit-count deep per warp,
        // while aggregation stays at one allocation per warp.
        let pts = tbs_datagen::uniform_points::<2>(512, 100.0, 97);
        let mut dev1 = Device::new(DeviceConfig::titan_x());
        let naive = distance_join_gpu(
            &mut dev1,
            &pts,
            50.0,
            1 << 20,
            false,
            PairwisePlan::register_shm(64),
        )
        .expect("launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let agg = distance_join_gpu(
            &mut dev2,
            &pts,
            50.0,
            1 << 20,
            true,
            PairwisePlan::register_shm(64),
        )
        .expect("launch");
        assert_eq!(naive.pairs.len(), agg.pairs.len());
        // Same number of atomic instructions, but the serialized cost
        // collapses: one lane per warp instead of every hit lane.
        assert!(
            agg.run.tally.global_atomic_serial * 3 < naive.run.tally.global_atomic_serial,
            "agg serial {} vs naive serial {}",
            agg.run.tally.global_atomic_serial,
            naive.run.tally.global_atomic_serial
        );
    }

    #[test]
    fn capacity_overflow_truncates_but_counts() {
        let pts = tbs_datagen::uniform_points::<2>(256, 10.0, 101); // dense
        let expect = distance_join_reference(&pts, 5.0);
        assert!(expect.len() > 64);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = distance_join_gpu(
            &mut dev,
            &pts,
            5.0,
            64,
            false,
            PairwisePlan::register_shm(64),
        )
        .expect("launch");
        assert_eq!(
            got.total_matches as usize,
            expect.len(),
            "cursor counts all matches"
        );
        assert_eq!(got.pairs.len(), 64, "list truncated at capacity");
        for p in &got.pairs {
            assert!(expect.binary_search(p).is_ok(), "{p:?} not a real match");
        }
    }

    #[test]
    fn bipartite_join_matches_reference() {
        let users = tbs_datagen::uniform_points::<2>(150, 100.0, 107);
        let items = tbs_datagen::clustered_points::<2>(220, 100.0, 5, 4.0, 109);
        let expect = distance_join_two_reference(&users, &items, 8.0);
        assert!(!expect.is_empty());
        for aggregated in [false, true] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let got = distance_join_two_gpu(&mut dev, &users, &items, 8.0, 1 << 18, aggregated, 64)
                .expect("launch");
            assert_eq!(got.pairs, expect, "aggregated={aggregated}");
        }
    }

    #[test]
    fn bipartite_join_with_self_equals_self_join_plus_diagonal() {
        // R ⋈ R contains each unordered pair twice plus the diagonal.
        let pts = tbs_datagen::uniform_points::<2>(120, 100.0, 113);
        let half = distance_join_reference(&pts, 9.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let both =
            distance_join_two_gpu(&mut dev, &pts, &pts, 9.0, 1 << 18, true, 32).expect("launch");
        assert_eq!(both.total_matches as usize, 2 * half.len() + 120);
    }

    #[test]
    fn empty_result_when_radius_is_zero() {
        let pts = tbs_datagen::uniform_points::<2>(128, 100.0, 103);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = distance_join_gpu(
            &mut dev,
            &pts,
            0.0,
            1024,
            true,
            PairwisePlan::register_shm(32),
        )
        .expect("launch");
        assert!(got.pairs.is_empty());
        assert_eq!(got.total_matches, 0);
    }
}
