//! Kernel density estimation — the paper's §III-B "Kernel
//! density/regression" Type-I example: each point accumulates a sum of
//! kernel weights over all other points in a register.

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::distance::GaussianRbf;
use tbs_core::kernels::{pair_launch, PairScope};
use tbs_core::output::KdeAction;
use tbs_core::point::SoaPoints;

/// KDE result: unnormalized and normalized densities per point.
#[derive(Debug, Clone)]
pub struct KdeResult {
    /// Σ_j≠i K(xᵢ, xⱼ) per point.
    pub weight_sums: Vec<f32>,
    /// Density estimate `weight_sums / ((n−1)·(2πσ²)^{D/2})`.
    pub densities: Vec<f64>,
    /// Kernel profile.
    pub run: KernelRun,
}

/// Gaussian-kernel density estimate at every data point.
pub fn kde_gpu<const D: usize>(
    dev: &mut Device,
    pts: &SoaPoints<D>,
    sigma: f32,
    plan: PairwisePlan,
) -> Result<KdeResult, SimError> {
    let input = pts.upload(dev);
    let n = input.n;
    let lc = pair_launch(n, plan.block_size);
    let out = dev.alloc_f32_zeroed((lc.total_threads() as usize).max(n as usize));
    let run = launch_pairwise(
        dev,
        input,
        GaussianRbf::new(sigma),
        KdeAction { out, n },
        plan,
        PairScope::AllPairs,
    )?;
    let weight_sums: Vec<f32> = dev.f32_slice(out)[..n as usize].to_vec();
    let norm = ((n as f64) - 1.0)
        * (2.0 * std::f64::consts::PI * (sigma as f64) * (sigma as f64)).powf(D as f64 / 2.0);
    let densities = weight_sums.iter().map(|&w| w as f64 / norm).collect();
    Ok(KdeResult {
        weight_sums,
        densities,
        run,
    })
}

/// Host reference for the weight sums.
pub fn kde_reference<const D: usize>(pts: &SoaPoints<D>, sigma: f32) -> Vec<f32> {
    let n = pts.len();
    let inv = 1.0 / (2.0 * sigma * sigma);
    (0..n)
        .map(|i| {
            let a = pts.point(i);
            let mut sum = 0.0f32;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let b = pts.point(j);
                let mut s = 0.0f32;
                for d in 0..D {
                    let diff = a[d] - b[d];
                    s = diff.mul_add(diff, s);
                }
                sum += (-s * inv).exp();
            }
            sum
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn gpu_kde_matches_reference() {
        let pts = tbs_datagen::uniform_points::<2>(300, 100.0, 73);
        let expect = kde_reference(&pts, 5.0);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = kde_gpu(&mut dev, &pts, 5.0, PairwisePlan::register_shm(64)).expect("launch");
        for i in 0..pts.len() {
            let rel = (got.weight_sums[i] - expect[i]).abs() / expect[i].max(1e-6);
            assert!(
                rel < 1e-3,
                "point {i}: {} vs {}",
                got.weight_sums[i],
                expect[i]
            );
        }
    }

    #[test]
    fn cluster_members_are_denser_than_outliers() {
        // One tight cluster plus hand-placed far outliers: the members'
        // densities must dwarf the outliers'.
        let mut pts = tbs_datagen::clustered_points::<2>(480, 100.0, 1, 1.5, 79);
        for k in 0..16 {
            pts.push([(k % 4) as f32 * 3.0, 90.0 + (k / 4) as f32 * 2.0]);
        }
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = kde_gpu(&mut dev, &pts, 2.0, PairwisePlan::register_shm(64)).expect("launch");
        let member_mean: f32 = got.weight_sums[..480].iter().sum::<f32>() / 480.0;
        let outlier_mean: f32 = got.weight_sums[480..].iter().sum::<f32>() / 16.0;
        assert!(
            member_mean > 5.0 * outlier_mean.max(1e-3),
            "members {member_mean} vs outliers {outlier_mean}"
        );
    }

    #[test]
    fn densities_integrate_to_order_one_scale() {
        // Sanity on the normalization: for a uniform box, density ≈
        // 1/area = 1e-4 for a 100×100 box.
        let pts = tbs_datagen::uniform_points::<2>(1000, 100.0, 83);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = kde_gpu(&mut dev, &pts, 8.0, PairwisePlan::register_shm(128)).expect("launch");
        let mean: f64 = got.densities.iter().sum::<f64>() / 1000.0;
        assert!((5e-5..2e-4).contains(&mean), "mean density {mean}");
    }
}
