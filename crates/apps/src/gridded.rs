//! The grid-pruned executor: lowers the surviving cell pairs of a
//! [`tbs_core::grid::UniformGrid`] onto the paper's tiled kernels.
//!
//! Two execution routes share one catalog and one exactness contract:
//!
//! * **Packed** (default) — the surviving cell pairs become
//!   [`PackedSegment`] descriptors, grouped into *population classes*
//!   (power-of-two buckets of the left-slice length), with one
//!   [`tbs_core::plan::choose_plan`] call per class picking the class's
//!   block size. Each class runs as a handful of
//!   [`PackedPairKernel`] launches (capped at
//!   [`MAX_PACKED_BLOCKS_PER_LAUNCH`] blocks each), so a gridded sweep
//!   costs O(population classes) launches instead of O(cell pairs).
//! * **PerCellPair** — the pre-packing behavior: one launch per
//!   surviving cell pair (a single-segment packed launch, which is
//!   block-for-block the Algorithm-3 / Cross-SHM launch it replaces).
//!   Kept as the packed route's differential oracle and for
//!   launch-granularity experiments.
//!
//! The catalog itself is uploaded **once** as a single device SoA in
//! CSR cell order; every cell is a `(start, len)` view into it, so
//! building a catalog costs `D` uploads total instead of `D` per
//! non-empty cell.
//!
//! Both routes reuse one device output buffer across every launch — the
//! Type-I count action and the Type-II privatized histogram action
//! *store* (not accumulate) their per-block regions in `end_block`, so
//! a single buffer sized for the largest launch serves them all, with
//! the host merging after each launch.
//!
//! The bit-identity contract (packed == per-cell-pair == all-pairs,
//! exactly) is argued in [`tbs_core::grid`] and
//! [`tbs_core::kernels::packed`] and enforced by
//! `core/tests/grid_identity.rs`.

use crate::driver::PairwisePlan;
use gpu_sim::{Device, SimError};
use std::collections::BTreeMap;
use tbs_core::distance::{DistanceKernel, Euclidean};
use tbs_core::grid::{
    candidate_cross_pairs, candidate_pairs, cross_prune_stats, prune_stats, CellPair, GridGeometry,
    GridOptions, PruneStats, RadialBins, UniformGrid,
};
use tbs_core::histogram::Histogram;
use tbs_core::kernels::{num_blocks, PackedLayout, PackedPairKernel, PackedSegment};
use tbs_core::output::{
    CountWithinRadius, MultiCountSink, MultiQueryAction, SharedHistogramAction,
};
use tbs_core::plan::{choose_plan, ProblemOutput, ProblemSpec};
use tbs_core::point::{DeviceSoa, SoaPoints};

pub use tbs_core::plan::{
    estimate_packed_launches, MAX_PACKED_BLOCKS_PER_LAUNCH, PACKED_CLASS_ESTIMATE,
};

/// How the gridded executor maps cell pairs onto launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GriddedRoute {
    /// Segmented multi-cell-pair launches, one per population-class
    /// chunk (the default).
    #[default]
    Packed,
    /// One launch per surviving cell pair (the packed route's oracle).
    PerCellPair,
}

/// A point catalog binned into a grid and uploaded **once**: the whole
/// CSR-ordered point set is one device SoA and each cell is a
/// `(start, len)` view into it.
#[derive(Debug)]
pub struct GriddedCatalog<const D: usize> {
    /// The host-side grid (geometry + CSR binning).
    pub grid: UniformGrid<D>,
    /// The CSR-ordered catalog on the device (one buffer per axis).
    device: DeviceSoa<D>,
}

impl<const D: usize> GriddedCatalog<D> {
    /// Bin `pts` into an existing geometry and upload the reordered
    /// catalog once. Use one [`GridGeometry::fit`] over all catalogs
    /// that will be cross-correlated (DD/DR/RR need a shared geometry).
    pub fn build(dev: &mut Device, geom: GridGeometry<D>, pts: &SoaPoints<D>) -> Self {
        let grid = UniformGrid::bin(geom, pts);
        let device = grid.points.upload(dev);
        GriddedCatalog { grid, device }
    }

    /// Fit a geometry for a self-join over `pts` alone and build.
    pub fn build_self(
        dev: &mut Device,
        pts: &SoaPoints<D>,
        r_max: f32,
        opts: &GridOptions,
    ) -> Self {
        Self::build(dev, GridGeometry::fit(&[pts], r_max, opts), pts)
    }

    /// Number of points in the catalog.
    pub fn len(&self) -> usize {
        self.grid.points.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.grid.points.is_empty()
    }

    /// The whole catalog as one device SoA (CSR cell order).
    pub fn device(&self) -> DeviceSoa<D> {
        self.device
    }

    /// Cell `c` as a `(start, len)` view into [`Self::device`].
    fn cell_view(&self, c: u32) -> (u32, u32) {
        (
            self.grid.cell_start[c as usize],
            self.grid.cell_len(c as usize),
        )
    }
}

/// Aggregate profile of a grid-pruned execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GriddedRun {
    /// Intra-cell launches of the per-cell-pair route.
    pub intra_launches: u32,
    /// Inter-cell launches of the per-cell-pair route.
    pub cross_launches: u32,
    /// Segmented multi-cell-pair launches of the packed route.
    pub packed_launches: u32,
    /// Population classes the packed route planned (0 on the
    /// per-cell-pair route).
    pub population_classes: u32,
    /// Total simulated kernel seconds across all launches.
    pub seconds: f64,
    /// Pruning accounting of the candidate-pair enumeration.
    pub stats: PruneStats,
}

impl GriddedRun {
    fn new(stats: PruneStats) -> Self {
        GriddedRun {
            intra_launches: 0,
            cross_launches: 0,
            packed_launches: 0,
            population_classes: 0,
            seconds: 0.0,
            stats,
        }
    }

    /// Total launches.
    pub fn launches(&self) -> u32 {
        self.intra_launches + self.cross_launches + self.packed_launches
    }
}

/// Result of a grid-pruned within-radius pair count.
#[derive(Debug, Clone)]
pub struct GriddedCountResult {
    /// Number of pairs with distance strictly below the radius —
    /// bit-identical to [`crate::pcf_gpu`] on the same points.
    pub count: u64,
    /// Aggregate launch profile.
    pub run: GriddedRun,
}

/// Result of a grid-pruned bounded radial histogram.
#[derive(Debug, Clone)]
pub struct GriddedHistogramResult {
    /// The finalized histogram: `bins.bins` buckets over `[0, r_max)`,
    /// overflow discarded.
    pub histogram: Histogram,
    /// Aggregate launch profile.
    pub run: GriddedRun,
}

// ====================================================================
// population-class packing
// ====================================================================

/// Power-of-two population class of a left-slice length (`class_of(x)`
/// = ⌈log2 x⌉, so lengths `(2^(k-1), 2^k]` share class `k`).
fn class_of(left_len: u32) -> u32 {
    left_len.max(1).next_power_of_two().trailing_zeros()
}

/// Pick a block size for one population class: run the analytic planner
/// once at the class's upper-bound population. `choose_plan` only
/// considers block sizes ≤ n, so the class size is clamped to the
/// smallest candidate block — tiny cells simply share minimal blocks.
fn class_block_size(
    dev: &Device,
    class: u32,
    dims: u32,
    dist_cost: u64,
    buckets: Option<u32>,
) -> u32 {
    let class_hi = 1u32 << class.min(30);
    let n = class_hi.max(tbs_core::plan::CANDIDATE_BLOCK_SIZES[0]);
    let output = match buckets {
        None => ProblemOutput::Scalar,
        Some(b) => ProblemOutput::Histogram { buckets: b },
    };
    let p = ProblemSpec {
        n,
        dims,
        dist_cost,
        output,
    };
    choose_plan(&p, dev.config()).block_size
}

/// Segments of one population class, with the class's chosen block
/// size; `blocks` is the total block count at that block size.
struct ClassPlan {
    block_size: u32,
    segments: Vec<PackedSegment>,
    blocks: u64,
}

/// Group cell-pair segments into population classes and plan each class
/// once. Returns classes in ascending class order (deterministic).
fn plan_classes(
    dev: &Device,
    segments: Vec<PackedSegment>,
    dims: u32,
    dist_cost: u64,
    buckets: Option<u32>,
) -> Vec<ClassPlan> {
    let mut by_class: BTreeMap<u32, Vec<PackedSegment>> = BTreeMap::new();
    for s in segments {
        by_class.entry(class_of(s.left_len)).or_default().push(s);
    }
    by_class
        .into_iter()
        .map(|(class, segments)| {
            let block_size = class_block_size(dev, class, dims, dist_cost, buckets);
            let blocks = segments
                .iter()
                .map(|s| num_blocks(s.left_len, block_size) as u64)
                .sum();
            ClassPlan {
                block_size,
                segments,
                blocks,
            }
        })
        .collect()
}

/// Predicted packed launch count for a class plan (chunks capped at
/// [`MAX_PACKED_BLOCKS_PER_LAUNCH`] blocks).
fn class_launches(plan: &ClassPlan) -> u64 {
    plan.blocks
        .div_ceil(MAX_PACKED_BLOCKS_PER_LAUNCH as u64)
        .max(1)
}

/// Chunk one class's segments into launches of at most
/// [`MAX_PACKED_BLOCKS_PER_LAUNCH`] blocks (a single oversized segment
/// still launches alone — the cap bounds buffers, not correctness).
fn class_chunks(plan: &ClassPlan) -> Vec<Vec<PackedSegment>> {
    let mut chunks = Vec::new();
    let mut cur = Vec::new();
    let mut cur_blocks = 0u64;
    for &s in &plan.segments {
        let b = num_blocks(s.left_len, plan.block_size) as u64;
        if !cur.is_empty() && cur_blocks + b > MAX_PACKED_BLOCKS_PER_LAUNCH as u64 {
            chunks.push(std::mem::take(&mut cur));
            cur_blocks = 0;
        }
        cur.push(s);
        cur_blocks += b;
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Turn a self-join cell-pair list into packed segments (intra cells
/// with < 2 points carry no pairs and are dropped).
fn self_join_segments<const D: usize>(
    cat: &GriddedCatalog<D>,
    pairs: &[CellPair],
) -> Vec<PackedSegment> {
    pairs
        .iter()
        .filter_map(|p| {
            if p.is_intra() {
                let (start, len) = cat.cell_view(p.a);
                (len >= 2).then(|| PackedSegment::intra(start, len))
            } else {
                let (ls, ll) = cat.cell_view(p.a);
                let (rs, rl) = cat.cell_view(p.b);
                Some(PackedSegment::cross(ls, ll, rs, rl))
            }
        })
        .collect()
}

/// Estimate the packed launch count for a pair population — shared with
/// [`tbs_core::plan::choose_spatial_plan`]'s pricing via
/// [`estimate_packed_launches`].
pub fn planned_packed_launches<const D: usize>(
    dev: &Device,
    cat: &GriddedCatalog<D>,
    pairs: &[CellPair],
    dims: u32,
    dist_cost: u64,
    buckets: Option<u32>,
) -> u64 {
    let segments = self_join_segments(cat, pairs);
    plan_classes(dev, segments, dims, dist_cost, buckets)
        .iter()
        .map(class_launches)
        .sum()
}

// ====================================================================
// packed executors
// ====================================================================

/// Run one packed count sweep over pre-planned classes, reusing `out`
/// (sized for the largest chunk) across launches.
fn packed_count_sweep<const D: usize>(
    dev: &mut Device,
    points: DeviceSoa<D>,
    right: DeviceSoa<D>,
    classes: &[ClassPlan],
    radius: f32,
    run: &mut GriddedRun,
) -> Result<u64, SimError> {
    run.population_classes = classes.len() as u32;
    // One shared buffer sized for the largest launch: the count action
    // *stores* per-thread in `end_block`, so every slot below the
    // launch's thread count is overwritten before the host sums it.
    let max_threads = classes
        .iter()
        .flat_map(|c| {
            class_chunks(c).into_iter().map(move |chunk| {
                chunk
                    .iter()
                    .map(|s| num_blocks(s.left_len, c.block_size) as u64)
                    .sum::<u64>()
                    * c.block_size as u64
            })
        })
        .max()
        .unwrap_or(0);
    let out = dev.alloc_u64_zeroed(max_threads as usize);
    let mut count = 0u64;
    for class in classes {
        for chunk in class_chunks(class) {
            let layout = PackedLayout::new(chunk, class.block_size);
            let lc = layout.launch_config();
            let k = PackedPairKernel::new(
                points,
                right,
                Euclidean,
                CountWithinRadius { radius, out },
                layout,
            );
            let kr = dev.try_launch(&k, lc)?;
            count += dev.u64_slice(out)[..lc.total_threads() as usize]
                .iter()
                .sum::<u64>();
            run.packed_launches += 1;
            run.seconds += kr.timing.seconds;
        }
    }
    Ok(count)
}

/// Run one packed privatized-histogram sweep over pre-planned classes.
fn packed_histogram_sweep<const D: usize>(
    dev: &mut Device,
    points: DeviceSoa<D>,
    right: DeviceSoa<D>,
    classes: &[ClassPlan],
    bins: RadialBins,
    run: &mut GriddedRun,
) -> Result<Histogram, SimError> {
    run.population_classes = classes.len() as u32;
    let spec = bins.device_spec();
    let max_blocks = classes
        .iter()
        .flat_map(|c| {
            class_chunks(c).into_iter().map(move |chunk| {
                chunk
                    .iter()
                    .map(|s| num_blocks(s.left_len, c.block_size) as u64)
                    .sum::<u64>()
            })
        })
        .max()
        .unwrap_or(0);
    let private = dev.alloc_u32_zeroed((max_blocks.max(1) * spec.buckets as u64) as usize);
    let mut host = vec![0u64; spec.buckets as usize];
    for class in classes {
        for chunk in class_chunks(class) {
            let layout = PackedLayout::new(chunk, class.block_size);
            let lc = layout.launch_config();
            let k = PackedPairKernel::new(
                points,
                right,
                Euclidean,
                SharedHistogramAction { spec, private },
                layout,
            );
            let kr = dev.try_launch(&k, lc)?;
            let copies = &dev.u32_slice(private)[..(lc.grid_dim * spec.buckets) as usize];
            for (i, &c) in copies.iter().enumerate() {
                host[i % spec.buckets as usize] += c as u64;
            }
            run.packed_launches += 1;
            run.seconds += kr.timing.seconds;
        }
    }
    Ok(bins.finalize(&Histogram::from_counts(host)))
}

// ====================================================================
// public entry points
// ====================================================================

/// Count pairs of `cat` with distance `< radius` on the default
/// (packed) route. `radius` must not exceed the grid's `r_max`.
pub fn gridded_count_within<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    radius: f32,
    plan: PairwisePlan,
) -> Result<GriddedCountResult, SimError> {
    gridded_count_within_routed(dev, cat, radius, plan, GriddedRoute::Packed)
}

/// Count pairs of `cat` with distance `< radius`, visiting only the
/// surviving cell pairs, on an explicit [`GriddedRoute`].
pub fn gridded_count_within_routed<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    radius: f32,
    plan: PairwisePlan,
    route: GriddedRoute,
) -> Result<GriddedCountResult, SimError> {
    assert!(
        radius <= cat.grid.geom.r_max,
        "count radius {radius} exceeds the grid's r_max {}",
        cat.grid.geom.r_max
    );
    let pairs = candidate_pairs(&cat.grid);
    let stats = prune_stats(&cat.grid, &pairs);
    let mut run = GriddedRun::new(stats);
    let segments = self_join_segments(cat, &pairs);
    let points = cat.device();
    let count = match route {
        GriddedRoute::Packed => {
            let classes = plan_classes(
                dev,
                segments,
                D as u32,
                <Euclidean as DistanceKernel<D>>::cost(&Euclidean),
                None,
            );
            packed_count_sweep(dev, points, points, &classes, radius, &mut run)?
        }
        GriddedRoute::PerCellPair => {
            // One single-segment launch per cell pair — block-for-block
            // the Algorithm-3 / Cross-SHM launch the packed route
            // replaces.
            let b = plan.block_size;
            let max_threads = segments
                .iter()
                .map(|s| num_blocks(s.left_len, b) as u64 * b as u64)
                .max()
                .unwrap_or(0);
            let out = dev.alloc_u64_zeroed(max_threads as usize);
            let mut count = 0u64;
            for s in segments {
                let layout = PackedLayout::new(vec![s], b);
                let lc = layout.launch_config();
                let k = PackedPairKernel::new(
                    points,
                    points,
                    Euclidean,
                    CountWithinRadius { radius, out },
                    layout,
                );
                let kr = dev.try_launch(&k, lc)?;
                count += dev.u64_slice(out)[..lc.total_threads() as usize]
                    .iter()
                    .sum::<u64>();
                if s.intra {
                    run.intra_launches += 1;
                } else {
                    run.cross_launches += 1;
                }
                run.seconds += kr.timing.seconds;
            }
            count
        }
    };
    Ok(GriddedCountResult { count, run })
}

/// Count pairs of `cat` under **many radii in one packed sweep**: every
/// distance is evaluated once and fed to one count sink per radius (the
/// serve layer's gridded coalescing). All radii must be ≤ the grid's
/// `r_max`; `counts[i]` is bit-identical to
/// [`gridded_count_within`] at `radii[i]`.
pub fn gridded_count_within_multi<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    radii: &[f32],
    _plan: PairwisePlan,
) -> Result<(Vec<u64>, GriddedRun), SimError> {
    for &r in radii {
        assert!(
            r <= cat.grid.geom.r_max,
            "count radius {r} exceeds the grid's r_max {}",
            cat.grid.geom.r_max
        );
    }
    let pairs = candidate_pairs(&cat.grid);
    let stats = prune_stats(&cat.grid, &pairs);
    let mut run = GriddedRun::new(stats);
    if radii.is_empty() {
        return Ok((Vec::new(), run));
    }
    let segments = self_join_segments(cat, &pairs);
    let points = cat.device();
    let classes = plan_classes(
        dev,
        segments,
        D as u32,
        <Euclidean as DistanceKernel<D>>::cost(&Euclidean),
        None,
    );
    run.population_classes = classes.len() as u32;
    let max_threads = classes
        .iter()
        .flat_map(|c| {
            class_chunks(c).into_iter().map(move |chunk| {
                chunk
                    .iter()
                    .map(|s| num_blocks(s.left_len, c.block_size) as u64)
                    .sum::<u64>()
                    * c.block_size as u64
            })
        })
        .max()
        .unwrap_or(0);
    let outs: Vec<_> = radii
        .iter()
        .map(|_| dev.alloc_u64_zeroed(max_threads as usize))
        .collect();
    let mut counts = vec![0u64; radii.len()];
    for class in &classes {
        for chunk in class_chunks(class) {
            let layout = PackedLayout::new(chunk, class.block_size);
            let lc = layout.launch_config();
            let action = MultiQueryAction {
                counts: radii
                    .iter()
                    .zip(&outs)
                    .map(|(&radius, &out)| MultiCountSink { radius, out })
                    .collect(),
                hists: Vec::new(),
            };
            let k = PackedPairKernel::new(points, points, Euclidean, action, layout);
            let kr = dev.try_launch(&k, lc)?;
            for (c, &out) in counts.iter_mut().zip(&outs) {
                *c += dev.u64_slice(out)[..lc.total_threads() as usize]
                    .iter()
                    .sum::<u64>();
            }
            run.packed_launches += 1;
            run.seconds += kr.timing.seconds;
        }
    }
    Ok((counts, run))
}

/// Shared per-cell-pair launch loop for self- and cross-pair radial
/// histograms (the packed route's oracle).
fn histogram_per_cell_pair<const D: usize>(
    dev: &mut Device,
    segments: &[PackedSegment],
    left: DeviceSoa<D>,
    right: DeviceSoa<D>,
    bins: RadialBins,
    plan: PairwisePlan,
    run: &mut GriddedRun,
) -> Result<Histogram, SimError> {
    let spec = bins.device_spec();
    let b = plan.block_size;
    let max_blocks = segments
        .iter()
        .map(|s| num_blocks(s.left_len, b) as u64)
        .max()
        .unwrap_or(0);
    let private = dev.alloc_u32_zeroed((max_blocks.max(1) * spec.buckets as u64) as usize);
    let mut host = vec![0u64; spec.buckets as usize];
    for &s in segments {
        let layout = PackedLayout::new(vec![s], b);
        let lc = layout.launch_config();
        let k = PackedPairKernel::new(
            left,
            right,
            Euclidean,
            SharedHistogramAction { spec, private },
            layout,
        );
        let kr = dev.try_launch(&k, lc)?;
        let copies = &dev.u32_slice(private)[..(lc.grid_dim * spec.buckets) as usize];
        for (i, &c) in copies.iter().enumerate() {
            host[i % spec.buckets as usize] += c as u64;
        }
        if s.intra {
            run.intra_launches += 1;
        } else {
            run.cross_launches += 1;
        }
        run.seconds += kr.timing.seconds;
    }
    Ok(bins.finalize(&Histogram::from_counts(host)))
}

/// Bounded radial histogram (DD- or RR-style self pair counts) of `cat`
/// over `bins` on the default (packed) route. The retained bins are
/// bit-identical to the all-pairs route run with
/// [`RadialBins::device_spec`] and finalized the same way.
pub fn gridded_radial_histogram<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    bins: RadialBins,
    plan: PairwisePlan,
) -> Result<GriddedHistogramResult, SimError> {
    gridded_radial_histogram_routed(dev, cat, bins, plan, GriddedRoute::Packed)
}

/// [`gridded_radial_histogram`] on an explicit route.
pub fn gridded_radial_histogram_routed<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    bins: RadialBins,
    plan: PairwisePlan,
    route: GriddedRoute,
) -> Result<GriddedHistogramResult, SimError> {
    assert!(
        bins.r_max <= cat.grid.geom.r_max,
        "histogram r_max {} exceeds the grid's r_max {}",
        bins.r_max,
        cat.grid.geom.r_max
    );
    let pairs = candidate_pairs(&cat.grid);
    let stats = prune_stats(&cat.grid, &pairs);
    let mut run = GriddedRun::new(stats);
    let segments = self_join_segments(cat, &pairs);
    let points = cat.device();
    let buckets = bins.device_spec().buckets;
    let histogram = match route {
        GriddedRoute::Packed => {
            let classes = plan_classes(
                dev,
                segments,
                D as u32,
                <Euclidean as DistanceKernel<D>>::cost(&Euclidean),
                Some(buckets),
            );
            packed_histogram_sweep(dev, points, points, &classes, bins, &mut run)?
        }
        GriddedRoute::PerCellPair => {
            histogram_per_cell_pair(dev, &segments, points, points, bins, plan, &mut run)?
        }
    };
    Ok(GriddedHistogramResult { histogram, run })
}

/// Bounded radial histogram of *cross* pairs (DR-style: every ordered
/// `left × right` pair counted once) on the default (packed) route.
/// Both catalogs must share a geometry (bin them with one
/// [`GridGeometry::fit`] over both sets).
pub fn gridded_cross_radial_histogram<const D: usize>(
    dev: &mut Device,
    left: &GriddedCatalog<D>,
    right: &GriddedCatalog<D>,
    bins: RadialBins,
    plan: PairwisePlan,
) -> Result<GriddedHistogramResult, SimError> {
    gridded_cross_radial_histogram_routed(dev, left, right, bins, plan, GriddedRoute::Packed)
}

/// [`gridded_cross_radial_histogram`] on an explicit route.
pub fn gridded_cross_radial_histogram_routed<const D: usize>(
    dev: &mut Device,
    left: &GriddedCatalog<D>,
    right: &GriddedCatalog<D>,
    bins: RadialBins,
    plan: PairwisePlan,
    route: GriddedRoute,
) -> Result<GriddedHistogramResult, SimError> {
    assert!(
        bins.r_max <= left.grid.geom.r_max,
        "histogram r_max {} exceeds the grid's r_max {}",
        bins.r_max,
        left.grid.geom.r_max
    );
    let pairs = candidate_cross_pairs(&left.grid, &right.grid);
    let stats = cross_prune_stats(&left.grid, &right.grid, &pairs);
    let mut run = GriddedRun::new(stats);
    // Ordered rectangles between two catalogs: never intra, even for
    // equal cell indices.
    let segments: Vec<PackedSegment> = pairs
        .iter()
        .map(|p| {
            let (ls, ll) = left.cell_view(p.a);
            let (rs, rl) = right.cell_view(p.b);
            PackedSegment::cross(ls, ll, rs, rl)
        })
        .collect();
    let buckets = bins.device_spec().buckets;
    let histogram = match route {
        GriddedRoute::Packed => {
            let classes = plan_classes(
                dev,
                segments,
                D as u32,
                <Euclidean as DistanceKernel<D>>::cost(&Euclidean),
                Some(buckets),
            );
            packed_histogram_sweep(dev, left.device(), right.device(), &classes, bins, &mut run)?
        }
        GriddedRoute::PerCellPair => histogram_per_cell_pair(
            dev,
            &segments,
            left.device(),
            right.device(),
            bins,
            plan,
            &mut run,
        )?,
    };
    Ok(GriddedHistogramResult { histogram, run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcf_gpu;
    use crate::sdh::{sdh_gpu, SdhOutputMode};
    use gpu_sim::DeviceConfig;

    const BOX: f32 = 100.0;

    #[test]
    fn gridded_count_matches_all_pairs_and_cpu() {
        let pts = tbs_datagen::uniform_points::<3>(2048, BOX, 5);
        let plan = PairwisePlan::register_shm(128);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            10.0,
            &GridOptions {
                target_points_per_cell: 16,
                max_cells: 1 << 20,
            },
        );
        let got = gridded_count_within(&mut dev, &cat, 10.0, plan).expect("launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = pcf_gpu(&mut dev2, &pts, 10.0, plan).expect("launch");
        assert_eq!(got.count, all.count);
        assert_eq!(got.count, tbs_cpu::pcf_reference(&pts, 10.0));
        assert!(got.run.stats.pruned_fraction() > 0.6, "{:?}", got.run.stats);
        // The point of packing: launches scale with population classes,
        // not cell pairs.
        assert!(got.run.packed_launches > 0);
        assert!(
            (got.run.launches() as u64) < got.run.stats.cell_pairs,
            "{:?}",
            got.run
        );
    }

    #[test]
    fn packed_and_per_cell_pair_routes_are_identical() {
        let pts = tbs_datagen::clustered_points::<3>(1800, BOX, 5, 4.0, 11);
        let plan = PairwisePlan::register_shm(64);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            8.0,
            &GridOptions {
                target_points_per_cell: 32,
                max_cells: 1 << 20,
            },
        );
        let packed = gridded_count_within_routed(&mut dev, &cat, 8.0, plan, GriddedRoute::Packed)
            .expect("launch");
        let unpacked =
            gridded_count_within_routed(&mut dev, &cat, 8.0, plan, GriddedRoute::PerCellPair)
                .expect("launch");
        assert_eq!(packed.count, unpacked.count);
        assert!(packed.run.packed_launches > 0);
        assert_eq!(unpacked.run.packed_launches, 0);
        assert!(packed.run.launches() < unpacked.run.launches());
        // Launch budget: within ~10× the population classes.
        assert!(
            packed.run.launches() <= 10 * packed.run.population_classes.max(1),
            "{:?}",
            packed.run
        );
    }

    #[test]
    fn multi_radius_sweep_matches_single_radius_counts() {
        let pts = tbs_datagen::uniform_points::<3>(1500, BOX, 7);
        let plan = PairwisePlan::register_shm(128);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            9.0,
            &GridOptions {
                target_points_per_cell: 64,
                max_cells: 1 << 20,
            },
        );
        let radii = [2.5, 9.0, 6.0];
        let (counts, run) =
            gridded_count_within_multi(&mut dev, &cat, &radii, plan).expect("launch");
        for (i, &r) in radii.iter().enumerate() {
            let solo = gridded_count_within(&mut dev, &cat, r, plan).expect("launch");
            assert_eq!(counts[i], solo.count, "radius {r}");
        }
        // The whole multi-radius batch costs the same launches as ONE
        // single-radius sweep.
        assert_eq!(
            run.launches(),
            gridded_count_within(&mut dev, &cat, 9.0, plan)
                .expect("launch")
                .run
                .launches()
        );
    }

    #[test]
    fn gridded_histogram_matches_all_pairs_route() {
        let pts = tbs_datagen::clustered_points::<3>(1536, BOX, 6, 4.0, 9);
        let bins = RadialBins::new(16, 12.0);
        let plan = PairwisePlan::register_shm(128);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            12.0,
            &GridOptions {
                target_points_per_cell: 128,
                max_cells: 1 << 20,
            },
        );
        let got = gridded_radial_histogram(&mut dev, &cat, bins, plan).expect("launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = sdh_gpu(
            &mut dev2,
            &pts,
            bins.device_spec(),
            plan,
            SdhOutputMode::Privatized,
        )
        .expect("launch");
        assert_eq!(got.histogram, bins.finalize(&all.histogram));
        assert!(got.run.seconds > 0.0);
        // Route parity on the same catalog.
        let per_pair =
            gridded_radial_histogram_routed(&mut dev, &cat, bins, plan, GriddedRoute::PerCellPair)
                .expect("launch");
        assert_eq!(got.histogram, per_pair.histogram);
    }

    #[test]
    fn gridded_cross_histogram_counts_every_ordered_pair_once() {
        let a = tbs_datagen::uniform_points::<3>(700, BOX, 13);
        let b = tbs_datagen::uniform_points::<3>(900, BOX, 14);
        // r_max ≥ box diagonal: nothing can be pruned, so the histogram
        // total must be exactly |A|·|B|.
        let r = tbs_datagen::box_diagonal(BOX, 3) * 1.01;
        let bins = RadialBins::new(8, r);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let geom = GridGeometry::fit(&[&a, &b], r, &GridOptions::default());
        let ca = GriddedCatalog::build(&mut dev, geom.clone(), &a);
        let cb = GriddedCatalog::build(&mut dev, geom, &b);
        let got = gridded_cross_radial_histogram(
            &mut dev,
            &ca,
            &cb,
            bins,
            PairwisePlan::register_shm(64),
        )
        .expect("launch");
        assert_eq!(got.histogram.total(), 700 * 900);
        // Both routes agree on a pruned cross geometry too.
        let a2 = tbs_datagen::uniform_points::<3>(600, BOX, 15);
        let b2 = tbs_datagen::uniform_points::<3>(800, BOX, 16);
        let bins2 = RadialBins::new(8, 12.0);
        let geom2 = GridGeometry::fit(
            &[&a2, &b2],
            12.0,
            &GridOptions {
                target_points_per_cell: 64,
                max_cells: 1 << 20,
            },
        );
        let ca2 = GriddedCatalog::build(&mut dev, geom2.clone(), &a2);
        let cb2 = GriddedCatalog::build(&mut dev, geom2, &b2);
        let plan = PairwisePlan::register_shm(64);
        let p = gridded_cross_radial_histogram_routed(
            &mut dev,
            &ca2,
            &cb2,
            bins2,
            plan,
            GriddedRoute::Packed,
        )
        .expect("launch");
        let u = gridded_cross_radial_histogram_routed(
            &mut dev,
            &ca2,
            &cb2,
            bins2,
            plan,
            GriddedRoute::PerCellPair,
        )
        .expect("launch");
        assert_eq!(p.histogram, u.histogram);
        assert!(p.run.launches() < u.run.launches());
    }

    #[test]
    fn single_cell_grid_degrades_to_one_launch() {
        let pts = tbs_datagen::uniform_points::<2>(256, BOX, 21);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, BOX * 2.0, &GridOptions::default());
        assert_eq!(cat.grid.geom.num_cells(), 1);
        let got = gridded_count_within(&mut dev, &cat, 30.0, PairwisePlan::register_shm(64))
            .expect("launch");
        assert_eq!(got.run.launches(), 1);
        assert_eq!(got.count, tbs_cpu::pcf_reference(&pts, 30.0));
    }

    #[test]
    fn empty_catalog_is_a_noop() {
        let pts = SoaPoints::<3>::new();
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, 1.0, &GridOptions::default());
        let got = gridded_count_within(&mut dev, &cat, 1.0, PairwisePlan::register_shm(64))
            .expect("launch");
        assert_eq!(got.count, 0);
        assert_eq!(got.run.launches(), 0);
        let (counts, _) =
            gridded_count_within_multi(&mut dev, &cat, &[1.0], PairwisePlan::register_shm(64))
                .expect("launch");
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn catalog_uploads_once_not_per_cell() {
        // Single-SoA upload: exactly one contiguous buffer per axis
        // (3 × n × 4 bytes for 3-D data), regardless of cell count.
        let pts = tbs_datagen::uniform_points::<3>(4096, BOX, 3);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let before = dev.allocated_bytes();
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            5.0,
            &GridOptions {
                target_points_per_cell: 16,
                max_cells: 1 << 20,
            },
        );
        let after = dev.allocated_bytes();
        assert!(cat.grid.occupied_cells().count() > 10);
        assert_eq!(after - before, 3 * 4096 * 4, "one upload per axis");
        assert_eq!(cat.device().n, 4096);
    }
}
