//! The grid-pruned executor: lowers the surviving cell pairs of a
//! [`tbs_core::grid::UniformGrid`] onto the existing tiled kernels.
//!
//! Each intra-cell pair runs the triangular
//! [`tbs_core::kernels::PairScope::HalfPairs`] path of the plan's input
//! variant (exactly the launch the monolithic route would make, just on
//! one cell's points); each inter-cell pair runs the bipartite
//! [`CrossShmKernel`] rectangle. Both reuse one device output buffer
//! across every launch — the Type-I count action and the Type-II
//! privatized histogram action *store* (not accumulate) their per-block
//! regions in `end_block`, so a single buffer sized for the largest
//! launch serves them all, with the host merging after each launch.
//!
//! The bit-identity contract (grid-pruned output == all-pairs output,
//! exactly) is argued in [`tbs_core::grid`] and enforced by
//! `core/tests/grid_identity.rs`.

use crate::driver::{launch_pairwise, PairwisePlan};
use gpu_sim::{Device, SimError};
use tbs_core::distance::Euclidean;
use tbs_core::grid::{
    candidate_cross_pairs, candidate_pairs, cross_prune_stats, prune_stats, GridGeometry,
    GridOptions, PruneStats, RadialBins, UniformGrid,
};
use tbs_core::histogram::Histogram;
use tbs_core::kernels::{pair_launch, CrossShmKernel, PairScope};
use tbs_core::output::{CountWithinRadius, SharedHistogramAction};
use tbs_core::point::{DeviceSoa, SoaPoints};

/// A point catalog binned into a grid and uploaded cell-by-cell: each
/// non-empty cell owns its own device-resident SoA slice, uploaded once
/// and reused by every launch that touches the cell.
#[derive(Debug)]
pub struct GriddedCatalog<const D: usize> {
    /// The host-side grid (geometry + CSR binning).
    pub grid: UniformGrid<D>,
    /// Per-cell device slices (`None` for empty cells).
    cells: Vec<Option<DeviceSoa<D>>>,
}

impl<const D: usize> GriddedCatalog<D> {
    /// Bin `pts` into an existing geometry and upload each cell. Use
    /// one [`GridGeometry::fit`] over all catalogs that will be
    /// cross-correlated (DD/DR/RR need a shared geometry).
    pub fn build(dev: &mut Device, geom: GridGeometry<D>, pts: &SoaPoints<D>) -> Self {
        let grid = UniformGrid::bin(geom, pts);
        let cells = (0..grid.geom.num_cells())
            .map(|c| {
                let range = grid.cell_range(c);
                if range.is_empty() {
                    None
                } else {
                    Some(grid.points.slice(range).upload(dev))
                }
            })
            .collect();
        GriddedCatalog { grid, cells }
    }

    /// Fit a geometry for a self-join over `pts` alone and build.
    pub fn build_self(
        dev: &mut Device,
        pts: &SoaPoints<D>,
        r_max: f32,
        opts: &GridOptions,
    ) -> Self {
        Self::build(dev, GridGeometry::fit(&[pts], r_max, opts), pts)
    }

    /// Number of points in the catalog.
    pub fn len(&self) -> usize {
        self.grid.points.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.grid.points.is_empty()
    }

    fn cell(&self, c: u32) -> DeviceSoa<D> {
        self.cells[c as usize].expect("candidate pairs only name non-empty cells")
    }

    /// The largest per-launch thread count any cell of this catalog can
    /// produce under block size `b` (sizes the shared output buffers).
    fn max_launch_threads(&self, b: u32) -> u64 {
        (0..self.grid.geom.num_cells())
            .map(|c| pair_launch(self.grid.cell_len(c), b).total_threads())
            .max()
            .unwrap_or(0)
    }
}

/// Aggregate profile of a grid-pruned execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GriddedRun {
    /// Intra-cell (triangular) launches.
    pub intra_launches: u32,
    /// Inter-cell (bipartite rectangle) launches.
    pub cross_launches: u32,
    /// Total simulated kernel seconds across all launches.
    pub seconds: f64,
    /// Pruning accounting of the candidate-pair enumeration.
    pub stats: PruneStats,
}

impl GriddedRun {
    /// Total launches.
    pub fn launches(&self) -> u32 {
        self.intra_launches + self.cross_launches
    }
}

/// Result of a grid-pruned within-radius pair count.
#[derive(Debug, Clone)]
pub struct GriddedCountResult {
    /// Number of pairs with distance strictly below the radius —
    /// bit-identical to [`crate::pcf_gpu`] on the same points.
    pub count: u64,
    /// Aggregate launch profile.
    pub run: GriddedRun,
}

/// Result of a grid-pruned bounded radial histogram.
#[derive(Debug, Clone)]
pub struct GriddedHistogramResult {
    /// The finalized histogram: `bins.bins` buckets over `[0, r_max)`,
    /// overflow discarded.
    pub histogram: Histogram,
    /// Aggregate launch profile.
    pub run: GriddedRun,
}

/// Count pairs of `cat` with distance `< radius`, visiting only the
/// surviving cell pairs. `radius` must not exceed the grid's `r_max`
/// (the geometry was sized to guarantee no in-range pair is culled only
/// up to that radius).
pub fn gridded_count_within<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    radius: f32,
    plan: PairwisePlan,
) -> Result<GriddedCountResult, SimError> {
    assert!(
        radius <= cat.grid.geom.r_max,
        "count radius {radius} exceeds the grid's r_max {}",
        cat.grid.geom.r_max
    );
    let pairs = candidate_pairs(&cat.grid);
    let stats = prune_stats(&cat.grid, &pairs);
    let out = dev.alloc_u64_zeroed(cat.max_launch_threads(plan.block_size) as usize);
    let mut count = 0u64;
    let mut run = GriddedRun {
        intra_launches: 0,
        cross_launches: 0,
        seconds: 0.0,
        stats,
    };
    let action = |out| CountWithinRadius { radius, out };
    for p in &pairs {
        if p.is_intra() {
            if cat.grid.cell_len(p.a as usize) < 2 {
                continue;
            }
            let input = cat.cell(p.a);
            let lc = pair_launch(input.n, plan.block_size);
            let kr = launch_pairwise(
                dev,
                input,
                Euclidean,
                action(out),
                plan,
                PairScope::HalfPairs,
            )?;
            count += dev.u64_slice(out)[..lc.total_threads() as usize]
                .iter()
                .sum::<u64>();
            run.intra_launches += 1;
            run.seconds += kr.timing.seconds;
        } else {
            let (left, right) = (cat.cell(p.a), cat.cell(p.b));
            let k = CrossShmKernel::new(left, right, Euclidean, action(out), plan.block_size);
            let lc = k.launch_config();
            let kr = dev.try_launch(&k, lc)?;
            count += dev.u64_slice(out)[..lc.total_threads() as usize]
                .iter()
                .sum::<u64>();
            run.cross_launches += 1;
            run.seconds += kr.timing.seconds;
        }
    }
    Ok(GriddedCountResult { count, run })
}

/// Shared launch loop for self- and cross-pair radial histograms.
#[allow(clippy::too_many_arguments)]
fn histogram_over_pairs<const D: usize>(
    dev: &mut Device,
    left: &GriddedCatalog<D>,
    right: &GriddedCatalog<D>,
    pairs: &[tbs_core::grid::CellPair],
    stats: PruneStats,
    bins: RadialBins,
    plan: PairwisePlan,
    self_join: bool,
) -> Result<GriddedHistogramResult, SimError> {
    let spec = bins.device_spec();
    let b = plan.block_size;
    // One thread per left point in both launch shapes, so the private
    // grid is sized by the largest left cell alone.
    let max_grid = left.max_launch_threads(b) / b.max(1) as u64;
    let private = dev.alloc_u32_zeroed((max_grid.max(1) * spec.buckets as u64) as usize);
    let mut host = vec![0u64; spec.buckets as usize];
    let mut run = GriddedRun {
        intra_launches: 0,
        cross_launches: 0,
        seconds: 0.0,
        stats,
    };
    for p in pairs {
        let kr = if self_join && p.is_intra() {
            if left.grid.cell_len(p.a as usize) < 2 {
                continue;
            }
            let input = left.cell(p.a);
            run.intra_launches += 1;
            launch_pairwise(
                dev,
                input,
                Euclidean,
                SharedHistogramAction { spec, private },
                plan,
                PairScope::HalfPairs,
            )?
        } else {
            let k = CrossShmKernel::new(
                left.cell(p.a),
                right.cell(p.b),
                Euclidean,
                SharedHistogramAction { spec, private },
                b,
            );
            run.cross_launches += 1;
            dev.try_launch(&k, k.launch_config())?
        };
        run.seconds += kr.timing.seconds;
        // Host-side reduction over the block-private copies (the
        // privatized grid is small per launch — one block per ~cell).
        let grid_dim = pair_launch(left.cell(p.a).n, b).grid_dim;
        let copies = &dev.u32_slice(private)[..(grid_dim * spec.buckets) as usize];
        for (i, &c) in copies.iter().enumerate() {
            host[i % spec.buckets as usize] += c as u64;
        }
    }
    Ok(GriddedHistogramResult {
        histogram: bins.finalize(&Histogram::from_counts(host)),
        run,
    })
}

/// Bounded radial histogram (DD- or RR-style self pair counts) of `cat`
/// over `bins`, visiting only surviving cell pairs. The retained bins
/// are bit-identical to the all-pairs route run with
/// [`RadialBins::device_spec`] and finalized the same way.
pub fn gridded_radial_histogram<const D: usize>(
    dev: &mut Device,
    cat: &GriddedCatalog<D>,
    bins: RadialBins,
    plan: PairwisePlan,
) -> Result<GriddedHistogramResult, SimError> {
    assert!(
        bins.r_max <= cat.grid.geom.r_max,
        "histogram r_max {} exceeds the grid's r_max {}",
        bins.r_max,
        cat.grid.geom.r_max
    );
    let pairs = candidate_pairs(&cat.grid);
    let stats = prune_stats(&cat.grid, &pairs);
    histogram_over_pairs(dev, cat, cat, &pairs, stats, bins, plan, true)
}

/// Bounded radial histogram of *cross* pairs (DR-style: every ordered
/// `left × right` pair counted once). Both catalogs must share a
/// geometry (bin them with one [`GridGeometry::fit`] over both sets).
pub fn gridded_cross_radial_histogram<const D: usize>(
    dev: &mut Device,
    left: &GriddedCatalog<D>,
    right: &GriddedCatalog<D>,
    bins: RadialBins,
    plan: PairwisePlan,
) -> Result<GriddedHistogramResult, SimError> {
    assert!(
        bins.r_max <= left.grid.geom.r_max,
        "histogram r_max {} exceeds the grid's r_max {}",
        bins.r_max,
        left.grid.geom.r_max
    );
    let pairs = candidate_cross_pairs(&left.grid, &right.grid);
    let stats = cross_prune_stats(&left.grid, &right.grid, &pairs);
    histogram_over_pairs(dev, left, right, &pairs, stats, bins, plan, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcf_gpu;
    use crate::sdh::{sdh_gpu, SdhOutputMode};
    use gpu_sim::DeviceConfig;

    const BOX: f32 = 100.0;

    #[test]
    fn gridded_count_matches_all_pairs_and_cpu() {
        let pts = tbs_datagen::uniform_points::<3>(2048, BOX, 5);
        let plan = PairwisePlan::register_shm(128);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            10.0,
            &GridOptions {
                target_points_per_cell: 16,
                max_cells: 1 << 20,
            },
        );
        let got = gridded_count_within(&mut dev, &cat, 10.0, plan).expect("launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = pcf_gpu(&mut dev2, &pts, 10.0, plan).expect("launch");
        assert_eq!(got.count, all.count);
        assert_eq!(got.count, tbs_cpu::pcf_reference(&pts, 10.0));
        assert!(got.run.launches() > 1, "{:?}", got.run);
        assert!(got.run.stats.pruned_fraction() > 0.6, "{:?}", got.run.stats);
    }

    #[test]
    fn gridded_histogram_matches_all_pairs_route() {
        let pts = tbs_datagen::clustered_points::<3>(1536, BOX, 6, 4.0, 9);
        let bins = RadialBins::new(16, 12.0);
        let plan = PairwisePlan::register_shm(128);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(
            &mut dev,
            &pts,
            12.0,
            &GridOptions {
                target_points_per_cell: 128,
                max_cells: 1 << 20,
            },
        );
        let got = gridded_radial_histogram(&mut dev, &cat, bins, plan).expect("launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = sdh_gpu(
            &mut dev2,
            &pts,
            bins.device_spec(),
            plan,
            SdhOutputMode::Privatized,
        )
        .expect("launch");
        assert_eq!(got.histogram, bins.finalize(&all.histogram));
        assert!(got.run.seconds > 0.0);
    }

    #[test]
    fn gridded_cross_histogram_counts_every_ordered_pair_once() {
        let a = tbs_datagen::uniform_points::<3>(700, BOX, 13);
        let b = tbs_datagen::uniform_points::<3>(900, BOX, 14);
        // r_max ≥ box diagonal: nothing can be pruned, so the histogram
        // total must be exactly |A|·|B|.
        let r = tbs_datagen::box_diagonal(BOX, 3) * 1.01;
        let bins = RadialBins::new(8, r);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let geom = GridGeometry::fit(&[&a, &b], r, &GridOptions::default());
        let ca = GriddedCatalog::build(&mut dev, geom.clone(), &a);
        let cb = GriddedCatalog::build(&mut dev, geom, &b);
        let got = gridded_cross_radial_histogram(
            &mut dev,
            &ca,
            &cb,
            bins,
            PairwisePlan::register_shm(64),
        )
        .expect("launch");
        assert_eq!(got.histogram.total(), 700 * 900);
    }

    #[test]
    fn single_cell_grid_degrades_to_one_launch() {
        let pts = tbs_datagen::uniform_points::<2>(256, BOX, 21);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, BOX * 2.0, &GridOptions::default());
        assert_eq!(cat.grid.geom.num_cells(), 1);
        let got = gridded_count_within(&mut dev, &cat, 30.0, PairwisePlan::register_shm(64))
            .expect("launch");
        assert_eq!(got.run.launches(), 1);
        assert_eq!(got.count, tbs_cpu::pcf_reference(&pts, 30.0));
    }

    #[test]
    fn empty_catalog_is_a_noop() {
        let pts = SoaPoints::<3>::new();
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, 1.0, &GridOptions::default());
        let got = gridded_count_within(&mut dev, &cat, 1.0, PairwisePlan::register_shm(64))
            .expect("launch");
        assert_eq!(got.count, 0);
        assert_eq!(got.run.launches(), 0);
    }
}
