//! Kernel-variant dispatch shared by every application.

use gpu_sim::{Device, KernelRun, SimError};
use tbs_core::analytic::profiles::InputPath;
use tbs_core::distance::DistanceKernel;
use tbs_core::kernels::{
    pair_launch, IntraMode, NaiveKernel, PairScope, RegisterRocKernel, RegisterShmKernel,
    ShmShmKernel, ShuffleKernel,
};
use tbs_core::output::PairAction;
use tbs_core::point::DeviceSoa;

/// How to run the pairwise stage: which input path, intra scheme and
/// block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwisePlan {
    /// Input-staging variant.
    pub input: InputPath,
    /// Intra-block iteration scheme (ignored by Naive and Shuffle).
    pub intra: IntraMode,
    /// Threads per block B.
    pub block_size: u32,
}

impl PairwisePlan {
    /// The paper's headline configuration: Register-SHM, B = 1024.
    pub fn register_shm(block_size: u32) -> Self {
        PairwisePlan {
            input: InputPath::RegisterShm,
            intra: IntraMode::Regular,
            block_size,
        }
    }

    pub fn with_intra(mut self, intra: IntraMode) -> Self {
        self.intra = intra;
        self
    }
}

/// Launch the pairwise kernel selected by `plan` with an arbitrary
/// distance function and output action.
///
/// Simulated faults (out-of-bounds accesses, invalid launches, …) come
/// back as `Err` so one bad kernel configuration fails its experiment,
/// not the whole sweep.
pub fn launch_pairwise<const D: usize, F, A>(
    dev: &mut Device,
    input: DeviceSoa<D>,
    dist: F,
    action: A,
    plan: PairwisePlan,
    scope: PairScope,
) -> Result<KernelRun, SimError>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    let lc = pair_launch(input.n, plan.block_size);
    match plan.input {
        InputPath::Naive => dev.try_launch(&NaiveKernel::new(input, dist, action, scope), lc),
        InputPath::ShmShm => dev.try_launch(
            &ShmShmKernel::new(input, dist, action, plan.block_size, scope, plan.intra),
            lc,
        ),
        InputPath::RegisterShm => dev.try_launch(
            &RegisterShmKernel::new(input, dist, action, plan.block_size, scope, plan.intra),
            lc,
        ),
        InputPath::RegisterRoc => dev.try_launch(
            &RegisterRocKernel::new(input, dist, action, plan.block_size, scope, plan.intra),
            lc,
        ),
        InputPath::Shuffle => dev.try_launch(
            &ShuffleKernel::new(input, dist, action, plan.block_size, scope),
            lc,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use tbs_core::distance::Euclidean;
    use tbs_core::output::CountWithinRadius;

    #[test]
    fn all_variants_dispatch_and_agree() {
        let pts = tbs_datagen::uniform_points::<3>(256, 100.0, 17);
        let mut counts = Vec::new();
        for input in [
            InputPath::Naive,
            InputPath::ShmShm,
            InputPath::RegisterShm,
            InputPath::RegisterRoc,
            InputPath::Shuffle,
        ] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let d_input = pts.upload(&mut dev);
            let lc = pair_launch(d_input.n, 64);
            let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
            let plan = PairwisePlan {
                input,
                intra: IntraMode::Regular,
                block_size: 64,
            };
            launch_pairwise(
                &mut dev,
                d_input,
                Euclidean,
                CountWithinRadius { radius: 30.0, out },
                plan,
                PairScope::HalfPairs,
            )
            .expect("launch");
            counts.push(dev.u64_slice(out).iter().sum::<u64>());
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "variants disagree: {counts:?}"
        );
        assert!(counts[0] > 0);
    }
}
