//! JSON snapshots of the simulator's instrumentation types.
//!
//! The bench harness (`tbs-bench::report`) embeds [`AccessTally`],
//! [`TimingBreakdown`] and [`KernelProfile`] values in its
//! schema-versioned experiment reports, and the CI perf gate diffs those
//! files against committed baselines — so the encodings here are strict
//! in both directions: every field is written, and decoding fails on a
//! missing, extra or mistyped field instead of defaulting. A silent
//! default would let a renamed counter slip through the gate as zero.
//!
//! Counters are `u64` in memory but JSON numbers are doubles; values
//! stay exact up to 2^53, far beyond any tally this workspace produces
//! (decoding rejects non-exact integers outright).

use crate::profile::{AchievedBandwidth, KernelProfile};
use crate::tally::AccessTally;
use crate::timing::{Resource, TimingBreakdown};
use tbs_json::{Json, JsonError};

fn schema_err<T>(what: &str) -> Result<T, JsonError> {
    Err(JsonError {
        msg: what.to_string(),
        offset: 0,
    })
}

fn req<'a>(obj: &'a Json, ty: &str, key: &str) -> Result<&'a Json, JsonError> {
    match obj.get(key) {
        Some(v) => Ok(v),
        None => schema_err(&format!("{ty}: missing field `{key}`")),
    }
}

fn req_u64(obj: &Json, ty: &str, key: &str) -> Result<u64, JsonError> {
    match req(obj, ty, key)?.as_u64() {
        Some(v) => Ok(v),
        None => schema_err(&format!("{ty}: field `{key}` is not an exact u64")),
    }
}

fn req_f64(obj: &Json, ty: &str, key: &str) -> Result<f64, JsonError> {
    match req(obj, ty, key)?.as_f64() {
        Some(v) => Ok(v),
        None => schema_err(&format!("{ty}: field `{key}` is not a number")),
    }
}

fn req_str<'a>(obj: &'a Json, ty: &str, key: &str) -> Result<&'a str, JsonError> {
    match req(obj, ty, key)?.as_str() {
        Some(v) => Ok(v),
        None => schema_err(&format!("{ty}: field `{key}` is not a string")),
    }
}

/// Require that `obj` has exactly `expected` fields — combined with the
/// per-field lookups this rejects unknown/renamed keys.
fn req_len(obj: &Json, ty: &str, expected: usize) -> Result<(), JsonError> {
    match obj.as_obj() {
        Some(pairs) if pairs.len() == expected => Ok(()),
        Some(pairs) => schema_err(&format!(
            "{ty}: expected {expected} fields, got {}",
            pairs.len()
        )),
        None => schema_err(&format!("{ty}: not an object")),
    }
}

/// Every counter field of [`AccessTally`], in declaration order. Adding
/// a field to the struct without updating this list fails the
/// `tally_json_covers_every_field` test below (via `..Default` being
/// unused) and the strict decoder at runtime.
macro_rules! for_each_tally_field {
    ($m:ident) => {
        $m!(
            warp_instructions,
            alu_instructions,
            control_instructions,
            shuffle_instructions,
            sync_instructions,
            useful_lane_ops,
            predicated_lane_slots,
            divergent_iterations,
            l2_hit_sectors,
            dram_sectors,
            global_load_instructions,
            global_store_instructions,
            global_load_bytes,
            global_store_bytes,
            global_atomics,
            global_atomic_serial,
            roc_load_instructions,
            roc_hit_sectors,
            roc_miss_sectors,
            roc_bytes,
            shared_load_instructions,
            shared_store_instructions,
            shared_transactions,
            shared_bytes,
            shared_bank_replays,
            shared_atomics,
            shared_atomic_serial,
            blocks_executed,
            warps_executed
        )
    };
}

impl AccessTally {
    /// Encode every counter as a JSON object (field names = Rust names).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        macro_rules! put {
            ($($f:ident),*) => { $( o.push(stringify!($f), self.$f); )* };
        }
        for_each_tally_field!(put);
        o
    }

    /// Strict inverse of [`AccessTally::to_json`].
    pub fn from_json(j: &Json) -> Result<AccessTally, JsonError> {
        let mut t = AccessTally::default();
        let mut count = 0usize;
        macro_rules! take {
            ($($f:ident),*) => { $(
                t.$f = req_u64(j, "AccessTally", stringify!($f))?;
                count += 1;
            )* };
        }
        for_each_tally_field!(take);
        req_len(j, "AccessTally", count)?;
        Ok(t)
    }
}

impl Resource {
    /// Inverse of [`Resource::name`].
    pub fn parse_name(name: &str) -> Option<Resource> {
        const ALL: [Resource; 8] = [
            Resource::Issue,
            Resource::Alu,
            Resource::SharedMem,
            Resource::Roc,
            Resource::L2,
            Resource::Dram,
            Resource::GlobalAtomic,
            Resource::Latency,
        ];
        ALL.into_iter().find(|r| r.name() == name)
    }
}

fn req_resource(obj: &Json, ty: &str, key: &str) -> Result<Resource, JsonError> {
    let name = req_str(obj, ty, key)?;
    match Resource::parse_name(name) {
        Some(r) => Ok(r),
        None => schema_err(&format!("{ty}: unknown resource `{name}` in `{key}`")),
    }
}

impl TimingBreakdown {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("cycles", self.cycles)
            .with("seconds", self.seconds)
            .with("issue_cycles", self.issue_cycles)
            .with("alu_cycles", self.alu_cycles)
            .with("shared_cycles", self.shared_cycles)
            .with("roc_cycles", self.roc_cycles)
            .with("l2_cycles", self.l2_cycles)
            .with("dram_cycles", self.dram_cycles)
            .with("global_atomic_cycles", self.global_atomic_cycles)
            .with("latency_cycles", self.latency_cycles)
            .with("bottleneck", self.bottleneck.name())
    }

    pub fn from_json(j: &Json) -> Result<TimingBreakdown, JsonError> {
        req_len(j, "TimingBreakdown", 11)?;
        let t = "TimingBreakdown";
        Ok(TimingBreakdown {
            cycles: req_f64(j, t, "cycles")?,
            seconds: req_f64(j, t, "seconds")?,
            issue_cycles: req_f64(j, t, "issue_cycles")?,
            alu_cycles: req_f64(j, t, "alu_cycles")?,
            shared_cycles: req_f64(j, t, "shared_cycles")?,
            roc_cycles: req_f64(j, t, "roc_cycles")?,
            l2_cycles: req_f64(j, t, "l2_cycles")?,
            dram_cycles: req_f64(j, t, "dram_cycles")?,
            global_atomic_cycles: req_f64(j, t, "global_atomic_cycles")?,
            latency_cycles: req_f64(j, t, "latency_cycles")?,
            bottleneck: req_resource(j, t, "bottleneck")?,
        })
    }
}

impl AchievedBandwidth {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("shared_gbps", self.shared_gbps)
            .with("l2_gbps", self.l2_gbps)
            .with("roc_gbps", self.roc_gbps)
            .with("global_load_gbps", self.global_load_gbps)
            .with("dram_gbps", self.dram_gbps)
    }

    pub fn from_json(j: &Json) -> Result<AchievedBandwidth, JsonError> {
        req_len(j, "AchievedBandwidth", 5)?;
        let t = "AchievedBandwidth";
        Ok(AchievedBandwidth {
            shared_gbps: req_f64(j, t, "shared_gbps")?,
            l2_gbps: req_f64(j, t, "l2_gbps")?,
            roc_gbps: req_f64(j, t, "roc_gbps")?,
            global_load_gbps: req_f64(j, t, "global_load_gbps")?,
            dram_gbps: req_f64(j, t, "dram_gbps")?,
        })
    }
}

impl KernelProfile {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("kernel", self.kernel.as_str())
            .with("arithmetic_utilization", self.arithmetic_utilization)
            .with("control_flow_utilization", self.control_flow_utilization)
            .with("memory_bottleneck", self.memory_bottleneck.name())
            .with("memory_utilization", self.memory_utilization)
            .with("shared_utilization", self.shared_utilization)
            .with("roc_utilization", self.roc_utilization)
            .with("l2_utilization", self.l2_utilization)
            .with("dram_utilization", self.dram_utilization)
            .with("bandwidth", self.bandwidth.to_json())
            .with("simd_efficiency", self.simd_efficiency)
            .with("occupancy", self.occupancy)
    }

    pub fn from_json(j: &Json) -> Result<KernelProfile, JsonError> {
        req_len(j, "KernelProfile", 12)?;
        let t = "KernelProfile";
        Ok(KernelProfile {
            kernel: req_str(j, t, "kernel")?.to_string(),
            arithmetic_utilization: req_f64(j, t, "arithmetic_utilization")?,
            control_flow_utilization: req_f64(j, t, "control_flow_utilization")?,
            memory_bottleneck: req_resource(j, t, "memory_bottleneck")?,
            memory_utilization: req_f64(j, t, "memory_utilization")?,
            shared_utilization: req_f64(j, t, "shared_utilization")?,
            roc_utilization: req_f64(j, t, "roc_utilization")?,
            l2_utilization: req_f64(j, t, "l2_utilization")?,
            dram_utilization: req_f64(j, t, "dram_utilization")?,
            bandwidth: AchievedBandwidth::from_json(req(j, t, "bandwidth")?)?,
            simd_efficiency: req_f64(j, t, "simd_efficiency")?,
            occupancy: req_f64(j, t, "occupancy")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::occupancy::occupancy;
    use crate::timing::TimingModel;

    fn sample_tally() -> AccessTally {
        let mut t = AccessTally::default();
        // Give every field a distinct non-zero value so a swapped pair
        // of keys cannot cancel out in the round-trip comparison.
        let mut v = 1u64;
        macro_rules! fill {
            ($($f:ident),*) => { $( t.$f = v; v += 7; )* };
        }
        for_each_tally_field!(fill);
        t
    }

    #[test]
    fn tally_json_covers_every_field() {
        let t = sample_tally();
        let j = t.to_json();
        let back = AccessTally::from_json(&j).unwrap();
        assert_eq!(back, t);
        // Text round-trip too (through the writer and parser).
        let text = j.render().unwrap();
        let re = AccessTally::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(re, t);
    }

    #[test]
    fn tally_decoding_is_strict() {
        let t = sample_tally();
        // Missing field.
        let mut j = t.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "dram_sectors");
        }
        assert!(AccessTally::from_json(&j).is_err());
        // Extra field.
        let j = t.to_json().with("not_a_counter", 1u32);
        assert!(AccessTally::from_json(&j).is_err());
        // Fractional counter.
        let mut j = t.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::Num(1.5);
        }
        assert!(AccessTally::from_json(&j).is_err());
    }

    #[test]
    fn resource_names_round_trip() {
        for r in [
            Resource::Issue,
            Resource::Alu,
            Resource::SharedMem,
            Resource::Roc,
            Resource::L2,
            Resource::Dram,
            Resource::GlobalAtomic,
            Resource::Latency,
        ] {
            assert_eq!(Resource::parse_name(r.name()), Some(r));
        }
        assert_eq!(Resource::parse_name("warp drive"), None);
    }

    #[test]
    fn timing_and_profile_round_trip() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 10_000,
            alu_instructions: 4_000,
            shared_load_instructions: 3_000,
            shared_transactions: 3_500,
            shared_bytes: 3_000 * 128,
            l2_hit_sectors: 700,
            dram_sectors: 300,
            useful_lane_ops: 250_000,
            predicated_lane_slots: 70_000,
            ..Default::default()
        };
        let occ = occupancy(&cfg, 1000, 1024, 32, 4096);
        let timing = TimingModel::new(&cfg).estimate(&t, &occ, 1000);
        let back = TimingBreakdown::from_json(&timing.to_json()).unwrap();
        assert_eq!(back, timing);

        let p = KernelProfile::build("reg-shm", &cfg, &t, &occ, &timing);
        let back = KernelProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }
}
