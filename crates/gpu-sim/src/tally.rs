//! Instrumentation counters collected while a kernel executes.
//!
//! An [`AccessTally`] is the bridge between the functional engine and the
//! timing model: the engine fills one in from the *actual* addresses and
//! masks each warp issues, and `tbs-core::analytic` produces the same
//! structure from closed-form expressions (the paper's equations 2–7),
//! letting property tests assert the two agree.

/// Counters for every event class the timing model charges for.
///
/// All counts are whole-kernel totals; the timing model divides by the SM
/// count where appropriate.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AccessTally {
    // ---- instruction issue ----
    /// Total warp instructions issued (arithmetic + memory + control +
    /// shuffle + sync).
    pub warp_instructions: u64,
    /// Arithmetic (FP32/int) warp instructions.
    pub alu_instructions: u64,
    /// Control-flow warp instructions (loop tests, branches).
    pub control_instructions: u64,
    /// Warp shuffle instructions (register content exchange, §IV-E2).
    pub shuffle_instructions: u64,
    /// `__syncthreads()` executions, counted per warp.
    pub sync_instructions: u64,
    /// Sum of active lanes over all issued instructions (useful work).
    pub useful_lane_ops: u64,
    /// Sum of *inactive* lane slots over all issued instructions — the
    /// SIMD capacity wasted to divergence/predication.
    pub predicated_lane_slots: u64,
    /// Number of loop iterations executed with a partially-active mask
    /// (each one pays the re-convergence penalty).
    pub divergent_iterations: u64,

    // ---- global memory ----
    /// 32-byte sectors requested from the global-memory path that *hit*
    /// in L2.
    pub l2_hit_sectors: u64,
    /// 32-byte sectors that missed L2 and went to DRAM.
    pub dram_sectors: u64,
    /// Warp-level global load instructions.
    pub global_load_instructions: u64,
    /// Warp-level global store instructions.
    pub global_store_instructions: u64,
    /// Bytes usefully loaded from global memory (active lanes × width).
    pub global_load_bytes: u64,
    /// Bytes usefully stored to global memory.
    pub global_store_bytes: u64,
    /// Warp-level global atomic instructions.
    pub global_atomics: u64,
    /// Serialization: Σ over global atomic instructions of the maximum
    /// number of active lanes sharing one address (≥ 1 per instruction).
    pub global_atomic_serial: u64,

    // ---- read-only data cache ----
    /// Warp-level load instructions issued on the ROC path.
    pub roc_load_instructions: u64,
    /// 32-byte sectors served by the read-only cache (hits).
    pub roc_hit_sectors: u64,
    /// 32-byte sectors that missed the ROC (also counted in L2/DRAM
    /// traffic above).
    pub roc_miss_sectors: u64,
    /// Bytes usefully loaded through the ROC path.
    pub roc_bytes: u64,

    // ---- shared memory ----
    /// Warp-level shared load instructions.
    pub shared_load_instructions: u64,
    /// Warp-level shared store instructions.
    pub shared_store_instructions: u64,
    /// Warp-level shared-memory transactions, *including* bank-conflict
    /// replays and atomic serialization replays.
    pub shared_transactions: u64,
    /// Bytes moved to/from shared memory (active lanes × width).
    pub shared_bytes: u64,
    /// Extra transactions caused by bank conflicts (degree − 1 summed).
    pub shared_bank_replays: u64,
    /// Warp-level shared atomic instructions.
    pub shared_atomics: u64,
    /// Serialization: Σ over shared atomic instructions of the maximum
    /// number of active lanes sharing one address.
    pub shared_atomic_serial: u64,

    // ---- bookkeeping ----
    /// Thread blocks executed.
    pub blocks_executed: u64,
    /// Warps executed (blocks × warps per block).
    pub warps_executed: u64,
}

impl AccessTally {
    /// Create an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate another tally into this one (used to merge per-block
    /// tallies into the kernel total).
    pub fn merge(&mut self, o: &AccessTally) {
        self.warp_instructions += o.warp_instructions;
        self.alu_instructions += o.alu_instructions;
        self.control_instructions += o.control_instructions;
        self.shuffle_instructions += o.shuffle_instructions;
        self.sync_instructions += o.sync_instructions;
        self.useful_lane_ops += o.useful_lane_ops;
        self.predicated_lane_slots += o.predicated_lane_slots;
        self.divergent_iterations += o.divergent_iterations;
        self.l2_hit_sectors += o.l2_hit_sectors;
        self.dram_sectors += o.dram_sectors;
        self.global_load_instructions += o.global_load_instructions;
        self.global_store_instructions += o.global_store_instructions;
        self.global_load_bytes += o.global_load_bytes;
        self.global_store_bytes += o.global_store_bytes;
        self.global_atomics += o.global_atomics;
        self.global_atomic_serial += o.global_atomic_serial;
        self.roc_load_instructions += o.roc_load_instructions;
        self.roc_hit_sectors += o.roc_hit_sectors;
        self.roc_miss_sectors += o.roc_miss_sectors;
        self.roc_bytes += o.roc_bytes;
        self.shared_load_instructions += o.shared_load_instructions;
        self.shared_store_instructions += o.shared_store_instructions;
        self.shared_transactions += o.shared_transactions;
        self.shared_bytes += o.shared_bytes;
        self.shared_bank_replays += o.shared_bank_replays;
        self.shared_atomics += o.shared_atomics;
        self.shared_atomic_serial += o.shared_atomic_serial;
        self.blocks_executed += o.blocks_executed;
        self.warps_executed += o.warps_executed;
    }

    /// Total sectors requested on the global path (L2 hits + DRAM).
    pub fn global_sectors(&self) -> u64 {
        self.l2_hit_sectors + self.dram_sectors
    }

    /// Total warp-level memory instructions of any kind.
    pub fn memory_instructions(&self) -> u64 {
        self.global_load_instructions
            + self.global_store_instructions
            + self.global_atomics
            + self.roc_load_instructions
            + self.shared_load_instructions
            + self.shared_store_instructions
            + self.shared_atomics
    }

    /// SIMD efficiency: fraction of issued lane slots doing useful work.
    /// 1.0 means no divergence at all.
    pub fn simd_efficiency(&self) -> f64 {
        let total = self.useful_lane_ops + self.predicated_lane_slots;
        if total == 0 {
            1.0
        } else {
            self.useful_lane_ops as f64 / total as f64
        }
    }

    /// Average global atomic contention degree (1.0 = conflict-free).
    pub fn global_atomic_contention(&self) -> f64 {
        if self.global_atomics == 0 {
            1.0
        } else {
            self.global_atomic_serial as f64 / self.global_atomics as f64
        }
    }

    /// Average shared atomic contention degree (1.0 = conflict-free).
    pub fn shared_atomic_contention(&self) -> f64 {
        if self.shared_atomics == 0 {
            1.0
        } else {
            self.shared_atomic_serial as f64 / self.shared_atomics as f64
        }
    }
}

/// Host-side interpreter statistics: dispatch counts, fused-op coverage
/// and cache-memoization hit counts.
///
/// Deliberately a separate struct from [`AccessTally`]: the tally models
/// the *simulated device* and is compared bit-for-bit by the differential
/// tests, while these counters describe how the *interpreter* executed —
/// the fused fast path and the unfused op-by-op route produce identical
/// tallies but very different `InterpStats`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct InterpStats {
    /// Interpreter op dispatches: one per warp-level charge entry
    /// (`charge`/`charge_alu`/`charge_control`), i.e. one per
    /// individually-interpreted warp instruction. Fused tile passes
    /// charge whole tiles in closed form and so count as few dispatches
    /// for many warp instructions.
    pub dispatches: u64,
    /// Fused tile passes executed on the fast path.
    pub fused_ops: u64,
    /// Useful lane ops covered by fused fast passes (compare against
    /// `AccessTally::useful_lane_ops` for coverage).
    pub fused_lane_ops: u64,
    /// Compiled (plan-lowered) passes executed: whole tile loads, inner
    /// tile passes and intra-block triangles run as straight-line host
    /// code with closed-form charges.
    pub compiled_ops: u64,
    /// Useful lane ops covered by compiled passes.
    pub compiled_lane_ops: u64,
    /// L2 + ROC sectors whose hit was replayed from a generation-stamped
    /// memo without probing the FIFO table.
    pub memo_replayed_sectors: u64,
    /// L2 + ROC sectors that took a real table probe while memoization
    /// was enabled.
    pub memo_probed_sectors: u64,
}

impl InterpStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, o: &InterpStats) {
        self.dispatches += o.dispatches;
        self.fused_ops += o.fused_ops;
        self.fused_lane_ops += o.fused_lane_ops;
        self.compiled_ops += o.compiled_ops;
        self.compiled_lane_ops += o.compiled_lane_ops;
        self.memo_replayed_sectors += o.memo_replayed_sectors;
        self.memo_probed_sectors += o.memo_probed_sectors;
    }

    /// Fraction of useful lane ops executed by fused passes, given the
    /// run's tally. 0.0 when nothing ran.
    pub fn fused_coverage(&self, tally: &AccessTally) -> f64 {
        if tally.useful_lane_ops == 0 {
            0.0
        } else {
            self.fused_lane_ops as f64 / tally.useful_lane_ops as f64
        }
    }

    /// Fraction of useful lane ops executed by compiled (plan-lowered)
    /// passes, given the run's tally. 0.0 when nothing ran.
    pub fn compiled_coverage(&self, tally: &AccessTally) -> f64 {
        if tally.useful_lane_ops == 0 {
            0.0
        } else {
            self.compiled_lane_ops as f64 / tally.useful_lane_ops as f64
        }
    }

    /// Fraction of memo-eligible sector lookups replayed without a
    /// probe. 0.0 when memoization never engaged.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_replayed_sectors + self.memo_probed_sectors;
        if total == 0 {
            0.0
        } else {
            self.memo_replayed_sectors as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessTally {
        AccessTally {
            warp_instructions: 100,
            alu_instructions: 60,
            useful_lane_ops: 1600,
            predicated_lane_slots: 400,
            shared_atomics: 10,
            shared_atomic_serial: 25,
            l2_hit_sectors: 7,
            dram_sectors: 3,
            ..Default::default()
        }
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.warp_instructions, 200);
        assert_eq!(a.alu_instructions, 120);
        assert_eq!(a.shared_atomic_serial, 50);
        assert_eq!(a.global_sectors(), 20);
    }

    #[test]
    fn simd_efficiency_counts_predication() {
        let t = sample();
        assert!((t.simd_efficiency() - 0.8).abs() < 1e-12);
        assert_eq!(AccessTally::default().simd_efficiency(), 1.0);
    }

    #[test]
    fn contention_degrees() {
        let t = sample();
        assert!((t.shared_atomic_contention() - 2.5).abs() < 1e-12);
        assert_eq!(t.global_atomic_contention(), 1.0);
    }
}
