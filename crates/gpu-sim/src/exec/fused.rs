//! Operand sources, predicates and consumers for fused tile execution.
//!
//! The paper's tiling kernels spend almost all of their time in one inner
//! loop shape: *for each element `j` of a resident tile, broadcast the
//! element to the warp, evaluate a distance against per-lane registers
//! under a predicate, and fold the value into a per-lane accumulator.*
//! Interpreting that loop op-by-op costs several interpreter dispatches
//! per element. [`WarpCtx::fused_tile_pass`](super::WarpCtx::fused_tile_pass)
//! executes the whole loop in one call: flat per-lane loops compute the
//! values, and all instruction/byte/lane accounting is charged in closed
//! form — bit-identical to the op-by-op route (the differential tests in
//! `tests/differential.rs` prove it).
//!
//! The three enums here describe the loop to the fused executor:
//! where the broadcast operand comes from ([`FusedSrc`]), which lanes
//! participate at each step ([`FusedPred`]), and what happens to the
//! distance value ([`FusedConsumer`]).

use crate::mem::{BufF32, ShmF32, ShmU32};
use crate::{F32x32, U64x32};

/// Where the per-step broadcast operand of a fused tile pass comes from.
///
/// At step `j` (0-based) the executor materializes one `D`-dimensional
/// point that every active lane compares against its own registers.
#[derive(Debug, Clone, Copy)]
pub enum FusedSrc<'t, const D: usize> {
    /// Element `j` of each of `D` shared-memory tile arrays
    /// (`broadcast_from_shared` per step). Charged as one shared load
    /// instruction / one broadcast transaction per dimension per step.
    SharedBroadcast(&'t [ShmF32; D]),
    /// Element `start + j` of each of `D` global coordinate buffers read
    /// through the read-only data cache (`roc_broadcast` per step). The
    /// per-sector hit/miss stream is driven in batched sector runs: the
    /// first touch of each sector probes for real, and while the FIFO's
    /// eviction generation is unchanged the remaining touches of the run
    /// replay as bulk hits — ROC/L2 state and counters match the unfused
    /// route exactly.
    RocBroadcast {
        /// One coordinate buffer per dimension.
        bufs: &'t [BufF32; D],
        /// Global element index of tile step 0.
        start: u32,
    },
    /// Lane `j % 32` of a register fragment held by the warp itself
    /// (`shfl_bcast_f32` per step, the paper's §IV-E2 shuffle kernel).
    /// Charged as one shuffle instruction per dimension per step.
    LaneBroadcast(&'t [F32x32; D]),
}

/// Which lanes evaluate the distance at step `j` of a fused tile pass.
///
/// The predicates mirror the three guard expressions the tiling kernels
/// emit. `gid0` is the global thread id of lane 0 and `base` the global
/// element index of step 0; lane `l` holds element `gid0 + l` and step
/// `j` broadcasts element `base + j` — contiguity is what makes the
/// masks computable in closed form.
#[derive(Debug, Clone, Copy)]
pub enum FusedPred {
    /// Every valid lane participates at every step (inter-block tiles:
    /// the sets are disjoint). No predicate ALU charge.
    All,
    /// Skip the self-pair `gid0 + l == base + j` (intra-block
    /// `AllPairs`). Charged one ALU op per step, as `ne_u32` would be.
    NotEqual {
        /// Global thread id of lane 0.
        gid0: u32,
        /// Global element index of tile step 0.
        base: u32,
    },
    /// Only lanes with `gid0 + l < base + j` participate (intra-block
    /// `HalfPairs` in the shuffle kernel). Charged one ALU op per step.
    LessThan {
        /// Global thread id of lane 0.
        gid0: u32,
        /// Global element index of tile step 0.
        base: u32,
    },
}

/// What a fused tile pass does with each per-lane distance value.
///
/// These mirror the `PairAction::process` bodies of the three fusible
/// actions; the ALU charges per step are identical to the unfused calls.
#[derive(Debug)]
pub enum FusedConsumer<'c> {
    /// `CountWithinRadius`: `acc[l] += 1` where the value is strictly
    /// below `radius` (two ALU ops per step: compare + add).
    CountLt {
        /// Exclusive distance threshold.
        radius: f32,
        /// Per-lane hit counters for this warp.
        acc: &'c mut U64x32,
    },
    /// `KdeAction`: `acc[l] += value` on every predicated lane (one ALU
    /// op per step).
    Sum {
        /// Per-lane partial sums for this warp.
        acc: &'c mut F32x32,
    },
    /// `SharedHistogramAction`: bucket the value (two ALU ops, all 32
    /// lanes in one vectorized pass) and scatter into the privatized
    /// histogram. The atomic's data-dependent serialization is accounted
    /// in closed form from the vectorized bucket indices
    /// (`SharedSpace::atomic_scatter_accounting`) instead of dispatching
    /// a simulated 32-lane atomic per step; a fault pre-flight declines
    /// the whole pass to the op-by-op route if any scatter could go out
    /// of bounds.
    Histogram {
        /// `buckets / max_distance` (see `HistogramSpec::inv_width`).
        inv_width: f32,
        /// Highest valid bucket index (`buckets - 1`).
        hmax: u32,
        /// The privatized per-block histogram.
        shm: ShmU32,
    },
    /// `MultiQueryAction` (the serve layer's coalesced batch): one
    /// distance evaluation per step feeds every sink in order, so k
    /// queries over the same dataset share a single pairwise sweep.
    /// ALU, warp-instruction, and scatter charges are the sums of the
    /// per-sink charges — the pass stays bit-identical (outputs *and*
    /// tallies) to driving the same sinks through the op-by-op route.
    Multi(Vec<FusedSink<'c>>),
}

/// One consumer of a [`FusedConsumer::Multi`] batched pass.
///
/// Each sink mirrors the corresponding single-consumer variant's
/// per-step behaviour and ALU charge (two ops: compare+add /
/// bucket+clamp), but shares the one distance evaluation with every
/// other sink in the batch.
#[derive(Debug)]
pub enum FusedSink<'c> {
    /// `CountWithinRadius`-shaped: `acc[l] += 1` where the value is
    /// strictly below `radius`.
    CountLt {
        /// Exclusive distance threshold.
        radius: f32,
        /// Per-lane hit counters for this warp.
        acc: &'c mut U64x32,
    },
    /// `SharedHistogramAction`-shaped: vectorized bucketing plus one
    /// privatized shared atomic per step, with the scatter's
    /// data-dependent serialization accounted in closed form exactly as
    /// [`FusedConsumer::Histogram`] does.
    Histogram {
        /// `buckets / max_distance` (see `HistogramSpec::inv_width`).
        inv_width: f32,
        /// Highest valid bucket index (`buckets - 1`).
        hmax: u32,
        /// The privatized per-block histogram for this sink.
        shm: ShmU32,
    },
}
