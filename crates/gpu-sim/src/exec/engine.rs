//! The block-execution engine: sequential reference semantics and the
//! deterministic parallel engine.
//!
//! ## Sequential semantics (the contract)
//!
//! Blocks run in grid order against one device-wide, cold-per-launch
//! [`L2Cache`]; each block gets fresh shared memory and ROC state; the
//! first faulting block (in grid order) aborts the launch, leaving the
//! memory mutations of all earlier blocks — and of the faulting block up
//! to its fault — in place.
//!
//! ## The parallel engine
//!
//! Reproducing those semantics bit-for-bit on multiple host threads is the
//! whole game: the device-wide L2 means even "independent" blocks share
//! cache state, and the analytic model (`tbs-core::analytic`) depends on
//! the resulting cross-block reuse. The engine therefore splits every
//! window of blocks into two phases:
//!
//! 1. **Speculate (parallel)** — workers execute blocks against an
//!    immutable snapshot of global memory, recording a write log, an
//!    L2 sector trace in program order, and read/write buffer sets
//!    (see [`crate::mem::replay`]). Blocks whose results could depend on
//!    block ordering — value-returning atomics, reads of self-written
//!    buffers — abandon speculation early.
//! 2. **Commit (in block order)** — for each block: if it abandoned
//!    speculation *or* reads a buffer written by an earlier block of the
//!    same window, it is re-executed directly (exactly the sequential
//!    path); otherwise its sector trace is replayed through the single L2
//!    (yielding the sequential hit/miss split) and its write log applied.
//!    Fault and shared-memory checks run in block order.
//!
//! Windows bound both memory (logs/traces of at most `threads × 8` blocks
//! are alive) and staleness (each window's snapshot includes every prior
//! window's writes). The result: outputs, tallies, and first-fault
//! behaviour are bit-identical to [`run_sequential`], which the
//! `it_properties` suite asserts across kernel variants and output modes.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::config::{DeviceConfig, ExecMode};
use crate::error::SimError;
use crate::exec::block::{BlockCtx, GlobalPort, SpecRecord};
use crate::exec::{Kernel, KernelResources, LaunchConfig};
use crate::mem::replay::BufSet;
use crate::mem::{GlobalMem, L2Cache};
use crate::tally::{AccessTally, InterpStats};

/// Blocks speculated per worker thread before a commit barrier.
const WINDOW_BLOCKS_PER_THREAD: usize = 8;

/// Everything one executed block hands to the commit phase.
struct BlockOutcome {
    tally: AccessTally,
    /// Host interpreter statistics (block-local dispatch/fusion counts
    /// plus the block's ROC memoization counters).
    interp: InterpStats,
    fault: Option<SimError>,
    shared_allocated: u64,
    reads: BufSet,
    writes: BufSet,
    /// Write log + sector trace (speculative runs only).
    spec: Option<SpecRecord>,
    /// Speculation abandoned: commit must re-execute directly.
    needs_reexec: bool,
}

/// The device-wide L2 for one launch: the legacy body in scalar-reference
/// mode, the fast body with generation-stamped run memoization when the
/// fused fast paths are on, the plain fast body otherwise. All three make
/// identical hit/miss decisions.
fn new_l2(cfg: &DeviceConfig) -> L2Cache {
    if cfg.scalar_reference {
        L2Cache::new_reference(cfg.l2_sectors())
    } else if cfg.fused_tile || cfg.compiled {
        L2Cache::new_memoized(cfg.l2_sectors())
    } else {
        L2Cache::new(cfg.l2_sectors())
    }
}

/// Fold the launch-wide L2's memoization counters into the stats (the
/// per-block ROC counters travel inside each [`BlockOutcome`]).
fn collect_l2_memo(l2: &L2Cache, stats: &mut InterpStats) {
    stats.memo_replayed_sectors += l2.memo_replayed();
    stats.memo_probed_sectors += l2.memo_probed();
}

/// Run the whole grid under the configured [`ExecMode`], returning the
/// merged tally and host interpreter statistics. Mutations land in
/// `global`; the first fault (in block order) aborts the launch exactly
/// as the sequential engine would.
pub(crate) fn run_grid<K: Kernel + ?Sized>(
    global: &mut GlobalMem,
    cfg: &DeviceConfig,
    kernel: &K,
    lc: LaunchConfig,
    res: KernelResources,
) -> Result<(AccessTally, InterpStats), SimError> {
    let threads = match cfg.exec_mode {
        ExecMode::Sequential => 1,
        m => m.resolved_threads(),
    };
    if threads < 2 || lc.grid_dim < 2 {
        run_sequential(global, cfg, kernel, lc, res)
    } else {
        run_parallel(global, cfg, kernel, lc, res, threads)
    }
}

/// The reference engine: one host thread, blocks in grid order.
fn run_sequential<K: Kernel + ?Sized>(
    global: &mut GlobalMem,
    cfg: &DeviceConfig,
    kernel: &K,
    lc: LaunchConfig,
    res: KernelResources,
) -> Result<(AccessTally, InterpStats), SimError> {
    let mut l2 = new_l2(cfg);
    let mut total = AccessTally::new();
    let mut stats = InterpStats::default();
    for b in 0..lc.grid_dim {
        let outcome = run_block_direct(global, &mut l2, cfg, kernel, b, lc);
        commit_checks(outcome, kernel, res, lc, &mut total, &mut stats)?;
    }
    collect_l2_memo(&l2, &mut stats);
    Ok((total, stats))
}

/// The deterministic parallel engine: speculate in windows, commit in
/// block order.
fn run_parallel<K: Kernel + ?Sized>(
    global: &mut GlobalMem,
    cfg: &DeviceConfig,
    kernel: &K,
    lc: LaunchConfig,
    res: KernelResources,
    threads: usize,
) -> Result<(AccessTally, InterpStats), SimError> {
    let mut l2 = new_l2(cfg);
    let mut total = AccessTally::new();
    let mut stats = InterpStats::default();
    let window = (threads * WINDOW_BLOCKS_PER_THREAD) as u32;
    let mut committed = 0u32;
    let mut reexecuted = 0u32;
    let mut start = 0u32;
    // Per-worker result buffers, reused across windows (`drain` keeps
    // their capacity) so the steady-state speculate phase allocates
    // nothing per window.
    let mut worker_bufs: Vec<Vec<(u32, BlockOutcome)>> = (0..threads).map(|_| Vec::new()).collect();
    while start < lc.grid_dim {
        // A launch where every block abandons speculation (e.g. pair-list
        // kernels allocating output slots from a global cursor) gains
        // nothing from further speculative passes: finish sequentially.
        if committed >= window && reexecuted == committed {
            for b in start..lc.grid_dim {
                let outcome = run_block_direct(global, &mut l2, cfg, kernel, b, lc);
                commit_checks(outcome, kernel, res, lc, &mut total, &mut stats)?;
            }
            collect_l2_memo(&l2, &mut stats);
            return Ok((total, stats));
        }

        let end = (start + window).min(lc.grid_dim);
        let count = end - start;

        // ---- phase 1: speculate this window's blocks in parallel ----
        let mut slots: Vec<Option<BlockOutcome>> = std::iter::repeat_with(|| None)
            .take(count as usize)
            .collect();
        {
            let snapshot: &GlobalMem = global;
            let next = AtomicU32::new(0);
            std::thread::scope(|s| {
                let workers: Vec<_> = worker_bufs
                    .iter_mut()
                    .take(threads.min(count as usize))
                    .map(|done| {
                        let next = &next;
                        s.spawn(move || loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                return;
                            }
                            done.push((i, run_block_spec(snapshot, cfg, kernel, start + i, lc)));
                        })
                    })
                    .collect();
                for w in workers {
                    // Preserve kernel host-code panics (test asserts).
                    if let Err(payload) = w.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
            for done in worker_bufs.iter_mut() {
                for (i, outcome) in done.drain(..) {
                    slots[i as usize] = Some(outcome);
                }
            }
        }

        // ---- phase 2: commit in block order ----
        let mut window_writes = BufSet::default();
        for i in 0..count {
            let b = start + i;
            let mut outcome = slots[i as usize]
                .take()
                .expect("every block was speculated");
            if outcome.needs_reexec || outcome.reads.intersects(&window_writes) {
                outcome = run_block_direct(global, &mut l2, cfg, kernel, b, lc);
                reexecuted += 1;
            } else {
                let spec = outcome.spec.take().expect("speculative record");
                spec.trace.replay(&mut l2, &mut outcome.tally);
                global.apply_log(&spec.log);
            }
            window_writes.union_with(&outcome.writes);
            committed += 1;
            commit_checks(outcome, kernel, res, lc, &mut total, &mut stats)?;
        }
        start = end;
    }
    collect_l2_memo(&l2, &mut stats);
    Ok((total, stats))
}

/// Run one block directly against global memory and the shared L2.
fn run_block_direct<K: Kernel + ?Sized>(
    global: &mut GlobalMem,
    l2: &mut L2Cache,
    cfg: &DeviceConfig,
    kernel: &K,
    block_id: u32,
    lc: LaunchConfig,
) -> BlockOutcome {
    let mut blk = BlockCtx::direct(global, l2, cfg, block_id, lc.grid_dim, lc.block_dim);
    kernel.run_block(&mut blk);
    into_outcome(blk)
}

/// Run one block speculatively against a global-memory snapshot.
fn run_block_spec<K: Kernel + ?Sized>(
    global: &GlobalMem,
    cfg: &DeviceConfig,
    kernel: &K,
    block_id: u32,
    lc: LaunchConfig,
) -> BlockOutcome {
    let mut blk = BlockCtx::speculative(global, cfg, block_id, lc.grid_dim, lc.block_dim);
    kernel.run_block(&mut blk);
    into_outcome(blk)
}

fn into_outcome(blk: BlockCtx<'_>) -> BlockOutcome {
    let shared_allocated = blk.shared.allocated_bytes();
    // The per-block ROC's memoization counters ride along with the
    // block's interpreter stats.
    let mut interp = blk.interp;
    interp.memo_replayed_sectors += blk.roc.memo_replayed();
    interp.memo_probed_sectors += blk.roc.memo_probed();
    BlockOutcome {
        tally: blk.tally,
        interp,
        fault: blk.fault,
        shared_allocated,
        reads: blk.reads,
        writes: blk.writes,
        spec: match blk.port {
            GlobalPort::Direct { .. } => None,
            GlobalPort::Speculative { rec, .. } => Some(rec),
        },
        needs_reexec: blk.needs_reexec,
    }
}

/// Post-block bookkeeping shared by both engines, applied in block order:
/// first-fault propagation, the shared-memory over-allocation check, and
/// the per-block tally merge.
fn commit_checks<K: Kernel + ?Sized>(
    mut outcome: BlockOutcome,
    kernel: &K,
    res: KernelResources,
    lc: LaunchConfig,
    total: &mut AccessTally,
    stats: &mut InterpStats,
) -> Result<(), SimError> {
    if let Some(fault) = outcome.fault {
        return Err(fault);
    }
    if outcome.shared_allocated > res.shared_mem_bytes as u64 {
        return Err(SimError::InvalidLaunch {
            reason: format!(
                "kernel '{}' allocated {} B of shared memory but declared {} B \
                 (occupancy would be wrong)",
                kernel.name(),
                outcome.shared_allocated,
                res.shared_mem_bytes
            ),
        });
    }
    outcome.tally.blocks_executed = 1;
    outcome.tally.warps_executed = lc.warps_per_block() as u64;
    total.merge(&outcome.tally);
    stats.merge(&outcome.interp);
    Ok(())
}
