//! Warp active masks.

use crate::WARP_SIZE;

/// A 32-bit active-lane mask, bit `i` = lane `i` participates.
///
/// Every [`super::WarpCtx`] operation takes a `Mask`; divergence is
/// modeled by operations executing under partial masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mask(pub u32);

impl Mask {
    /// All 32 lanes active.
    pub const FULL: Mask = Mask(u32::MAX);
    /// No lanes active.
    pub const NONE: Mask = Mask(0);

    /// Mask with the first `n` lanes active (clamped to 32).
    #[inline]
    pub fn first_n(n: u32) -> Mask {
        if n >= WARP_SIZE as u32 {
            Mask::FULL
        } else {
            Mask((1u32 << n) - 1)
        }
    }

    /// Mask from a per-lane predicate.
    #[inline]
    pub fn from_fn(mut pred: impl FnMut(usize) -> bool) -> Mask {
        let mut bits = 0u32;
        for lane in 0..WARP_SIZE {
            bits |= (pred(lane) as u32) << lane;
        }
        Mask(bits)
    }

    /// Is lane `i` active?
    #[inline]
    pub fn lane(&self, i: usize) -> bool {
        debug_assert!(i < WARP_SIZE);
        self.0 & (1 << i) != 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Any lane active?
    #[inline]
    pub fn any(&self) -> bool {
        self.0 != 0
    }

    /// All 32 lanes active?
    #[inline]
    pub fn all(&self) -> bool {
        self.0 == u32::MAX
    }

    /// Is this a contiguous prefix of lanes (`first_n(count())`)?
    /// Trivially true for [`Mask::FULL`] and [`Mask::NONE`] — the shape
    /// the memory fast paths exploit (unit-stride ragged-warp accesses).
    #[inline]
    pub fn is_prefix(&self) -> bool {
        self.0 & self.0.wrapping_add(1) == 0
    }

    /// Intersection of two masks.
    #[inline]
    pub fn and(&self, o: Mask) -> Mask {
        Mask(self.0 & o.0)
    }

    /// Union of two masks.
    #[inline]
    pub fn or(&self, o: Mask) -> Mask {
        Mask(self.0 | o.0)
    }

    /// Lanes in `self` but not in `o`.
    #[inline]
    pub fn and_not(&self, o: Mask) -> Mask {
        Mask(self.0 & !o.0)
    }

    /// Iterate indices of active lanes, ascending. Driven by
    /// `trailing_zeros` so the cost is one bit-trick per *active* lane,
    /// not one test per possible lane.
    #[inline]
    pub fn lanes(&self) -> Lanes {
        Lanes(self.0)
    }
}

/// Iterator over the active lane indices of a [`Mask`], ascending.
#[derive(Debug, Clone)]
pub struct Lanes(u32);

impl Iterator for Lanes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Lanes {}
impl std::iter::FusedIterator for Lanes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_basics() {
        assert_eq!(Mask::first_n(0), Mask::NONE);
        assert_eq!(Mask::first_n(32), Mask::FULL);
        assert_eq!(Mask::first_n(33), Mask::FULL);
        let m = Mask::first_n(5);
        assert_eq!(m.count(), 5);
        assert!(m.lane(4) && !m.lane(5));
    }

    #[test]
    fn from_fn_and_lanes_roundtrip() {
        let m = Mask::from_fn(|i| i % 3 == 0);
        let lanes: Vec<usize> = m.lanes().collect();
        assert_eq!(lanes, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30]);
        assert_eq!(m.count() as usize, lanes.len());
    }

    #[test]
    fn lanes_iterator_matches_bit_test_for_all_patterns() {
        // Exhaustive-ish: every byte pattern in every byte position, plus
        // edge masks.
        let mut cases: Vec<u32> = vec![0, u32::MAX, 1, 1 << 31, 0xAAAA_AAAA, 0x5555_5555];
        for b in 0..=255u32 {
            for shift in [0, 8, 16, 24] {
                cases.push(b << shift);
            }
        }
        for bits in cases {
            let m = Mask(bits);
            let fast: Vec<usize> = m.lanes().collect();
            let slow: Vec<usize> = (0..WARP_SIZE).filter(|&i| m.lane(i)).collect();
            assert_eq!(fast, slow, "bits {bits:#x}");
            assert_eq!(m.lanes().len(), m.count() as usize);
        }
    }

    #[test]
    fn prefix_detection() {
        assert!(Mask::NONE.is_prefix());
        assert!(Mask::FULL.is_prefix());
        for n in 0..=32 {
            assert!(Mask::first_n(n).is_prefix());
        }
        assert!(!Mask(0b10).is_prefix());
        assert!(!Mask(0b101).is_prefix());
        assert!(!Mask(1 << 31).is_prefix());
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::first_n(8);
        let b = Mask::from_fn(|i| i >= 4);
        assert_eq!(a.and(b).count(), 4);
        assert_eq!(a.or(b), Mask::FULL);
        assert_eq!(a.and_not(b), Mask::first_n(4));
        assert!(Mask::FULL.all() && !a.all() && a.any() && !Mask::NONE.any());
    }
}
