//! Warp active masks.

use crate::WARP_SIZE;

/// A 32-bit active-lane mask, bit `i` = lane `i` participates.
///
/// Every [`super::WarpCtx`] operation takes a `Mask`; divergence is
/// modeled by operations executing under partial masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mask(pub u32);

impl Mask {
    /// All 32 lanes active.
    pub const FULL: Mask = Mask(u32::MAX);
    /// No lanes active.
    pub const NONE: Mask = Mask(0);

    /// Mask with the first `n` lanes active (clamped to 32).
    pub fn first_n(n: u32) -> Mask {
        if n >= WARP_SIZE as u32 {
            Mask::FULL
        } else {
            Mask((1u32 << n) - 1)
        }
    }

    /// Mask from a per-lane predicate.
    pub fn from_fn(mut pred: impl FnMut(usize) -> bool) -> Mask {
        let mut bits = 0u32;
        for lane in 0..WARP_SIZE {
            if pred(lane) {
                bits |= 1 << lane;
            }
        }
        Mask(bits)
    }

    /// Is lane `i` active?
    #[inline]
    pub fn lane(&self, i: usize) -> bool {
        debug_assert!(i < WARP_SIZE);
        self.0 & (1 << i) != 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Any lane active?
    #[inline]
    pub fn any(&self) -> bool {
        self.0 != 0
    }

    /// All 32 lanes active?
    #[inline]
    pub fn all(&self) -> bool {
        self.0 == u32::MAX
    }

    /// Intersection of two masks.
    #[inline]
    pub fn and(&self, o: Mask) -> Mask {
        Mask(self.0 & o.0)
    }

    /// Union of two masks.
    #[inline]
    pub fn or(&self, o: Mask) -> Mask {
        Mask(self.0 | o.0)
    }

    /// Lanes in `self` but not in `o`.
    #[inline]
    pub fn and_not(&self, o: Mask) -> Mask {
        Mask(self.0 & !o.0)
    }

    /// Iterate indices of active lanes.
    pub fn lanes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..WARP_SIZE).filter(move |&i| self.lane(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_basics() {
        assert_eq!(Mask::first_n(0), Mask::NONE);
        assert_eq!(Mask::first_n(32), Mask::FULL);
        assert_eq!(Mask::first_n(33), Mask::FULL);
        let m = Mask::first_n(5);
        assert_eq!(m.count(), 5);
        assert!(m.lane(4) && !m.lane(5));
    }

    #[test]
    fn from_fn_and_lanes_roundtrip() {
        let m = Mask::from_fn(|i| i % 3 == 0);
        let lanes: Vec<usize> = m.lanes().collect();
        assert_eq!(lanes, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30]);
        assert_eq!(m.count() as usize, lanes.len());
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::first_n(8);
        let b = Mask::from_fn(|i| i >= 4);
        assert_eq!(a.and(b).count(), 4);
        assert_eq!(a.or(b), Mask::FULL);
        assert_eq!(a.and_not(b), Mask::first_n(4));
        assert!(Mask::FULL.all() && !a.all() && a.any() && !Mask::NONE.any());
    }
}
