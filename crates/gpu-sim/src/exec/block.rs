//! Per-block execution context.

use crate::config::DeviceConfig;
use crate::error::SimError;
use crate::exec::compiled::CompiledScratch;
use crate::exec::mask::Mask;
use crate::exec::warp::WarpCtx;
use crate::mem::replay::{BufSet, SectorTrace, WriteOp};
use crate::mem::{
    BufF32, BufU32, BufU64, GlobalMem, L2Cache, RocCache, SharedSpace, ShmF32, ShmU32, ShmU64,
};
use crate::tally::{AccessTally, InterpStats};
use crate::{F32x32, U32x32, U64x32, WARP_SIZE};

/// What a speculatively-executed block recorded for the commit phase.
#[derive(Debug, Default)]
pub(crate) struct SpecRecord {
    /// Global-memory mutations in program order.
    pub log: Vec<WriteOp>,
    /// L2-bound sector accesses in program order.
    pub trace: SectorTrace,
}

/// The block's route to global memory and the device-wide L2.
///
/// * `Direct` — the sequential engine (and the parallel engine's conflict
///   re-execution path): mutations land immediately, sector accesses go
///   through the real L2.
/// * `Speculative` — the parallel engine's first pass: reads come from an
///   immutable snapshot; mutations and sector touches are recorded for a
///   deterministic in-order commit.
pub(crate) enum GlobalPort<'a> {
    Direct {
        global: &'a mut GlobalMem,
        l2: &'a mut L2Cache,
    },
    Speculative {
        global: &'a GlobalMem,
        rec: SpecRecord,
    },
}

/// Execution context of one thread block.
///
/// Created by the engine for every block in the grid; gives the kernel
/// access to global memory, the block's shared memory, and its warps.
pub struct BlockCtx<'a> {
    pub(crate) port: GlobalPort<'a>,
    pub(crate) roc: RocCache,
    pub(crate) shared: SharedSpace,
    pub(crate) tally: AccessTally,
    /// Host-side interpreter statistics (dispatch counts, fused-op
    /// coverage). Not part of the simulated device state.
    pub(crate) interp: InterpStats,
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) fault: Option<SimError>,
    /// Buffers this block loaded from (conflict detection).
    pub(crate) reads: BufSet,
    /// Buffers this block stored or atomically updated (conflict
    /// detection).
    pub(crate) writes: BufSet,
    /// Set when speculative execution cannot stand in for sequential
    /// execution (value-returning atomics, reads of self-written buffers):
    /// remaining ops become no-ops and the engine re-executes the block
    /// in `Direct` mode at commit time.
    pub(crate) needs_reexec: bool,
    /// This block's id within the grid (`blockIdx.x`).
    pub block_id: u32,
    /// Number of blocks in the grid (`gridDim.x`).
    pub grid_dim: u32,
    /// Threads per block (`blockDim.x`).
    pub block_dim: u32,
    /// Reusable buffers for the compiled output-stage passes (squared
    /// distance rows, scatter walk state); host-side only, never part
    /// of the simulated device state.
    pub(crate) compiled_scratch: CompiledScratch,
}

impl<'a> BlockCtx<'a> {
    fn with_port(
        port: GlobalPort<'a>,
        cfg: &'a DeviceConfig,
        block_id: u32,
        grid_dim: u32,
        block_dim: u32,
    ) -> Self {
        let roc = if cfg.scalar_reference {
            RocCache::new_reference(cfg.roc_sectors())
        } else if cfg.fused_tile || cfg.compiled {
            RocCache::new_memoized(cfg.roc_sectors())
        } else {
            RocCache::new(cfg.roc_sectors())
        };
        let mut shared = SharedSpace::new(cfg.shared_banks);
        shared.set_scalar_reference(cfg.scalar_reference);
        BlockCtx {
            port,
            roc,
            shared,
            tally: AccessTally::new(),
            interp: InterpStats::default(),
            cfg,
            fault: None,
            reads: BufSet::default(),
            writes: BufSet::default(),
            needs_reexec: false,
            block_id,
            grid_dim,
            block_dim,
            compiled_scratch: CompiledScratch::default(),
        }
    }

    pub(crate) fn direct(
        global: &'a mut GlobalMem,
        l2: &'a mut L2Cache,
        cfg: &'a DeviceConfig,
        block_id: u32,
        grid_dim: u32,
        block_dim: u32,
    ) -> Self {
        Self::with_port(
            GlobalPort::Direct { global, l2 },
            cfg,
            block_id,
            grid_dim,
            block_dim,
        )
    }

    pub(crate) fn speculative(
        global: &'a GlobalMem,
        cfg: &'a DeviceConfig,
        block_id: u32,
        grid_dim: u32,
        block_dim: u32,
    ) -> Self {
        Self::with_port(
            GlobalPort::Speculative {
                global,
                rec: SpecRecord::default(),
            },
            cfg,
            block_id,
            grid_dim,
            block_dim,
        )
    }

    /// Device configuration being simulated.
    pub fn config(&self) -> &DeviceConfig {
        self.cfg
    }

    /// Number of warps in this block.
    pub fn num_warps(&self) -> u32 {
        self.block_dim.div_ceil(crate::WARP_SIZE as u32)
    }

    /// Run `f` once per warp — one SIMT phase of the block. Stops early if
    /// a fault was recorded or speculation was abandoned.
    pub fn for_each_warp(&mut self, mut f: impl FnMut(&mut WarpCtx<'_, 'a>)) {
        for w in 0..self.num_warps() {
            if self.dead() {
                return;
            }
            let mut wc = WarpCtx::new(self, w);
            f(&mut wc);
        }
    }

    /// Block-wide barrier (`__syncthreads()`): charges one sync
    /// instruction per warp. Phase ordering is provided by the engine
    /// running `for_each_warp` sweeps to completion, so this is purely a
    /// cost-accounting call — but kernels must place it exactly where the
    /// CUDA code would, because the tally (and the analytic model that
    /// mirrors it) depends on it.
    pub fn syncthreads(&mut self) {
        let w = self.num_warps() as u64;
        self.tally.sync_instructions += w;
        self.tally.warp_instructions += w;
        self.tally.useful_lane_ops += w * crate::WARP_SIZE as u64;
    }

    /// Allocate a zeroed `f32` shared-memory array.
    pub fn shared_alloc_f32(&mut self, len: usize) -> ShmF32 {
        let h = self.shared.alloc_f32(len);
        self.check_shared_limit();
        h
    }

    /// Allocate a zeroed `u32` shared-memory array.
    pub fn shared_alloc_u32(&mut self, len: usize) -> ShmU32 {
        let h = self.shared.alloc_u32(len);
        self.check_shared_limit();
        h
    }

    /// Allocate a zeroed `u64` shared-memory array.
    pub fn shared_alloc_u64(&mut self, len: usize) -> ShmU64 {
        let h = self.shared.alloc_u64(len);
        self.check_shared_limit();
        h
    }

    fn check_shared_limit(&mut self) {
        let used = self.shared.allocated_bytes();
        if used > self.cfg.shared_mem_per_block as u64 && self.fault.is_none() {
            self.fault = Some(SimError::SharedMemOverflow {
                requested: used,
                limit: self.cfg.shared_mem_per_block as u64,
            });
        }
    }

    /// Read a shared `f32` array directly (host-style debugging access —
    /// carries no simulated cost).
    pub fn shared_f32s(&self, h: ShmF32) -> &[f32] {
        self.shared.f32s(h)
    }

    /// Read a shared `u32` array directly (no simulated cost).
    pub fn shared_u32s(&self, h: ShmU32) -> &[u32] {
        self.shared.u32s(h)
    }

    /// Read a shared `u64` array directly (no simulated cost).
    pub fn shared_u64s(&self, h: ShmU64) -> &[u64] {
        self.shared.u64s(h)
    }

    /// Bytes of shared memory allocated so far by this block.
    pub fn shared_allocated(&self) -> u64 {
        self.shared.allocated_bytes()
    }

    pub(crate) fn record_fault(&mut self, e: SimError) {
        if self.fault.is_none() {
            self.fault = Some(e);
        }
    }

    /// Whether a fault has been recorded (subsequent ops are no-ops).
    pub fn faulted(&self) -> bool {
        self.fault.is_some()
    }

    /// Whether the block stopped executing: faulted, or speculation was
    /// abandoned pending sequential re-execution.
    pub(crate) fn dead(&self) -> bool {
        self.fault.is_some() || self.needs_reexec
    }

    /// Abandon speculative execution: the remaining ops no-op and the
    /// engine re-runs this block in `Direct` mode at commit time. Never
    /// fires in `Direct` mode.
    fn abandon_speculation(&mut self) {
        self.needs_reexec = true;
    }

    // ---------------------------------------------------------------
    // global-memory port (used by WarpCtx)
    // ---------------------------------------------------------------

    /// The global memory visible to this block's loads.
    pub(crate) fn gmem(&self) -> &GlobalMem {
        match &self.port {
            GlobalPort::Direct { global, .. } => global,
            GlobalPort::Speculative { global, .. } => global,
        }
    }

    /// Base byte address of buffer `id`.
    pub(crate) fn global_base_addr(&self, id: u32) -> u64 {
        self.gmem().base_addr(id)
    }

    /// Bounds-check a global element access.
    pub(crate) fn check_global_bounds(
        &self,
        id: u32,
        idx: u32,
        what: &str,
    ) -> Result<(), SimError> {
        self.gmem().check_bounds(id, idx, what)
    }

    /// Route one L2-bound sector access: through the real L2 in `Direct`
    /// mode (crediting the hit/miss tally immediately), into the replay
    /// trace in `Speculative` mode (the commit phase replays it through
    /// the single device-wide L2 in block order).
    pub(crate) fn l2_access(&mut self, sector: u64) {
        match &mut self.port {
            GlobalPort::Direct { l2, .. } => {
                if l2.access(sector) {
                    self.tally.l2_hit_sectors += 1;
                } else {
                    self.tally.dram_sectors += 1;
                }
            }
            GlobalPort::Speculative { rec, .. } => rec.trace.push(sector),
        }
    }

    /// Route `count` consecutive sectors starting at `base` — the
    /// coalesced fast path's arithmetic sector set. Access order (and so
    /// every hit/miss decision) is identical to calling [`Self::l2_access`]
    /// on each sector in ascending order.
    pub(crate) fn l2_access_run(&mut self, base: u64, count: u32) {
        match &mut self.port {
            GlobalPort::Direct { l2, .. } => {
                let hits = l2.access_run(base, count);
                self.tally.l2_hit_sectors += hits;
                self.tally.dram_sectors += count as u64 - hits;
            }
            GlobalPort::Speculative { rec, .. } => rec.trace.push_run(base, count),
        }
    }

    /// Would [`Self::note_read`] of this buffer abandon speculation?
    /// The fused tile pass pre-checks this so it never has to unwind
    /// mid-pass.
    pub(crate) fn read_would_abandon(&self, id: u32) -> bool {
        matches!(self.port, GlobalPort::Speculative { .. }) && self.writes.contains(id)
    }

    fn note_read(&mut self, id: u32) {
        self.reads.insert(id);
        if matches!(self.port, GlobalPort::Speculative { .. }) && self.writes.contains(id) {
            // Read-after-own-write: the snapshot is stale for this buffer.
            self.abandon_speculation();
        }
    }

    /// Load path for `f32` buffers (records the read set).
    pub(crate) fn global_read_f32s(&mut self, buf: BufF32) -> &[f32] {
        self.note_read(buf.0);
        self.gmem().f32_slice(buf)
    }

    /// Load path for `u32` buffers.
    pub(crate) fn global_read_u32s(&mut self, buf: BufU32) -> &[u32] {
        self.note_read(buf.0);
        self.gmem().u32_slice(buf)
    }

    /// Load path for `u64` buffers.
    pub(crate) fn global_read_u64s(&mut self, buf: BufU64) -> &[u64] {
        self.note_read(buf.0);
        self.gmem().u64_slice(buf)
    }

    /// Scatter-store lanes of an `f32` warp access.
    pub(crate) fn global_write_f32(
        &mut self,
        buf: BufF32,
        idx: &U32x32,
        vals: &F32x32,
        mask: Mask,
    ) {
        self.writes.insert(buf.0);
        match &mut self.port {
            GlobalPort::Direct { global, .. } => {
                let data = global.f32_slice_mut(buf);
                for lane in mask.lanes() {
                    data[idx[lane] as usize] = vals[lane];
                }
            }
            GlobalPort::Speculative { rec, .. } => {
                for lane in mask.lanes() {
                    rec.log.push(WriteOp::StoreF32 {
                        buf: buf.0,
                        idx: idx[lane],
                        val: vals[lane],
                    });
                }
            }
        }
    }

    /// Scatter-store lanes of a `u32` warp access.
    pub(crate) fn global_write_u32(
        &mut self,
        buf: BufU32,
        idx: &U32x32,
        vals: &U32x32,
        mask: Mask,
    ) {
        self.writes.insert(buf.0);
        match &mut self.port {
            GlobalPort::Direct { global, .. } => {
                let data = global.u32_slice_mut(buf);
                for lane in mask.lanes() {
                    data[idx[lane] as usize] = vals[lane];
                }
            }
            GlobalPort::Speculative { rec, .. } => {
                for lane in mask.lanes() {
                    rec.log.push(WriteOp::StoreU32 {
                        buf: buf.0,
                        idx: idx[lane],
                        val: vals[lane],
                    });
                }
            }
        }
    }

    /// Scatter-store lanes of a `u64` warp access.
    pub(crate) fn global_write_u64(
        &mut self,
        buf: BufU64,
        idx: &U32x32,
        vals: &U64x32,
        mask: Mask,
    ) {
        self.writes.insert(buf.0);
        match &mut self.port {
            GlobalPort::Direct { global, .. } => {
                let data = global.u64_slice_mut(buf);
                for lane in mask.lanes() {
                    data[idx[lane] as usize] = vals[lane];
                }
            }
            GlobalPort::Speculative { rec, .. } => {
                for lane in mask.lanes() {
                    rec.log.push(WriteOp::StoreU64 {
                        buf: buf.0,
                        idx: idx[lane],
                        val: vals[lane],
                    });
                }
            }
        }
    }

    /// Lane-wise `wrapping_add` of a `u64` atomic (no return value, so the
    /// commutative deltas can be logged and applied in block order).
    pub(crate) fn global_rmw_add_u64(
        &mut self,
        buf: BufU64,
        idx: &U32x32,
        vals: &U64x32,
        mask: Mask,
    ) {
        self.writes.insert(buf.0);
        match &mut self.port {
            GlobalPort::Direct { global, .. } => {
                let data = global.u64_slice_mut(buf);
                for lane in mask.lanes() {
                    let slot = &mut data[idx[lane] as usize];
                    *slot = slot.wrapping_add(vals[lane]);
                }
            }
            GlobalPort::Speculative { rec, .. } => {
                for lane in mask.lanes() {
                    rec.log.push(WriteOp::AddU64 {
                        buf: buf.0,
                        idx: idx[lane],
                        val: vals[lane],
                    });
                }
            }
        }
    }

    /// Lane-wise `wrapping_add` of a `u32` atomic returning the pre-add
    /// values. The returned values are inherently block-order-dependent,
    /// so in `Speculative` mode the block abandons speculation (returning
    /// zeros; the sequential re-execution produces the real values).
    pub(crate) fn global_rmw_add_u32(
        &mut self,
        buf: BufU32,
        idx: &U32x32,
        vals: &U32x32,
        mask: Mask,
    ) -> U32x32 {
        self.writes.insert(buf.0);
        match &mut self.port {
            GlobalPort::Direct { global, .. } => {
                let data = global.u32_slice_mut(buf);
                let mut out = [0u32; WARP_SIZE];
                for lane in mask.lanes() {
                    out[lane] = data[idx[lane] as usize];
                    data[idx[lane] as usize] = data[idx[lane] as usize].wrapping_add(vals[lane]);
                }
                out
            }
            GlobalPort::Speculative { .. } => {
                self.abandon_speculation();
                [0; WARP_SIZE]
            }
        }
    }
}
