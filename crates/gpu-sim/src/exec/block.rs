//! Per-block execution context.

use crate::config::DeviceConfig;
use crate::error::SimError;
use crate::exec::warp::WarpCtx;
use crate::mem::{GlobalMem, L2Cache, RocCache, SharedSpace, ShmF32, ShmU32, ShmU64};
use crate::tally::AccessTally;

/// Execution context of one thread block.
///
/// Created by the engine for every block in the grid; gives the kernel
/// access to global memory, the block's shared memory, and its warps.
pub struct BlockCtx<'a> {
    pub(crate) global: &'a mut GlobalMem,
    pub(crate) l2: &'a mut L2Cache,
    pub(crate) roc: RocCache,
    pub(crate) shared: SharedSpace,
    pub(crate) tally: AccessTally,
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) fault: Option<SimError>,
    /// This block's id within the grid (`blockIdx.x`).
    pub block_id: u32,
    /// Number of blocks in the grid (`gridDim.x`).
    pub grid_dim: u32,
    /// Threads per block (`blockDim.x`).
    pub block_dim: u32,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(
        global: &'a mut GlobalMem,
        l2: &'a mut L2Cache,
        cfg: &'a DeviceConfig,
        block_id: u32,
        grid_dim: u32,
        block_dim: u32,
    ) -> Self {
        BlockCtx {
            global,
            l2,
            roc: RocCache::new(cfg.roc_sectors()),
            shared: SharedSpace::new(cfg.shared_banks),
            tally: AccessTally::new(),
            cfg,
            fault: None,
            block_id,
            grid_dim,
            block_dim,
        }
    }

    /// Device configuration being simulated.
    pub fn config(&self) -> &DeviceConfig {
        self.cfg
    }

    /// Number of warps in this block.
    pub fn num_warps(&self) -> u32 {
        self.block_dim.div_ceil(crate::WARP_SIZE as u32)
    }

    /// Run `f` once per warp — one SIMT phase of the block. Stops early if
    /// a fault was recorded.
    pub fn for_each_warp(&mut self, mut f: impl FnMut(&mut WarpCtx<'_, 'a>)) {
        for w in 0..self.num_warps() {
            if self.fault.is_some() {
                return;
            }
            let mut wc = WarpCtx::new(self, w);
            f(&mut wc);
        }
    }

    /// Block-wide barrier (`__syncthreads()`): charges one sync
    /// instruction per warp. Phase ordering is provided by the engine
    /// running `for_each_warp` sweeps to completion, so this is purely a
    /// cost-accounting call — but kernels must place it exactly where the
    /// CUDA code would, because the tally (and the analytic model that
    /// mirrors it) depends on it.
    pub fn syncthreads(&mut self) {
        let w = self.num_warps() as u64;
        self.tally.sync_instructions += w;
        self.tally.warp_instructions += w;
        self.tally.useful_lane_ops += w * crate::WARP_SIZE as u64;
    }

    /// Allocate a zeroed `f32` shared-memory array.
    pub fn shared_alloc_f32(&mut self, len: usize) -> ShmF32 {
        let h = self.shared.alloc_f32(len);
        self.check_shared_limit();
        h
    }

    /// Allocate a zeroed `u32` shared-memory array.
    pub fn shared_alloc_u32(&mut self, len: usize) -> ShmU32 {
        let h = self.shared.alloc_u32(len);
        self.check_shared_limit();
        h
    }

    /// Allocate a zeroed `u64` shared-memory array.
    pub fn shared_alloc_u64(&mut self, len: usize) -> ShmU64 {
        let h = self.shared.alloc_u64(len);
        self.check_shared_limit();
        h
    }

    fn check_shared_limit(&mut self) {
        let used = self.shared.allocated_bytes();
        if used > self.cfg.shared_mem_per_block as u64 && self.fault.is_none() {
            self.fault = Some(SimError::SharedMemOverflow {
                requested: used,
                limit: self.cfg.shared_mem_per_block as u64,
            });
        }
    }

    /// Read a shared `f32` array directly (host-style debugging access —
    /// carries no simulated cost).
    pub fn shared_f32s(&self, h: ShmF32) -> &[f32] {
        self.shared.f32s(h)
    }

    /// Read a shared `u32` array directly (no simulated cost).
    pub fn shared_u32s(&self, h: ShmU32) -> &[u32] {
        self.shared.u32s(h)
    }

    /// Read a shared `u64` array directly (no simulated cost).
    pub fn shared_u64s(&self, h: ShmU64) -> &[u64] {
        self.shared.u64s(h)
    }

    /// Bytes of shared memory allocated so far by this block.
    pub fn shared_allocated(&self) -> u64 {
        self.shared.allocated_bytes()
    }

    pub(crate) fn record_fault(&mut self, e: SimError) {
        if self.fault.is_none() {
            self.fault = Some(e);
        }
    }

    /// Whether a fault has been recorded (subsequent ops are no-ops).
    pub fn faulted(&self) -> bool {
        self.fault.is_some()
    }
}
