//! The plan compiler: whole kernel plans lowered to closed-form host
//! passes.
//!
//! The fused executor (`exec::fused` + `WarpCtx::fused_tile_pass`)
//! removed the per-*step* interpreter dispatch from the inner tile loop
//! but still re-derives every tally formula — coalescing sectors,
//! bank-conflict degrees, scatter contention, predicate overlap — on
//! every call, and it never covered the three other stages of a tiling
//! kernel plan: the cooperative tile fetch, the triangular intra-block
//! phase, and the ROC-sourced intra gathers. Those stages still run
//! op by op, one interpreter dispatch per warp instruction, and at
//! realistic sizes (the intra triangle is `B²/2` pairs per block) they
//! dominate host wall-clock.
//!
//! This module *lowers* a `(distance, action, tile shape)` plan once —
//! [`CompiledKernel::lower`] — into straight-line passes whose tally
//! charges are precomputed closed forms:
//!
//! * [`BlockCtx::compiled_tile_load`] — the whole cooperative
//!   global→shared tile fetch of every warp in one call.
//! * [`WarpCtx::compiled_euclidean_tile`] — the inner tile pass
//!   (the fused executor's scope) with a branch-free sqrt-free count
//!   loop and closed-form predicate-overlap accounting.
//! * [`WarpCtx::compiled_intra_regular`] — the triangular intra-block
//!   phase (`IntraMode::Regular`), previously a `divergent_loop` of
//!   op-by-op iterations, now one call with arithmetic-series charge
//!   totals.
//!
//! ## The contract
//!
//! Bit-identity with the op-by-op route in everything the differential
//! suite compares: outputs, the full [`AccessTally`], L2/ROC cache state
//! (hit/miss splits, eviction order) and first-fault behavior. Every
//! pass therefore pre-flights all faults it could hit and returns
//! `false` **with no side effects** on any unsupported shape — a
//! non-prefix mask, a foreign consumer, a would-fault access, a
//! speculation-abandoning read — and the caller falls back to the
//! fused or op-by-op route, which doubles as the differential oracle.
//!
//! Only host-side [`crate::tally::InterpStats`] differ between routes
//! (`compiled_ops` / `compiled_lane_ops` instead of per-op dispatches);
//! that split is exactly the fused executor's precedent.
//!
//! ## Why `s < T` can replace `sqrt(s) < r`
//!
//! The 2-PCF hot loop compares `sqrt(s) < radius` per pair. `sqrt` is
//! monotone on `[0, ∞)` and every lane's `s` is a sum of `mul_add`
//! squares (never negative, possibly NaN). [`sqrt_lt_threshold`]
//! computes the unique `T` with `s < T ⟺ s.sqrt() < radius` for every
//! such `s` (NaN fails both sides), so the compiled count loop drops
//! the sqrt *without changing a single count* — verified exhaustively
//! around the boundary by the unit tests below.

use crate::config::DeviceConfig;
use crate::exec::block::BlockCtx;
use crate::exec::fused::{FusedConsumer, FusedPred, FusedSink, FusedSrc};
use crate::exec::mask::Mask;
use crate::exec::warp::{charge_lanes, WarpCtx};
use crate::mem::{BufF32, ScatterScratch, ShmF32, ShmU32};
use crate::{F32x32, U32x32, U64x32, WARP_SIZE};

/// The output-sink shape of a lowered plan, declared by the action
/// (`PairAction::compiled_sink` in `tbs-core`). Mirrors
/// [`FusedConsumer`] minus the borrowed accumulator state: lowering
/// happens once per block, before any per-warp state exists.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledSinkSpec {
    /// Count pairs with `distance < radius` (2-PCF).
    CountLt {
        /// Strict comparison radius.
        radius: f32,
    },
    /// Sum the distance values (KDE).
    Sum,
    /// Privatized shared-memory histogram (SDH).
    Histogram {
        /// Reciprocal bucket width (`HistogramSpec::inv_width`).
        inv_width: f32,
        /// Highest bucket index (`buckets − 1`).
        hmax: u32,
    },
    /// Coalesced multi-query batch: every distance feeds each count
    /// sink and each histogram sink (`MultiQueryAction`). Sinks are
    /// declared in the action's partition order — counts first, then
    /// histograms — which is also the order every route feeds them.
    Multi {
        /// Count-sink radii, in sink order.
        counts: Vec<f32>,
        /// Histogram-sink `(inv_width, hmax)` geometry, in sink order.
        hists: Vec<(f32, u32)>,
    },
}

/// Edge-table cap: a histogram with more buckets than this keeps the
/// per-lane sqrt chain (the table would cost more to build and to hold
/// in cache than the sqrts it can skip).
const EDGE_TABLE_MAX_BUCKETS: u32 = 1 << 16;

/// A lowered histogram sink: the bucket geometry plus precomputed
/// squared-distance bin edges (see [`squared_bin_edges`]).
#[derive(Debug, Clone, PartialEq)]
struct LoweredHist {
    inv_width: f32,
    hmax: u32,
    /// `edges[b] ≤ s < edges[b+1] ⟺ bucket(sqrt(s)) = b` for every
    /// `b ≤ hmax` and every non-NaN squared distance `s` (with
    /// `edges[hmax+1] = +inf`). Empty when the geometry is degenerate
    /// (non-finite or non-positive `inv_width`, oversized table) — the
    /// sink then classifies through the sqrt chain only.
    edges: Vec<f32>,
}

impl LoweredHist {
    fn lower(inv_width: f32, hmax: u32) -> Self {
        LoweredHist {
            inv_width,
            hmax,
            edges: squared_bin_edges(inv_width, hmax),
        }
    }
}

/// Squared-distance bin edges for the bucket map
/// `bucket(d) = min((d · inv_width) as u32, hmax)` applied to
/// `d = s.sqrt()`: `edges[b]` is the smallest `f32` `s ≥ 0` whose raw
/// (pre-clamp) bucket reaches `b`, `edges[0] = 0` and
/// `edges[hmax+1] = +inf`, so for non-NaN `s`
///
/// ```text
/// edges[b] ≤ s < edges[b+1]  ⟺  bucket(s.sqrt()) = b      (b ≤ hmax)
/// ```
///
/// This is exact at the ulp like [`sqrt_lt_threshold`]: the composite
/// `s → (s.sqrt() · inv_width) as u32` is monotone in `s` (`sqrt` and
/// multiplication by a positive finite constant are monotone under
/// round-to-nearest; the saturating truncating cast — CUDA's
/// `__float2uint_rz` — is monotone too), and non-negative `f32` order
/// equals bit order, so each boundary is found by bit-space binary
/// search rather than arithmetic that could be off by an ulp.
fn squared_bin_edges(inv_width: f32, hmax: u32) -> Vec<f32> {
    if !(inv_width.is_finite() && inv_width > 0.0) || hmax >= EDGE_TABLE_MAX_BUCKETS {
        return Vec::new();
    }
    let raw = |s: f32| (s.sqrt() * inv_width) as u32;
    let mut edges = Vec::with_capacity(hmax as usize + 2);
    edges.push(0.0f32);
    for b in 1..=hmax {
        // Invariant: raw(lo) < b ≤ raw(hi); raw(+inf) saturates to
        // u32::MAX so the upper end always qualifies.
        let mut lo = 0u32;
        let mut hi = f32::INFINITY.to_bits();
        if raw(0.0) >= b {
            hi = 0;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if raw(f32::from_bits(mid)) >= b {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        edges.push(f32::from_bits(hi));
    }
    edges.push(f32::INFINITY);
    edges
}

/// Which partner-tile storage an intra-block compiled pass reads.
pub enum CompiledTile<'t, const D: usize> {
    /// Partners gathered from a shared-memory tile (local indices).
    Shared(&'t [ShmF32; D]),
    /// Partners gathered through the read-only cache (global indices).
    Roc(&'t [BufF32; D]),
}

/// A kernel plan lowered to closed-form host passes: the sqrt-free
/// comparison threshold, the per-step instruction widths, and the
/// hot tile shape's predicate-overlap counts, all computed once at
/// `lower` time instead of on every dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// `s < threshold ⟺ s.sqrt() < radius` for all non-negative `s`.
    threshold: f32,
    /// The radius the threshold was derived from; a consumer carrying
    /// any other radius declines the pass (wrong plan).
    radius: f32,
    sink: CompiledSinkSpec,
    dims: u32,
    /// The plan's full tile length (= block size).
    full_steps: u32,
    /// Precomputed step counts for the hot shape: a full tile under a
    /// full warp with no predicate (`npm` executed steps, `sum_apm`
    /// active lane-steps).
    full_npm: u64,
    full_sum_apm: u64,
    /// Warp instructions per executed inner step (distance + consumer
    /// + one shared atomic per histogram sink when applicable).
    wi: u64,
    /// ALU instructions per executed inner step.
    per: u64,
    /// Histogram sinks per pair (0 for CountLt/Sum, 1 for Histogram,
    /// the hist-partition length for Multi).
    n_hist: u64,
    /// Lowered histogram geometry, in sink order.
    hists: Vec<LoweredHist>,
    /// Per count sink: `(radius, sqrt_lt_threshold(radius))`, in sink
    /// order (Multi only; the single CountLt sink uses `threshold`).
    count_thresholds: Vec<(f32, f32)>,
}

/// Smallest `T` such that `s < T ⟺ s.sqrt() < radius` for every
/// non-negative (or NaN) `f32` value `s`.
///
/// `T` is the infimum of `{ s ≥ 0 : s.sqrt() ≥ radius }`: we start from
/// `radius²` and ulp-walk to the exact boundary, so the equivalence
/// holds at the representable values adjacent to it. Degenerate radii:
/// `radius ≤ 0` or NaN never accepts any `s` (`T = 0`); `radius = +inf`
/// accepts every finite `s` (`T = +inf`, and `s = +inf` fails both
/// sides only through the `sqrt` form — see below — so +inf radii keep
/// the sqrt in [`WarpCtx::compiled_euclidean_tile`]).
pub fn sqrt_lt_threshold(radius: f32) -> f32 {
    // The negated form is the point: NaN radii must land in this arm.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(radius > 0.0) {
        // radius ≤ 0 or NaN: sqrt(s) ≥ 0 never satisfies `< radius`.
        return 0.0;
    }
    if radius == f32::INFINITY {
        return f32::INFINITY;
    }
    let sq = radius * radius;
    let mut t = if sq.is_finite() { sq } else { f32::MAX };
    // Walk up while `t` itself would still be accepted: T must exclude
    // every s with sqrt(s) ≥ radius, so t.sqrt() < radius means t is
    // too small to be the boundary.
    while t.sqrt() < radius {
        t = f32::from_bits(t.to_bits() + 1);
    }
    // Walk down while the predecessor is still excluded by the sqrt
    // form: then it must be excluded by `s < T` too.
    loop {
        let p = f32::from_bits(t.to_bits() - 1);
        if p.sqrt() < radius {
            break;
        }
        t = p;
    }
    t
}

impl CompiledKernel {
    /// Lower a plan. Returns `None` when the compiled route is off (or
    /// overridden by scalar-reference mode) so call sites can hold an
    /// `Option<CompiledKernel>` and skip every compiled attempt.
    pub fn lower(
        cfg: &DeviceConfig,
        dims: u32,
        full_steps: u32,
        sink: CompiledSinkSpec,
    ) -> Option<CompiledKernel> {
        if !cfg.compiled || cfg.scalar_reference {
            return None;
        }
        let radius = match sink {
            CompiledSinkSpec::CountLt { radius } => radius,
            _ => 0.0,
        };
        let dist_cost = 2 * dims as u64 + 1; // Euclidean: sub+fma per dim, sqrt
        let (consumer_alu, n_hist) = match &sink {
            CompiledSinkSpec::CountLt { .. } => (2, 0),
            CompiledSinkSpec::Sum => (1, 0),
            CompiledSinkSpec::Histogram { .. } => (2, 1),
            CompiledSinkSpec::Multi { counts, hists } => (
                2 * (counts.len() as u64 + hists.len() as u64),
                hists.len() as u64,
            ),
        };
        let hists = match &sink {
            CompiledSinkSpec::Histogram { inv_width, hmax } => {
                vec![LoweredHist::lower(*inv_width, *hmax)]
            }
            CompiledSinkSpec::Multi { hists, .. } => hists
                .iter()
                .map(|&(inv_width, hmax)| LoweredHist::lower(inv_width, hmax))
                .collect(),
            _ => Vec::new(),
        };
        let count_thresholds = match &sink {
            CompiledSinkSpec::Multi { counts, .. } => {
                counts.iter().map(|&r| (r, sqrt_lt_threshold(r))).collect()
            }
            _ => Vec::new(),
        };
        let per = dist_cost + consumer_alu;
        Some(CompiledKernel {
            threshold: sqrt_lt_threshold(radius),
            radius,
            sink,
            dims,
            full_steps,
            full_npm: full_steps as u64,
            full_sum_apm: full_steps as u64 * WARP_SIZE as u64,
            wi: per + n_hist,
            per,
            n_hist,
            hists,
            count_thresholds,
        })
    }

    /// The sqrt-free comparison threshold (exposed for tests).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Executed-step counts `(npm, Σ active lanes)` for one inner tile
    /// pass — the quantities `fused_tile_impl` accumulates step by
    /// step, in closed form for the hot shapes and by a cheap mask walk
    /// for predicated ones.
    fn pass_counts(&self, len: u32, pred: FusedPred, valid: Mask) -> (u64, u64) {
        let steps = len as u64;
        let a = valid.count() as u64;
        match pred {
            FusedPred::All => {
                if len == self.full_steps && a == WARP_SIZE as u64 {
                    (self.full_npm, self.full_sum_apm)
                } else {
                    (steps, steps * a)
                }
            }
            _ => {
                // Predicated passes are short (≤ one tile) and rare
                // relative to the All-pred hot path; an exact mask walk
                // keeps them trivially bit-identical.
                let mut npm = 0u64;
                let mut sum_apm = 0u64;
                for j in 0..len {
                    let pm = WarpCtx::fused_pred_mask(pred, j, valid);
                    if pm.any() {
                        npm += 1;
                        sum_apm += pm.count() as u64;
                    }
                }
                (npm, sum_apm)
            }
        }
    }
}

/// Resolved per-step view of a [`FusedSrc`] for the compiled compute
/// loops: column slices plus a start offset, or a register fragment.
enum SrcView<'s, const D: usize> {
    Cols { cols: [&'s [f32]; D], start: usize },
    Lanes(&'s [F32x32; D]),
}

impl<'s, const D: usize> SrcView<'s, D> {
    #[inline]
    fn point(&self, j: usize) -> [f32; D] {
        match self {
            SrcView::Cols { cols, start } => std::array::from_fn(|d| cols[d][start + j]),
            SrcView::Lanes(l) => std::array::from_fn(|d| l[d][j % WARP_SIZE]),
        }
    }
}

/// One lane's Euclidean partial sum against one point — the exact
/// `Euclidean::eval_host` operation sequence minus the final sqrt:
/// per dimension ascending, `diff = own - p; s = diff.mul_add(diff, s)`.
#[inline(always)]
fn euclid_sumsq<const D: usize>(own: &[f32; D], p: &[f32; D]) -> f32 {
    let mut s = 0.0f32;
    for d in 0..D {
        let diff = own[d] - p[d];
        s = diff.mul_add(diff, s);
    }
    s
}

/// Per-block reusable buffers for the compiled output-stage passes,
/// owned by [`BlockCtx`] so the hot tile loop never reallocates: the
/// deferred bucket batches and the scatter walk's per-bank counters.
/// Contents are dead between passes (the bucket batches are cleared,
/// the scatter counters are reset via its touched list), so reuse
/// cannot leak state across passes — only the capacity persists.
#[derive(Debug, Default)]
pub struct CompiledScratch {
    /// Bucket indices of the pass's full-warp histogram steps,
    /// step-major, batched for one
    /// [`crate::mem::SharedSpace::scatter_account_update_rows`] walk.
    b: Vec<u32>,
    /// Per-sink bucket batches for the Multi consumer (same layout as
    /// `b`, indexed in histogram-sink declaration order).
    bs: Vec<Vec<u32>>,
    /// Per-sink partial-warp batches for the Multi consumer (same
    /// layout as `p`/`pn`: active-lane buckets concatenated, with the
    /// parallel vector holding each deferred step's lane count).
    pbs: Vec<Vec<u32>>,
    /// Per-sink per-step lane counts (indexes `pbs`).
    pbn: Vec<Vec<u32>>,
    /// Active-lane buckets of the pass's partial-warp (or
    /// degenerate-geometry) histogram steps, concatenated; `pn` holds
    /// each deferred step's lane count.
    p: Vec<u32>,
    /// Per partial step, its active-lane count (indexes `p`).
    pn: Vec<u32>,
    /// Persistent per-bank chain state for the merged scatter walk.
    scatter: ScatterScratch,
}

/// One lane's exact bucket index from an already-sqrt'd distance,
/// branch-free and vectorizable: bit-identical to the op-by-op chain
/// `((d * inv_width) as u32).min(hmax)` under the callers' gate (a
/// non-empty lowered edge table, which requires a finite positive
/// `inv_width` and `hmax` < 2¹⁶), with `hmax_f == hmax as f32`
/// (exact, since `hmax` < 2²⁴) and `d ≥ 0` or NaN.
///
/// Rust's saturating float→int cast (`fptosi.sat`) scalarizes on
/// AVX2, so the cast is replaced by a clamp plus the 2²³
/// magic-number floor — every step lowers to plain vector ops
/// (`vmaxps`/`vminps`/`vaddps`/`vpand`/`vcmpps`):
///
/// - `t = (d * inv_width).max(0.0).min(hmax_f)` ∈ [0, hmax]: NaN
///   becomes 0 (`max` returns the non-NaN operand), matching the
///   saturating cast's NaN → 0; products above `hmax` clamp to
///   `hmax_f`, matching cast-then-`min`; in-range products are
///   untouched, and `⌊t⌋` then equals the cast's truncation.
/// - `r = t + 2²³` rounds to `2²³ + rne(t)` (the sum sits in
///   [2²³, 2²⁴) where the ulp is 1), so `r`'s low 23 mantissa bits
///   are `rne(t)`, round-half-even's integer; `f = r − 2²³` recovers
///   it exactly (the difference is a representable integer ≤ 2¹⁶).
/// - `rne(t)` is either `⌊t⌋` or `⌊t⌋ + 1`, and overshoots exactly
///   when `f > t` — subtracting that flag yields `⌊t⌋`.
#[inline(always)]
fn floor_bucket_exact(d: f32, inv_width: f32, hmax_f: f32) -> u32 {
    const MAGIC: f32 = 8_388_608.0; // 2^23
    let t = (d * inv_width).max(0.0).min(hmax_f);
    let r = t + MAGIC;
    let f = r - MAGIC;
    (r.to_bits() & 0x007F_FFFF) - ((f > t) as u32)
}

/// Vectorized exact bucketing of one full-warp row of squared
/// distances: lane `l` gets `((s[l].sqrt() * inv_width) as
/// u32).min(hmax)`, via [`floor_bucket_exact`] (same bits, vector
/// codegen).
#[inline]
fn bucket_row_exact(row: &[f32], inv_width: f32, hmax: u32, out: &mut [u32; WARP_SIZE]) {
    let hf = hmax as f32;
    for (b, &s) in out.iter_mut().zip(row.iter()) {
        *b = floor_bucket_exact(s.sqrt(), inv_width, hf);
    }
}

/// One lane's sqrt-free count over the column range `[j0, j1)`: how many
/// tile elements sit strictly inside the lowered squared threshold.
///
/// This is the innermost loop of every compiled CountLt pass, written so
/// LLVM can autovectorize it: the columns are re-sliced to exactly the
/// scanned range (hoisting every bounds check out of the loop), the
/// per-element arithmetic is the scalar `euclid_sumsq` chain (so each
/// element's bits match the op-by-op route no matter how wide the
/// vectorizer goes), and the accumulator is a plain `u32` reduction
/// (tile ranges never exceed a block, far below `u32::MAX`).
#[inline(always)]
fn count_lt_cols<const D: usize>(
    own: &[f32; D],
    cols: &[&[f32]; D],
    j0: usize,
    j1: usize,
    thr: f32,
) -> u64 {
    let n = j1 - j0;
    let c: [&[f32]; D] = std::array::from_fn(|d| &cols[d][j0..j0 + n]);
    let mut cnt = 0u32;
    // Indexing `j` across all D re-sliced columns (rather than zipping
    // iterators) is the shape LLVM packs into vector lanes here; see
    // the module doc.
    #[allow(clippy::needless_range_loop)]
    for j in 0..n {
        let mut s = 0.0f32;
        for d in 0..D {
            let diff = own[d] - c[d][j];
            s = diff.mul_add(diff, s);
        }
        cnt += (s < thr) as u32;
    }
    cnt as u64
}

impl<'b, 'a> WarpCtx<'b, 'a> {
    /// Compiled inner tile pass: the scope of
    /// [`WarpCtx::fused_euclidean_tile`], executed from the lowered
    /// plan. Charges are bit-identical to the fused pass (which is
    /// bit-identical to op-by-op); the compute loop is lane-major,
    /// branch-free, and — for the count sink — sqrt-free via the
    /// lowered threshold.
    ///
    /// Returns `false` with no side effects whenever a precondition
    /// fails, exactly like the fused pass; additionally declines when
    /// the consumer does not match the lowered sink (wrong plan). The
    /// histogram and multi sinks run here too: bucketing goes sqrt-free
    /// through the lowered squared bin edges where they are exact, and
    /// the scatter's accounting and data update share one walk
    /// ([`crate::mem::SharedSpace::scatter_account_update`]) over the
    /// block's persistent scratch.
    #[allow(clippy::too_many_arguments)]
    pub fn compiled_euclidean_tile<const D: usize>(
        &mut self,
        ck: &CompiledKernel,
        src: FusedSrc<'_, D>,
        len: u32,
        pred: FusedPred,
        own: &[F32x32; D],
        consumer: FusedConsumer<'_>,
        valid: Mask,
    ) -> bool {
        if !self.blk.cfg.compiled
            || self.blk.cfg.scalar_reference
            || self.blk.dead()
            || len == 0
            || !valid.any()
            || !valid.is_prefix()
            || ck.dims != D as u32
        {
            return false;
        }
        // Consumer ↔ lowered-sink agreement: every parameter the
        // lowered plan baked in (radii, bucket geometry, sink order)
        // must match the consumer bit for bit, else this is the wrong
        // plan and the pass declines.
        match (&consumer, &ck.sink) {
            (FusedConsumer::CountLt { radius, .. }, CompiledSinkSpec::CountLt { radius: r })
                if radius.to_bits() == r.to_bits() => {}
            (FusedConsumer::Sum { .. }, CompiledSinkSpec::Sum) => {}
            (
                FusedConsumer::Histogram {
                    inv_width, hmax, ..
                },
                CompiledSinkSpec::Histogram {
                    inv_width: iw,
                    hmax: h,
                },
            ) if inv_width.to_bits() == iw.to_bits() && hmax == h => {}
            (FusedConsumer::Multi(sinks), CompiledSinkSpec::Multi { counts, hists }) => {
                // The consumer arrives in partition order (counts then
                // hists, each in declaration order) — the same order
                // `MultiQueryAction::compiled_sink` lowered.
                let mut cs = counts.iter();
                let mut hs = hists.iter();
                let agree = sinks.iter().all(|s| match s {
                    FusedSink::CountLt { radius, .. } => {
                        cs.next().is_some_and(|r| r.to_bits() == radius.to_bits())
                    }
                    FusedSink::Histogram {
                        inv_width, hmax, ..
                    } => hs
                        .next()
                        .is_some_and(|&(iw, h)| iw.to_bits() == inv_width.to_bits() && h == *hmax),
                });
                if !agree || cs.next().is_some() || hs.next().is_some() {
                    return false;
                }
            }
            _ => return false,
        }
        // Pre-flight every fault/abandon the pass could hit (same
        // checks, same order as the fused pass).
        match &src {
            FusedSrc::SharedBroadcast(tile) => {
                if tile.iter().any(|h| {
                    self.blk
                        .shared
                        .check_bounds(h.0, len - 1, "shared f32 load")
                        .is_err()
                }) {
                    return false;
                }
            }
            FusedSrc::RocBroadcast { bufs, start } => {
                let Some(last) = start.checked_add(len - 1) else {
                    return false;
                };
                if bufs.iter().any(|b| {
                    self.blk
                        .check_global_bounds(b.0, last, "roc f32 load")
                        .is_err()
                        || self.blk.read_would_abandon(b.0)
                }) {
                    return false;
                }
            }
            FusedSrc::LaneBroadcast(_) => {
                if !self.blk.cfg.has_shuffle {
                    return false;
                }
            }
        }
        // Histogram bucket memory pre-flights (same checks, same order
        // as the fused pass): a short array would fault mid-scatter, so
        // decline side-effect-free and let op-by-op assign exact blame.
        if let FusedConsumer::Histogram { hmax, shm, .. } = &consumer {
            if self
                .blk
                .shared
                .check_bounds(shm.0, *hmax, "shared u32 atomicAdd")
                .is_err()
            {
                return false;
            }
        }
        if let FusedConsumer::Multi(sinks) = &consumer {
            for sink in sinks.iter() {
                if let FusedSink::Histogram { hmax, shm, .. } = sink {
                    if self
                        .blk
                        .shared
                        .check_bounds(shm.0, *hmax, "shared u32 atomicAdd")
                        .is_err()
                    {
                        return false;
                    }
                }
            }
        }

        let a = valid.count() as u64;
        let steps = len as u64;
        let dims = D as u64;

        // ---- operand charges, identical to the fused pass ----
        match &src {
            FusedSrc::SharedBroadcast(_) => {
                let t = &mut self.blk.tally;
                charge_lanes(t, steps * dims, a);
                t.shared_load_instructions += steps * dims;
                t.shared_transactions += steps * dims;
                t.shared_bytes += 4 * a * steps * dims;
            }
            FusedSrc::RocBroadcast { bufs, start } => {
                {
                    let t = &mut self.blk.tally;
                    charge_lanes(t, steps * dims, a);
                    t.roc_load_instructions += steps * dims;
                    t.roc_bytes += 4 * a * steps * dims;
                }
                // The stateful ROC sector stream keeps its op-by-op
                // order; batched exactly as the fused pass batches it
                // (generation-stamped run replay — see
                // `fused_tile_impl` for the residency argument).
                let sb = self.blk.cfg.sector_bytes as u64;
                let bases: [u64; D] = std::array::from_fn(|d| self.blk.global_base_addr(bufs[d].0));
                let mut j = 0u64;
                while j < steps {
                    let e0 = *start as u64 + j;
                    let mut run = steps - j;
                    let mut sectors = [0u64; D];
                    for (s, &base) in sectors.iter_mut().zip(bases.iter()) {
                        let addr = base + e0 * 4;
                        *s = addr / sb;
                        run = run.min(((*s + 1) * sb - addr).div_ceil(4));
                    }
                    let gen0 = self.blk.roc.generation();
                    for &s in sectors.iter() {
                        self.roc_one_sector(s);
                    }
                    if run > 1 {
                        if self.blk.roc.generation() == gen0 {
                            let n = (run - 1) * dims;
                            self.blk.tally.roc_hit_sectors += n;
                            self.blk.roc.credit_replayed_hits(n);
                        } else {
                            for jj in 1..run {
                                for &base in &bases {
                                    self.roc_one_sector((base + (e0 + jj) * 4) / sb);
                                }
                            }
                        }
                    }
                    j += run;
                }
                for b in bufs.iter() {
                    // Read-set bookkeeping; cannot abandon (pre-checked).
                    let _ = self.blk.global_read_f32s(*b);
                }
            }
            FusedSrc::LaneBroadcast(_) => {
                let t = &mut self.blk.tally;
                charge_lanes(t, steps * dims, a);
                t.shuffle_instructions += steps * dims;
            }
        }
        let pred_alu = !matches!(pred, FusedPred::All) as u64;
        if pred_alu != 0 {
            let t = &mut self.blk.tally;
            charge_lanes(t, steps, a);
            t.alu_instructions += steps;
        }

        // ---- distance + consumer charges from the lowered formulas ----
        let (npm, sum_apm) = ck.pass_counts(len, pred, valid);
        {
            let t = &mut self.blk.tally;
            t.warp_instructions += npm * ck.wi;
            t.useful_lane_ops += ck.wi * sum_apm;
            t.predicated_lane_slots += ck.wi * (npm * WARP_SIZE as u64 - sum_apm);
            t.alu_instructions += npm * ck.per;
        }

        // ---- the compiled compute loop (lane-major) ----
        // The block's persistent scratch is taken out of `self.blk`
        // before the view borrows it (the view holds the whole block
        // immutably); restored after the compute match.
        let mut scr = std::mem::take(&mut self.blk.compiled_scratch);
        // Histogram scatter accounting, accumulated per step in closed
        // form (Σ multiplicity, Σ bank+contention replays) exactly as
        // the fused pass accumulates it.
        let mut atom_serial = 0u64;
        let mut atom_txns = 0u64;
        let mut atom_replays = 0u64;
        let view = match &src {
            FusedSrc::SharedBroadcast(tile) => SrcView::Cols {
                cols: std::array::from_fn(|d| self.blk.shared.f32s(tile[d])),
                start: 0,
            },
            FusedSrc::RocBroadcast { bufs, start } => SrcView::Cols {
                cols: std::array::from_fn(|d| self.blk.gmem().f32_slice(bufs[d])),
                start: *start as usize,
            },
            FusedSrc::LaneBroadcast(lanes) => SrcView::Lanes(lanes),
        };
        let nl = valid.count() as usize;
        match consumer {
            FusedConsumer::CountLt { acc, .. } => {
                let thr = ck.threshold;
                // `radius = +inf` accepts +inf distances that the
                // sqrt-free compare would reject (`inf < inf`); keep
                // the sqrt form for that (cold) case.
                let sqrt_free = ck.radius != f32::INFINITY;
                // A lane-broadcast tile wider than the warp would wrap
                // its indices (`j % 32`); the contiguous fast path
                // cannot express that, so such (never-emitted) shapes
                // take the generic loop below.
                let lanes_fit = match &view {
                    SrcView::Lanes(_) => len as usize <= WARP_SIZE,
                    SrcView::Cols { .. } => true,
                };
                if sqrt_free && lanes_fit {
                    // Hot path: bind contiguous columns once and count
                    // each lane's range through the autovectorized
                    // sweep (`count_lt_cols`). Identical bits: the
                    // per-element arithmetic is the same scalar chain,
                    // and integer counts commute.
                    let lane_cols: [[f32; WARP_SIZE]; D] = match &view {
                        SrcView::Lanes(l) => std::array::from_fn(|d| l[d]),
                        SrcView::Cols { .. } => [[0.0; WARP_SIZE]; D],
                    };
                    let (cols, start): ([&[f32]; D], usize) = match &view {
                        SrcView::Cols { cols, start } => (*cols, *start),
                        SrcView::Lanes(_) => (std::array::from_fn(|d| &lane_cols[d][..]), 0),
                    };
                    let hi = start + len as usize;
                    match pred {
                        FusedPred::All => {
                            for l in 0..nl {
                                let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                                acc[l] += count_lt_cols(&o, &cols, start, hi, thr);
                            }
                        }
                        FusedPred::NotEqual { gid0, base } => {
                            // Count everything, then take back each
                            // lane's self-pair term (integer adds
                            // commute; a step whose mask empties
                            // entirely can only be the single-lane
                            // self step, which the subtraction removes
                            // identically).
                            for l in 0..nl {
                                let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                                let mut cnt = count_lt_cols(&o, &cols, start, hi, thr);
                                let j_self = (gid0 as i64 + l as i64) - base as i64;
                                if (0..len as i64).contains(&j_self) {
                                    let s = euclid_sumsq(&o, &view.point(j_self as usize));
                                    cnt -= (s < thr) as u64;
                                }
                                acc[l] += cnt;
                            }
                        }
                        FusedPred::LessThan { gid0, base } => {
                            // Lane l is active from step j0 = gid0+l+1−base.
                            for l in 0..nl {
                                let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                                let j0 = (gid0 as i64 + l as i64 + 1 - base as i64)
                                    .clamp(0, len as i64)
                                    as usize;
                                acc[l] += count_lt_cols(&o, &cols, start + j0, hi, thr);
                            }
                        }
                    }
                } else {
                    match pred {
                        FusedPred::All => {
                            for l in 0..nl {
                                let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                                let mut cnt = 0u64;
                                for j in 0..len as usize {
                                    let s = euclid_sumsq(&o, &view.point(j));
                                    cnt += if sqrt_free {
                                        (s < thr) as u64
                                    } else {
                                        (s.sqrt() < ck.radius) as u64
                                    };
                                }
                                acc[l] += cnt;
                            }
                        }
                        FusedPred::NotEqual { gid0, base } => {
                            // Count everything, then take back each lane's
                            // self-pair term (integer adds commute; a step
                            // whose mask empties entirely can only be the
                            // single-lane self step, which the subtraction
                            // removes identically).
                            for l in 0..nl {
                                let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                                let mut cnt = 0u64;
                                for j in 0..len as usize {
                                    let s = euclid_sumsq(&o, &view.point(j));
                                    cnt += if sqrt_free {
                                        (s < thr) as u64
                                    } else {
                                        (s.sqrt() < ck.radius) as u64
                                    };
                                }
                                let j_self = (gid0 as i64 + l as i64) - base as i64;
                                if (0..len as i64).contains(&j_self) {
                                    let s = euclid_sumsq(&o, &view.point(j_self as usize));
                                    cnt -= if sqrt_free {
                                        (s < thr) as u64
                                    } else {
                                        (s.sqrt() < ck.radius) as u64
                                    };
                                }
                                acc[l] += cnt;
                            }
                        }
                        FusedPred::LessThan { gid0, base } => {
                            // Lane l is active from step j0 = gid0+l+1−base.
                            for l in 0..nl {
                                let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                                let j0 = (gid0 as i64 + l as i64 + 1 - base as i64)
                                    .clamp(0, len as i64)
                                    as usize;
                                let mut cnt = 0u64;
                                for j in j0..len as usize {
                                    let s = euclid_sumsq(&o, &view.point(j));
                                    cnt += if sqrt_free {
                                        (s < thr) as u64
                                    } else {
                                        (s.sqrt() < ck.radius) as u64
                                    };
                                }
                                acc[l] += cnt;
                            }
                        }
                    }
                }
            }
            FusedConsumer::Sum { acc } => {
                // f32 accumulation: per lane the adds stay in ascending
                // step order, exactly the op-by-op sequence.
                match pred {
                    FusedPred::All => {
                        for l in 0..nl {
                            let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            let mut s_acc = acc[l];
                            for j in 0..len as usize {
                                s_acc += euclid_sumsq(&o, &view.point(j)).sqrt();
                            }
                            acc[l] = s_acc;
                        }
                    }
                    FusedPred::NotEqual { gid0, base } => {
                        for l in 0..nl {
                            let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            let j_self = (gid0 as i64 + l as i64) - base as i64;
                            let mut s_acc = acc[l];
                            for j in 0..len as usize {
                                if j as i64 == j_self {
                                    continue;
                                }
                                s_acc += euclid_sumsq(&o, &view.point(j)).sqrt();
                            }
                            acc[l] = s_acc;
                        }
                    }
                    FusedPred::LessThan { gid0, base } => {
                        for l in 0..nl {
                            let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            let j0 = (gid0 as i64 + l as i64 + 1 - base as i64).clamp(0, len as i64)
                                as usize;
                            let mut s_acc = acc[l];
                            for j in j0..len as usize {
                                s_acc += euclid_sumsq(&o, &view.point(j)).sqrt();
                            }
                            acc[l] = s_acc;
                        }
                    }
                }
            }
            FusedConsumer::Histogram { shm, .. } => {
                // Phase A: bucket every step's distance row straight off
                // the tile view — stack row, no squared-distance spill —
                // splitting full-warp steps (deferred to one batched
                // walk, whose broadcast shortcut covers clustered steps
                // closed-form) from partial-warp ones (deferred to the
                // per-step masked walk). Deferral is sound: the sink
                // pre-flights above ruled out faults, and the accounting
                // sums and wrapping data adds commute across steps. Per
                // pair the operation sequence is exactly the op-by-op
                // chain: `euclid_sumsq` in ascending dimensions, sqrt,
                // FMUL, saturating cast (exact-geometry rows through the
                // vectorized cast of `bucket_row_exact` — identical
                // bits).
                let lh = &ck.hists[0];
                let (inv_width, hmax) = (lh.inv_width, lh.hmax);
                let exact = !lh.edges.is_empty();
                scr.b.clear();
                scr.p.clear();
                scr.pn.clear();
                if matches!(pred, FusedPred::All) && valid.0 == u32::MAX && exact {
                    // Unpredicated full-valid pass — the hot shape:
                    // every step is a full-warp row, so one fused
                    // distance+bucket loop writes the batch buffer in
                    // place (no distance spill, no per-row copy).
                    scr.b.resize(len as usize * WARP_SIZE, 0);
                    let hf = hmax as f32;
                    for (j, out) in scr.b.chunks_exact_mut(WARP_SIZE).enumerate() {
                        let p = view.point(j);
                        for (l, o) in out.iter_mut().enumerate() {
                            let mut s = 0.0f32;
                            for d in 0..D {
                                let diff = own[d][l] - p[d];
                                s = diff.mul_add(diff, s);
                            }
                            *o = floor_bucket_exact(s.sqrt(), inv_width, hf);
                        }
                    }
                } else {
                    for j in 0..len {
                        let pm = Self::fused_pred_mask(pred, j, valid);
                        if !pm.any() {
                            continue;
                        }
                        let p = view.point(j as usize);
                        let mut srow = [0.0f32; WARP_SIZE];
                        for d in 0..D {
                            let pd = p[d];
                            for (sl, &ol) in srow.iter_mut().zip(own[d].iter()) {
                                let diff = ol - pd;
                                *sl = diff.mul_add(diff, *sl);
                            }
                        }
                        if pm.0 == u32::MAX && exact {
                            let mut tmp = [0u32; WARP_SIZE];
                            bucket_row_exact(&srow, inv_width, hmax, &mut tmp);
                            scr.b.extend_from_slice(&tmp);
                            continue;
                        }
                        // Partial-warp (or degenerate-geometry) step:
                        // the scalar cast chain over the active lanes.
                        let n0 = scr.p.len();
                        if pm.0 == u32::MAX {
                            scr.p.extend(
                                srow.iter()
                                    .map(|&s| ((s.sqrt() * inv_width) as u32).min(hmax)),
                            );
                        } else {
                            scr.p.extend(
                                pm.lanes()
                                    .map(|l| ((srow[l].sqrt() * inv_width) as u32).min(hmax)),
                            );
                        }
                        scr.pn.push((scr.p.len() - n0) as u32);
                    }
                }
                // Phase B: the batched walk over the full-warp rows,
                // then the ragged/masked steps one at a time.
                let (s_b, t_b, r_b) =
                    self.blk
                        .shared
                        .scatter_account_update_rows(shm, &scr.b, &mut scr.scatter);
                atom_serial += s_b;
                atom_txns += t_b;
                atom_replays += r_b;
                let mut off = 0usize;
                for &na in &scr.pn {
                    let na = na as usize;
                    let (mult, txns) = self.blk.shared.scatter_account_update(
                        shm,
                        &scr.p[off..off + na],
                        &mut scr.scatter,
                    );
                    off += na;
                    atom_serial += mult;
                    atom_txns += txns + mult - 1;
                    atom_replays += txns.saturating_sub(1);
                }
            }
            FusedConsumer::Multi(mut sinks) => {
                // One distance evaluation per step feeds every sink in
                // order, exactly like the fused Multi consumer — but the
                // squared distances stay in a stack row (no spill; the
                // per-sink compare loops then run over fixed-size
                // arrays, the shape LLVM vectorizes), count sinks
                // compare sqrt-free against the lowered thresholds, and
                // each histogram sink's scatter shares the merged
                // accounting+update walk.
                let mut count_sinks: Vec<(f32, &mut U64x32)> = Vec::new();
                let mut hist_sinks: Vec<(usize, ShmU32)> = Vec::new();
                let mut hk = 0usize;
                for sink in sinks.iter_mut() {
                    match sink {
                        FusedSink::CountLt { radius, acc } => count_sinks.push((*radius, acc)),
                        FusedSink::Histogram { shm, .. } => {
                            hist_sinks.push((hk, *shm));
                            hk += 1;
                        }
                    }
                }
                // Lowered parameters ride in sink order (checked against
                // the consumer in the agreement above). A +inf radius
                // keeps the sqrt form (see the CountLt arm); finite
                // radii compare squared.
                let cthr: Vec<(f32, f32, bool)> = ck
                    .count_thresholds
                    .iter()
                    .map(|&(r, t)| (r, t, r == f32::INFINITY))
                    .collect();
                let need_drow =
                    !hist_sinks.is_empty() || cthr.iter().any(|&(_, _, use_sqrt)| use_sqrt);
                let mut cnts: Vec<U32x32> = vec![[0u32; WARP_SIZE]; count_sinks.len()];
                if scr.bs.len() < hist_sinks.len() {
                    scr.bs.resize_with(hist_sinks.len(), Vec::new);
                    scr.pbs.resize_with(hist_sinks.len(), Vec::new);
                    scr.pbn.resize_with(hist_sinks.len(), Vec::new);
                }
                for k in 0..hist_sinks.len() {
                    scr.bs[k].clear();
                    scr.pbs[k].clear();
                    scr.pbn[k].clear();
                }
                for j in 0..len {
                    let pm = Self::fused_pred_mask(pred, j, valid);
                    if !pm.any() {
                        continue;
                    }
                    let p = view.point(j as usize);
                    let mut row = [0.0f32; WARP_SIZE];
                    for d in 0..D {
                        let pd = p[d];
                        for (sl, &ol) in row.iter_mut().zip(own[d].iter()) {
                            let diff = ol - pd;
                            *sl = diff.mul_add(diff, *sl);
                        }
                    }
                    let mut drow = [0.0f32; WARP_SIZE];
                    if need_drow {
                        for (d, &s) in drow.iter_mut().zip(row.iter()) {
                            *d = s.sqrt();
                        }
                    }
                    if pm.0 == u32::MAX {
                        for (&(r, thr, use_sqrt), cnt) in cthr.iter().zip(cnts.iter_mut()) {
                            if use_sqrt {
                                for l in 0..WARP_SIZE {
                                    cnt[l] += (drow[l] < r) as u32;
                                }
                            } else {
                                for l in 0..WARP_SIZE {
                                    cnt[l] += (row[l] < thr) as u32;
                                }
                            }
                        }
                    } else {
                        for (&(r, thr, use_sqrt), cnt) in cthr.iter().zip(cnts.iter_mut()) {
                            for l in pm.lanes() {
                                cnt[l] += if use_sqrt {
                                    (drow[l] < r) as u32
                                } else {
                                    (row[l] < thr) as u32
                                };
                            }
                        }
                    }
                    for (k, _) in hist_sinks.iter().enumerate() {
                        let lh = &ck.hists[k];
                        let (iw, h) = (lh.inv_width, lh.hmax);
                        if pm.0 == u32::MAX && !lh.edges.is_empty() {
                            // Full-warp step with exact geometry: the
                            // vectorized magic-number floor (identical
                            // bits — see `floor_bucket_exact`, here
                            // applied to the already-sqrt'd row),
                            // deferred to the sink's batched scatter
                            // walk below.
                            let hf = h as f32;
                            let mut tmp = [0u32; WARP_SIZE];
                            for (b, &d) in tmp.iter_mut().zip(drow.iter()) {
                                *b = floor_bucket_exact(d, iw, hf);
                            }
                            scr.bs[k].extend_from_slice(&tmp);
                            continue;
                        }
                        // Partial or inexact step: deferred like the
                        // batched rows (the view still borrows the
                        // block's memory here, and the walks commute —
                        // pre-flights already ruled out faults).
                        if pm.0 == u32::MAX {
                            for &d in drow.iter() {
                                scr.pbs[k].push(((d * iw) as u32).min(h));
                            }
                            scr.pbn[k].push(WARP_SIZE as u32);
                        } else {
                            let mut na = 0u32;
                            for l in pm.lanes() {
                                scr.pbs[k].push(((drow[l] * iw) as u32).min(h));
                                na += 1;
                            }
                            scr.pbn[k].push(na);
                        }
                    }
                }
                for (k, &(_, shm)) in hist_sinks.iter().enumerate() {
                    let (s_b, t_b, r_b) = self.blk.shared.scatter_account_update_rows(
                        shm,
                        &scr.bs[k],
                        &mut scr.scatter,
                    );
                    atom_serial += s_b;
                    atom_txns += t_b;
                    atom_replays += r_b;
                    let mut off = 0usize;
                    for &na in scr.pbn[k].iter() {
                        let na = na as usize;
                        let (mult, txns) = self.blk.shared.scatter_account_update(
                            shm,
                            &scr.pbs[k][off..off + na],
                            &mut scr.scatter,
                        );
                        atom_serial += mult;
                        atom_txns += txns + mult - 1;
                        atom_replays += txns.saturating_sub(1);
                        off += na;
                    }
                }
                for ((_, acc), cnt) in count_sinks.iter_mut().zip(cnts.iter()) {
                    for l in 0..WARP_SIZE {
                        acc[l] += cnt[l] as u64;
                    }
                }
            }
        }
        self.blk.compiled_scratch = scr;

        // Histogram sink charges: one shared atomic per executed step
        // per sink, with the data-dependent serialization accumulated
        // above — summed after the loop because tally adds commute.
        if ck.n_hist != 0 {
            let t = &mut self.blk.tally;
            t.shared_atomics += npm * ck.n_hist;
            t.shared_atomic_serial += atom_serial;
            t.shared_transactions += atom_txns;
            t.shared_bank_replays += atom_replays;
            t.shared_bytes += 4 * sum_apm * ck.n_hist;
        }

        let interp = &mut self.blk.interp;
        interp.dispatches += 1;
        interp.compiled_ops += 1;
        interp.compiled_lane_ops += a * steps * (dims + pred_alu) + ck.wi * sum_apm;
        true
    }

    /// Compiled triangular intra-block pass (`IntraMode::Regular`,
    /// `HalfPairs`): thread `t` pairs with partners `t+1 … block_n−1`.
    /// Replaces the whole `divergent_loop` — per iteration one control
    /// charge, one address ALU, `D` partner gathers, the distance
    /// evaluation and the consumer — with arithmetic-series charge
    /// totals and one lane-major compute sweep. The op-by-op loop it
    /// replaces stays as the differential oracle (and the fallback for
    /// every declined shape: load-balanced intra, non-prefix masks,
    /// non-Euclidean plans, would-fault tiles).
    ///
    /// `valid` must be the caller's `tid < block_n ∧ active` mask and
    /// `own` the warp's register-resident points, exactly as the
    /// op-by-op `intra_block_shared` receives them.
    #[allow(clippy::too_many_arguments)]
    pub fn compiled_intra_regular<const D: usize>(
        &mut self,
        ck: &CompiledKernel,
        tile: CompiledTile<'_, D>,
        block_start: u32,
        block_n: u32,
        own: &[F32x32; D],
        consumer: FusedConsumer<'_>,
        valid: Mask,
    ) -> bool {
        if !self.blk.cfg.compiled
            || self.blk.cfg.scalar_reference
            || self.blk.dead()
            || !valid.is_prefix()
            || ck.dims != D as u32
        {
            return false;
        }
        match (&consumer, &ck.sink) {
            (FusedConsumer::CountLt { radius, .. }, CompiledSinkSpec::CountLt { radius: r })
                if radius.to_bits() == r.to_bits() => {}
            (FusedConsumer::Sum { .. }, CompiledSinkSpec::Sum) => {}
            (
                FusedConsumer::Histogram {
                    inv_width, hmax, ..
                },
                CompiledSinkSpec::Histogram {
                    inv_width: iw,
                    hmax: h,
                },
            ) if inv_width.to_bits() == iw.to_bits() && hmax == h => {}
            _ => return false,
        }
        let v = valid.count() as u64;
        let tid0 = self.warp_id * WARP_SIZE as u32;
        // Lane l's trip count is block_n−1−(tid0+l); the masked maximum
        // is lane 0's. An empty mask or a zero maximum runs zero
        // iterations and charges nothing — same as the divergent loop.
        let t_max = if v == 0 {
            0
        } else {
            block_n.saturating_sub(1).saturating_sub(tid0) as u64
        };
        if t_max == 0 {
            return true;
        }
        // Pre-flight: the deepest gather reaches element block_n−1;
        // histogram scatters reach hmax.
        match &tile {
            CompiledTile::Shared(tile) => {
                if tile.iter().any(|h| {
                    self.blk
                        .shared
                        .check_bounds(h.0, block_n - 1, "shared f32 load")
                        .is_err()
                }) {
                    return false;
                }
            }
            CompiledTile::Roc(bufs) => {
                let Some(last) = block_start.checked_add(block_n - 1) else {
                    return false;
                };
                if bufs.iter().any(|b| {
                    self.blk
                        .check_global_bounds(b.0, last, "roc f32 load")
                        .is_err()
                        || self.blk.read_would_abandon(b.0)
                }) {
                    return false;
                }
            }
        }
        if let FusedConsumer::Histogram { hmax, shm, .. } = &consumer {
            if self
                .blk
                .shared
                .check_bounds(shm.0, *hmax, "shared u32 atomicAdd")
                .is_err()
            {
                return false;
            }
        }

        // Iteration j runs a_j = min(v, T−j) lanes; the series sums in
        // closed form.
        let s_total = if t_max <= v {
            t_max * (t_max + 1) / 2
        } else {
            v * (v + 1) / 2 + (t_max - v) * v
        };
        let dims = D as u64;
        // Per-iteration warp instructions: loop test (1) + address ALU
        // (1) + D gathers + distance eval (2D+1) + consumer; histogram
        // adds the atomic memory op.
        let wi_j = 1 + 1 + dims + ck.wi;
        let alu_j = 1 + ck.per;
        {
            let t = &mut self.blk.tally;
            t.warp_instructions += t_max * wi_j;
            t.useful_lane_ops += wi_j * s_total;
            t.predicated_lane_slots += wi_j * (t_max * WARP_SIZE as u64 - s_total);
            t.alu_instructions += t_max * alu_j;
            t.control_instructions += t_max;
            t.divergent_iterations += t_max.min(v.saturating_sub(1));
            match &tile {
                CompiledTile::Shared(_) => {
                    t.shared_load_instructions += t_max * dims;
                    // Unit-stride (or single-lane broadcast) f32
                    // gathers: one conflict-free transaction each.
                    t.shared_transactions += t_max * dims;
                    t.shared_bytes += 4 * dims * s_total;
                }
                CompiledTile::Roc(_) => {
                    t.roc_load_instructions += t_max * dims;
                    t.roc_bytes += 4 * dims * s_total;
                }
            }
        }
        // Final (failing) loop test under the full mask.
        {
            let t = &mut self.blk.tally;
            charge_lanes(t, 1, v);
            t.control_instructions += 1;
        }
        // The stateful ROC sector stream replays per iteration in
        // op-by-op order: iteration j gathers elements
        // block_start+tid0+1+j … +a_j−1 per dimension (an ascending
        // contiguous sector run).
        if let CompiledTile::Roc(bufs) = &tile {
            let sb = self.blk.cfg.sector_bytes as u64;
            let bases: [u64; D] = std::array::from_fn(|d| self.blk.global_base_addr(bufs[d].0));
            let first0 = block_start as u64 + tid0 as u64 + 1;
            for j in 0..t_max {
                let a_j = v.min(t_max - j);
                let first = first0 + j;
                for &base in bases.iter() {
                    let s0 = (base + first * 4) / sb;
                    let s1 = (base + (first + a_j - 1) * 4) / sb;
                    for s in s0..=s1 {
                        self.roc_one_sector(s);
                    }
                }
            }
            for b in bufs.iter() {
                let _ = self.blk.global_read_f32s(*b);
            }
        }

        // ---- compute ----
        // Partner element index for lane l at iteration j (element
        // space of the tile columns).
        let elem0 = match &tile {
            CompiledTile::Shared(_) => tid0 as usize,
            CompiledTile::Roc(_) => (block_start + tid0) as usize,
        };
        match consumer {
            FusedConsumer::CountLt { acc, .. } => {
                let cols: [&[f32]; D] = match &tile {
                    CompiledTile::Shared(tile) => {
                        std::array::from_fn(|d| self.blk.shared.f32s(tile[d]))
                    }
                    CompiledTile::Roc(bufs) => {
                        std::array::from_fn(|d| self.blk.gmem().f32_slice(bufs[d]))
                    }
                };
                let hi = match &tile {
                    CompiledTile::Shared(_) => block_n as usize,
                    CompiledTile::Roc(_) => (block_start + block_n) as usize,
                };
                let thr = ck.threshold;
                let sqrt_free = ck.radius != f32::INFINITY;
                for l in 0..v as usize {
                    let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                    let e0 = (elem0 + l + 1).min(hi);
                    let cnt = if sqrt_free {
                        count_lt_cols(&o, &cols, e0, hi, thr)
                    } else {
                        // `radius = +inf` needs the sqrt form (see the
                        // inter-tile pass); cold.
                        let mut cnt = 0u64;
                        #[allow(clippy::needless_range_loop)]
                        for e in e0..hi {
                            let p: [f32; D] = std::array::from_fn(|d| cols[d][e]);
                            cnt += (euclid_sumsq(&o, &p).sqrt() < ck.radius) as u64;
                        }
                        cnt
                    };
                    acc[l] += cnt;
                }
            }
            FusedConsumer::Sum { acc } => {
                let cols: [&[f32]; D] = match &tile {
                    CompiledTile::Shared(tile) => {
                        std::array::from_fn(|d| self.blk.shared.f32s(tile[d]))
                    }
                    CompiledTile::Roc(bufs) => {
                        std::array::from_fn(|d| self.blk.gmem().f32_slice(bufs[d]))
                    }
                };
                let hi = match &tile {
                    CompiledTile::Shared(_) => block_n as usize,
                    CompiledTile::Roc(_) => (block_start + block_n) as usize,
                };
                for l in 0..v as usize {
                    let o: [f32; D] = std::array::from_fn(|d| own[d][l]);
                    let mut s_acc = acc[l];
                    #[allow(clippy::needless_range_loop)]
                    for e in (elem0 + l + 1)..hi {
                        let p: [f32; D] = std::array::from_fn(|d| cols[d][e]);
                        s_acc += euclid_sumsq(&o, &p).sqrt();
                    }
                    acc[l] = s_acc;
                }
            }
            FusedConsumer::Histogram {
                inv_width,
                hmax,
                shm,
            } => {
                let mut scr = std::mem::take(&mut self.blk.compiled_scratch);
                // Phase A: the whole triangle's bucket indices into the
                // scratch, step-major and compacted (iteration j
                // contributes a_j = min(v, t_max−j) lanes) — this ends
                // the tile columns' borrow so phase B can scatter into
                // `self.blk.shared` mutably. Per pair the operation
                // sequence is exactly the op-by-op chain: `euclid_sumsq`
                // in ascending dimensions, sqrt, FMUL, saturating cast
                // (the exact-geometry rows go through the vectorized
                // cast of `bucket_row_exact` — identical bits).
                let exact = !ck.hists[0].edges.is_empty();
                scr.b.clear();
                {
                    let cols: [&[f32]; D] = match &tile {
                        CompiledTile::Shared(tile) => {
                            std::array::from_fn(|d| self.blk.shared.f32s(tile[d]))
                        }
                        CompiledTile::Roc(bufs) => {
                            std::array::from_fn(|d| self.blk.gmem().f32_slice(bufs[d]))
                        }
                    };
                    for j in 0..t_max as usize {
                        let a_j = (v as usize).min((t_max as usize) - j);
                        // Lane l's partner at iteration j is element
                        // elem0 + l + 1 + j (in bounds: the deepest
                        // reach is elem0 + t_max, the tile's last
                        // element, pre-flighted above).
                        let e0 = elem0 + 1 + j;
                        let mut srow = [0.0f32; WARP_SIZE];
                        for d in 0..D {
                            let col = &cols[d][e0..e0 + a_j];
                            for ((sl, &ol), &pd) in
                                srow[..a_j].iter_mut().zip(own[d].iter()).zip(col.iter())
                            {
                                let diff = ol - pd;
                                *sl = diff.mul_add(diff, *sl);
                            }
                        }
                        if exact {
                            let mut tmp = [0u32; WARP_SIZE];
                            bucket_row_exact(&srow, inv_width, hmax, &mut tmp);
                            scr.b.extend_from_slice(&tmp[..a_j]);
                        } else {
                            scr.b.extend(
                                srow[..a_j]
                                    .iter()
                                    .map(|&s| ((s.sqrt() * inv_width) as u32).min(hmax)),
                            );
                        }
                    }
                }
                // Phase B: the full-warp iteration prefix (a_j = 32 ⟺
                // v = 32 ∧ j ≤ t_max − 32) takes the batched scatter
                // walk; the ragged tail goes per step. Accounting sums
                // and wrapping data adds commute across steps.
                let mut atom_serial = 0u64;
                let mut atom_txns = 0u64;
                let mut atom_replays = 0u64;
                let full_steps = if v == WARP_SIZE as u64 {
                    t_max.saturating_sub(WARP_SIZE as u64 - 1) as usize
                } else {
                    0
                };
                let split = full_steps * WARP_SIZE;
                let (s_b, t_b, r_b) = self.blk.shared.scatter_account_update_rows(
                    shm,
                    &scr.b[..split],
                    &mut scr.scatter,
                );
                atom_serial += s_b;
                atom_txns += t_b;
                atom_replays += r_b;
                let mut off = split;
                for j in full_steps..t_max as usize {
                    let a_j = (v as usize).min(t_max as usize - j);
                    let (mult, txns) = self.blk.shared.scatter_account_update(
                        shm,
                        &scr.b[off..off + a_j],
                        &mut scr.scatter,
                    );
                    off += a_j;
                    atom_serial += mult;
                    atom_txns += txns + mult - 1;
                    atom_replays += txns.saturating_sub(1);
                }
                self.blk.compiled_scratch = scr;
                let t = &mut self.blk.tally;
                t.shared_atomics += t_max;
                t.shared_atomic_serial += atom_serial;
                t.shared_transactions += atom_txns;
                t.shared_bank_replays += atom_replays;
                t.shared_bytes += 4 * s_total;
            }
            // Multi-sink batches lower for the inter-tile pass only; the
            // intra triangle keeps them on the fused/op route, so the
            // sink-agreement check above already declined them.
            FusedConsumer::Multi(_) => unreachable!("multi declines above"),
        }

        let interp = &mut self.blk.interp;
        interp.dispatches += 1;
        interp.compiled_ops += 1;
        interp.compiled_lane_ops += wi_j * s_total + v;
        true
    }
}

impl BlockCtx<'_> {
    /// Compiled cooperative tile fetch: the whole
    /// `load_tile_to_shared` sweep — every warp's coalesced global load
    /// and conflict-free shared store, per dimension — in one call.
    /// L2 sector runs issue in the exact op-by-op order (warp-major,
    /// dimension-minor); charges are per-warp closed forms. Returns
    /// `false` with no side effects when the compiled route is off or
    /// any access could fault/abandon, and the caller runs the op-by-op
    /// loop (which reproduces the exact fault point).
    pub fn compiled_tile_load<const D: usize>(
        &mut self,
        tile: &[ShmF32; D],
        bufs: &[BufF32; D],
        start: u32,
        count: u32,
    ) -> bool {
        if !self.cfg.compiled || self.cfg.scalar_reference || self.dead() {
            return false;
        }
        // Elements actually loaded: threads 0..min(count, block_dim).
        let nn = count.min(self.block_dim);
        if nn == 0 {
            // Every warp's mask is empty; the op-by-op loop charges
            // nothing either.
            return true;
        }
        let Some(last) = start.checked_add(nn - 1) else {
            return false;
        };
        for d in 0..D {
            if self
                .check_global_bounds(bufs[d].0, last, "global f32 load")
                .is_err()
                || self.read_would_abandon(bufs[d].0)
                || self
                    .shared
                    .check_bounds(tile[d].0, nn - 1, "shared f32 store")
                    .is_err()
            {
                return false;
            }
        }
        let dims = D as u64;
        let sb = self.cfg.sector_bytes as u64;
        let num_warps = self.num_warps();
        let mut warps_charged = 0u64;
        let mut lanes_total = 0u64;
        for w in 0..num_warps {
            let a = nn
                .saturating_sub(w * WARP_SIZE as u32)
                .min(WARP_SIZE as u32) as u64;
            if a == 0 {
                break;
            }
            warps_charged += 1;
            lanes_total += a;
            // Per-warp: one address ALU + per dimension (load + store).
            charge_lanes(&mut self.tally, 1 + 2 * dims, a);
            self.tally.alu_instructions += 1;
            // The L2 stream: one ascending sector run per (warp, dim),
            // dimension-minor — identical to the op-by-op loop order.
            let e0 = start as u64 + w as u64 * WARP_SIZE as u64;
            for buf in bufs {
                let base = self.global_base_addr(buf.0);
                let s0 = (base + e0 * 4) / sb;
                let s1 = (base + (e0 + a - 1) * 4) / sb;
                self.l2_access_run(s0, (s1 - s0 + 1) as u32);
            }
        }
        {
            let t = &mut self.tally;
            t.global_load_instructions += warps_charged * dims;
            t.global_load_bytes += 4 * lanes_total * dims;
            t.shared_store_instructions += warps_charged * dims;
            // Unit-stride (or single-lane) f32 stores: one
            // conflict-free transaction per warp per dimension.
            t.shared_transactions += warps_charged * dims;
            t.shared_bytes += 4 * lanes_total * dims;
        }
        // Data movement: tile[d][t] = buf[d][start + t] for t < nn.
        let mut row = vec![0.0f32; nn as usize];
        for d in 0..D {
            {
                let data = self.global_read_f32s(bufs[d]);
                row.copy_from_slice(&data[start as usize..(start + nn) as usize]);
            }
            let dst = self.shared.f32s_mut(tile[d]);
            dst[..nn as usize].copy_from_slice(&row);
        }
        self.interp.dispatches += 1;
        self.interp.compiled_ops += 1;
        self.interp.compiled_lane_ops += (1 + 2 * dims) * lanes_total;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equiv(radius: f32, s: f32) {
        let t = sqrt_lt_threshold(radius);
        assert_eq!(
            s < t,
            s.sqrt() < radius,
            "radius={radius} s={s} T={t}: sqrt-free compare diverges"
        );
    }

    #[test]
    fn threshold_matches_sqrt_compare_around_boundaries() {
        for &radius in &[
            0.5f32, 1.0, 1.5, 25.0, 1e-20, 1e20, 3.0e19, 1.7e19, 123.456, 0.1,
        ] {
            let sq = radius * radius;
            let base = if sq.is_finite() { sq } else { f32::MAX };
            let mut probes = vec![0.0f32, base];
            let mut up = base;
            let mut dn = base;
            for _ in 0..64 {
                up = f32::from_bits(up.to_bits() + 1);
                if dn > 0.0 {
                    dn = f32::from_bits(dn.to_bits() - 1);
                }
                probes.push(up);
                probes.push(dn);
            }
            for s in probes {
                check_equiv(radius, s);
            }
        }
    }

    #[test]
    // The literal negated comparisons (including against NaN) are the
    // property under test: both forms must reject, not order.
    #[allow(clippy::neg_cmp_op_on_partial_ord, invalid_nan_comparisons)]
    fn threshold_degenerate_radii() {
        // radius ≤ 0 or NaN accepts nothing.
        for &radius in &[0.0f32, -1.0, f32::NAN] {
            let t = sqrt_lt_threshold(radius);
            assert_eq!(t, 0.0);
            for &s in &[0.0f32, 1.0, f32::MAX] {
                assert!(!(s < t));
                assert!(!(s.sqrt() < radius));
            }
        }
        // NaN distances fail both forms.
        let t = sqrt_lt_threshold(25.0);
        assert!(!(f32::NAN < t));
        assert!(!(f32::NAN.sqrt() < 25.0));
        // +inf radius accepts every finite s.
        assert_eq!(sqrt_lt_threshold(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn threshold_exhaustive_small_grid() {
        // Dense sweep: many radii × many sums, including subnormals.
        let mut s_vals = vec![0.0f32];
        let mut x = f32::MIN_POSITIVE / 4.0;
        while x < 1e30 {
            s_vals.push(x);
            x *= 3.7;
        }
        for i in 1..200u32 {
            let radius = i as f32 * 0.37;
            for &s in &s_vals {
                check_equiv(radius, s);
            }
        }
    }

    #[test]
    fn lower_respects_config_gates() {
        let mut cfg = crate::config::DeviceConfig::titan_x();
        cfg.compiled = false;
        assert!(
            CompiledKernel::lower(&cfg, 3, 256, CompiledSinkSpec::Sum).is_none(),
            "compiled off must not lower"
        );
        cfg.compiled = true;
        cfg.scalar_reference = true;
        assert!(
            CompiledKernel::lower(&cfg, 3, 256, CompiledSinkSpec::Sum).is_none(),
            "scalar reference overrides"
        );
        cfg.scalar_reference = false;
        let ck = CompiledKernel::lower(&cfg, 3, 256, CompiledSinkSpec::CountLt { radius: 25.0 })
            .expect("lowering");
        assert_eq!(ck.full_steps, 256);
        // Euclidean cost 2·3+1 plus the CountLt compare+increment.
        assert_eq!(ck.wi, 9);
        assert_eq!(ck.per, 9);
        assert!(ck.threshold() > 0.0);
    }

    /// The device's bucket index for a squared distance `s`: one sqrt,
    /// scale, truncate, clamp — the chain the edge table must replace
    /// exactly.
    fn sqrt_bucket(s: f32, inv_width: f32, hmax: u32) -> u32 {
        ((s.sqrt() * inv_width) as u32).min(hmax)
    }

    #[test]
    fn squared_bin_edges_are_exact_at_every_boundary() {
        // For every bucket b, the table must satisfy
        //   edges[b] <= s < edges[b+1]  <=>  sqrt_bucket(s) == b
        // including at the edges themselves and one ulp either side.
        for (inv_width, hmax) in [
            (0.2f32, 31u32),
            (1.0, 63),
            (3.7, 7),
            (0.177, 255),
            (1e-3, 1023),
            (12.5, 0),
        ] {
            let edges = squared_bin_edges(inv_width, hmax);
            assert_eq!(edges.len(), hmax as usize + 2, "inv_width={inv_width}");
            assert_eq!(edges[0], 0.0);
            assert_eq!(edges[hmax as usize + 1], f32::INFINITY);
            for b in 0..=hmax {
                let (lo, hi) = (edges[b as usize], edges[b as usize + 1]);
                assert!(lo <= hi, "edge order b={b}");
                // Probe the boundary neighborhood from both sides.
                for s in [
                    lo,
                    f32::from_bits(lo.to_bits() + 1),
                    if hi.is_finite() {
                        f32::from_bits(hi.to_bits().saturating_sub(1))
                    } else {
                        f32::MAX
                    },
                ] {
                    if s < hi && lo <= s {
                        assert_eq!(
                            sqrt_bucket(s, inv_width, hmax),
                            b,
                            "inside bucket b={b} s={s} inv_width={inv_width}"
                        );
                    }
                }
                if b > 0 {
                    // Just below the lower edge must fall in an earlier bucket.
                    let below = f32::from_bits(lo.to_bits().wrapping_sub(1));
                    if below.is_finite() && below >= 0.0 {
                        assert!(
                            sqrt_bucket(below, inv_width, hmax) < b,
                            "below edge b={b} inv_width={inv_width}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn squared_bin_edges_cover_random_samples() {
        // Dense pseudo-random sweep: table lookup == sqrt chain for
        // every sample, degenerate values included.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for &(inv_width, hmax) in &[(0.35f32, 47u32), (2.2, 15), (0.05, 511)] {
            let edges = squared_bin_edges(inv_width, hmax);
            assert!(!edges.is_empty());
            let lookup = |s: f32| {
                debug_assert!(!s.is_nan());
                // Binary-search the table exactly as a device lane would
                // walk it: greatest b with edges[b] <= s.
                edges.partition_point(|&e| e <= s).saturating_sub(1) as u32
            };
            for _ in 0..4000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let s = ((x >> 32) as f32 / u32::MAX as f32) * 2.0 / (inv_width * inv_width);
                assert_eq!(
                    lookup(s),
                    sqrt_bucket(s, inv_width, hmax),
                    "s={s} inv_width={inv_width} hmax={hmax}"
                );
            }
            assert_eq!(lookup(0.0), 0);
            assert_eq!(lookup(f32::MAX), hmax);
        }
    }

    #[test]
    fn squared_bin_edges_decline_degenerate_geometry() {
        // Non-finite / non-positive scales and oversized tables must
        // return the empty sentinel: the sink keeps the sqrt chain.
        assert!(squared_bin_edges(f32::INFINITY, 31).is_empty());
        assert!(squared_bin_edges(f32::NAN, 31).is_empty());
        assert!(squared_bin_edges(0.0, 31).is_empty());
        assert!(squared_bin_edges(-1.0, 31).is_empty());
        assert!(squared_bin_edges(0.5, EDGE_TABLE_MAX_BUCKETS).is_empty());
        // Largest admissible table still builds.
        let edges = squared_bin_edges(0.5, EDGE_TABLE_MAX_BUCKETS - 1);
        assert_eq!(edges.len(), EDGE_TABLE_MAX_BUCKETS as usize + 1);
    }

    #[test]
    fn pass_counts_match_mask_walk() {
        let cfg = {
            let mut c = crate::config::DeviceConfig::titan_x();
            c.compiled = true;
            c
        };
        let ck = CompiledKernel::lower(&cfg, 2, 128, CompiledSinkSpec::Sum).unwrap();
        // Closed form for the All-pred shapes vs the explicit walk.
        for &(len, nv) in &[(128u32, 32u32), (128, 7), (17, 32), (1, 1)] {
            let valid = Mask::first_n(nv);
            let (npm, sum) = ck.pass_counts(len, FusedPred::All, valid);
            let mut npm2 = 0;
            let mut sum2 = 0;
            for j in 0..len {
                let pm = WarpCtx::fused_pred_mask(FusedPred::All, j, valid);
                if pm.any() {
                    npm2 += 1;
                    sum2 += pm.count() as u64;
                }
            }
            assert_eq!((npm, sum), (npm2, sum2), "len={len} nv={nv}");
        }
    }
}
