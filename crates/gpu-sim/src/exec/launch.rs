//! Kernel launch geometry.

use crate::config::DeviceConfig;
use crate::error::SimError;

/// A 1-D launch configuration (`<<<grid_dim, block_dim>>>` in CUDA).
///
/// All 2-BS kernels in the paper use 1-D grids: the number of thread
/// blocks equals the number of data blocks (its equation 1, M = N / B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block (the paper's B; it uses 1024 for the 2-PCF
    /// experiments and 256 for the histogram-size study).
    pub block_dim: u32,
}

impl LaunchConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Grid covering `n` threads with blocks of `block_dim`. `n = 0`
    /// yields an empty grid (`grid_dim == 0`), which launches as a no-op.
    pub fn for_n_threads(n: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim: n.div_ceil(block_dim.max(1)),
            block_dim: block_dim.max(1),
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> u32 {
        self.block_dim.div_ceil(crate::WARP_SIZE as u32)
    }

    /// Validate against device limits.
    ///
    /// `grid_dim == 0` is valid: it describes an *empty* launch that
    /// executes no blocks and leaves memory untouched (the engine makes
    /// it a no-op), which is what N = 0 problem sizes lower to.
    pub fn validate(&self, cfg: &DeviceConfig) -> Result<(), SimError> {
        if self.block_dim == 0 {
            return Err(SimError::InvalidLaunch {
                reason: "block_dim must be non-zero".to_string(),
            });
        }
        if self.block_dim > cfg.max_threads_per_block {
            return Err(SimError::InvalidLaunch {
                reason: format!(
                    "block_dim {} exceeds device limit {}",
                    self.block_dim, cfg.max_threads_per_block
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_n_threads_rounds_up() {
        let lc = LaunchConfig::for_n_threads(1000, 256);
        assert_eq!(lc.grid_dim, 4);
        assert_eq!(lc.total_threads(), 1024);
        assert_eq!(LaunchConfig::for_n_threads(1024, 256).grid_dim, 4);
        assert_eq!(LaunchConfig::for_n_threads(1, 256).grid_dim, 1);
        assert_eq!(LaunchConfig::for_n_threads(0, 256).grid_dim, 0);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        assert_eq!(LaunchConfig::new(1, 1024).warps_per_block(), 32);
        assert_eq!(LaunchConfig::new(1, 33).warps_per_block(), 2);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cfg = DeviceConfig::titan_x();
        // An empty grid is a valid no-op launch (N = 0 lowers to it)...
        assert!(LaunchConfig::new(0, 128).validate(&cfg).is_ok());
        // ...but zero-thread blocks are still rejected.
        assert!(LaunchConfig::new(1, 0).validate(&cfg).is_err());
        assert!(LaunchConfig::new(1, 2048).validate(&cfg).is_err());
        assert!(LaunchConfig::new(1, 1024).validate(&cfg).is_ok());
    }
}
