//! SIMT execution: launch configuration, block/warp contexts and the
//! [`Kernel`] trait.
//!
//! Kernels are written at *warp granularity*: [`Kernel::run_block`] is
//! called once per thread block and iterates its warps through
//! [`BlockCtx::for_each_warp`]; every [`WarpCtx`] operation acts on all 32
//! lanes under an explicit active [`Mask`]. `__syncthreads()` corresponds
//! to finishing one `for_each_warp` sweep and starting the next after
//! [`BlockCtx::syncthreads`] — the engine runs warps of a block in
//! lock-step phases, which is exactly the programming discipline the
//! paper's Algorithm 2/3 tiling kernels rely on.

mod block;
mod compiled;
pub(crate) mod engine;
mod fused;
mod launch;
mod mask;
mod warp;

pub use block::BlockCtx;
pub use compiled::{sqrt_lt_threshold, CompiledKernel, CompiledSinkSpec, CompiledTile};
pub use fused::{FusedConsumer, FusedPred, FusedSink, FusedSrc};
pub use launch::LaunchConfig;
pub use mask::Mask;
pub use warp::WarpCtx;

use crate::occupancy::Occupancy;
use crate::profile::KernelProfile;
use crate::tally::{AccessTally, InterpStats};
use crate::timing::TimingBreakdown;

/// Static resource usage a kernel declares up front, the way `nvcc`
/// reports registers-per-thread and static shared memory. Drives the
/// occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block, in bytes. Dynamic allocations made
    /// inside `run_block` must stay within this declaration.
    pub shared_mem_bytes: u32,
}

impl KernelResources {
    pub fn new(regs_per_thread: u32, shared_mem_bytes: u32) -> Self {
        KernelResources {
            regs_per_thread,
            shared_mem_bytes,
        }
    }
}

/// A device kernel.
///
/// Implementations capture their buffer handles and launch parameters by
/// value, like a CUDA kernel captures device pointers. `Sync` is required
/// so the parallel block engine can execute a kernel's blocks from
/// multiple host threads — kernels hold only `Copy` handles and launch
/// parameters, so this is automatic in practice.
pub trait Kernel: Sync {
    /// Kernel name for profiles and reports.
    fn name(&self) -> &'static str;

    /// Declared register/shared-memory usage (occupancy inputs).
    fn resources(&self) -> KernelResources;

    /// Execute one thread block.
    fn run_block(&self, blk: &mut BlockCtx<'_>);
}

/// Everything a completed launch reports: functional output lives in the
/// device buffers; this struct carries the measured execution profile.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name.
    pub kernel: String,
    /// The launch geometry used.
    pub launch: LaunchConfig,
    /// Instrumented access counts.
    pub tally: AccessTally,
    /// Occupancy achieved by the launch.
    pub occupancy: Occupancy,
    /// Simulated timing breakdown.
    pub timing: TimingBreakdown,
    /// Profiler-style report (utilizations, bandwidths).
    pub profile: KernelProfile,
    /// Host-side interpreter statistics (dispatches, fused-op coverage,
    /// memoization hits). Not part of the simulated device state.
    pub interp: InterpStats,
}

impl KernelRun {
    /// Simulated kernel time in seconds.
    pub fn seconds(&self) -> f64 {
        self.timing.seconds
    }
}
