//! Warp-level SIMT operations.
//!
//! Every method on [`WarpCtx`] is one *warp instruction*: it acts on all
//! 32 lanes under an explicit [`Mask`] and charges the block tally
//! according to fixed, documented rules. The analytic model in
//! `tbs-core::analytic` mirrors these rules, which is what lets property
//! tests prove closed-form access counts equal functionally-measured
//! ones.
//!
//! ## Charging rules
//!
//! | operation | tally effects |
//! |---|---|
//! | any op | `warp_instructions += 1`, `useful_lane_ops += active`, `predicated_lane_slots += 32 − active` |
//! | `charge_alu(n, …)` / arithmetic helpers | `alu_instructions += n` |
//! | `charge_control(n, …)` | `control_instructions += n` |
//! | global load | `global_load_instructions += 1`, bytes += 4·active (or 8), sectors filtered through L2 → `l2_hit_sectors` / `dram_sectors` |
//! | ROC load | `roc_load_instructions += 1`, sectors through the per-block ROC; misses continue into L2/DRAM |
//! | global store | `global_store_instructions += 1`, write-allocate through L2 |
//! | global atomic | `global_atomics += 1`, `global_atomic_serial += max` same-address multiplicity, sectors through L2 |
//! | shared load/store | `shared_{load,store}_instructions += 1`, `shared_transactions += serialized transactions` (bank rule), replays recorded |
//! | shared atomic | `shared_atomics += 1`, `shared_atomic_serial += max multiplicity`, `shared_transactions += bank-conflict + contention replays` |
//! | shuffle | `shuffle_instructions += 1` (faults on pre-Kepler devices) |
//! | `divergent_loop` | per iteration: one control instruction; iterations with a partially-active mask also bump `divergent_iterations` |

use crate::error::SimError;
use crate::exec::block::BlockCtx;
use crate::exec::fused::{FusedConsumer, FusedPred, FusedSink, FusedSrc};
use crate::exec::mask::Mask;
use crate::mem::{self, BufF32, BufU32, BufU64, ScatterScratch, ShmF32, ShmU32, ShmU64};
use crate::tally::AccessTally;
use crate::{F32x32, U32x32, U64x32, WARP_SIZE};

/// One batched tally charge: `n` warp instructions under `active` lanes.
/// All three per-instruction counters update in a single pass so every
/// `charge*` entry point shares one code path and counts lanes once.
#[inline]
pub(crate) fn charge_lanes(t: &mut AccessTally, n: u64, active: u64) {
    t.warp_instructions += n;
    t.useful_lane_ops += n * active;
    t.predicated_lane_slots += n * (WARP_SIZE as u64 - active);
}

/// Zero the inactive lanes of a full-width `f32` result. Branch-free
/// (bitwise and with an all-ones/all-zeros lane mask) so the surrounding
/// full-width op loops stay auto-vectorizable.
#[inline]
fn blend_f32(v: &mut F32x32, mask: Mask) {
    if mask.all() {
        return;
    }
    for (i, x) in v.iter_mut().enumerate() {
        let keep = 0u32.wrapping_sub(mask.lane(i) as u32);
        *x = f32::from_bits(x.to_bits() & keep);
    }
}

/// Zero the inactive lanes of a full-width `u32` result.
#[inline]
fn blend_u32(v: &mut U32x32, mask: Mask) {
    if mask.all() {
        return;
    }
    for (i, x) in v.iter_mut().enumerate() {
        *x &= 0u32.wrapping_sub(mask.lane(i) as u32);
    }
}

/// Shape of one warp's gather/scatter index pattern, detected once per
/// memory instruction and reused for bounds checks, sector-set
/// computation, and value movement. The fast shapes only arise under
/// prefix masks (`Mask::is_prefix`), where the active lanes are exactly
/// `0..n` and the active indices are exactly `idx[..n]`.
/// (The variant size gap is deliberate: the enum lives on the stack for
/// one instruction and is never stored.)
#[allow(clippy::large_enum_variant)]
enum GatherShape {
    /// Active lanes access consecutive elements `idx[0] .. idx[0]+n`.
    UnitStride { first: u32, n: u32 },
    /// All active lanes access the same element `idx[0]`.
    Broadcast { idx: u32 },
    /// Arbitrary pattern: compacted per-lane byte addresses.
    Gather { addrs: [u64; WARP_SIZE], n: usize },
}

/// Shape of one warp's shared-memory index pattern (same detection as
/// [`GatherShape`], but indices stay element-granular because the bank
/// rule works on words, handled by `SharedSpace::transactions_for`).
enum ShmShape {
    /// Prefix mask, all active lanes read element `idx[0]`.
    Broadcast { n: usize },
    /// Prefix mask, active lanes read `idx[0] .. idx[0]+n`.
    UnitStride { n: usize },
    /// Prefix mask, arbitrary indices — active indices are `idx[..n]`.
    Prefix { n: usize },
    /// Non-prefix mask (or scalar-reference mode): compacted indices.
    Packed { idxs: [u32; WARP_SIZE], n: usize },
}

impl ShmShape {
    /// The active index slice this shape describes.
    #[inline]
    fn idxs<'s>(&'s self, idx: &'s U32x32) -> &'s [u32] {
        match self {
            ShmShape::Broadcast { n } | ShmShape::UnitStride { n } | ShmShape::Prefix { n } => {
                &idx[..*n]
            }
            ShmShape::Packed { idxs, n } => &idxs[..*n],
        }
    }
}

/// Move loaded values into lane positions according to the access shape.
/// Identical to the per-lane `from_fn` gather for every shape.
#[inline]
fn gather_values<T: Copy + Default>(
    data: &[T],
    idx: &U32x32,
    mask: Mask,
    shape: &GatherShape,
) -> [T; WARP_SIZE] {
    let mut out = [T::default(); WARP_SIZE];
    match *shape {
        GatherShape::Broadcast { idx: e } => {
            out[..mask.count() as usize].fill(data[e as usize]);
        }
        GatherShape::UnitStride { first, n } => {
            let first = first as usize;
            out[..n as usize].copy_from_slice(&data[first..first + n as usize]);
        }
        GatherShape::Gather { .. } => {
            for (i, o) in out.iter_mut().enumerate() {
                if mask.lane(i) {
                    *o = data[idx[i] as usize];
                }
            }
        }
    }
    out
}

/// Move shared-memory loads into lane positions according to shape.
#[inline]
fn shm_gather_values<T: Copy + Default>(
    data: &[T],
    idx: &U32x32,
    mask: Mask,
    shape: &ShmShape,
) -> [T; WARP_SIZE] {
    let mut out = [T::default(); WARP_SIZE];
    match *shape {
        ShmShape::Broadcast { n } => out[..n].fill(data[idx[0] as usize]),
        ShmShape::UnitStride { n } => {
            let first = idx[0] as usize;
            out[..n].copy_from_slice(&data[first..first + n]);
        }
        _ => {
            for (i, o) in out.iter_mut().enumerate() {
                if mask.lane(i) {
                    *o = data[idx[i] as usize];
                }
            }
        }
    }
    out
}

/// Execution context of one warp within a block phase.
pub struct WarpCtx<'b, 'a> {
    pub(crate) blk: &'b mut BlockCtx<'a>,
    /// Warp index within the block.
    pub warp_id: u32,
}

impl<'b, 'a> WarpCtx<'b, 'a> {
    pub(crate) fn new(blk: &'b mut BlockCtx<'a>, warp_id: u32) -> Self {
        WarpCtx { blk, warp_id }
    }

    /// The block context (read-only view).
    pub fn block_id(&self) -> u32 {
        self.blk.block_id
    }

    /// Grid size of the launch.
    pub fn grid_dim(&self) -> u32 {
        self.blk.grid_dim
    }

    /// Threads per block.
    pub fn block_dim(&self) -> u32 {
        self.blk.block_dim
    }

    /// Lane indices `0..32`.
    pub fn lane_ids(&self) -> U32x32 {
        std::array::from_fn(|i| i as u32)
    }

    /// Thread ids within the block: `warp_id * 32 + lane`.
    pub fn thread_ids(&self) -> U32x32 {
        std::array::from_fn(|i| self.warp_id * WARP_SIZE as u32 + i as u32)
    }

    /// Global thread ids: `block_id * block_dim + thread_id`.
    pub fn global_thread_ids(&self) -> U32x32 {
        let base = self.blk.block_id * self.blk.block_dim;
        let t = self.thread_ids();
        std::array::from_fn(|i| base + t[i])
    }

    /// Mask of lanes whose thread id is a real thread of this block
    /// (handles the ragged last warp of a non-multiple-of-32 block).
    pub fn active_threads(&self) -> Mask {
        let first = self.warp_id * WARP_SIZE as u32;
        Mask::first_n(self.blk.block_dim.saturating_sub(first))
    }

    /// Mask of lanes where `vals[i] < limit`.
    pub fn mask_lt(&self, vals: &U32x32, limit: u32) -> Mask {
        Mask::from_fn(|i| vals[i] < limit)
    }

    // ---------------------------------------------------------------
    // cost accounting
    // ---------------------------------------------------------------

    #[inline]
    fn charge(&mut self, mask: Mask) {
        self.blk.interp.dispatches += 1;
        charge_lanes(&mut self.blk.tally, 1, mask.count() as u64);
    }

    /// True when the device routes through the retained scalar reference
    /// implementations instead of the vectorized fast paths.
    #[inline]
    fn scalar_ref(&self) -> bool {
        self.blk.cfg.scalar_reference
    }

    /// Charge `n` arithmetic warp instructions executed under `mask`.
    /// Use this when computing lane values in plain Rust (e.g. a distance
    /// function) so the simulated cost matches the work.
    pub fn charge_alu(&mut self, n: u64, mask: Mask) {
        self.blk.interp.dispatches += 1;
        let t = &mut self.blk.tally;
        charge_lanes(t, n, mask.count() as u64);
        t.alu_instructions += n;
    }

    /// Charge `n` control-flow warp instructions (loop tests, branches).
    pub fn charge_control(&mut self, n: u64, mask: Mask) {
        self.blk.interp.dispatches += 1;
        let t = &mut self.blk.tally;
        charge_lanes(t, n, mask.count() as u64);
        t.control_instructions += n;
    }

    // ---------------------------------------------------------------
    // arithmetic helpers (each = 1 ALU warp instruction)
    // ---------------------------------------------------------------

    /// Lane-wise `a - b`.
    pub fn sub_f32x(&mut self, a: &F32x32, b: &F32x32, mask: Mask) -> F32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| if mask.lane(i) { a[i] - b[i] } else { 0.0 });
        }
        let mut out = [0.0f32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i] - b[i];
        }
        blend_f32(&mut out, mask);
        out
    }

    /// Lane-wise `a + b`.
    pub fn add_f32x(&mut self, a: &F32x32, b: &F32x32, mask: Mask) -> F32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| if mask.lane(i) { a[i] + b[i] } else { 0.0 });
        }
        let mut out = [0.0f32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i] + b[i];
        }
        blend_f32(&mut out, mask);
        out
    }

    /// Lane-wise fused multiply-add `a * b + c`.
    pub fn fma_f32x(&mut self, a: &F32x32, b: &F32x32, c: &F32x32, mask: Mask) -> F32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| {
                if mask.lane(i) {
                    a[i].mul_add(b[i], c[i])
                } else {
                    0.0
                }
            });
        }
        let mut out = [0.0f32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i].mul_add(b[i], c[i]);
        }
        blend_f32(&mut out, mask);
        out
    }

    /// Vector × scalar.
    pub fn mul_f32(&mut self, a: &F32x32, s: f32, mask: Mask) -> F32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| if mask.lane(i) { a[i] * s } else { 0.0 });
        }
        let mut out = [0.0f32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i] * s;
        }
        blend_f32(&mut out, mask);
        out
    }

    /// Lane-wise square root (one SFU instruction).
    pub fn sqrt_f32x(&mut self, a: &F32x32, mask: Mask) -> F32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| if mask.lane(i) { a[i].sqrt() } else { 0.0 });
        }
        let mut out = [0.0f32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i].sqrt();
        }
        blend_f32(&mut out, mask);
        out
    }

    /// Lane-wise `a < s` comparison producing a mask.
    pub fn lt_f32(&mut self, a: &F32x32, s: f32, mask: Mask) -> Mask {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return Mask::from_fn(|i| mask.lane(i) && a[i] < s);
        }
        let mut bits = 0u32;
        for (i, &x) in a.iter().enumerate() {
            bits |= ((x < s) as u32) << i;
        }
        Mask(bits & mask.0)
    }

    /// Lane-wise u32 add with scalar.
    pub fn add_u32(&mut self, a: &U32x32, s: u32, mask: Mask) -> U32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| {
                if mask.lane(i) {
                    a[i].wrapping_add(s)
                } else {
                    0
                }
            });
        }
        let mut out = [0u32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i].wrapping_add(s);
        }
        blend_u32(&mut out, mask);
        out
    }

    /// Lane-wise `a mod m` (m > 0).
    pub fn mod_u32(&mut self, a: &U32x32, m: u32, mask: Mask) -> U32x32 {
        self.charge_alu(1, mask);
        if self.scalar_ref() {
            return std::array::from_fn(|i| if mask.lane(i) { a[i] % m } else { 0 });
        }
        let mut out = [0u32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            out[i] = a[i] % m;
        }
        blend_u32(&mut out, mask);
        out
    }

    // ---------------------------------------------------------------
    // global memory
    // ---------------------------------------------------------------

    /// Bounds-check a warp gather and classify its index pattern.
    ///
    /// Fault behavior is exactly the scalar loop's: the first active lane
    /// whose index fails the check is reported. The fast shapes make that
    /// cheap — a broadcast's lanes share one index, and a unit-stride
    /// pattern's indices ascend, so its *last* lane's check covers all of
    /// them (on failure we fall back to the scalar loop, which blames the
    /// first offending lane).
    fn gather_shape<const EL: u64>(
        &mut self,
        base: u64,
        len_check: impl Fn(&BlockCtx<'_>, u32) -> Result<(), SimError>,
        idx: &U32x32,
        mask: Mask,
    ) -> Option<GatherShape> {
        if !self.scalar_ref() && mask.is_prefix() {
            let n = mask.count() as usize;
            let first = idx[0];
            let lanes = &idx[..n];
            if lanes.iter().all(|&v| v == first) {
                if let Err(e) = len_check(self.blk, first) {
                    self.blk.record_fault(e);
                    return None;
                }
                return Some(GatherShape::Broadcast { idx: first });
            }
            if lanes
                .iter()
                .enumerate()
                .all(|(k, &v)| v as u64 == first as u64 + k as u64)
                && len_check(self.blk, idx[n - 1]).is_ok()
            {
                return Some(GatherShape::UnitStride { first, n: n as u32 });
            }
        }
        let mut addrs = [0u64; WARP_SIZE];
        let mut n = 0usize;
        for lane in mask.lanes() {
            if let Err(e) = len_check(self.blk, idx[lane]) {
                self.blk.record_fault(e);
                return None;
            }
            addrs[n] = base + idx[lane] as u64 * EL;
            n += 1;
        }
        Some(GatherShape::Gather { addrs, n })
    }

    /// Route a gather's sector set through L2, in the exact first-touch
    /// order the per-lane dedup scan would visit. Broadcast touches one
    /// sector; a unit-stride access's ascending addresses touch one
    /// ascending contiguous sector run (lane stride ≤ 8 bytes < the
    /// 32-byte sector), both computed arithmetically.
    fn global_path_shape<const EL: u64>(&mut self, base: u64, shape: &GatherShape) {
        let sb = self.blk.cfg.sector_bytes as u64;
        match *shape {
            GatherShape::Broadcast { idx } => {
                self.blk.l2_access((base + idx as u64 * EL) / sb);
            }
            GatherShape::UnitStride { first, n } => {
                let s0 = (base + first as u64 * EL) / sb;
                let s1 = (base + (first as u64 + n as u64 - 1) * EL) / sb;
                self.blk.l2_access_run(s0, (s1 - s0 + 1) as u32);
            }
            GatherShape::Gather { ref addrs, n } => {
                let sector_bytes = self.blk.cfg.sector_bytes;
                // Collect sectors first (cannot borrow l2 inside the
                // closure that borrows cfg immutably via self).
                let mut sectors = [0u64; WARP_SIZE];
                let mut ns = 0usize;
                mem::for_each_sector(&addrs[..n], sector_bytes, |s| {
                    sectors[ns] = s;
                    ns += 1;
                });
                for &s in &sectors[..ns] {
                    self.blk.l2_access(s);
                }
            }
        }
    }

    /// Same as [`Self::global_path_shape`], but sectors go through the
    /// per-block read-only cache first; misses continue into L2.
    fn roc_path_shape<const EL: u64>(&mut self, base: u64, shape: &GatherShape) {
        let sb = self.blk.cfg.sector_bytes as u64;
        match *shape {
            GatherShape::Broadcast { idx } => {
                self.roc_one_sector((base + idx as u64 * EL) / sb);
            }
            GatherShape::UnitStride { first, n } => {
                let s0 = (base + first as u64 * EL) / sb;
                let s1 = (base + (first as u64 + n as u64 - 1) * EL) / sb;
                for s in s0..=s1 {
                    self.roc_one_sector(s);
                }
            }
            GatherShape::Gather { ref addrs, n } => {
                let sector_bytes = self.blk.cfg.sector_bytes;
                let mut sectors = [0u64; WARP_SIZE];
                let mut ns = 0usize;
                mem::for_each_sector(&addrs[..n], sector_bytes, |s| {
                    sectors[ns] = s;
                    ns += 1;
                });
                for &s in &sectors[..ns] {
                    self.roc_one_sector(s);
                }
            }
        }
    }

    #[inline]
    pub(crate) fn roc_one_sector(&mut self, s: u64) {
        if self.blk.roc.try_replay_hit(s) {
            self.blk.tally.roc_hit_sectors += 1;
            return;
        }
        if self.blk.roc.access(s) {
            self.blk.tally.roc_hit_sectors += 1;
        } else {
            self.blk.tally.roc_miss_sectors += 1;
            // ROC misses continue down the global path.
            self.blk.l2_access(s);
        }
    }

    /// Gather-load `f32` values from a global buffer.
    pub fn global_load_f32(&mut self, buf: BufF32, idx: &U32x32, mask: Mask) -> F32x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0.0; WARP_SIZE];
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<4>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global f32 load"),
            idx,
            mask,
        ) else {
            return [0.0; WARP_SIZE];
        };
        self.blk.tally.global_load_instructions += 1;
        self.blk.tally.global_load_bytes += 4 * mask.count() as u64;
        self.global_path_shape::<4>(base, &shape);
        let data = self.blk.global_read_f32s(buf);
        gather_values(data, idx, mask, &shape)
    }

    /// Gather-load `f32` values through the read-only data cache
    /// (`const __restrict__` / `__ldg` path).
    pub fn roc_load_f32(&mut self, buf: BufF32, idx: &U32x32, mask: Mask) -> F32x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0.0; WARP_SIZE];
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<4>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "roc f32 load"),
            idx,
            mask,
        ) else {
            return [0.0; WARP_SIZE];
        };
        self.blk.tally.roc_load_instructions += 1;
        self.blk.tally.roc_bytes += 4 * mask.count() as u64;
        self.roc_path_shape::<4>(base, &shape);
        let data = self.blk.global_read_f32s(buf);
        gather_values(data, idx, mask, &shape)
    }

    /// Scatter-store `f32` values to a global buffer.
    pub fn global_store_f32(&mut self, buf: BufF32, idx: &U32x32, vals: &F32x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<4>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global f32 store"),
            idx,
            mask,
        ) else {
            return;
        };
        self.blk.tally.global_store_instructions += 1;
        self.blk.tally.global_store_bytes += 4 * mask.count() as u64;
        self.global_path_shape::<4>(base, &shape);
        self.blk.global_write_f32(buf, idx, vals, mask);
    }

    /// Scatter-store `u64` values to a global buffer.
    pub fn global_store_u64(&mut self, buf: BufU64, idx: &U32x32, vals: &U64x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<8>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global u64 store"),
            idx,
            mask,
        ) else {
            return;
        };
        self.blk.tally.global_store_instructions += 1;
        self.blk.tally.global_store_bytes += 8 * mask.count() as u64;
        self.global_path_shape::<8>(base, &shape);
        self.blk.global_write_u64(buf, idx, vals, mask);
    }

    /// Scatter-store `u32` values to a global buffer.
    pub fn global_store_u32(&mut self, buf: BufU32, idx: &U32x32, vals: &U32x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<4>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global u32 store"),
            idx,
            mask,
        ) else {
            return;
        };
        self.blk.tally.global_store_instructions += 1;
        self.blk.tally.global_store_bytes += 4 * mask.count() as u64;
        self.global_path_shape::<4>(base, &shape);
        self.blk.global_write_u32(buf, idx, vals, mask);
    }

    /// Gather-load `u32` values from a global buffer.
    pub fn global_load_u32(&mut self, buf: BufU32, idx: &U32x32, mask: Mask) -> U32x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0; WARP_SIZE];
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<4>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global u32 load"),
            idx,
            mask,
        ) else {
            return [0; WARP_SIZE];
        };
        self.blk.tally.global_load_instructions += 1;
        self.blk.tally.global_load_bytes += 4 * mask.count() as u64;
        self.global_path_shape::<4>(base, &shape);
        let data = self.blk.global_read_u32s(buf);
        gather_values(data, idx, mask, &shape)
    }

    /// Gather-load `u64` values from a global buffer.
    pub fn global_load_u64(&mut self, buf: BufU64, idx: &U32x32, mask: Mask) -> U64x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0; WARP_SIZE];
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<8>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global u64 load"),
            idx,
            mask,
        ) else {
            return [0; WARP_SIZE];
        };
        self.blk.tally.global_load_instructions += 1;
        self.blk.tally.global_load_bytes += 8 * mask.count() as u64;
        self.global_path_shape::<8>(base, &shape);
        let data = self.blk.global_read_u64s(buf);
        gather_values(data, idx, mask, &shape)
    }

    fn atomic_max_multiplicity(idx: &U32x32, mask: Mask) -> u64 {
        let mut seen = [(u32::MAX, 0u64); WARP_SIZE];
        let mut n = 0usize;
        let mut max = 0u64;
        'outer: for lane in mask.lanes() {
            let a = idx[lane];
            for e in seen[..n].iter_mut() {
                if e.0 == a {
                    e.1 += 1;
                    max = max.max(e.1);
                    continue 'outer;
                }
            }
            seen[n] = (a, 1);
            max = max.max(1);
            n += 1;
        }
        max
    }

    /// Same-address multiplicity with shape shortcuts: a broadcast's
    /// multiplicity is the active-lane count, a unit-stride access has
    /// no duplicates at all. Everything else takes the quadratic scan.
    fn atomic_max_multiplicity_fast(idx: &U32x32, mask: Mask) -> u64 {
        if mask.is_prefix() && mask.any() {
            let n = mask.count() as usize;
            let first = idx[0];
            let lanes = &idx[..n];
            if lanes.iter().all(|&v| v == first) {
                return n as u64;
            }
            if lanes
                .iter()
                .enumerate()
                .all(|(k, &v)| v as u64 == first as u64 + k as u64)
            {
                return 1;
            }
        }
        Self::atomic_max_multiplicity(idx, mask)
    }

    /// Dispatch between the shape-shortcut and reference multiplicity
    /// scans (identical results; see `DeviceConfig::scalar_reference`).
    fn multiplicity(&self, idx: &U32x32, mask: Mask) -> u64 {
        if self.scalar_ref() {
            Self::atomic_max_multiplicity(idx, mask)
        } else {
            Self::atomic_max_multiplicity_fast(idx, mask)
        }
    }

    /// Warp-wide `atomicAdd` on a global `u64` buffer. Serialization is
    /// charged from the actual same-address multiplicity in the warp.
    pub fn global_atomic_add_u64(&mut self, buf: BufU64, idx: &U32x32, vals: &U64x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<8>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global u64 atomicAdd"),
            idx,
            mask,
        ) else {
            return;
        };
        self.blk.tally.global_atomics += 1;
        self.blk.tally.global_atomic_serial += self.multiplicity(idx, mask);
        self.global_path_shape::<8>(base, &shape);
        self.blk.global_rmw_add_u64(buf, idx, vals, mask);
    }

    /// Warp-wide `atomicAdd` on a global `u32` buffer; returns the
    /// pre-add values each lane observed (as CUDA's `atomicAdd` does) —
    /// used for Type-III output-slot allocation.
    pub fn global_atomic_add_u32(
        &mut self,
        buf: BufU32,
        idx: &U32x32,
        vals: &U32x32,
        mask: Mask,
    ) -> U32x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0; WARP_SIZE];
        }
        let base = self.blk.global_base_addr(buf.0);
        let Some(shape) = self.gather_shape::<4>(
            base,
            |b, i| b.check_global_bounds(buf.0, i, "global u32 atomicAdd"),
            idx,
            mask,
        ) else {
            return [0; WARP_SIZE];
        };
        self.blk.tally.global_atomics += 1;
        self.blk.tally.global_atomic_serial += self.multiplicity(idx, mask);
        self.global_path_shape::<4>(base, &shape);
        self.blk.global_rmw_add_u32(buf, idx, vals, mask)
    }

    // ---------------------------------------------------------------
    // shared memory
    // ---------------------------------------------------------------

    /// Bounds-check a shared-memory warp access and classify its index
    /// pattern. Fault behavior matches the scalar loop exactly (see
    /// [`Self::gather_shape`] — same argument): a broadcast needs one
    /// check, a unit-stride pattern only its last (largest) lane's, and
    /// prefix-mask accesses skip compaction entirely because the active
    /// indices are already the `idx[..n]` slice.
    fn shm_shape(
        &mut self,
        array: usize,
        idx: &U32x32,
        mask: Mask,
        what: &str,
    ) -> Option<ShmShape> {
        if !self.scalar_ref() && mask.is_prefix() {
            let n = mask.count() as usize;
            let first = idx[0];
            let lanes = &idx[..n];
            if lanes.iter().all(|&v| v == first) {
                if let Err(e) = self.blk.shared.check_bounds(array, first, what) {
                    self.blk.record_fault(e);
                    return None;
                }
                return Some(ShmShape::Broadcast { n });
            }
            if lanes
                .iter()
                .enumerate()
                .all(|(k, &v)| v as u64 == first as u64 + k as u64)
            {
                if self
                    .blk
                    .shared
                    .check_bounds(array, idx[n - 1], what)
                    .is_ok()
                {
                    return Some(ShmShape::UnitStride { n });
                }
                // Out of bounds somewhere: fall through to the scalar
                // loop so the fault blames the first offending lane.
            } else {
                for &v in lanes {
                    if let Err(e) = self.blk.shared.check_bounds(array, v, what) {
                        self.blk.record_fault(e);
                        return None;
                    }
                }
                return Some(ShmShape::Prefix { n });
            }
        }
        let mut idxs = [0u32; WARP_SIZE];
        let mut n = 0usize;
        for lane in mask.lanes() {
            if let Err(e) = self.blk.shared.check_bounds(array, idx[lane], what) {
                self.blk.record_fault(e);
                return None;
            }
            idxs[n] = idx[lane];
            n += 1;
        }
        Some(ShmShape::Packed { idxs, n })
    }

    /// The index slice to feed the bank-conflict counter. A broadcast's
    /// lanes all carry one index, so a single element suffices — the
    /// conflict degree depends only on the distinct-word set.
    #[inline]
    fn shm_charge_idxs<'s>(idx: &'s U32x32, shape: &'s ShmShape) -> &'s [u32] {
        match shape {
            ShmShape::Broadcast { .. } => &idx[..1],
            _ => shape.idxs(idx),
        }
    }

    fn shm_charge_access(&mut self, array: usize, idxs: &[u32], bytes_per_lane: u64, lanes: u64) {
        let txns = self.blk.shared.transactions_for(array, idxs);
        let t = &mut self.blk.tally;
        t.shared_transactions += txns;
        t.shared_bank_replays += txns.saturating_sub(1);
        t.shared_bytes += bytes_per_lane * lanes;
    }

    /// Store `f32` values to a shared array.
    pub fn shared_store_f32(&mut self, arr: ShmF32, idx: &U32x32, vals: &F32x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared f32 store") else {
            return;
        };
        self.blk.tally.shared_store_instructions += 1;
        let charge_idxs = Self::shm_charge_idxs(idx, &shape);
        self.shm_charge_access(arr.0, charge_idxs, 4, mask.count() as u64);
        let data = self.blk.shared.f32s_mut(arr);
        if let ShmShape::UnitStride { n } = shape {
            let first = idx[0] as usize;
            data[first..first + n].copy_from_slice(&vals[..n]);
        } else {
            for lane in mask.lanes() {
                data[idx[lane] as usize] = vals[lane];
            }
        }
    }

    /// Load `f32` values from a shared array.
    pub fn shared_load_f32(&mut self, arr: ShmF32, idx: &U32x32, mask: Mask) -> F32x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0.0; WARP_SIZE];
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared f32 load") else {
            return [0.0; WARP_SIZE];
        };
        self.blk.tally.shared_load_instructions += 1;
        let charge_idxs = Self::shm_charge_idxs(idx, &shape);
        self.shm_charge_access(arr.0, charge_idxs, 4, mask.count() as u64);
        let data = self.blk.shared.f32s(arr);
        shm_gather_values(data, idx, mask, &shape)
    }

    /// Load `u64` values from a shared array.
    pub fn shared_load_u64(&mut self, arr: ShmU64, idx: &U32x32, mask: Mask) -> U64x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0; WARP_SIZE];
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared u64 load") else {
            return [0; WARP_SIZE];
        };
        self.blk.tally.shared_load_instructions += 1;
        let charge_idxs = Self::shm_charge_idxs(idx, &shape);
        self.shm_charge_access(arr.0, charge_idxs, 8, mask.count() as u64);
        let data = self.blk.shared.u64s(arr);
        shm_gather_values(data, idx, mask, &shape)
    }

    /// Store `u64` values to a shared array.
    pub fn shared_store_u64(&mut self, arr: ShmU64, idx: &U32x32, vals: &U64x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared u64 store") else {
            return;
        };
        self.blk.tally.shared_store_instructions += 1;
        let charge_idxs = Self::shm_charge_idxs(idx, &shape);
        self.shm_charge_access(arr.0, charge_idxs, 8, mask.count() as u64);
        let data = self.blk.shared.u64s_mut(arr);
        if let ShmShape::UnitStride { n } = shape {
            let first = idx[0] as usize;
            data[first..first + n].copy_from_slice(&vals[..n]);
        } else {
            for lane in mask.lanes() {
                data[idx[lane] as usize] = vals[lane];
            }
        }
    }

    /// Warp-wide `atomicAdd` on a shared `u32` array — the paper's
    /// privatized-output update (Algorithm 3, line 7). Contention is
    /// charged from the actual same-address multiplicity; distinct
    /// addresses additionally pay the bank-conflict rule.
    pub fn shared_atomic_add_u32(&mut self, arr: ShmU32, idx: &U32x32, vals: &U32x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared u32 atomicAdd") else {
            return;
        };
        let mult = self.multiplicity(idx, mask);
        let bank_txns = self
            .blk
            .shared
            .transactions_for(arr.0, Self::shm_charge_idxs(idx, &shape));
        let t = &mut self.blk.tally;
        t.shared_atomics += 1;
        t.shared_atomic_serial += mult;
        // Total serialized shared transactions: one per replay group —
        // bank conflicts among distinct addresses plus same-address
        // contention replays.
        t.shared_transactions += bank_txns + mult - 1;
        t.shared_bank_replays += bank_txns.saturating_sub(1);
        t.shared_bytes += 4 * mask.count() as u64;
        let data = self.blk.shared.u32s_mut(arr);
        for lane in mask.lanes() {
            data[idx[lane] as usize] = data[idx[lane] as usize].wrapping_add(vals[lane]);
        }
    }

    /// Store `u32` values to a shared array.
    pub fn shared_store_u32(&mut self, arr: ShmU32, idx: &U32x32, vals: &U32x32, mask: Mask) {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return;
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared u32 store") else {
            return;
        };
        self.blk.tally.shared_store_instructions += 1;
        let charge_idxs = Self::shm_charge_idxs(idx, &shape);
        self.shm_charge_access(arr.0, charge_idxs, 4, mask.count() as u64);
        let data = self.blk.shared.u32s_mut(arr);
        if let ShmShape::UnitStride { n } = shape {
            let first = idx[0] as usize;
            data[first..first + n].copy_from_slice(&vals[..n]);
        } else {
            for lane in mask.lanes() {
                data[idx[lane] as usize] = vals[lane];
            }
        }
    }

    /// Load `u32` values from a shared array.
    pub fn shared_load_u32(&mut self, arr: ShmU32, idx: &U32x32, mask: Mask) -> U32x32 {
        self.charge(mask);
        if self.blk.dead() || !mask.any() {
            return [0; WARP_SIZE];
        }
        let Some(shape) = self.shm_shape(arr.0, idx, mask, "shared u32 load") else {
            return [0; WARP_SIZE];
        };
        self.blk.tally.shared_load_instructions += 1;
        let charge_idxs = Self::shm_charge_idxs(idx, &shape);
        self.shm_charge_access(arr.0, charge_idxs, 4, mask.count() as u64);
        let data = self.blk.shared.u32s(arr);
        shm_gather_values(data, idx, mask, &shape)
    }

    // ---------------------------------------------------------------
    // warp shuffle (§IV-E2)
    // ---------------------------------------------------------------

    fn check_shuffle(&mut self) -> bool {
        if !self.blk.cfg.has_shuffle {
            let device = self.blk.cfg.name;
            self.blk
                .record_fault(SimError::ShuffleUnsupported { device });
            return false;
        }
        true
    }

    /// Broadcast lane `src_lane`'s value to all lanes
    /// (`__shfl_sync(…, src_lane)`), the primitive of the paper's
    /// register-tiling technique (Algorithm 4, line 6).
    pub fn shfl_bcast_f32(&mut self, vals: &F32x32, src_lane: u32, mask: Mask) -> F32x32 {
        self.charge(mask);
        if !self.check_shuffle() || self.blk.dead() {
            return [0.0; WARP_SIZE];
        }
        self.blk.tally.shuffle_instructions += 1;
        let v = vals[(src_lane as usize) % WARP_SIZE];
        std::array::from_fn(|i| if mask.lane(i) { v } else { 0.0 })
    }

    /// Broadcast lane `src_lane`'s `u32` value to all lanes — used by the
    /// warp-aggregated Type-III output allocator to share the base output
    /// slot obtained by one lane's `atomicAdd`.
    pub fn shfl_bcast_u32(&mut self, vals: &U32x32, src_lane: u32, mask: Mask) -> U32x32 {
        self.charge(mask);
        if !self.check_shuffle() || self.blk.dead() {
            return [0; WARP_SIZE];
        }
        self.blk.tally.shuffle_instructions += 1;
        let v = vals[(src_lane as usize) % WARP_SIZE];
        std::array::from_fn(|i| if mask.lane(i) { v } else { 0 })
    }

    /// `__shfl_down_sync`: lane `i` receives lane `i + delta`'s value.
    /// Used by warp-level reductions (Type-I output stage).
    pub fn shfl_down_u64(&mut self, vals: &U64x32, delta: u32, mask: Mask) -> U64x32 {
        self.charge(mask);
        if !self.check_shuffle() || self.blk.dead() {
            return [0; WARP_SIZE];
        }
        self.blk.tally.shuffle_instructions += 1;
        std::array::from_fn(|i| {
            let src = i + delta as usize;
            if mask.lane(i) && src < WARP_SIZE {
                vals[src]
            } else if mask.lane(i) {
                vals[i]
            } else {
                0
            }
        })
    }

    // ---------------------------------------------------------------
    // divergence-aware looping
    // ---------------------------------------------------------------

    /// Execute a loop whose per-lane trip counts may differ — the SIMT
    /// hardware behaviour the paper's load-balancing technique (§IV-E1)
    /// eliminates. The warp iterates `max(trips)` times; each iteration
    /// runs the body under the mask of lanes still in the loop and pays
    /// one control instruction; iterations with a *partially* active mask
    /// additionally count as `divergent_iterations` (re-convergence
    /// penalty in the timing model).
    pub fn divergent_loop(
        &mut self,
        trips: &U32x32,
        mask: Mask,
        mut body: impl FnMut(&mut Self, u32, Mask),
    ) {
        let scalar_ref = self.scalar_ref();
        let max_trips = if scalar_ref {
            mask.lanes().map(|l| trips[l]).max().unwrap_or(0)
        } else {
            // Full-width max; inactive lanes contribute 0, matching the
            // reference's `unwrap_or(0)`.
            let mut mx = 0u32;
            for (i, &t) in trips.iter().enumerate() {
                let v = if mask.lane(i) { t } else { 0 };
                mx = mx.max(v);
            }
            mx
        };
        for j in 0..max_trips {
            let active = if scalar_ref {
                Mask::from_fn(|i| mask.lane(i) && trips[i] > j)
            } else {
                let mut bits = 0u32;
                for (i, &t) in trips.iter().enumerate() {
                    bits |= ((t > j) as u32) << i;
                }
                Mask(bits & mask.0)
            };
            if !active.any() {
                break;
            }
            self.charge_control(1, active);
            if active != mask {
                self.blk.tally.divergent_iterations += 1;
            }
            body(self, j, active);
            if self.blk.dead() {
                return;
            }
        }
        // Final (failing) loop test.
        if max_trips > 0 {
            self.charge_control(1, mask);
        }
    }

    // ---------------------------------------------------------------
    // fused tile execution (hot-path interpreter fast path)
    // ---------------------------------------------------------------

    /// The per-step active mask of a fused tile pass, in closed form.
    /// Exactly the mask the op-by-op loops build with `Mask::from_fn`
    /// over `gid[i] != partner` / `gid[i] < partner`, relying on the
    /// lane→element contiguity documented on [`FusedPred`].
    #[inline]
    pub(crate) fn fused_pred_mask(pred: FusedPred, j: u32, valid: Mask) -> Mask {
        match pred {
            FusedPred::All => valid,
            FusedPred::NotEqual { gid0, base } => {
                let l = (base + j).wrapping_sub(gid0);
                if l < WARP_SIZE as u32 {
                    Mask(valid.0 & !(1u32 << l))
                } else {
                    valid
                }
            }
            FusedPred::LessThan { gid0, base } => {
                valid.and(Mask::first_n((base + j).saturating_sub(gid0)))
            }
        }
    }

    /// Execute one whole inner tile pass — `len` steps of *broadcast an
    /// element, evaluate the distance against each lane's own point,
    /// fold the value into the consumer* — in a single fused call.
    ///
    /// Semantically identical to the op-by-op loop the tiling kernels
    /// otherwise interpret (`broadcast → dist.eval → action.process` per
    /// step): outputs, [`AccessTally`], ROC/L2 cache state and
    /// first-fault behavior are bit-for-bit the same, which
    /// `tests/differential.rs` proves. The speedup comes from charging
    /// the per-step instruction accounting in closed form and running
    /// flat lane loops with no interpreter dispatch per step.
    ///
    /// Returns `true` when the fused fast path ran. Returns `false` —
    /// with **no** side effects — whenever a precondition fails, and the
    /// caller must fall back to the op-by-op loop: scalar-reference
    /// mode, `fused_tile` disabled, a dead block, an empty/non-prefix
    /// `valid` mask, a zero-length tile, a source or consumer that could
    /// fault mid-pass (the fallback loop then reproduces the exact
    /// op-by-op fault point), or a ROC source whose `note_read` would
    /// abandon speculation.
    ///
    /// `eval` receives `(own_point, broadcast_point)` — the same
    /// argument order as `DistanceKernel::eval_host(a, b)` under
    /// `dist.eval(w, own_regs, &broadcast, mask)`.
    #[allow(clippy::too_many_arguments)]
    pub fn fused_tile_pass<const D: usize>(
        &mut self,
        src: FusedSrc<'_, D>,
        len: u32,
        pred: FusedPred,
        dist_cost: u64,
        eval: impl Fn(&[f32; D], &[f32; D]) -> f32,
        own: &[F32x32; D],
        consumer: FusedConsumer<'_>,
        valid: Mask,
    ) -> bool {
        self.fused_tile_impl::<D, false>(src, len, pred, dist_cost, eval, own, consumer, valid)
    }

    #[allow(clippy::too_many_arguments)]
    fn fused_tile_impl<const D: usize, const EUCLID: bool>(
        &mut self,
        src: FusedSrc<'_, D>,
        len: u32,
        pred: FusedPred,
        dist_cost: u64,
        eval: impl Fn(&[f32; D], &[f32; D]) -> f32,
        own: &[F32x32; D],
        consumer: FusedConsumer<'_>,
        valid: Mask,
    ) -> bool {
        if self.scalar_ref()
            || !self.blk.cfg.fused_tile
            || self.blk.dead()
            || len == 0
            || !valid.any()
            || !valid.is_prefix()
        {
            return false;
        }
        // Pre-flight every fault/abandon the pass could hit, so the body
        // below can batch its charges without a mid-pass unwind.
        match &src {
            FusedSrc::SharedBroadcast(tile) => {
                if tile.iter().any(|h| {
                    self.blk
                        .shared
                        .check_bounds(h.0, len - 1, "shared f32 load")
                        .is_err()
                }) {
                    return false;
                }
            }
            FusedSrc::RocBroadcast { bufs, start } => {
                let Some(last) = start.checked_add(len - 1) else {
                    return false;
                };
                if bufs.iter().any(|b| {
                    self.blk
                        .check_global_bounds(b.0, last, "roc f32 load")
                        .is_err()
                        || self.blk.read_would_abandon(b.0)
                }) {
                    return false;
                }
            }
            FusedSrc::LaneBroadcast(_) => {
                if !self.blk.cfg.has_shuffle {
                    return false;
                }
            }
        }
        if let FusedConsumer::Histogram { hmax, shm, .. } = &consumer {
            if self
                .blk
                .shared
                .check_bounds(shm.0, *hmax, "shared u32 atomicAdd")
                .is_err()
            {
                return false;
            }
        }
        if let FusedConsumer::Multi(sinks) = &consumer {
            for sink in sinks.iter() {
                if let FusedSink::Histogram { hmax, shm, .. } = sink {
                    if self
                        .blk
                        .shared
                        .check_bounds(shm.0, *hmax, "shared u32 atomicAdd")
                        .is_err()
                    {
                        return false;
                    }
                }
            }
        }

        let a = valid.count() as u64;
        let steps = len as u64;
        let dims = D as u64;

        // ---- operand charges, batched in closed form ----
        // Every step's broadcast is a prefix-mask single-element access,
        // so each per-op charge is a constant; only the ROC sector stream
        // is stateful and is driven element by element in op-by-op order.
        match &src {
            FusedSrc::SharedBroadcast(_) => {
                let t = &mut self.blk.tally;
                charge_lanes(t, steps * dims, a);
                t.shared_load_instructions += steps * dims;
                // A one-element f32 broadcast is always a single
                // conflict-free transaction (`SharedSpace::transactions_for`).
                t.shared_transactions += steps * dims;
                t.shared_bytes += 4 * a * steps * dims;
            }
            FusedSrc::RocBroadcast { bufs, start } => {
                {
                    let t = &mut self.blk.tally;
                    charge_lanes(t, steps * dims, a);
                    t.roc_load_instructions += steps * dims;
                    t.roc_bytes += 4 * a * steps * dims;
                }
                let sb = self.blk.cfg.sector_bytes as u64;
                let bases: [u64; D] = std::array::from_fn(|d| self.blk.global_base_addr(bufs[d].0));
                // Batched sector-run probes: consecutive elements share a
                // sector (8 f32s per 32-byte sector), so the op-by-op
                // stream touches each dimension's current sector `run`
                // times in a row. Probe the first round for real; if the
                // FIFO's eviction generation is unchanged afterwards,
                // every probed sector is provably still resident
                // (residency is monotone within a generation and hits
                // mutate nothing), so the remaining `run - 1` rounds
                // replay as hits in bulk. An eviction mid-round falls
                // back to per-element probes for the rest of the run.
                let mut j = 0u64;
                while j < steps {
                    let e0 = *start as u64 + j;
                    let mut run = steps - j;
                    let mut sectors = [0u64; D];
                    for (s, &base) in sectors.iter_mut().zip(bases.iter()) {
                        let addr = base + e0 * 4;
                        *s = addr / sb;
                        // Elements until this dimension crosses into the
                        // next sector.
                        run = run.min(((*s + 1) * sb - addr).div_ceil(4));
                    }
                    let gen0 = self.blk.roc.generation();
                    for &s in sectors.iter() {
                        self.roc_one_sector(s);
                    }
                    if run > 1 {
                        if self.blk.roc.generation() == gen0 {
                            let n = (run - 1) * dims;
                            self.blk.tally.roc_hit_sectors += n;
                            self.blk.roc.credit_replayed_hits(n);
                        } else {
                            for jj in 1..run {
                                for &base in &bases {
                                    self.roc_one_sector((base + (e0 + jj) * 4) / sb);
                                }
                            }
                        }
                    }
                    j += run;
                }
                for b in bufs.iter() {
                    // Read-set bookkeeping; cannot abandon (pre-checked).
                    let _ = self.blk.global_read_f32s(*b);
                }
            }
            FusedSrc::LaneBroadcast(_) => {
                let t = &mut self.blk.tally;
                charge_lanes(t, steps * dims, a);
                t.shuffle_instructions += steps * dims;
            }
        }
        // Predicate evaluation: one ALU op per step under `valid`, just
        // as the op-by-op loops charge before their `pm.any()` guard.
        let pred_alu = !matches!(pred, FusedPred::All) as u64;
        if pred_alu != 0 {
            let t = &mut self.blk.tally;
            charge_lanes(t, steps, a);
            t.alu_instructions += steps;
        }

        // ---- the fused compute loop ----
        let consumer_alu: u64 = match &consumer {
            FusedConsumer::CountLt { .. } | FusedConsumer::Histogram { .. } => 2,
            FusedConsumer::Sum { .. } => 1,
            // Every sink costs what its single-consumer form costs.
            FusedConsumer::Multi(sinks) => 2 * sinks.len() as u64,
        };
        let n_hist: u64 = match &consumer {
            FusedConsumer::Histogram { .. } => 1,
            FusedConsumer::Multi(sinks) => sinks
                .iter()
                .filter(|s| matches!(s, FusedSink::Histogram { .. }))
                .count() as u64,
            _ => 0,
        };
        let mut npm = 0u64; // steps whose predicate mask is non-empty
        let mut sum_apm = 0u64; // Σ active lanes over those steps
                                // Histogram scatter accounting, accumulated per step in closed
                                // form (Σ multiplicity, Σ bank+contention replays).
        let mut atom_serial = 0u64;
        let mut atom_txns = 0u64;
        let mut atom_replays = 0u64;
        match consumer {
            FusedConsumer::CountLt { radius, acc } => {
                let vals = TileVals::resolve(self.blk, &src);
                for j in 0..len {
                    let pm = Self::fused_pred_mask(pred, j, valid);
                    if !pm.any() {
                        continue;
                    }
                    npm += 1;
                    sum_apm += pm.count() as u64;
                    let p = vals.point(j as usize);
                    if EUCLID {
                        let dv = euclid_dists(own, &p);
                        if pm.0 == u32::MAX {
                            // Hit counters are integer adds, so the
                            // branch-free full-warp form is identical.
                            for l in 0..WARP_SIZE {
                                acc[l] += (dv[l] < radius) as u64;
                            }
                        } else {
                            for l in pm.lanes() {
                                acc[l] += (dv[l] < radius) as u64;
                            }
                        }
                    } else {
                        for l in pm.lanes() {
                            let own_p: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            if eval(&own_p, &p) < radius {
                                acc[l] += 1;
                            }
                        }
                    }
                }
            }
            FusedConsumer::Sum { acc } => {
                let vals = TileVals::resolve(self.blk, &src);
                for j in 0..len {
                    let pm = Self::fused_pred_mask(pred, j, valid);
                    if !pm.any() {
                        continue;
                    }
                    npm += 1;
                    sum_apm += pm.count() as u64;
                    let p = vals.point(j as usize);
                    if EUCLID {
                        // Per lane the adds stay in ascending-`j` order,
                        // so the f32 accumulation is unchanged.
                        let dv = euclid_dists(own, &p);
                        for l in pm.lanes() {
                            acc[l] += dv[l];
                        }
                    } else {
                        for l in pm.lanes() {
                            let own_p: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            acc[l] += eval(&own_p, &p);
                        }
                    }
                }
            }
            FusedConsumer::Histogram {
                inv_width,
                hmax,
                shm,
            } => {
                // Materialize the broadcast points up front: the scatter
                // below needs `self.blk.shared` mutably, so the resolved
                // tile borrow can't be held across the loop the way the
                // register-accumulator consumers hold it.
                let pts: Vec<[f32; D]> = {
                    let vals = TileVals::resolve(self.blk, &src);
                    (0..len as usize).map(|j| vals.point(j)).collect()
                };
                let mut scratch = ScatterScratch::default();
                for j in 0..len {
                    let pm = Self::fused_pred_mask(pred, j, valid);
                    if !pm.any() {
                        continue;
                    }
                    npm += 1;
                    sum_apm += pm.count() as u64;
                    let p = pts[j as usize];
                    // Lane-vectorized bucketing mirroring
                    // `HistogramSpec::bucket_lanes`: FMUL + F2I-with-clamp
                    // per lane, where Rust's saturating `as u32` is CUDA's
                    // `__float2uint_rz` (NaN and negatives go to bucket 0).
                    // The Euclidean form computes all 32 indices in one
                    // flat pass — inactive lanes produce garbage that only
                    // the masked loops below can observe.
                    let mut bucket = [0u32; WARP_SIZE];
                    if EUCLID {
                        let dv = euclid_dists(own, &p);
                        for (b, &d) in bucket.iter_mut().zip(dv.iter()) {
                            *b = ((d * inv_width) as u32).min(hmax);
                        }
                    } else {
                        for l in pm.lanes() {
                            let own_p: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            let v = eval(&own_p, &p);
                            bucket[l] = ((v * inv_width) as u32).min(hmax);
                        }
                    }
                    // Closed-form scatter: the atomic's serialization is
                    // a pure function of the active-lane bucket multiset,
                    // so compact it and account contention + bank
                    // conflicts in one pass instead of dispatching a
                    // simulated 32-lane atomic (`shared_atomic_add_u32`
                    // charges exactly these quantities; the pre-flight
                    // bounds check above rules out its fault path).
                    let mut act = [0u32; WARP_SIZE];
                    let na = if pm.0 == u32::MAX {
                        act = bucket;
                        WARP_SIZE
                    } else {
                        let mut na = 0usize;
                        for l in pm.lanes() {
                            act[na] = bucket[l];
                            na += 1;
                        }
                        na
                    };
                    let (mult, txns) =
                        self.blk
                            .shared
                            .scatter_account(shm.0, &act[..na], &mut scratch);
                    atom_serial += mult;
                    atom_txns += txns + mult - 1;
                    atom_replays += txns.saturating_sub(1);
                    let data = self.blk.shared.u32s_mut(shm);
                    for l in pm.lanes() {
                        data[bucket[l] as usize] = data[bucket[l] as usize].wrapping_add(1);
                    }
                }
            }
            FusedConsumer::Multi(mut sinks) => {
                // One distance evaluation per step feeds every sink in
                // order — exactly what `MultiQueryAction::process` does op
                // by op. Points are materialized up front for the same
                // borrow reason as the Histogram consumer above (the
                // histogram sinks need `self.blk.shared` mutably).
                let pts: Vec<[f32; D]> = {
                    let vals = TileVals::resolve(self.blk, &src);
                    (0..len as usize).map(|j| vals.point(j)).collect()
                };
                // Shared across sinks: the counters are zero between
                // calls, so per-array state never leaks.
                let mut scratch = ScatterScratch::default();
                // Partition the sinks once per tile pass: the per-step
                // loop then walks two homogeneous lists instead of
                // re-dispatching an enum match per sink per step. Sink
                // order inside a step is counts-then-hists — exactly how
                // `MultiQueryAction` lays its sinks out — and every
                // accumulation is an integer add, so the partition is
                // bit-identical to walking the mixed list.
                let mut count_sinks: Vec<(f32, &mut U64x32)> = Vec::new();
                let mut hist_sinks: Vec<(f32, u32, ShmU32)> = Vec::new();
                for sink in sinks.iter_mut() {
                    match sink {
                        FusedSink::CountLt { radius, acc } => {
                            count_sinks.push((*radius, acc));
                        }
                        FusedSink::Histogram {
                            inv_width,
                            hmax,
                            shm,
                        } => hist_sinks.push((*inv_width, *hmax, *shm)),
                    }
                }
                // Per-pass u32 hit counters, widened into the u64
                // accumulators once at the end: a lane gains at most one
                // hit per step and a tile pass is far shorter than 2^32
                // steps, so the u32 sums are exact and the final u64
                // values are bit-identical — while the hot loop runs at
                // twice the vector width with no widening conversions.
                let mut cnts: Vec<U32x32> = vec![[0u32; WARP_SIZE]; count_sinks.len()];
                for j in 0..len {
                    let pm = Self::fused_pred_mask(pred, j, valid);
                    if !pm.any() {
                        continue;
                    }
                    npm += 1;
                    sum_apm += pm.count() as u64;
                    let p = pts[j as usize];
                    let mut dv = [0.0f32; WARP_SIZE];
                    if EUCLID {
                        dv = euclid_dists(own, &p);
                    } else {
                        for l in pm.lanes() {
                            let own_p: [f32; D] = std::array::from_fn(|d| own[d][l]);
                            dv[l] = eval(&own_p, &p);
                        }
                    }
                    // Full-warp steps (the bulk: every inter-block tile
                    // step) take branch-free flat loops per sink, exactly
                    // like the single-consumer fast paths above — without
                    // this the per-sink cost dwarfs the shared distance
                    // evaluation and coalescing k queries saves nothing
                    // on the host.
                    if pm.0 == u32::MAX {
                        for ((r, _), cnt) in count_sinks.iter().zip(cnts.iter_mut()) {
                            let r = *r;
                            for l in 0..WARP_SIZE {
                                cnt[l] += (dv[l] < r) as u32;
                            }
                        }
                    } else {
                        for ((r, _), cnt) in count_sinks.iter().zip(cnts.iter_mut()) {
                            for l in pm.lanes() {
                                cnt[l] += (dv[l] < *r) as u32;
                            }
                        }
                    }
                    for &(iw, h, shm) in hist_sinks.iter() {
                        // Same bucket formula and closed-form scatter
                        // accounting as the single-sink Histogram
                        // consumer above.
                        let mut bucket = [0u32; WARP_SIZE];
                        let mut act = [0u32; WARP_SIZE];
                        let na;
                        if pm.0 == u32::MAX {
                            for (b, &d) in bucket.iter_mut().zip(dv.iter()) {
                                *b = ((d * iw) as u32).min(h);
                            }
                            act = bucket;
                            na = WARP_SIZE;
                        } else {
                            let mut k = 0usize;
                            for l in pm.lanes() {
                                let b = ((dv[l] * iw) as u32).min(h);
                                bucket[l] = b;
                                act[k] = b;
                                k += 1;
                            }
                            na = k;
                        }
                        let (mult, txns) =
                            self.blk
                                .shared
                                .scatter_account(shm.0, &act[..na], &mut scratch);
                        atom_serial += mult;
                        atom_txns += txns + mult - 1;
                        atom_replays += txns.saturating_sub(1);
                        let data = self.blk.shared.u32s_mut(shm);
                        if pm.0 == u32::MAX {
                            for &b in bucket.iter() {
                                data[b as usize] = data[b as usize].wrapping_add(1);
                            }
                        } else {
                            for l in pm.lanes() {
                                data[bucket[l] as usize] = data[bucket[l] as usize].wrapping_add(1);
                            }
                        }
                    }
                }
                for ((_, acc), cnt) in count_sinks.iter_mut().zip(cnts.iter()) {
                    for l in 0..WARP_SIZE {
                        acc[l] += cnt[l] as u64;
                    }
                }
            }
        }

        // ---- distance + consumer charges, batched in closed form ----
        // Tally counters commute, so summing per-executed-step charges at
        // the end is bit-identical to charging them step by step. Each
        // histogram sink's shared atomic is one further warp instruction
        // per executed step (a memory op, not ALU); the data-dependent
        // serialization was accumulated above, summed across sinks.
        let per = dist_cost + consumer_alu;
        let wi = per + n_hist;
        {
            let t = &mut self.blk.tally;
            t.warp_instructions += npm * wi;
            t.useful_lane_ops += wi * sum_apm;
            t.predicated_lane_slots += wi * (npm * WARP_SIZE as u64 - sum_apm);
            t.alu_instructions += npm * per;
            if n_hist != 0 {
                t.shared_atomics += npm * n_hist;
                t.shared_atomic_serial += atom_serial;
                t.shared_transactions += atom_txns;
                t.shared_bank_replays += atom_replays;
                t.shared_bytes += 4 * sum_apm * n_hist;
            }
        }
        let interp = &mut self.blk.interp;
        interp.dispatches += 1;
        interp.fused_ops += 1;
        interp.fused_lane_ops += a * steps * (dims + pred_alu) + wi * sum_apm;
        true
    }

    /// [`Self::fused_tile_pass`] specialized to the paper's hot chain:
    /// Euclidean distance (per-dimension `sub` + `fma`, then `sqrt`;
    /// cost `2·D + 1`, bit-identical to `Euclidean::eval_host`).
    ///
    /// The specialization evaluates all 32 lanes of a step with one
    /// lane-outer pass over the register columns (`euclid_dists`)
    /// instead of per-lane closure calls, which the compiler turns into
    /// packed FMA/sqrt — the bulk of the fused route's speedup on the
    /// 2-PCF/SDH workloads.
    pub fn fused_euclidean_tile<const D: usize>(
        &mut self,
        src: FusedSrc<'_, D>,
        len: u32,
        pred: FusedPred,
        own: &[F32x32; D],
        consumer: FusedConsumer<'_>,
        valid: Mask,
    ) -> bool {
        self.fused_tile_impl::<D, true>(
            src,
            len,
            pred,
            2 * D as u64 + 1,
            // Fallback form of the same chain; the `EUCLID` branches
            // never call it, but keeping it here documents the exact
            // scalar sequence `euclid_dists` must reproduce per lane.
            |a, b| {
                let mut s = 0.0f32;
                for d in 0..D {
                    let diff = a[d] - b[d];
                    s = diff.mul_add(diff, s);
                }
                s.sqrt()
            },
            own,
            consumer,
            valid,
        )
    }

    /// [`Self::fused_tile_pass`] with the privatized shared-histogram
    /// consumer (the paper's Algorithm 3 SDH update).
    #[allow(clippy::too_many_arguments)]
    pub fn fused_hist_tile<const D: usize>(
        &mut self,
        src: FusedSrc<'_, D>,
        len: u32,
        pred: FusedPred,
        dist_cost: u64,
        eval: impl Fn(&[f32; D], &[f32; D]) -> f32,
        own: &[F32x32; D],
        inv_width: f32,
        hmax: u32,
        shm: ShmU32,
        valid: Mask,
    ) -> bool {
        self.fused_tile_pass(
            src,
            len,
            pred,
            dist_cost,
            eval,
            own,
            FusedConsumer::Histogram {
                inv_width,
                hmax,
                shm,
            },
            valid,
        )
    }

    /// Execute the `*-Out` family's cross-copy reduction — `copies`
    /// iterations of *unit-stride load `buf[c·stride + gid]`, address +
    /// accumulate ALU, widen into `acc`* — as one fused call.
    ///
    /// Bit-identical to the op-by-op loop
    /// (`global_load_u32` + `charge_alu(2)` + per-lane accumulate per
    /// copy): every copy still charges 3 warp instructions (2 of them
    /// ALU), one coalesced load, `4·lanes` bytes, and one ascending
    /// unit-stride L2 sector run, in copy order. Only the interpreter
    /// dispatch per operation disappears.
    ///
    /// Returns `false` — with no side effects — when a precondition
    /// fails and the caller must run the op-by-op loop: scalar-reference
    /// mode, `fused_tile` off, a dead block, fewer than two active lanes
    /// or a non-prefix mask (the op path's broadcast shape), non-
    /// contiguous `gid`s, an access that could fault, or a read that
    /// would abandon speculation.
    pub fn fused_copy_reduce_u32(
        &mut self,
        buf: BufU32,
        gid: &U32x32,
        stride: u32,
        copies: u32,
        acc: &mut U64x32,
        mask: Mask,
    ) -> bool {
        if self.scalar_ref()
            || !self.blk.cfg.fused_tile
            || self.blk.dead()
            || copies == 0
            || !mask.is_prefix()
            || mask.count() < 2
        {
            return false;
        }
        let n = mask.count() as usize;
        let first = gid[0] as u64;
        if !gid[..n]
            .iter()
            .enumerate()
            .all(|(k, &v)| v as u64 == first + k as u64)
        {
            return false;
        }
        let last = (copies as u64 - 1) * stride as u64 + first + n as u64 - 1;
        if u32::try_from(last).is_err()
            || self
                .blk
                .check_global_bounds(buf.0, last as u32, "global u32 load")
                .is_err()
            || self.blk.read_would_abandon(buf.0)
        {
            return false;
        }

        let a = n as u64;
        let m = copies as u64;
        {
            let t = &mut self.blk.tally;
            charge_lanes(t, 3 * m, a);
            t.alu_instructions += 2 * m;
            t.global_load_instructions += m;
            t.global_load_bytes += m * 4 * a;
        }
        // The stateful L2 stream keeps its op-by-op granularity and
        // order: one ascending unit-stride sector run per copy.
        let base = self.blk.global_base_addr(buf.0);
        let sb = self.blk.cfg.sector_bytes as u64;
        for c in 0..m {
            let e0 = c * stride as u64 + first;
            let s0 = (base + e0 * 4) / sb;
            let s1 = (base + (e0 + a - 1) * 4) / sb;
            self.blk.l2_access_run(s0, (s1 - s0 + 1) as u32);
        }
        {
            // Read-set bookkeeping; cannot abandon (pre-checked). The
            // accumulation runs flat over each copy's contiguous row.
            let data = self.blk.global_read_u32s(buf);
            for c in 0..copies {
                let off = c as usize * stride as usize + first as usize;
                for (al, &v) in acc[..n].iter_mut().zip(data[off..off + n].iter()) {
                    *al += v as u64;
                }
            }
        }
        let interp = &mut self.blk.interp;
        interp.dispatches += 1;
        interp.fused_ops += 1;
        interp.fused_lane_ops += 3 * m * a;
        true
    }

    /// Compiled form of the whole reduction copy loop: the scope of
    /// [`Self::fused_copy_reduce_u32`] *plus* the loop-control charge
    /// the caller otherwise issues separately (`charge_control(m+1)`),
    /// lowered to one call when the compiled route is on. Gates on
    /// `cfg.compiled` instead of `cfg.fused_tile`, so the reduction
    /// stays compiled when the fused oracle route is selected off.
    ///
    /// Tally effects are bit-identical to
    /// `charge_control(m+1) + fused_copy_reduce_u32` (which is
    /// bit-identical to the op-by-op loop); only the host-side
    /// interpreter stats differ (one compiled dispatch instead of two).
    /// Returns `false` with no side effects — including the control
    /// charge — on any declined shape, and the caller runs the
    /// charge_control + fused/op-by-op path.
    pub fn compiled_copy_reduce_u32(
        &mut self,
        buf: BufU32,
        gid: &U32x32,
        stride: u32,
        copies: u32,
        acc: &mut U64x32,
        mask: Mask,
    ) -> bool {
        if self.scalar_ref()
            || !self.blk.cfg.compiled
            || self.blk.dead()
            || copies == 0
            || !mask.is_prefix()
            || mask.count() < 2
        {
            return false;
        }
        let n = mask.count() as usize;
        let first = gid[0] as u64;
        if !gid[..n]
            .iter()
            .enumerate()
            .all(|(k, &v)| v as u64 == first + k as u64)
        {
            return false;
        }
        let last = (copies as u64 - 1) * stride as u64 + first + n as u64 - 1;
        if u32::try_from(last).is_err()
            || self
                .blk
                .check_global_bounds(buf.0, last as u32, "global u32 load")
                .is_err()
            || self.blk.read_would_abandon(buf.0)
        {
            return false;
        }

        let a = n as u64;
        let m = copies as u64;
        {
            let t = &mut self.blk.tally;
            // The copy loop's control charge (m tests + 1 failing test)
            // plus the per-copy load/address/accumulate instructions.
            charge_lanes(t, (m + 1) + 3 * m, a);
            t.control_instructions += m + 1;
            t.alu_instructions += 2 * m;
            t.global_load_instructions += m;
            t.global_load_bytes += m * 4 * a;
        }
        // The stateful L2 stream keeps its op-by-op granularity and
        // order: one ascending unit-stride sector run per copy.
        let base = self.blk.global_base_addr(buf.0);
        let sb = self.blk.cfg.sector_bytes as u64;
        for c in 0..m {
            let e0 = c * stride as u64 + first;
            let s0 = (base + e0 * 4) / sb;
            let s1 = (base + (e0 + a - 1) * 4) / sb;
            self.blk.l2_access_run(s0, (s1 - s0 + 1) as u32);
        }
        {
            // Read-set bookkeeping; cannot abandon (pre-checked). The
            // accumulation runs flat over each copy's contiguous row.
            let data = self.blk.global_read_u32s(buf);
            for c in 0..copies {
                let off = c as usize * stride as usize + first as usize;
                for (al, &v) in acc[..n].iter_mut().zip(data[off..off + n].iter()) {
                    *al += v as u64;
                }
            }
        }
        let interp = &mut self.blk.interp;
        interp.dispatches += 1;
        interp.compiled_ops += 1;
        interp.compiled_lane_ops += (4 * m + 1) * a;
        true
    }

    /// Shared-memory sibling of [`Self::fused_copy_reduce_u32`]: the
    /// multi-copy privatized histogram's end-of-block reduction —
    /// `copies` iterations of *unit-stride shared load
    /// `arr[c·stride + idx]`, one accumulate ALU op, wrapping add into
    /// `acc`* — as one fused call.
    ///
    /// Bit-identical to the op-by-op loop (`shared_load_u32` +
    /// `charge_alu(1)` per copy): each copy charges 2 warp instructions
    /// (1 ALU), one shared load with its bank-rule transactions, and
    /// `4·lanes` bytes. Returns `false` with no side effects when the
    /// fast paths are off, the mask is empty or non-prefix, the `idx`
    /// lanes are not contiguous, or any copy's row could fault.
    pub fn fused_shared_copy_reduce_u32(
        &mut self,
        arr: ShmU32,
        idx: &U32x32,
        stride: u32,
        copies: u32,
        acc: &mut U32x32,
        mask: Mask,
    ) -> bool {
        if self.scalar_ref()
            || !self.blk.cfg.fused_tile
            || self.blk.dead()
            || copies == 0
            || !mask.any()
            || !mask.is_prefix()
        {
            return false;
        }
        let n = mask.count() as usize;
        let first = idx[0] as u64;
        if !idx[..n]
            .iter()
            .enumerate()
            .all(|(k, &v)| v as u64 == first + k as u64)
        {
            return false;
        }
        let last = (copies as u64 - 1) * stride as u64 + first + n as u64 - 1;
        if u32::try_from(last).is_err()
            || self
                .blk
                .shared
                .check_bounds(arr.0, last as u32, "shared u32 load")
                .is_err()
        {
            return false;
        }

        let a = n as u64;
        let m = copies as u64;
        // Bank transactions per copy: the rows are unit-stride but each
        // copy's base offset shifts the banks, so ask the counter per
        // copy (cheap shape fast path) rather than assume.
        let mut txns_total = 0u64;
        let mut src = [0u32; WARP_SIZE];
        for c in 0..copies {
            let e0 = (c as u64 * stride as u64 + first) as u32;
            for (k, s) in src[..n].iter_mut().enumerate() {
                *s = e0 + k as u32;
            }
            txns_total += self.blk.shared.transactions_for(arr.0, &src[..n]);
        }
        {
            let t = &mut self.blk.tally;
            charge_lanes(t, 2 * m, a);
            t.alu_instructions += m;
            t.shared_load_instructions += m;
            t.shared_transactions += txns_total;
            t.shared_bank_replays += txns_total - m;
            t.shared_bytes += m * 4 * a;
        }
        {
            let data = self.blk.shared.u32s(arr);
            for c in 0..copies {
                let off = c as usize * stride as usize + first as usize;
                for (al, &v) in acc[..n].iter_mut().zip(data[off..off + n].iter()) {
                    *al = al.wrapping_add(v);
                }
            }
        }
        let interp = &mut self.blk.interp;
        interp.dispatches += 1;
        interp.fused_ops += 1;
        interp.fused_lane_ops += 2 * m * a;
        true
    }
}

/// All 32 lanes' Euclidean distances against one broadcast point, as a
/// dimension-outer pass over the flat register columns. Per lane the
/// operation sequence — `sub`, `mul_add` per dimension in ascending
/// order, then `sqrt` — is exactly `Euclidean::eval_host`, so every
/// lane's result is bit-identical to the scalar closure; the lane-outer
/// layout only exists so the compiler can vectorize across lanes.
/// Inactive lanes compute garbage that callers discard under the mask.
#[inline]
fn euclid_dists<const D: usize>(own: &[F32x32; D], p: &[f32; D]) -> F32x32 {
    let mut s = [0.0f32; WARP_SIZE];
    for d in 0..D {
        let col = &own[d];
        let pd = p[d];
        for (sl, &ol) in s.iter_mut().zip(col.iter()) {
            let diff = ol - pd;
            *sl = diff.mul_add(diff, *sl);
        }
    }
    for v in &mut s {
        *v = v.sqrt();
    }
    s
}

/// Resolved view of a [`FusedSrc`] for the accumulator consumers: borrows
/// the backing storage once so the per-step loop is a flat slice index.
enum TileVals<'s, const D: usize> {
    /// Column slices; step `j` reads element `start + j` of each.
    Elems { cols: [&'s [f32]; D], start: usize },
    /// Register fragment; step `j` reads lane `j % 32` of each.
    Lanes(&'s [F32x32; D]),
}

impl<'s, const D: usize> TileVals<'s, D> {
    fn resolve(blk: &'s BlockCtx<'_>, src: &FusedSrc<'s, D>) -> Self {
        match src {
            FusedSrc::SharedBroadcast(tile) => TileVals::Elems {
                cols: std::array::from_fn(|d| blk.shared.f32s(tile[d])),
                start: 0,
            },
            FusedSrc::RocBroadcast { bufs, start } => TileVals::Elems {
                cols: std::array::from_fn(|d| blk.gmem().f32_slice(bufs[d])),
                start: *start as usize,
            },
            FusedSrc::LaneBroadcast(regs) => TileVals::Lanes(regs),
        }
    }

    #[inline]
    fn point(&self, j: usize) -> [f32; D] {
        match self {
            TileVals::Elems { cols, start } => std::array::from_fn(|d| cols[d][start + j]),
            TileVals::Lanes(regs) => std::array::from_fn(|d| regs[d][j % WARP_SIZE]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::device::Device;
    use crate::exec::{Kernel, KernelResources, LaunchConfig};

    /// Harness: run a single-block closure kernel and return the device +
    /// merged tally.
    struct ClosureKernel<F: Fn(&mut BlockCtx<'_>) + Sync> {
        f: F,
        res: KernelResources,
    }
    impl<F: Fn(&mut BlockCtx<'_>) + Sync> Kernel for ClosureKernel<F> {
        fn name(&self) -> &'static str {
            "closure"
        }
        fn resources(&self) -> KernelResources {
            self.res
        }
        fn run_block(&self, blk: &mut BlockCtx<'_>) {
            (self.f)(blk)
        }
    }

    fn run_one_block<F: Fn(&mut BlockCtx<'_>) + Sync>(
        dev: &mut Device,
        block_dim: u32,
        f: F,
    ) -> crate::exec::KernelRun {
        let k = ClosureKernel {
            f,
            res: KernelResources::new(16, 48 * 1024),
        };
        dev.launch(&k, LaunchConfig::new(1, block_dim))
    }

    #[test]
    fn coalesced_load_counts_four_sectors_per_warp() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let buf = dev.alloc_f32((0..1024).map(|i| i as f32).collect());
        let run = run_one_block(&mut dev, 64, move |blk| {
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let v = w.global_load_f32(buf, &tid, Mask::FULL);
                assert_eq!(v[3], (w.warp_id * 32 + 3) as f32);
            });
        });
        // 2 warps × 4 sectors, all cold -> DRAM.
        assert_eq!(run.tally.global_load_instructions, 2);
        assert_eq!(run.tally.dram_sectors, 8);
        assert_eq!(run.tally.global_load_bytes, 2 * 32 * 4);
    }

    #[test]
    fn second_load_hits_l2() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let buf = dev.alloc_f32(vec![1.0; 64]);
        let run = run_one_block(&mut dev, 32, move |blk| {
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                w.global_load_f32(buf, &tid, Mask::FULL);
                w.global_load_f32(buf, &tid, Mask::FULL);
            });
        });
        assert_eq!(run.tally.dram_sectors, 4);
        assert_eq!(run.tally.l2_hit_sectors, 4);
    }

    #[test]
    fn roc_load_fills_then_hits() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let buf = dev.alloc_f32(vec![2.0; 64]);
        let run = run_one_block(&mut dev, 32, move |blk| {
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let v = w.roc_load_f32(buf, &tid, Mask::FULL);
                assert_eq!(v[0], 2.0);
                w.roc_load_f32(buf, &tid, Mask::FULL);
                w.roc_load_f32(buf, &tid, Mask::FULL);
            });
        });
        assert_eq!(run.tally.roc_load_instructions, 3);
        assert_eq!(run.tally.roc_miss_sectors, 4);
        assert_eq!(run.tally.roc_hit_sectors, 8);
        assert_eq!(run.tally.dram_sectors, 4, "ROC misses flow to DRAM");
    }

    #[test]
    fn shared_atomic_contention_is_measured() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let run = run_one_block(&mut dev, 32, |blk| {
            let hist = blk.shared_alloc_u32(64);
            blk.for_each_warp(|w| {
                // All 32 lanes hit bucket 5: contention degree 32.
                let idx = [5u32; 32];
                w.shared_atomic_add_u32(hist, &idx, &[1; 32], Mask::FULL);
                // Conflict-free: lanes hit distinct buckets.
                let spread = w.lane_ids();
                w.shared_atomic_add_u32(hist, &spread, &[1; 32], Mask::FULL);
            });
            assert_eq!(blk.shared_u32s(hist)[5], 32 + 1);
        });
        assert_eq!(run.tally.shared_atomics, 2);
        assert_eq!(run.tally.shared_atomic_serial, 32 + 1);
    }

    #[test]
    fn global_atomics_accumulate_and_serialize() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let out = dev.alloc_u64(vec![0; 8]);
        let run = run_one_block(&mut dev, 64, move |blk| {
            blk.for_each_warp(|w| {
                let idx = [0u32; 32];
                w.global_atomic_add_u64(out, &idx, &[1; 32], Mask::FULL);
            });
        });
        assert_eq!(dev.u64_slice(out)[0], 64);
        assert_eq!(run.tally.global_atomics, 2);
        assert_eq!(run.tally.global_atomic_serial, 64);
    }

    #[test]
    fn shuffle_broadcast_moves_register_content() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let run = run_one_block(&mut dev, 32, |blk| {
            blk.for_each_warp(|w| {
                let vals: F32x32 = std::array::from_fn(|i| i as f32 * 10.0);
                let b = w.shfl_bcast_f32(&vals, 7, Mask::FULL);
                assert!(b.iter().all(|&x| x == 70.0));
            });
        });
        assert_eq!(run.tally.shuffle_instructions, 1);
    }

    #[test]
    fn shuffle_faults_on_fermi() {
        let mut dev = Device::new(DeviceConfig::fermi_gtx580());
        let k = ClosureKernel {
            f: |blk: &mut BlockCtx<'_>| {
                blk.for_each_warp(|w| {
                    let vals = [0.0; 32];
                    w.shfl_bcast_f32(&vals, 0, Mask::FULL);
                });
            },
            res: KernelResources::new(16, 0),
        };
        let err = dev.try_launch(&k, LaunchConfig::new(1, 32)).unwrap_err();
        assert!(matches!(err, SimError::ShuffleUnsupported { .. }));
    }

    #[test]
    fn divergent_loop_tracks_divergence() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let run = run_one_block(&mut dev, 32, |blk| {
            blk.for_each_warp(|w| {
                // Triangular trip counts, like the paper's intra-block
                // loop: lane i runs 31-i iterations.
                let trips: U32x32 = std::array::from_fn(|i| 31 - i as u32);
                let mut total = 0u64;
                w.divergent_loop(&trips, Mask::FULL, |w2, _j, active| {
                    total += active.count() as u64;
                    w2.charge_alu(1, active);
                });
                // Σ (31-i) = 496 useful lane-iterations.
                assert_eq!(total, 496);
            });
        });
        // 31 iterations total; lane 31 has zero trips, so even the first
        // iteration is partially masked -> all 31 are divergent.
        assert_eq!(run.tally.divergent_iterations, 31);
    }

    #[test]
    fn uniform_loop_has_no_divergence() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let run = run_one_block(&mut dev, 32, |blk| {
            blk.for_each_warp(|w| {
                let trips = [16u32; 32];
                w.divergent_loop(&trips, Mask::FULL, |w2, _j, active| {
                    assert!(active.all());
                    w2.charge_alu(1, active);
                });
            });
        });
        assert_eq!(run.tally.divergent_iterations, 0);
        assert_eq!(run.tally.control_instructions, 17); // 16 tests + exit
    }

    #[test]
    fn out_of_bounds_load_faults_launch() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let buf = dev.alloc_f32(vec![0.0; 8]);
        let k = ClosureKernel {
            f: move |blk: &mut BlockCtx<'_>| {
                blk.for_each_warp(|w| {
                    let idx = [100u32; 32];
                    w.global_load_f32(buf, &idx, Mask::FULL);
                });
            },
            res: KernelResources::new(16, 0),
        };
        let err = dev.try_launch(&k, LaunchConfig::new(1, 32)).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn arithmetic_helpers_compute_and_charge() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let run = run_one_block(&mut dev, 32, |blk| {
            blk.for_each_warp(|w| {
                let a: F32x32 = std::array::from_fn(|i| i as f32);
                let b: F32x32 = std::array::from_fn(|_| 2.0);
                let d = w.sub_f32x(&a, &b, Mask::FULL);
                let sq = w.fma_f32x(&d, &d, &[0.0; 32], Mask::FULL);
                let r = w.sqrt_f32x(&sq, Mask::FULL);
                assert_eq!(r[5], 3.0);
                let near = w.lt_f32(&r, 2.5, Mask::FULL);
                assert_eq!(near.count(), 5); // lanes 0..4 -> |i-2| < 2.5
            });
        });
        assert_eq!(run.tally.alu_instructions, 4);
    }

    #[test]
    fn masked_lanes_do_not_touch_memory() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let buf = dev.alloc_f32(vec![1.0; 4]);
        // Lanes ≥ 4 would be out of bounds but are masked off.
        let run = run_one_block(&mut dev, 32, move |blk| {
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let m = w.mask_lt(&tid, 4);
                let v = w.global_load_f32(buf, &tid, m);
                assert_eq!(v[2], 1.0);
                assert_eq!(v[10], 0.0);
            });
        });
        assert_eq!(run.tally.global_load_bytes, 16);
        assert_eq!(run.tally.predicated_lane_slots, 28);
    }
}
