//! The occupancy calculator.
//!
//! Occupancy — resident warps per SM over the hardware maximum — controls
//! how much memory latency the SM can hide. The paper's Figure 5 shows it
//! falling in *steps* as the SDH histogram (allocated in shared memory per
//! block) grows, dragging performance down with it. This module computes
//! those steps exactly the way the CUDA occupancy calculator does:
//! blocks-per-SM is the minimum over four independent limits.

use crate::config::DeviceConfig;
use crate::WARP_SIZE;

/// Which resource limited the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// Thread capacity of the SM (`max_threads_per_sm`).
    Threads,
    /// Shared memory per SM divided by per-block usage.
    SharedMem,
    /// Register file divided by per-block register usage.
    Registers,
    /// Hardware block-slot limit (`max_blocks_per_sm`).
    BlockSlots,
    /// The grid is too small to fill every SM.
    GridSize,
}

/// Result of an occupancy computation for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM at steady state.
    pub blocks_per_sm: u32,
    /// Active warps per SM (`blocks_per_sm × warps_per_block`, capped by
    /// the grid).
    pub active_warps_per_sm: u32,
    /// `active_warps_per_sm / max_warps_per_sm` in `[0, 1]`.
    pub occupancy: f64,
    /// The binding constraint.
    pub limiter: OccupancyLimiter,
}

/// Register allocation granularity: the register file is allocated in
/// warp-level chunks of 256 registers (Maxwell allocation unit).
const REG_ALLOC_UNIT: u32 = 256;

/// Shared-memory allocation granularity in bytes.
const SHM_ALLOC_UNIT: u32 = 256;

/// Compute occupancy for a launch of blocks of `block_dim` threads, each
/// thread using `regs_per_thread` registers and each block
/// `shm_per_block` bytes of shared memory, on a grid of `grid_dim`
/// blocks.
pub fn occupancy(
    cfg: &DeviceConfig,
    grid_dim: u32,
    block_dim: u32,
    regs_per_thread: u32,
    shm_per_block: u32,
) -> Occupancy {
    let warps_per_block = block_dim.div_ceil(WARP_SIZE as u32).max(1);

    // Limit 1: thread capacity.
    let by_threads = cfg.max_threads_per_sm / (warps_per_block * WARP_SIZE as u32);

    // Limit 2: shared memory (rounded up to the allocation unit).
    let shm_rounded = shm_per_block.div_ceil(SHM_ALLOC_UNIT) * SHM_ALLOC_UNIT;
    let by_shm = cfg
        .shared_mem_per_sm
        .checked_div(shm_rounded)
        .unwrap_or(u32::MAX);

    // Limit 3: registers (allocated per warp in REG_ALLOC_UNIT chunks).
    let regs_per_warp =
        (regs_per_thread.max(1) * WARP_SIZE as u32).div_ceil(REG_ALLOC_UNIT) * REG_ALLOC_UNIT;
    let warps_by_regs = cfg.registers_per_sm / regs_per_warp;
    let by_regs = warps_by_regs / warps_per_block;

    // Limit 4: block slots.
    let by_slots = cfg.max_blocks_per_sm;

    let mut blocks = by_threads.min(by_shm).min(by_regs).min(by_slots);
    let mut limiter = if blocks == by_threads {
        OccupancyLimiter::Threads
    } else if blocks == by_shm {
        OccupancyLimiter::SharedMem
    } else if blocks == by_regs {
        OccupancyLimiter::Registers
    } else {
        OccupancyLimiter::BlockSlots
    };
    // Prefer reporting the *scarce* resource when ties happen with the
    // generous defaults: pick in priority order shm > regs > threads.
    if blocks == by_shm && by_shm < by_threads {
        limiter = OccupancyLimiter::SharedMem;
    } else if blocks == by_regs && by_regs < by_threads {
        limiter = OccupancyLimiter::Registers;
    }

    // A small grid cannot fill the SMs regardless of per-SM limits.
    let avg_blocks_per_sm_from_grid = grid_dim.div_ceil(cfg.num_sms.max(1));
    if avg_blocks_per_sm_from_grid < blocks {
        blocks = avg_blocks_per_sm_from_grid;
        limiter = OccupancyLimiter::GridSize;
    }

    let blocks = blocks.max(1);
    let active_warps = (blocks * warps_per_block).min(cfg.max_warps_per_sm());
    Occupancy {
        blocks_per_sm: blocks,
        active_warps_per_sm: active_warps,
        occupancy: active_warps as f64 / cfg.max_warps_per_sm() as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn full_occupancy_with_light_kernel() {
        // 1024-thread blocks, few registers, no shared memory: 2 blocks
        // fit the 2048-thread SM -> 100 % occupancy.
        let o = occupancy(&cfg(), 1000, 1024, 24, 0);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.active_warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_step_function() {
        // The Figure-5 mechanism: 256-thread blocks, histogram in shared
        // memory. Blocks/SM = min(8, 96KB/shm). Occupancy steps down as
        // the histogram grows.
        let c = cfg();
        let occ = |hist_bytes: u32| occupancy(&c, 10_000, 256, 32, hist_bytes).occupancy;
        let o1k = occ(1000 * 4); // 4 KB  -> 8 blocks -> 100 %
        let o4k = occ(4000 * 4); // 16 KB -> 6 blocks -> 75 %
        let o5k = occ(5000 * 4); // 20 KB -> 4 blocks -> 50 %
        assert!((o1k - 1.0).abs() < 1e-12, "{o1k}");
        assert!((o4k - 0.75).abs() < 1e-12, "{o4k}");
        assert!((o5k - 0.5).abs() < 1e-12, "{o5k}");
        assert_eq!(
            occupancy(&c, 10_000, 256, 32, 5000 * 4).limiter,
            OccupancyLimiter::SharedMem
        );
    }

    #[test]
    fn register_pressure_limits_blocks() {
        // 1024 threads × 64 regs = 64K regs per block: only 1 block fits
        // the 64K register file.
        let o = occupancy(&cfg(), 1000, 1024, 64, 0);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
        assert!((o.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_grid_cannot_fill_device() {
        let o = occupancy(&cfg(), 8, 256, 24, 0);
        assert_eq!(o.limiter, OccupancyLimiter::GridSize);
        assert_eq!(o.blocks_per_sm, 1);
    }

    #[test]
    fn block_slot_limit_binds_for_tiny_blocks() {
        // 32-thread blocks: thread limit alone would allow 64 blocks but
        // the hardware slot limit is 32.
        let o = occupancy(&cfg(), 100_000, 32, 16, 0);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limiter, OccupancyLimiter::BlockSlots);
    }

    #[test]
    fn occupancy_never_exceeds_one() {
        for shm in [0u32, 100, 10_000, 40_000] {
            for regs in [8u32, 32, 128] {
                for bd in [32u32, 128, 256, 1024] {
                    let o = occupancy(&cfg(), 1_000_000, bd, regs, shm);
                    assert!(o.occupancy <= 1.0 + 1e-12);
                    assert!(o.blocks_per_sm >= 1);
                }
            }
        }
    }
}
