//! The timing model: access tallies → simulated kernel time.
//!
//! The model is a roofline-style bottleneck analysis, the same reasoning
//! the paper applies in §IV-B/§IV-D:
//!
//! 1. every functional unit (issue pipes, FP32 lanes, shared memory, the
//!    read-only cache, L2, DRAM, global atomic units) accumulates *busy
//!    cycles* from the tally; the busiest unit lower-bounds kernel time;
//! 2. a *latency bound* models the dependent-issue chain of each warp,
//!    divided by the warps the SM actually has resident (occupancy): with
//!    too few warps, latencies of 350-cycle global loads cannot be hidden
//!    — this is what makes the Naive kernel ≈ 6× slower than the tiled
//!    kernels even though their DRAM traffic is similar, and what makes
//!    occupancy steps visible in the paper's Figure 5.
//!
//! `kernel cycles = max(max_r busy_r, latency_bound)`.

use crate::config::DeviceConfig;
use crate::occupancy::Occupancy;
use crate::tally::AccessTally;

/// Functional units that can bound kernel time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Warp instruction issue (includes divergence re-convergence cost).
    Issue,
    /// FP32/integer arithmetic pipes.
    Alu,
    /// Shared-memory banks.
    SharedMem,
    /// Read-only data cache.
    Roc,
    /// L2 cache bandwidth.
    L2,
    /// DRAM bandwidth.
    Dram,
    /// Global atomic units.
    GlobalAtomic,
    /// Latency exposure (not enough warps to hide memory latency).
    Latency,
}

impl Resource {
    /// Short display name used by the bench harness tables.
    pub fn name(&self) -> &'static str {
        match self {
            Resource::Issue => "issue",
            Resource::Alu => "arithmetic",
            Resource::SharedMem => "shared memory",
            Resource::Roc => "read-only cache",
            Resource::L2 => "L2 cache",
            Resource::Dram => "DRAM",
            Resource::GlobalAtomic => "global atomics",
            Resource::Latency => "memory latency",
        }
    }
}

/// Cycle-level result of the timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingBreakdown {
    /// Simulated kernel duration in cycles.
    pub cycles: f64,
    /// Simulated kernel duration in seconds at the device clock.
    pub seconds: f64,
    /// Busy cycles per resource (per-SM for SM-local units, device-wide
    /// units are normalized to the same scale).
    pub issue_cycles: f64,
    pub alu_cycles: f64,
    pub shared_cycles: f64,
    pub roc_cycles: f64,
    pub l2_cycles: f64,
    pub dram_cycles: f64,
    pub global_atomic_cycles: f64,
    /// The latency-exposure bound.
    pub latency_cycles: f64,
    /// The unit that set `cycles`.
    pub bottleneck: Resource,
}

impl TimingBreakdown {
    /// Utilization of a unit: its busy cycles over kernel cycles, in
    /// `[0, 1]`. This is the quantity the NVidia Visual Profiler reports
    /// in the paper's Tables II and IV.
    pub fn utilization(&self, r: Resource) -> f64 {
        let busy = match r {
            Resource::Issue => self.issue_cycles,
            Resource::Alu => self.alu_cycles,
            Resource::SharedMem => self.shared_cycles,
            Resource::Roc => self.roc_cycles,
            Resource::L2 => self.l2_cycles,
            Resource::Dram => self.dram_cycles,
            Resource::GlobalAtomic => self.global_atomic_cycles,
            Resource::Latency => self.latency_cycles,
        };
        if self.cycles <= 0.0 {
            0.0
        } else {
            (busy / self.cycles).min(1.0)
        }
    }
}

/// The timing model itself; stateless, parameterized by a device config.
#[derive(Debug, Clone)]
pub struct TimingModel<'a> {
    cfg: &'a DeviceConfig,
}

impl<'a> TimingModel<'a> {
    pub fn new(cfg: &'a DeviceConfig) -> Self {
        TimingModel { cfg }
    }

    /// Estimate kernel time for a tally, given the launch's occupancy and
    /// grid size.
    pub fn estimate(&self, t: &AccessTally, occ: &Occupancy, grid_dim: u32) -> TimingBreakdown {
        let cfg = self.cfg;
        // Work spreads over at most `grid_dim` SMs.
        let eff_sms = (cfg.num_sms.min(grid_dim.max(1))) as f64;
        let sector = cfg.sector_bytes as f64;

        // ---- throughput (busy-cycle) bounds, normalized per SM ----
        let issue = (t.warp_instructions as f64 / cfg.thr.issue_per_cycle_per_sm
            + t.divergent_iterations as f64 * cfg.divergence_penalty_cycles)
            / eff_sms;
        let alu = t.alu_instructions as f64 / cfg.thr.alu_warps_per_cycle_per_sm / eff_sms;
        // One warp-wide shared transaction per cycle per SM.
        let shared = t.shared_transactions as f64 / eff_sms;
        let roc = t.roc_hit_sectors as f64 * sector / cfg.thr.roc_bytes_per_cycle_per_sm / eff_sms;
        // Device-wide units: express their busy time in the same "cycles"
        // scale (the device clock), no SM normalization.
        let l2 = (t.l2_hit_sectors + t.dram_sectors) as f64 * sector / cfg.thr.l2_bytes_per_cycle;
        let dram = t.dram_sectors as f64 * sector / cfg.thr.dram_bytes_per_cycle;
        let gatomic = t.global_atomic_serial as f64 / cfg.thr.global_atomics_per_cycle;

        // ---- latency-exposure bound ----
        let global_sectors = t.global_sectors().max(1) as f64;
        let hit_frac = t.l2_hit_sectors as f64 / global_sectors;
        let gl_lat = hit_frac * cfg.lat.l2 + (1.0 - hit_frac) * cfg.lat.global;
        let roc_accesses = (t.roc_hit_sectors + t.roc_miss_sectors).max(1) as f64;
        let roc_hit_frac = t.roc_hit_sectors as f64 / roc_accesses;
        let roc_lat = roc_hit_frac * cfg.lat.roc + (1.0 - roc_hit_frac) * cfg.lat.global;

        let chain = (t.alu_instructions + t.control_instructions + t.shuffle_instructions) as f64
            * cfg.lat.alu
            + t.global_load_instructions as f64 * gl_lat
            + t.global_store_instructions as f64 * cfg.lat.alu
            + t.global_atomics as f64 * cfg.lat.global
            + t.global_atomic_serial.saturating_sub(t.global_atomics) as f64
                * cfg.lat.global_atomic_replay
            + t.roc_load_instructions as f64 * roc_lat
            + (t.shared_load_instructions + t.shared_store_instructions + t.shared_atomics) as f64
                * cfg.lat.shared
            + (t.shared_bank_replays + t.shared_atomic_serial.saturating_sub(t.shared_atomics))
                as f64
                * cfg.lat.shared_atomic_replay
            + t.sync_instructions as f64 * cfg.sync_cycles;
        let latency =
            chain / eff_sms / (occ.active_warps_per_sm.max(1) as f64) / cfg.latency_ilp.max(1.0);

        let candidates = [
            (issue, Resource::Issue),
            (alu, Resource::Alu),
            (shared, Resource::SharedMem),
            (roc, Resource::Roc),
            (l2, Resource::L2),
            (dram, Resource::Dram),
            (gatomic, Resource::GlobalAtomic),
            (latency, Resource::Latency),
        ];
        let (cycles, bottleneck) =
            candidates
                .iter()
                .fold((0.0f64, Resource::Issue), |(best, br), &(c, r)| {
                    if c > best {
                        (c, r)
                    } else {
                        (best, br)
                    }
                });

        TimingBreakdown {
            cycles,
            seconds: cfg.cycles_to_seconds(cycles),
            issue_cycles: issue,
            alu_cycles: alu,
            shared_cycles: shared,
            roc_cycles: roc,
            l2_cycles: l2,
            dram_cycles: dram,
            global_atomic_cycles: gatomic,
            latency_cycles: latency,
            bottleneck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;

    fn occ_full(cfg: &DeviceConfig) -> Occupancy {
        occupancy(cfg, 10_000, 1024, 24, 0)
    }

    #[test]
    fn empty_tally_is_zero_time() {
        let cfg = DeviceConfig::titan_x();
        let tb = TimingModel::new(&cfg).estimate(&AccessTally::default(), &occ_full(&cfg), 100);
        assert_eq!(tb.cycles, 0.0);
        assert_eq!(tb.seconds, 0.0);
    }

    #[test]
    fn alu_bound_kernel_reports_alu_bottleneck() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 1_000_000,
            alu_instructions: 1_000_000,
            ..Default::default()
        };
        let tb = TimingModel::new(&cfg).estimate(&t, &occ_full(&cfg), 10_000);
        // ALU and issue tie at 1e6/4/24; issue wins ties only if strictly
        // greater, so ALU-bound requires alu throughput < issue.
        assert!(tb.cycles > 0.0);
        assert!(
            (tb.utilization(Resource::Alu) - 1.0).abs() < 1e-9 || tb.bottleneck == Resource::Issue
        );
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let cfg = DeviceConfig::titan_x();
        // A load-heavy kernel at full vs. crippled occupancy.
        let t = AccessTally {
            warp_instructions: 100_000,
            global_load_instructions: 100_000,
            dram_sectors: 100_000, // poorly coalesced: 1 sector per load
            global_load_bytes: 100_000 * 4,
            ..Default::default()
        };
        let model = TimingModel::new(&cfg);
        let full = model.estimate(&t, &occ_full(&cfg), 10_000);
        let mut low = occ_full(&cfg);
        low.active_warps_per_sm = 4;
        low.occupancy = 4.0 / 64.0;
        let starved = model.estimate(&t, &low, 10_000);
        assert!(
            starved.cycles > full.cycles * 2.0,
            "starved {} vs full {}",
            starved.cycles,
            full.cycles
        );
        assert_eq!(starved.bottleneck, Resource::Latency);
    }

    #[test]
    fn dram_traffic_bounds_streaming_kernel() {
        let cfg = DeviceConfig::titan_x();
        // 1 GB of DRAM traffic and nothing else: time = bytes / BW.
        let sectors = (1u64 << 30) / 32;
        let t = AccessTally {
            warp_instructions: 1000,
            global_load_instructions: 1000,
            dram_sectors: sectors,
            ..Default::default()
        };
        let tb = TimingModel::new(&cfg).estimate(&t, &occ_full(&cfg), 10_000);
        let expected = (1u64 << 30) as f64 / cfg.thr.dram_bytes_per_cycle;
        assert!((tb.cycles - expected).abs() / expected < 1e-9);
        assert_eq!(tb.bottleneck, Resource::Dram);
        // ~3.2 ms at 336 B/cycle, 1 GHz.
        assert!(tb.seconds > 2e-3 && tb.seconds < 4e-3);
    }

    #[test]
    fn atomic_serialization_dominates_contended_kernel() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 1_000,
            global_atomics: 10_000,
            global_atomic_serial: 320_000, // 32-way contention
            ..Default::default()
        };
        let tb = TimingModel::new(&cfg).estimate(&t, &occ_full(&cfg), 10_000);
        assert_eq!(tb.bottleneck, Resource::GlobalAtomic);
    }

    #[test]
    fn utilization_capped_at_one_and_consistent() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 10_000,
            alu_instructions: 5_000,
            shared_load_instructions: 2_000,
            shared_transactions: 2_000,
            ..Default::default()
        };
        let tb = TimingModel::new(&cfg).estimate(&t, &occ_full(&cfg), 1_000);
        for r in [
            Resource::Issue,
            Resource::Alu,
            Resource::SharedMem,
            Resource::Roc,
            Resource::L2,
            Resource::Dram,
            Resource::GlobalAtomic,
        ] {
            let u = tb.utilization(r);
            assert!((0.0..=1.0).contains(&u), "{r:?} -> {u}");
        }
    }

    #[test]
    fn small_grid_concentrates_work() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 1_000_000,
            alu_instructions: 1_000_000,
            ..Default::default()
        };
        let model = TimingModel::new(&cfg);
        let o = occ_full(&cfg);
        let wide = model.estimate(&t, &o, 10_000);
        let narrow = model.estimate(&t, &o, 1); // everything on one SM
        assert!(narrow.cycles > wide.cycles * 20.0);
    }
}
