//! The simulated device: owns global memory and runs kernels.

use crate::config::DeviceConfig;
use crate::error::SimError;
use crate::exec::{engine, Kernel, KernelRun, LaunchConfig};
use crate::mem::{BufF32, BufU32, BufU64, GlobalMem};
use crate::occupancy::occupancy;
use crate::profile::KernelProfile;
use crate::tally::{AccessTally, InterpStats};
use crate::timing::TimingModel;

/// A simulated GPU.
///
/// Allocate buffers, launch kernels, read results back — the same
/// lifecycle as a CUDA context. Kernel launches are *functional*: they
/// really compute, and the returned [`KernelRun`] carries the measured
/// access tally, occupancy, simulated timing and a profiler-style report.
pub struct Device {
    cfg: DeviceConfig,
    global: GlobalMem,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        Device {
            cfg,
            global: GlobalMem::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Allocate and upload an `f32` buffer (`cudaMalloc` + `cudaMemcpy`).
    pub fn alloc_f32(&mut self, data: Vec<f32>) -> BufF32 {
        self.global.alloc_f32(data)
    }

    /// Allocate a zeroed `f32` buffer.
    pub fn alloc_f32_zeroed(&mut self, len: usize) -> BufF32 {
        self.global.alloc_f32(vec![0.0; len])
    }

    /// Allocate and upload a `u32` buffer.
    pub fn alloc_u32(&mut self, data: Vec<u32>) -> BufU32 {
        self.global.alloc_u32(data)
    }

    /// Allocate a zeroed `u32` buffer.
    pub fn alloc_u32_zeroed(&mut self, len: usize) -> BufU32 {
        self.global.alloc_u32(vec![0; len])
    }

    /// Allocate and upload a `u64` buffer.
    pub fn alloc_u64(&mut self, data: Vec<u64>) -> BufU64 {
        self.global.alloc_u64(data)
    }

    /// Allocate a zeroed `u64` buffer.
    pub fn alloc_u64_zeroed(&mut self, len: usize) -> BufU64 {
        self.global.alloc_u64(vec![0; len])
    }

    /// Read an `f32` buffer back (`cudaMemcpy` device→host).
    pub fn f32_slice(&self, b: BufF32) -> &[f32] {
        self.global.f32_slice(b)
    }

    /// Read a `u32` buffer back.
    pub fn u32_slice(&self, b: BufU32) -> &[u32] {
        self.global.u32_slice(b)
    }

    /// Read a `u64` buffer back.
    pub fn u64_slice(&self, b: BufU64) -> &[u64] {
        self.global.u64_slice(b)
    }

    /// Overwrite a `u64` buffer from the host (e.g. to zero an output
    /// between runs).
    pub fn write_u64(&mut self, b: BufU64, data: &[u64]) {
        self.global.u64_slice_mut(b).copy_from_slice(data);
    }

    /// Overwrite a `u32` buffer from the host.
    pub fn write_u32(&mut self, b: BufU32, data: &[u32]) {
        self.global.u32_slice_mut(b).copy_from_slice(data);
    }

    /// Total bytes currently allocated in global memory.
    pub fn allocated_bytes(&self) -> u64 {
        self.global.allocated_bytes()
    }

    /// Launch a kernel, propagating simulated faults as errors.
    ///
    /// The engine runs blocks under the configured
    /// [`crate::config::ExecMode`]: sequentially, or sharded across a
    /// host-thread worker pool with a deterministic in-order commit
    /// (see [`crate::exec::engine`](crate::exec) internals). Either way
    /// there is one cold, device-wide L2 per launch, each block gets
    /// fresh shared memory and read-only-cache state, and outputs,
    /// tallies and first-fault reporting are identical across modes.
    ///
    /// A `grid_dim == 0` launch is a valid no-op: it executes nothing,
    /// touches no memory, and reports an empty tally.
    pub fn try_launch<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        lc: LaunchConfig,
    ) -> Result<KernelRun, SimError> {
        lc.validate(&self.cfg)?;
        let res = kernel.resources();
        if res.regs_per_thread > self.cfg.max_registers_per_thread {
            return Err(SimError::TooManyRegisters {
                requested: res.regs_per_thread,
                limit: self.cfg.max_registers_per_thread,
            });
        }
        if res.shared_mem_bytes > self.cfg.shared_mem_per_block {
            return Err(SimError::SharedMemOverflow {
                requested: res.shared_mem_bytes as u64,
                limit: self.cfg.shared_mem_per_block as u64,
            });
        }

        let occ = occupancy(
            &self.cfg,
            lc.grid_dim,
            lc.block_dim,
            res.regs_per_thread,
            res.shared_mem_bytes,
        );

        let (total, interp) = engine::run_grid(&mut self.global, &self.cfg, kernel, lc, res)?;

        let timing = TimingModel::new(&self.cfg).estimate(&total, &occ, lc.grid_dim);
        let profile = KernelProfile::build(kernel.name(), &self.cfg, &total, &occ, &timing);
        Ok(KernelRun {
            kernel: kernel.name().to_string(),
            launch: lc,
            tally: total,
            occupancy: occ,
            timing,
            profile,
            interp,
        })
    }

    /// Launch a kernel, panicking on simulated faults (out-of-bounds
    /// accesses, invalid launches). Use [`Device::try_launch`] to handle
    /// faults as values.
    pub fn launch<K: Kernel + ?Sized>(&mut self, kernel: &K, lc: LaunchConfig) -> KernelRun {
        match self.try_launch(kernel, lc) {
            Ok(run) => run,
            Err(e) => panic!("kernel '{}' faulted: {e}", kernel.name()),
        }
    }

    /// Run only the timing model against an externally-produced tally
    /// (e.g. the closed-form access profiles of `tbs-core::analytic`),
    /// using this device's configuration. This is how paper-scale sweeps
    /// (N up to 2×10⁶) are timed without executing O(N²) lane operations.
    pub fn estimate(
        &self,
        kernel_name: &str,
        tally: &AccessTally,
        lc: LaunchConfig,
        regs_per_thread: u32,
        shared_mem_bytes: u32,
    ) -> KernelRun {
        let occ = occupancy(
            &self.cfg,
            lc.grid_dim,
            lc.block_dim,
            regs_per_thread,
            shared_mem_bytes,
        );
        let timing = TimingModel::new(&self.cfg).estimate(tally, &occ, lc.grid_dim);
        let profile = KernelProfile::build(kernel_name, &self.cfg, tally, &occ, &timing);
        KernelRun {
            kernel: kernel_name.to_string(),
            launch: lc,
            tally: tally.clone(),
            occupancy: occ,
            timing,
            profile,
            interp: InterpStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BlockCtx, KernelResources, Mask};

    struct FillKernel {
        out: BufF32,
        n: u32,
        value: f32,
    }
    impl Kernel for FillKernel {
        fn name(&self) -> &'static str {
            "fill"
        }
        fn resources(&self) -> KernelResources {
            KernelResources::new(8, 0)
        }
        fn run_block(&self, blk: &mut BlockCtx<'_>) {
            let (value, out, n) = (self.value, self.out, self.n);
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let m = w.mask_lt(&gid, n);
                w.global_store_f32(out, &gid, &[value; 32], m);
            });
        }
    }

    #[test]
    fn launch_runs_all_blocks_and_reports() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let out = dev.alloc_f32_zeroed(1000);
        let k = FillKernel {
            out,
            n: 1000,
            value: 3.5,
        };
        let run = dev.launch(&k, LaunchConfig::for_n_threads(1000, 128));
        assert!(dev.f32_slice(out).iter().all(|&x| x == 3.5));
        assert_eq!(run.tally.blocks_executed, 8);
        assert_eq!(run.tally.warps_executed, 32);
        assert!(run.timing.seconds > 0.0);
        assert!(run.occupancy.occupancy > 0.0);
    }

    #[test]
    fn undeclared_shared_allocation_is_rejected() {
        struct Greedy;
        impl Kernel for Greedy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn resources(&self) -> KernelResources {
                KernelResources::new(8, 16) // declares 16 B
            }
            fn run_block(&self, blk: &mut BlockCtx<'_>) {
                blk.shared_alloc_f32(1024); // allocates 4 KB
            }
        }
        let mut dev = Device::new(DeviceConfig::titan_x());
        let err = dev
            .try_launch(&Greedy, LaunchConfig::new(1, 32))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch { .. }));
    }

    #[test]
    fn register_over_declaration_is_rejected() {
        struct Hungry;
        impl Kernel for Hungry {
            fn name(&self) -> &'static str {
                "hungry"
            }
            fn resources(&self) -> KernelResources {
                KernelResources::new(10_000, 0)
            }
            fn run_block(&self, _blk: &mut BlockCtx<'_>) {}
        }
        let mut dev = Device::new(DeviceConfig::titan_x());
        let err = dev
            .try_launch(&Hungry, LaunchConfig::new(1, 32))
            .unwrap_err();
        assert!(matches!(err, SimError::TooManyRegisters { .. }));
    }

    #[test]
    fn estimate_times_external_tallies() {
        let dev = Device::new(DeviceConfig::titan_x());
        let t = AccessTally {
            warp_instructions: 1_000_000,
            alu_instructions: 800_000,
            ..Default::default()
        };
        let run = dev.estimate("analytic", &t, LaunchConfig::new(1000, 1024), 32, 0);
        assert!(run.timing.seconds > 0.0);
        assert_eq!(run.kernel, "analytic");
    }

    /// A kernel exercising every replay path: L2-visible loads, stores,
    /// u64 atomics, and a ROC load, with cross-block L2 reuse.
    struct MixedKernel {
        input: BufF32,
        out: BufF32,
        hist: BufU64,
        n: u32,
    }
    impl Kernel for MixedKernel {
        fn name(&self) -> &'static str {
            "mixed"
        }
        fn resources(&self) -> KernelResources {
            KernelResources::new(16, 0)
        }
        fn run_block(&self, blk: &mut BlockCtx<'_>) {
            let (input, out, hist, n) = (self.input, self.out, self.hist, self.n);
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let m = w.mask_lt(&gid, n);
                let x = w.global_load_f32(input, &gid, m);
                // Every block also re-reads the head of the buffer: the
                // resulting L2 hit pattern depends on cross-block order.
                let r = w.roc_load_f32(input, &w.lane_ids(), m);
                let y = w.add_f32x(&x, &r, m);
                w.global_store_f32(out, &gid, &y, m);
                let bucket = w.mod_u32(&gid, 7, m);
                w.global_atomic_add_u64(hist, &bucket, &[1; 32], m);
            });
        }
    }

    fn run_mixed(mode: crate::config::ExecMode) -> (Vec<f32>, Vec<u64>, AccessTally) {
        let n = 4096u32;
        let mut dev = Device::new(DeviceConfig::titan_x().with_exec_mode(mode));
        let input = dev.alloc_f32((0..n).map(|i| (i as f32).sin()).collect());
        let out = dev.alloc_f32_zeroed(n as usize);
        let hist = dev.alloc_u64_zeroed(7);
        let k = MixedKernel {
            input,
            out,
            hist,
            n,
        };
        let run = dev.launch(&k, LaunchConfig::for_n_threads(n, 128));
        (
            dev.f32_slice(out).to_vec(),
            dev.u64_slice(hist).to_vec(),
            run.tally,
        )
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        use crate::config::ExecMode;
        let (seq_out, seq_hist, seq_tally) = run_mixed(ExecMode::Sequential);
        for threads in [2, 3, 5] {
            let (out, hist, tally) = run_mixed(ExecMode::Parallel { threads });
            let same_bits = out
                .iter()
                .zip(&seq_out)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "outputs differ with {threads} threads");
            assert_eq!(hist, seq_hist, "histogram differs with {threads} threads");
            assert_eq!(tally, seq_tally, "tally differs with {threads} threads");
        }
    }

    #[test]
    fn parallel_engine_reports_first_fault_in_block_order() {
        use crate::config::ExecMode;
        // Block 5 reads out of bounds; earlier blocks' stores must land,
        // later blocks must not change the error.
        struct FaultyKernel {
            buf: BufF32,
            out: BufF32,
        }
        impl Kernel for FaultyKernel {
            fn name(&self) -> &'static str {
                "faulty"
            }
            fn resources(&self) -> KernelResources {
                KernelResources::new(8, 0)
            }
            fn run_block(&self, blk: &mut BlockCtx<'_>) {
                let (buf, out) = (self.buf, self.out);
                let b = blk.block_id;
                blk.for_each_warp(|w| {
                    let idx = if b == 5 { [1_000_000u32; 32] } else { [b; 32] };
                    w.global_load_f32(buf, &idx, Mask::FULL);
                    w.global_store_f32(out, &[b; 32], &[b as f32; 32], Mask::FULL);
                });
            }
        }
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 4 }] {
            let mut dev = Device::new(DeviceConfig::titan_x().with_exec_mode(mode));
            let buf = dev.alloc_f32(vec![0.0; 64]);
            let out = dev.alloc_f32_zeroed(64);
            let err = dev.try_launch(&FaultyKernel { buf, out }, LaunchConfig::new(12, 32));
            assert!(matches!(err, Err(SimError::OutOfBounds { .. })), "{mode:?}");
            let data = dev.f32_slice(out);
            // Blocks 0..5 committed before the fault; block 5+ did not.
            #[allow(clippy::needless_range_loop)]
            for b in 0..5 {
                assert_eq!(data[b], b as f32, "{mode:?}");
            }
            #[allow(clippy::needless_range_loop)]
            for b in 5..12 {
                assert_eq!(data[b], 0.0, "{mode:?}");
            }
        }
    }

    #[test]
    fn empty_grid_launch_is_a_noop() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let out = dev.alloc_f32_zeroed(4);
        let k = FillKernel {
            out,
            n: 0,
            value: 9.0,
        };
        let run = dev.launch(&k, LaunchConfig::new(0, 128));
        assert!(dev.f32_slice(out).iter().all(|&x| x == 0.0));
        assert_eq!(run.tally.blocks_executed, 0);
        assert_eq!(run.tally.warp_instructions, 0);
        assert_eq!(run.timing.cycles, 0.0);
    }

    #[test]
    fn atomic_add_is_deterministic_across_blocks() {
        struct CountKernel {
            out: BufU64,
        }
        impl Kernel for CountKernel {
            fn name(&self) -> &'static str {
                "count"
            }
            fn resources(&self) -> KernelResources {
                KernelResources::new(8, 0)
            }
            fn run_block(&self, blk: &mut BlockCtx<'_>) {
                let out = self.out;
                blk.for_each_warp(|w| {
                    w.global_atomic_add_u64(out, &[0; 32], &[1; 32], Mask::FULL);
                });
            }
        }
        let mut dev = Device::new(DeviceConfig::titan_x());
        let out = dev.alloc_u64_zeroed(1);
        let k = CountKernel { out };
        dev.launch(&k, LaunchConfig::new(10, 256));
        assert_eq!(dev.u64_slice(out)[0], 10 * 256);
    }
}
