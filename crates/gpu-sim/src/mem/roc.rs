//! The read-only data cache (ROC) path.
//!
//! In CUDA this is the cache reached through `const __restrict__`
//! pointers or `__ldg()` (paper §IV-A: "read-only data cache, also named
//! texture memory... not fully programmable"). It is a small per-SM cache
//! in front of L2 with its own (higher-than-shared) latency.
//!
//! The simulator gives each *block* its own `RocCache` instance. That is a
//! conservative approximation of per-SM sharing: blocks scheduled on the
//! same SM would share it, so our miss counts are an upper bound — the
//! differences are compulsory misses only, which both the analytic model
//! and the functional engine count identically.
//!
//! Like [`super::l2::L2Cache`], the default body is the open-addressed
//! [`FifoSet`]; the legacy map+deque is retained as the scalar reference.

use std::collections::{HashMap, VecDeque};

use super::fifo::FifoSet;

#[derive(Debug)]
enum Body {
    Fast(FifoSet),
    Reference {
        resident: HashMap<u64, ()>,
        fifo: VecDeque<u64>,
        capacity_sectors: usize,
    },
}

/// A sector observed resident at `generation` — replayable as a hit
/// while the eviction generation is unchanged (see `mem/fifo.rs`).
#[derive(Debug, Clone, Copy)]
struct SectorMemo {
    sector: u64,
    generation: u64,
}

/// Direct-mapped memo size. Tile loops walk sectors slowly (8 `f32`
/// elements per 32-byte sector), so even a few slots catch the re-reads.
const MEMO_SLOTS: usize = 8;

/// FIFO sector cache modeling one SM's read-only data cache.
#[derive(Debug)]
pub struct RocCache {
    body: Body,
    hits: u64,
    misses: u64,
    /// Generation-stamped hit memoization (None = disabled).
    memo: Option<Box<[Option<SectorMemo>; MEMO_SLOTS]>>,
    /// Hits replayed from the memo without a table probe.
    memo_replayed: u64,
    /// Accesses that took a real table probe while the memo was enabled.
    memo_probed: u64,
}

impl RocCache {
    pub fn new(capacity_sectors: usize) -> Self {
        RocCache {
            body: Body::Fast(FifoSet::new(capacity_sectors)),
            hits: 0,
            misses: 0,
            memo: None,
            memo_replayed: 0,
            memo_probed: 0,
        }
    }

    /// Like [`RocCache::new`] with generation-stamped hit memoization:
    /// a sector whose residency was observed at the current eviction
    /// generation replays as a hit through [`RocCache::try_replay_hit`]
    /// without probing the FIFO table. Hit/miss decisions and counters
    /// are identical to the unmemoized cache (a FIFO hit mutates
    /// nothing, and residency within one generation is monotone).
    pub fn new_memoized(capacity_sectors: usize) -> Self {
        let mut c = Self::new(capacity_sectors);
        c.memo = Some(Box::new([None; MEMO_SLOTS]));
        c
    }

    /// Legacy map+deque body with identical hit/miss decisions; see
    /// `DeviceConfig::with_scalar_reference`.
    pub fn new_reference(capacity_sectors: usize) -> Self {
        RocCache {
            body: Body::Reference {
                resident: HashMap::new(),
                fifo: VecDeque::new(),
                capacity_sectors: capacity_sectors.max(1),
            },
            hits: 0,
            misses: 0,
            memo: None,
            memo_replayed: 0,
            memo_probed: 0,
        }
    }

    /// Replay `sector` as a hit if the memo proves it resident at the
    /// current eviction generation; returns `false` (taking no action)
    /// when the caller must fall back to a real [`RocCache::access`].
    /// Only a hit can be replayed, and a FIFO hit mutates nothing but
    /// the hit counter, so the replay is bit-exact.
    #[inline]
    pub fn try_replay_hit(&mut self, sector: u64) -> bool {
        let (Some(memo), Body::Fast(set)) = (self.memo.as_deref(), &self.body) else {
            return false;
        };
        match memo[sector as usize % MEMO_SLOTS] {
            Some(m) if m.sector == sector && m.generation == set.generation() => {
                self.hits += 1;
                self.memo_replayed += 1;
                true
            }
            _ => false,
        }
    }

    /// Access one sector; `true` on hit, inserting on miss.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        match &mut self.body {
            Body::Fast(set) => {
                let hit = if set.contains(sector) {
                    self.hits += 1;
                    true
                } else {
                    self.misses += 1;
                    if set.is_full() {
                        set.pop_oldest();
                    }
                    set.insert_new(sector);
                    false
                };
                // Either way the sector is resident *now*, at the
                // post-access generation — record that observation.
                if let Some(memo) = self.memo.as_deref_mut() {
                    self.memo_probed += 1;
                    memo[sector as usize % MEMO_SLOTS] = Some(SectorMemo {
                        sector,
                        generation: set.generation(),
                    });
                }
                hit
            }
            Body::Reference {
                resident,
                fifo,
                capacity_sectors,
            } => {
                if resident.contains_key(&sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if resident.len() >= *capacity_sectors {
                    while let Some(old) = fifo.pop_front() {
                        if resident.remove(&old).is_some() {
                            break;
                        }
                    }
                }
                resident.insert(sector, ());
                fifo.push_back(sector);
                false
            }
        }
    }

    /// The eviction generation of the fast body (see
    /// [`FifoSet::generation`]): `None` for the reference body. While the
    /// generation is unchanged, residency is monotone — a sector observed
    /// resident stays resident — which is what lets the fused tile pass
    /// replay whole arithmetic sector runs as hits.
    pub fn generation(&self) -> Option<u64> {
        match &self.body {
            Body::Fast(set) => Some(set.generation()),
            Body::Reference { .. } => None,
        }
    }

    /// Credit `n` further touches of sectors proven resident at the
    /// current eviction generation — the bulk form of
    /// [`RocCache::try_replay_hit`] for an arithmetic sector run. A FIFO
    /// hit mutates nothing but the hit counter, so crediting the hits
    /// without per-sector probes is bit-exact for every future decision.
    pub fn credit_replayed_hits(&mut self, n: u64) {
        self.hits += n;
        self.memo_replayed += n;
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits replayed from the generation-stamped memo.
    pub fn memo_replayed(&self) -> u64 {
        self.memo_replayed
    }

    /// Real table probes taken while the memo was enabled.
    pub fn memo_probed(&self) -> u64 {
        self.memo_probed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_fits_and_is_reused() {
        // A 1024-element f32 tile = 4 KB = 128 sectors, well within the
        // 24 KB (768-sector) Maxwell ROC: after the fill, every re-access
        // hits. This is exactly the reuse pattern of the Register-ROC
        // kernel's R tile.
        let mut roc = RocCache::new(768);
        for s in 0..128u64 {
            assert!(!roc.access(s));
        }
        for _round in 0..10 {
            for s in 0..128u64 {
                assert!(roc.access(s));
            }
        }
        assert_eq!(roc.misses(), 128);
        assert_eq!(roc.hits(), 1280);
    }

    #[test]
    fn capacity_overflow_evicts() {
        let mut roc = RocCache::new(4);
        for s in 0..5u64 {
            roc.access(s);
        }
        assert!(!roc.access(0), "oldest sector evicted");
    }

    #[test]
    fn memoized_replay_matches_plain_access_stream() {
        // Drive a memoized cache (try_replay first, as the interpreter
        // does) and a plain one through the same stream: hit/miss totals
        // must agree, and the broadcast reuse pattern must mostly replay.
        // The stream walks f32 *elements* the way a broadcast tile loop
        // does — 8 consecutive touches of each 32-byte sector.
        let mut memo = RocCache::new_memoized(768);
        let mut plain = RocCache::new(768);
        let drive = |c: &mut RocCache, s: u64| -> bool {
            if c.try_replay_hit(s) {
                true
            } else {
                c.access(s)
            }
        };
        for _round in 0..4 {
            for e in 0..1024u64 {
                let s = e / 8;
                assert_eq!(drive(&mut memo, s), drive(&mut plain, s));
            }
        }
        assert_eq!(memo.hits(), plain.hits());
        assert_eq!(memo.misses(), plain.misses());
        assert!(memo.memo_replayed() > 0, "steady-state reuse must replay");
    }

    #[test]
    fn memoized_replay_never_outlives_eviction() {
        // Capacity 4 with a 6-sector loop: constant eviction. The memo
        // must invalidate on every generation bump; decisions stay
        // identical to the unmemoized cache.
        let mut memo = RocCache::new_memoized(4);
        let mut plain = RocCache::new(4);
        let mut x = 0x77u64;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let s = x % 6;
            let m = if memo.try_replay_hit(s) {
                true
            } else {
                memo.access(s)
            };
            assert_eq!(m, plain.access(s), "sector {s}");
        }
        assert_eq!(memo.hits(), plain.hits());
        assert_eq!(memo.misses(), plain.misses());
    }

    #[test]
    fn bulk_credit_matches_per_sector_replay() {
        // The fused tile pass probes a sector run's first round for real,
        // then — if the eviction generation is unchanged — credits the
        // remaining rounds in bulk. Drive both protocols over the same
        // element stream and require identical hit/miss totals.
        let mut bulk = RocCache::new_memoized(768);
        let mut per = RocCache::new_memoized(768);
        for _round in 0..4 {
            let mut e = 0u64;
            while e < 1024 {
                let s = e / 8;
                let run = (8 - e % 8).min(1024 - e);
                // Per-sector protocol: every element touch probes.
                for _ in 0..run {
                    if !per.try_replay_hit(s) {
                        per.access(s);
                    }
                }
                // Bulk protocol: one real probe, then a generation check.
                let gen0 = bulk.generation();
                if !bulk.try_replay_hit(s) {
                    bulk.access(s);
                }
                assert_eq!(bulk.generation(), gen0, "no eviction at this size");
                bulk.credit_replayed_hits(run - 1);
                e += run;
            }
        }
        assert_eq!(bulk.hits(), per.hits());
        assert_eq!(bulk.misses(), per.misses());
        assert!(bulk.memo_replayed() > 0);
    }

    #[test]
    fn fast_and_reference_bodies_agree() {
        let mut fast = RocCache::new(8);
        let mut refr = RocCache::new_reference(8);
        let mut x = 0xdeadu64;
        for _ in 0..3_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let sector = x % 24;
            assert_eq!(fast.access(sector), refr.access(sector));
        }
        assert_eq!(fast.hits(), refr.hits());
        assert_eq!(fast.misses(), refr.misses());
    }
}
