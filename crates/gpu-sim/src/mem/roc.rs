//! The read-only data cache (ROC) path.
//!
//! In CUDA this is the cache reached through `const __restrict__`
//! pointers or `__ldg()` (paper §IV-A: "read-only data cache, also named
//! texture memory... not fully programmable"). It is a small per-SM cache
//! in front of L2 with its own (higher-than-shared) latency.
//!
//! The simulator gives each *block* its own `RocCache` instance. That is a
//! conservative approximation of per-SM sharing: blocks scheduled on the
//! same SM would share it, so our miss counts are an upper bound — the
//! differences are compulsory misses only, which both the analytic model
//! and the functional engine count identically.
//!
//! Like [`super::l2::L2Cache`], the default body is the open-addressed
//! [`FifoSet`]; the legacy map+deque is retained as the scalar reference.

use std::collections::{HashMap, VecDeque};

use super::fifo::FifoSet;

#[derive(Debug)]
enum Body {
    Fast(FifoSet),
    Reference {
        resident: HashMap<u64, ()>,
        fifo: VecDeque<u64>,
        capacity_sectors: usize,
    },
}

/// FIFO sector cache modeling one SM's read-only data cache.
#[derive(Debug)]
pub struct RocCache {
    body: Body,
    hits: u64,
    misses: u64,
}

impl RocCache {
    pub fn new(capacity_sectors: usize) -> Self {
        RocCache {
            body: Body::Fast(FifoSet::new(capacity_sectors)),
            hits: 0,
            misses: 0,
        }
    }

    /// Legacy map+deque body with identical hit/miss decisions; see
    /// `DeviceConfig::with_scalar_reference`.
    pub fn new_reference(capacity_sectors: usize) -> Self {
        RocCache {
            body: Body::Reference {
                resident: HashMap::new(),
                fifo: VecDeque::new(),
                capacity_sectors: capacity_sectors.max(1),
            },
            hits: 0,
            misses: 0,
        }
    }

    /// Access one sector; `true` on hit, inserting on miss.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        match &mut self.body {
            Body::Fast(set) => {
                if set.contains(sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if set.is_full() {
                    set.pop_oldest();
                }
                set.insert_new(sector);
                false
            }
            Body::Reference {
                resident,
                fifo,
                capacity_sectors,
            } => {
                if resident.contains_key(&sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if resident.len() >= *capacity_sectors {
                    while let Some(old) = fifo.pop_front() {
                        if resident.remove(&old).is_some() {
                            break;
                        }
                    }
                }
                resident.insert(sector, ());
                fifo.push_back(sector);
                false
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_fits_and_is_reused() {
        // A 1024-element f32 tile = 4 KB = 128 sectors, well within the
        // 24 KB (768-sector) Maxwell ROC: after the fill, every re-access
        // hits. This is exactly the reuse pattern of the Register-ROC
        // kernel's R tile.
        let mut roc = RocCache::new(768);
        for s in 0..128u64 {
            assert!(!roc.access(s));
        }
        for _round in 0..10 {
            for s in 0..128u64 {
                assert!(roc.access(s));
            }
        }
        assert_eq!(roc.misses(), 128);
        assert_eq!(roc.hits(), 1280);
    }

    #[test]
    fn capacity_overflow_evicts() {
        let mut roc = RocCache::new(4);
        for s in 0..5u64 {
            roc.access(s);
        }
        assert!(!roc.access(0), "oldest sector evicted");
    }

    #[test]
    fn fast_and_reference_bodies_agree() {
        let mut fast = RocCache::new(8);
        let mut refr = RocCache::new_reference(8);
        let mut x = 0xdeadu64;
        for _ in 0..3_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let sector = x % 24;
            assert_eq!(fast.access(sector), refr.access(sector));
        }
        assert_eq!(fast.hits(), refr.hits());
        assert_eq!(fast.misses(), refr.misses());
    }
}
