//! Open-addressed FIFO set: the allocation-free engine behind the
//! sector caches.
//!
//! [`FifoSet`] stores up to `capacity` distinct `u64` keys and can
//! report membership, append at the tail, and evict the oldest key —
//! exactly the operations a fully-associative FIFO cache needs. The
//! membership test is an open-addressed table (linear probing,
//! Fibonacci hashing) and arrival order is a fixed-size ring buffer, so
//! a steady-state access performs no heap allocation and touches two
//! small flat arrays instead of a `HashMap` plus `VecDeque`.
//!
//! Hit/miss decisions are a function of the key sequence alone and are
//! identical to the map+deque implementation they replace; the
//! differential proptests in `tests/differential.rs` pin that down.

/// Sentinel for an empty table slot. Sector keys are byte addresses
/// divided by the sector size, so `u64::MAX` is unreachable in practice;
/// inserts debug-assert it anyway.
const EMPTY: u64 = u64::MAX;

/// A set of `u64` keys with FIFO arrival order and O(1) expected-time
/// membership, insert, and evict-oldest.
#[derive(Debug)]
pub struct FifoSet {
    /// Open-addressed slots holding keys (or [`EMPTY`]); power-of-two
    /// length ≥ 2× capacity so load factor stays ≤ 0.5.
    table: Vec<u64>,
    /// `table.len() - 1`, for masking hashes into slot indices.
    slot_mask: usize,
    /// Arrival-order ring of the resident keys.
    ring: Vec<u64>,
    /// Index of the oldest key in `ring`.
    head: usize,
    /// Number of resident keys.
    len: usize,
    /// Eviction generation: bumped every time a key leaves the set.
    /// Residency is monotone within one generation (inserts only add
    /// keys), which is the invariant the sector-run memoization in
    /// `L2Cache`/`RocCache` relies on: a key observed resident at
    /// generation `g` is still resident while `generation() == g`.
    generation: u64,
}

impl FifoSet {
    /// Create a set holding at most `capacity` keys (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (capacity * 2).next_power_of_two();
        FifoSet {
            table: vec![EMPTY; slots],
            slot_mask: slots - 1,
            ring: vec![0; capacity],
            head: 0,
            len: 0,
            generation: 0,
        }
    }

    /// Current eviction generation. Advances exactly when a key is
    /// evicted ([`FifoSet::pop_oldest`]), never on hits or inserts.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2^64/phi and keep the top bits,
        // which a power-of-two mask selects after the shift.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.slot_mask
    }

    /// Number of resident keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the set is at capacity and the next insert must evict.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.ring.len()
    }

    /// Is `key` resident?
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let mut slot = self.home_slot(key);
        loop {
            let k = self.table[slot];
            if k == key {
                return true;
            }
            if k == EMPTY {
                return false;
            }
            slot = (slot + 1) & self.slot_mask;
        }
    }

    /// Insert a key known to be absent. Panics (debug) on duplicates and
    /// refuses to exceed capacity — callers evict first.
    #[inline]
    pub fn insert_new(&mut self, key: u64) {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty-slot sentinel");
        debug_assert!(!self.contains(key), "insert_new on resident key");
        assert!(self.len < self.ring.len(), "FifoSet over capacity");
        let mut slot = self.home_slot(key);
        while self.table[slot] != EMPTY {
            slot = (slot + 1) & self.slot_mask;
        }
        self.table[slot] = key;
        let tail = (self.head + self.len) % self.ring.len();
        self.ring[tail] = key;
        self.len += 1;
    }

    /// Remove and return the oldest resident key.
    pub fn pop_oldest(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let key = self.ring[self.head];
        self.head = (self.head + 1) % self.ring.len();
        self.len -= 1;
        self.generation += 1;
        self.remove_from_table(key);
        Some(key)
    }

    /// Delete `key` from the probe table with backward-shift deletion,
    /// so later probes never cross a spurious hole.
    fn remove_from_table(&mut self, key: u64) {
        let mut slot = self.home_slot(key);
        while self.table[slot] != key {
            debug_assert_ne!(self.table[slot], EMPTY, "key must be resident");
            slot = (slot + 1) & self.slot_mask;
        }
        // Backward-shift: walk the cluster after `slot`; any entry whose
        // home slot is outside the (hole, entry] probe span moves into
        // the hole, re-opening the hole at its old position.
        let mut hole = slot;
        let mut probe = (slot + 1) & self.slot_mask;
        loop {
            let k = self.table[probe];
            if k == EMPTY {
                break;
            }
            let home = self.home_slot(k);
            // Does `k`'s probe path from `home` reach `hole` before
            // `probe`? (Cyclic interval test.)
            let dist_home_to_hole = hole.wrapping_sub(home) & self.slot_mask;
            let dist_home_to_probe = probe.wrapping_sub(home) & self.slot_mask;
            if dist_home_to_hole <= dist_home_to_probe {
                self.table[hole] = k;
                hole = probe;
            }
            probe = (probe + 1) & self.slot_mask;
        }
        self.table[hole] = EMPTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_evict_cycle() {
        let mut s = FifoSet::new(3);
        for k in [10u64, 20, 30] {
            assert!(!s.contains(k));
            s.insert_new(k);
            assert!(s.contains(k));
        }
        assert!(s.is_full());
        assert_eq!(s.pop_oldest(), Some(10));
        assert!(!s.contains(10));
        s.insert_new(40);
        assert_eq!(s.pop_oldest(), Some(20));
        assert_eq!(s.pop_oldest(), Some(30));
        assert_eq!(s.pop_oldest(), Some(40));
        assert_eq!(s.pop_oldest(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn matches_naive_fifo_under_adversarial_stream() {
        use std::collections::{HashMap, VecDeque};
        // Keys chosen from a small universe force heavy probe clustering
        // and constant eviction; compare against the obvious model.
        let capacity = 16;
        let mut fast = FifoSet::new(capacity);
        let mut resident: HashMap<u64, ()> = HashMap::new();
        let mut fifo: VecDeque<u64> = VecDeque::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            // xorshift keystream over a universe of 48 keys.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 48;
            let naive_hit = resident.contains_key(&key);
            if !naive_hit {
                if fifo.len() == capacity {
                    let victim = fifo.pop_front().unwrap();
                    resident.remove(&victim);
                }
                resident.insert(key, ());
                fifo.push_back(key);
            }
            let fast_hit = fast.contains(key);
            if !fast_hit {
                if fast.is_full() {
                    fast.pop_oldest();
                }
                fast.insert_new(key);
            }
            assert_eq!(fast_hit, naive_hit, "key {key}");
            assert_eq!(fast.len(), fifo.len());
        }
    }

    #[test]
    fn generation_advances_only_on_eviction() {
        let mut s = FifoSet::new(2);
        assert_eq!(s.generation(), 0);
        s.insert_new(1);
        s.insert_new(2);
        assert!(s.contains(1));
        assert_eq!(s.generation(), 0, "hits and inserts must not bump");
        s.pop_oldest();
        assert_eq!(s.generation(), 1);
        s.insert_new(3);
        assert_eq!(s.generation(), 1);
        s.pop_oldest();
        s.pop_oldest();
        assert_eq!(s.generation(), 3);
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let mut s = FifoSet::new(1);
        s.insert_new(5);
        assert!(s.contains(5));
        assert_eq!(s.pop_oldest(), Some(5));
        s.insert_new(6);
        assert!(s.contains(6) && !s.contains(5));
    }
}
