//! Per-block programmable shared memory with 32-bank conflict modeling.
//!
//! Shared memory is the fastest programmable store on the SM (paper
//! §IV-A: 28-cycle latency, ≈ 3 TB/s aggregate bandwidth) and the home of
//! the paper's output-privatization technique. Conflicts follow the
//! hardware rule: lanes of a warp accessing *different 4-byte words in
//! the same bank* serialize; lanes reading the *same* word broadcast.

use crate::error::SimError;
use crate::WARP_SIZE;

/// Handle to an `f32` shared-memory array within one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmF32(pub(crate) usize);

/// Handle to a `u32` shared-memory array within one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmU32(pub(crate) usize);

/// Handle to a `u64` shared-memory array within one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmU64(pub(crate) usize);

#[derive(Debug)]
enum ShmStorage {
    F32(Vec<f32>),
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl ShmStorage {
    fn words_per_elem(&self) -> u64 {
        match self {
            ShmStorage::F32(_) | ShmStorage::U32(_) => 1,
            ShmStorage::U64(_) => 2,
        }
    }

    fn len(&self) -> usize {
        match self {
            ShmStorage::F32(v) => v.len(),
            ShmStorage::U32(v) => v.len(),
            ShmStorage::U64(v) => v.len(),
        }
    }
}

/// Reusable occupancy counters for [`SharedSpace::scatter_account`].
/// All counters are zero between calls (reset via the touched list).
#[derive(Debug, Default)]
pub struct ScatterScratch {
    /// Occurrence count per word offset, grown lazily to the largest
    /// offset seen.
    cnt: Vec<u8>,
    /// Distinct-word count per bank.
    bank_distinct: [u8; WARP_SIZE],
    /// `(word offset, bank)` of each distinct word of the current call.
    touched: Vec<(u32, u8)>,
}

/// One block's shared-memory allocations.
#[derive(Debug, Default)]
pub struct SharedSpace {
    arrays: Vec<ShmStorage>,
    /// Base offset of each array in 4-byte words (determines banks).
    base_words: Vec<u64>,
    next_word: u64,
    banks: u32,
    /// Route conflict counting through the legacy nested-scan
    /// implementation (differential testing / before-after measurement).
    scalar_reference: bool,
}

impl SharedSpace {
    pub fn new(banks: u32) -> Self {
        SharedSpace {
            arrays: Vec::new(),
            base_words: Vec::new(),
            next_word: 0,
            banks: banks.max(1),
            scalar_reference: false,
        }
    }

    /// Toggle the legacy conflict-counting path; the counts are
    /// identical either way (see `DeviceConfig::with_scalar_reference`).
    pub fn set_scalar_reference(&mut self, on: bool) {
        self.scalar_reference = on;
    }

    fn push(&mut self, s: ShmStorage) -> usize {
        let id = self.arrays.len();
        self.base_words.push(self.next_word);
        self.next_word += s.words_per_elem() * s.len() as u64;
        self.arrays.push(s);
        id
    }

    /// Allocate a zero-initialized `f32` array ("`__shared__ float[]`").
    pub fn alloc_f32(&mut self, len: usize) -> ShmF32 {
        ShmF32(self.push(ShmStorage::F32(vec![0.0; len])))
    }

    /// Allocate a zero-initialized `u32` array.
    pub fn alloc_u32(&mut self, len: usize) -> ShmU32 {
        ShmU32(self.push(ShmStorage::U32(vec![0; len])))
    }

    /// Allocate a zero-initialized `u64` array.
    pub fn alloc_u64(&mut self, len: usize) -> ShmU64 {
        ShmU64(self.push(ShmStorage::U64(vec![0; len])))
    }

    /// Bytes allocated so far (for occupancy accounting / limit checks).
    pub fn allocated_bytes(&self) -> u64 {
        self.next_word * 4
    }

    pub fn f32s(&self, h: ShmF32) -> &[f32] {
        match &self.arrays[h.0] {
            ShmStorage::F32(v) => v,
            _ => unreachable!("handle type guarantees f32 storage"),
        }
    }

    pub fn f32s_mut(&mut self, h: ShmF32) -> &mut [f32] {
        match &mut self.arrays[h.0] {
            ShmStorage::F32(v) => v,
            _ => unreachable!("handle type guarantees f32 storage"),
        }
    }

    pub fn u32s(&self, h: ShmU32) -> &[u32] {
        match &self.arrays[h.0] {
            ShmStorage::U32(v) => v,
            _ => unreachable!("handle type guarantees u32 storage"),
        }
    }

    pub fn u32s_mut(&mut self, h: ShmU32) -> &mut [u32] {
        match &mut self.arrays[h.0] {
            ShmStorage::U32(v) => v,
            _ => unreachable!("handle type guarantees u32 storage"),
        }
    }

    pub fn u64s(&self, h: ShmU64) -> &[u64] {
        match &self.arrays[h.0] {
            ShmStorage::U64(v) => v,
            _ => unreachable!("handle type guarantees u64 storage"),
        }
    }

    pub fn u64s_mut(&mut self, h: ShmU64) -> &mut [u64] {
        match &mut self.arrays[h.0] {
            ShmStorage::U64(v) => v,
            _ => unreachable!("handle type guarantees u64 storage"),
        }
    }

    pub(crate) fn check_bounds(&self, array: usize, idx: u32, what: &str) -> Result<(), SimError> {
        let len = self.arrays[array].len();
        if (idx as usize) < len {
            Ok(())
        } else {
            Err(SimError::OutOfBounds {
                what: what.to_string(),
                index: idx as usize,
                len,
            })
        }
    }

    /// Number of serialized transactions for a warp access to element
    /// indices `idxs` (active lanes only) of array `array`.
    ///
    /// Implements the hardware rule: the access replays once per extra
    /// distinct word mapped to the same bank; same-word lanes broadcast.
    /// Returns at least 1 when any lane is active.
    pub fn transactions_for(&self, array: usize, idxs: &[u32]) -> u64 {
        if self.scalar_reference {
            return self.transactions_for_reference(array, idxs);
        }
        if idxs.is_empty() {
            return 0;
        }
        let base = self.base_words[array];
        let wpe = self.arrays[array].words_per_elem();
        let banks = self.banks as u64;

        // Shape fast paths for the two warp access patterns the kernels
        // actually emit — broadcast (tile reuse) and unit stride (tile
        // loads / privatized outputs) — where the conflict degree follows
        // arithmetically from the shape.
        let first = idxs[0] as u64;
        if idxs.iter().all(|&i| i as u64 == first) {
            // Broadcast: one element, `wpe` adjacent words. One word is
            // always a single transaction; two adjacent words land in two
            // distinct banks whenever 2 <= banks <= 32.
            if wpe == 1 || (2..=32).contains(&banks) {
                return 1;
            }
        } else if banks == 32
            && idxs
                .iter()
                .enumerate()
                .all(|(k, &v)| v as u64 == first + k as u64)
        {
            // Unit stride: `len * wpe` contiguous words spread round-robin
            // over the 32 banks, so the fullest bank holds the ceiling.
            return (idxs.len() as u64 * wpe).div_ceil(32).max(1);
        }

        // General path: dedup words only against words already placed in
        // the same bank. `bank_entries[b]` is a bitmask over the slots of
        // `words` that hold bank-`b` words, so membership scans walk just
        // the (usually tiny) per-bank population and the per-bank counts
        // fall out as popcounts.
        let mut words = [0u64; 2 * WARP_SIZE];
        let mut n_words = 0usize;
        let mut bank_entries = [0u64; WARP_SIZE];
        for &idx in idxs {
            for w in 0..wpe {
                let word = base + idx as u64 * wpe + w;
                let bank = (word % banks) as usize % WARP_SIZE;
                let mut m = bank_entries[bank];
                let mut dup = false;
                while m != 0 {
                    let e = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if words[e] == word {
                        dup = true;
                        break;
                    }
                }
                if !dup {
                    words[n_words] = word;
                    bank_entries[bank] |= 1 << n_words;
                    n_words += 1;
                }
            }
        }
        let max_count = bank_entries
            .iter()
            .map(|m| m.count_ones() as u64)
            .max()
            .unwrap_or(0);
        max_count.max(1)
    }

    /// The pre-optimization conflict counter, kept verbatim as the
    /// scalar reference for the differential tests.
    pub fn transactions_for_reference(&self, array: usize, idxs: &[u32]) -> u64 {
        if idxs.is_empty() {
            return 0;
        }
        let base = self.base_words[array];
        let wpe = self.arrays[array].words_per_elem();
        let banks = self.banks as u64;
        // Collect the distinct words touched by the warp (≤ 32 lanes × 2
        // words for u64), then count distinct words per bank: the access
        // serializes once per extra word in the fullest bank, and lanes
        // reading the same word broadcast in a single transaction.
        let mut words = [u64::MAX; 2 * WARP_SIZE];
        let mut n_words = 0usize;
        for &idx in idxs {
            for w in 0..wpe {
                let word = base + idx as u64 * wpe + w;
                if !words[..n_words].contains(&word) {
                    words[n_words] = word;
                    n_words += 1;
                }
            }
        }
        let mut bank_counts = [0u64; WARP_SIZE];
        let mut max_count = 0u64;
        for &word in &words[..n_words] {
            let bank = (word % banks) as usize % WARP_SIZE;
            bank_counts[bank] += 1;
            max_count = max_count.max(bank_counts[bank]);
        }
        max_count.max(1)
    }

    /// Closed-form accounting for a warp-wide atomic scatter: the maximum
    /// same-element multiplicity and the serialized bank transactions of
    /// the active-lane element indices `vals`, computed in one pass.
    ///
    /// Bit-identical to running the two halves separately — the quadratic
    /// same-address scan the op-by-op atomic uses, then
    /// [`SharedSpace::transactions_for`] on the same slice. The bank rule
    /// depends only on the *distinct*-element set, so the deduplicating
    /// multiplicity scan can feed the conflict counter its survivors
    /// directly (`transactions_for` would re-deduplicate the full slice
    /// to the same words; its broadcast/unit-stride shortcuts agree with
    /// the general count by construction). `vals` must hold at most one
    /// entry per warp lane. Returns `(0, 0)` for an empty slice.
    pub fn atomic_scatter_accounting(&self, array: usize, vals: &[u32]) -> (u64, u64) {
        debug_assert!(vals.len() <= WARP_SIZE);
        if vals.is_empty() {
            return (0, 0);
        }
        // The same shape shortcuts the op-by-op atomic takes: a broadcast
        // fully serializes on one element, a unit-stride scatter has no
        // same-address contention at all.
        let first = vals[0];
        if vals.iter().all(|&v| v == first) {
            return (vals.len() as u64, self.transactions_for(array, &vals[..1]));
        }
        if vals
            .iter()
            .enumerate()
            .all(|(k, &v)| v as u64 == first as u64 + k as u64)
        {
            return (1, self.transactions_for(array, vals));
        }
        if !self.scalar_reference && self.arrays[array].words_per_elem() == 1 {
            return self.scatter_accounting_w1(array, vals);
        }
        let mut uniq = [0u32; WARP_SIZE];
        let mut count = [0u64; WARP_SIZE];
        let mut n = 0usize;
        let mut mult = 0u64;
        'outer: for &v in vals {
            for e in 0..n {
                if uniq[e] == v {
                    count[e] += 1;
                    mult = mult.max(count[e]);
                    continue 'outer;
                }
            }
            uniq[n] = v;
            count[n] = 1;
            mult = mult.max(1);
            n += 1;
        }
        (mult, self.transactions_for(array, &uniq[..n]))
    }

    /// [`Self::atomic_scatter_accounting`] with caller-owned scratch —
    /// the fused histogram consumers call this once per tile step, and
    /// the per-call array zeroing plus chain walks of the stateless path
    /// dominate a fused SDH sweep's host time. Reusing occupancy
    /// counters across steps (reset via the touched list, never a full
    /// clear) makes the accounting a flat pass over the active lanes.
    /// The result is identical to [`Self::atomic_scatter_accounting`];
    /// non-histogram shapes (multi-word elements, the scalar-reference
    /// route) fall back to it.
    pub fn scatter_account(
        &self,
        array: usize,
        vals: &[u32],
        scratch: &mut ScatterScratch,
    ) -> (u64, u64) {
        debug_assert!(vals.len() <= WARP_SIZE);
        if vals.is_empty() || self.scalar_reference || self.arrays[array].words_per_elem() != 1 {
            return self.atomic_scatter_accounting(array, vals);
        }
        let base = self.base_words[array];
        let banks = self.banks as u64;
        // Shape shortcuts first — the two scatter shapes pileup-heavy and
        // perfectly-spread histograms produce constantly. Both are flat
        // vectorizable compares over the lanes and skip the counter walk
        // entirely. They agree with the general path by construction:
        // a one-word broadcast is 1 transaction with full serialization,
        // a unit-stride scatter has no same-address contention and its
        // transactions follow from `transactions_for`'s stride shortcut.
        let first = vals[0];
        if vals.iter().all(|&v| v == first) {
            return (vals.len() as u64, 1);
        }
        if vals
            .iter()
            .enumerate()
            .all(|(k, &v)| v as u64 == first as u64 + k as u64)
        {
            return (1, self.transactions_for(array, vals));
        }
        // General scatters: one flat pass over the active lanes against
        // the persistent occupancy counters. The counters live across
        // tile steps (reset via the touched list, never a full clear), so
        // each lane costs one counter bump and first occurrences one bank
        // bump — no quadratic dedup scan, no per-step allocation.
        let (mut mult, mut txns) = (0u64, 1u64);
        for &v in vals {
            let vi = v as usize;
            if vi >= scratch.cnt.len() {
                scratch.cnt.resize(vi + 1, 0);
            }
            let c = scratch.cnt[vi] + 1;
            scratch.cnt[vi] = c;
            if c == 1 {
                let word = base + v as u64;
                let bank = if banks == 32 {
                    (word & 31) as usize
                } else {
                    (word % banks) as usize % WARP_SIZE
                };
                let bd = scratch.bank_distinct[bank] + 1;
                scratch.bank_distinct[bank] = bd;
                txns = txns.max(bd as u64);
                scratch.touched.push((v, bank as u8));
            }
            mult = mult.max(c as u64);
        }
        for &(v, bank) in &scratch.touched {
            scratch.cnt[v as usize] = 0;
            scratch.bank_distinct[bank as usize] = 0;
        }
        scratch.touched.clear();
        (mult, txns)
    }

    /// [`Self::scatter_account`] fused with the histogram data update:
    /// one walk over the active-lane bucket indices yields the
    /// accounting pair *and* applies `data[v] += 1` per lane (batched as
    /// `data[v] += count(v)` per distinct value — wrapping u32 adds
    /// commute, so the result is bit-identical to the per-lane
    /// increments the op-by-op atomic performs). The compiled histogram
    /// sinks use this for partial-warp steps — full-warp steps batch
    /// through [`Self::scatter_account_update_rows`] — and either way
    /// each distinct bucket is touched once instead of once for
    /// accounting and once for the update.
    pub fn scatter_account_update(
        &mut self,
        h: ShmU32,
        vals: &[u32],
        scratch: &mut ScatterScratch,
    ) -> (u64, u64) {
        debug_assert!(vals.len() <= WARP_SIZE);
        if vals.is_empty() {
            return (0, 0);
        }
        if self.scalar_reference || self.arrays[h.0].words_per_elem() != 1 {
            // Same fallback split as `scatter_account`; the update is
            // the plain per-lane form.
            let acct = self.atomic_scatter_accounting(h.0, vals);
            let data = self.u32s_mut(h);
            for &v in vals {
                data[v as usize] = data[v as usize].wrapping_add(1);
            }
            return acct;
        }
        let base = self.base_words[h.0];
        let banks = self.banks as u64;
        // The same shape shortcuts as `scatter_account`, with the update
        // folded in.
        let first = vals[0];
        if vals.iter().all(|&v| v == first) {
            let data = self.u32s_mut(h);
            data[first as usize] = data[first as usize].wrapping_add(vals.len() as u32);
            return (vals.len() as u64, 1);
        }
        if vals
            .iter()
            .enumerate()
            .all(|(k, &v)| v as u64 == first as u64 + k as u64)
        {
            let txns = self.transactions_for(h.0, vals);
            let data = self.u32s_mut(h);
            for &v in vals {
                data[v as usize] = data[v as usize].wrapping_add(1);
            }
            return (1, txns);
        }
        let (mut mult, mut txns) = (0u64, 1u64);
        for &v in vals {
            let vi = v as usize;
            if vi >= scratch.cnt.len() {
                scratch.cnt.resize(vi + 1, 0);
            }
            let c = scratch.cnt[vi] + 1;
            scratch.cnt[vi] = c;
            if c == 1 {
                let word = base + v as u64;
                let bank = if banks == 32 {
                    (word & 31) as usize
                } else {
                    (word % banks) as usize % WARP_SIZE
                };
                let bd = scratch.bank_distinct[bank] + 1;
                scratch.bank_distinct[bank] = bd;
                txns = txns.max(bd as u64);
                scratch.touched.push((v, bank as u8));
            }
            mult = mult.max(c as u64);
        }
        let data = match &mut self.arrays[h.0] {
            ShmStorage::U32(v) => v,
            _ => unreachable!("handle type guarantees u32 storage"),
        };
        for &(v, bank) in &scratch.touched {
            data[v as usize] = data[v as usize].wrapping_add(scratch.cnt[v as usize] as u32);
            scratch.cnt[v as usize] = 0;
            scratch.bank_distinct[bank as usize] = 0;
        }
        scratch.touched.clear();
        (mult, txns)
    }

    /// [`Self::scatter_account_update`] batched over whole full-warp
    /// tile steps: `rows` holds `rows.len() / 32` steps' bucket
    /// indices, 32 lanes each. One call hoists the array binding, the
    /// bank mapping and the counter sizing out of the per-step loop and
    /// returns the accumulated charge sums
    /// `(Σ mult, Σ (txns + mult − 1), Σ (txns − 1))` — exactly what the
    /// compiled histogram sinks add to `shared_atomic_serial`,
    /// `shared_transactions` and `shared_bank_replays`. Per step the
    /// accounting pair and the data update are bit-identical to
    /// [`Self::scatter_account_update`] on that step's lanes: the
    /// broadcast shortcut, the windowed row counter (see below) and the
    /// general counter walk each agree with the op-by-op oracle shape
    /// by shape (the unit-stride shortcut is omitted here — the general
    /// walk reproduces its result, and 32 monotonically increasing
    /// buckets essentially never occur in a histogram step), and the
    /// wrapping data adds commute across steps, so batching changes no
    /// observable state.
    ///
    /// Most rows take the windowed counting path: when the row's values
    /// span less than 256 (every warp step of a privatized histogram
    /// scatters into one copy, so any spec with `hmax < 255` qualifies)
    /// `v & 255` is injective over the row and a 256-entry stack
    /// counter replaces the persistent occupancy scratch — no drain
    /// pass, no counter resets, no data-sized mirror traffic. With 32
    /// banks, `bank(v) = (base + v) & 31` is a fixed permutation of
    /// `v & 31`, so counting the distinct values per `v & 31` class
    /// yields the same maximum bank occupancy; the per-lane update is
    /// branch-free and both maxima reduce vectorized.
    ///
    /// Every index must be in bounds for `h` (the compiled pre-flights
    /// guarantee `hmax < len`, and buckets clamp to `hmax`);
    /// multi-word storage and the scalar-reference route fall back to
    /// the per-step path.
    pub fn scatter_account_update_rows(
        &mut self,
        h: ShmU32,
        rows: &[u32],
        scratch: &mut ScatterScratch,
    ) -> (u64, u64, u64) {
        debug_assert_eq!(rows.len() % WARP_SIZE, 0);
        let (mut serial, mut txns_sum, mut replays) = (0u64, 0u64, 0u64);
        if rows.is_empty() {
            return (serial, txns_sum, replays);
        }
        if self.scalar_reference || self.arrays[h.0].words_per_elem() != 1 {
            for row in rows.chunks_exact(WARP_SIZE) {
                let (mult, txns) = self.scatter_account_update(h, row, scratch);
                serial += mult;
                txns_sum += txns + mult - 1;
                replays += txns.saturating_sub(1);
            }
            return (serial, txns_sum, replays);
        }
        let base = self.base_words[h.0];
        let banks = self.banks as u64;
        let data = match &mut self.arrays[h.0] {
            ShmStorage::U32(v) => v,
            _ => unreachable!("handle type guarantees u32 storage"),
        };
        if scratch.cnt.len() < data.len() {
            scratch.cnt.resize(data.len(), 0);
        }
        let bank_of = |word: u64| {
            if banks == 32 {
                (word & 31) as usize
            } else {
                (word % banks) as usize % WARP_SIZE
            }
        };
        let banks32 = banks == 32;
        for row in rows.chunks_exact(WARP_SIZE) {
            let first = row[0];
            if row.iter().all(|&v| v == first) {
                data[first as usize] = data[first as usize].wrapping_add(WARP_SIZE as u32);
                serial += WARP_SIZE as u64;
                txns_sum += WARP_SIZE as u64; // txns(1) + mult(32) − 1
                continue;
            }
            let (mut minv, mut maxv) = (first, first);
            for &v in row {
                minv = minv.min(v);
                maxv = maxv.max(v);
            }
            if banks32 && maxv - minv < 256 {
                // Windowed counting (see the method doc): values within
                // one 256-wide window keep `v & 255` injective, so the
                // stack counter is exact, and the `v & 31` classes are a
                // bank relabeling, so `max(bank8)` is the real maximum
                // bank occupancy of the distinct values.
                let mut cnt8 = [0u8; 256];
                let mut bank8 = [0u8; WARP_SIZE];
                // Running maxima equal the final-array maxima (counts
                // only grow), so no post-loop scan is needed.
                let (mut mult8, mut txns8) = (0u8, 0u8);
                for &v in row {
                    let c = cnt8[(v & 255) as usize] + 1;
                    cnt8[(v & 255) as usize] = c;
                    let bd = bank8[(v & 31) as usize] + (c == 1) as u8;
                    bank8[(v & 31) as usize] = bd;
                    mult8 = mult8.max(c);
                    txns8 = txns8.max(bd);
                    let vi = v as usize;
                    data[vi] = data[vi].wrapping_add(1);
                }
                let (mult, txns) = (mult8 as u64, txns8 as u64);
                serial += mult;
                txns_sum += txns + mult - 1;
                replays += txns - 1;
                continue;
            }
            let (mut mult, mut txns) = (0u64, 1u64);
            // Distinct values of this step fit a warp-sized stack array
            // (≤ 32 lanes), so the drain needs no heap bookkeeping.
            let mut touched = [0u32; WARP_SIZE];
            let mut nt = 0usize;
            for &v in row {
                let vi = v as usize;
                let c = scratch.cnt[vi] + 1;
                scratch.cnt[vi] = c;
                if c == 1 {
                    let bank = bank_of(base + v as u64);
                    let bd = scratch.bank_distinct[bank] + 1;
                    scratch.bank_distinct[bank] = bd;
                    txns = txns.max(bd as u64);
                    touched[nt] = v;
                    nt += 1;
                }
                mult = mult.max(c as u64);
            }
            for &v in &touched[..nt] {
                let vi = v as usize;
                data[vi] = data[vi].wrapping_add(scratch.cnt[vi] as u32);
                scratch.cnt[vi] = 0;
                scratch.bank_distinct[bank_of(base + v as u64)] = 0;
            }
            serial += mult;
            txns_sum += txns + mult - 1;
            replays += txns - 1;
        }
        (serial, txns_sum, replays)
    }

    /// [`Self::atomic_scatter_accounting`] for one-word elements, the
    /// histogram hot path: with `wpe == 1` an element *is* its word, so
    /// one pass over per-bank entry chains yields both the same-address
    /// multiplicity (occurrence count per distinct word) and the bank
    /// serialization (distinct words in the fullest bank — exactly what
    /// [`Self::transactions_for`]'s general path computes) without the
    /// quadratic dedup scan or a second pass.
    fn scatter_accounting_w1(&self, array: usize, vals: &[u32]) -> (u64, u64) {
        let base = self.base_words[array];
        let banks = self.banks as u64;
        // Entry `e` is a distinct word: `addrs[e]` its address, `cnt[e]`
        // its occurrence count, `next[e]` the previous entry in the same
        // bank's chain (`u8::MAX` terminates).
        let mut addrs = [0u64; WARP_SIZE];
        let mut cnt = [0u8; WARP_SIZE];
        let mut next = [u8::MAX; WARP_SIZE];
        let mut head = [u8::MAX; WARP_SIZE];
        let mut bank_words = [0u8; WARP_SIZE];
        let mut n = 0u8;
        let (mut mult, mut txns) = (0u64, 1u64);
        for &v in vals {
            let word = base + v as u64;
            let bank = if banks == 32 {
                (word & 31) as usize
            } else {
                (word % banks) as usize % WARP_SIZE
            };
            let mut e = head[bank];
            while e != u8::MAX && addrs[e as usize] != word {
                e = next[e as usize];
            }
            if e != u8::MAX {
                let c = &mut cnt[e as usize];
                *c += 1;
                mult = mult.max(*c as u64);
            } else {
                addrs[n as usize] = word;
                cnt[n as usize] = 1;
                next[n as usize] = head[bank];
                head[bank] = n;
                bank_words[bank] += 1;
                txns = txns.max(bank_words[bank] as u64);
                mult = mult.max(1);
                n += 1;
            }
        }
        (mult, txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_unit_stride() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_f32(64);
        let idxs: Vec<u32> = (0..32).collect();
        assert_eq!(s.transactions_for(a.0, &idxs), 1);
    }

    #[test]
    fn broadcast_same_word_is_one_transaction() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_f32(64);
        let idxs = vec![7u32; 32];
        assert_eq!(s.transactions_for(a.0, &idxs), 1);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_f32(128);
        let idxs: Vec<u32> = (0..32).map(|i| i * 2).collect();
        assert_eq!(s.transactions_for(a.0, &idxs), 2);
    }

    #[test]
    fn stride_thirty_two_fully_serializes() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_f32(32 * 32);
        let idxs: Vec<u32> = (0..32).map(|i| i * 32).collect();
        assert_eq!(s.transactions_for(a.0, &idxs), 32);
    }

    #[test]
    fn u64_arrays_occupy_two_banks_per_element() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_u64(64);
        // Unit-stride u64: lane i touches words 2i, 2i+1 -> each bank gets
        // two distinct words across the warp -> 2 transactions.
        let idxs: Vec<u32> = (0..32).collect();
        assert_eq!(s.transactions_for(a.0, &idxs), 2);
    }

    #[test]
    fn base_offsets_shift_banks() {
        let mut s = SharedSpace::new(32);
        let _pad = s.alloc_f32(1);
        let a = s.alloc_f32(64);
        // Array starts at word 1; unit stride still conflict-free.
        let idxs: Vec<u32> = (0..32).collect();
        assert_eq!(s.transactions_for(a.0, &idxs), 1);
        assert_eq!(s.allocated_bytes(), 4 * 65);
    }

    #[test]
    fn duplicate_words_in_a_conflicted_bank_still_broadcast() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_f32(64);
        // Words 0 and 32 share bank 0; many lanes reading word 32 must
        // not add transactions beyond the 2-way word conflict.
        let mut idxs = vec![32u32; 30];
        idxs.push(0);
        assert_eq!(s.transactions_for(a.0, &idxs), 2);
    }

    #[test]
    fn fast_and_reference_counters_agree() {
        for banks in [1u32, 2, 16, 32, 33, 48] {
            let mut s = SharedSpace::new(banks);
            let _pad = s.alloc_f32(3);
            let f = s.alloc_f32(4096);
            let u = s.alloc_u64(4096);
            let mut x = 0xace1u64;
            for trial in 0..400 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let len = (x % 33) as usize;
                let mut idxs = Vec::with_capacity(len);
                for k in 0..len {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    idxs.push(match trial % 4 {
                        0 => (x % 4096) as u32,              // random gather
                        1 => ((x % 64) + k as u64) as u32,   // unit stride
                        2 => (x % 64) as u32 * (trial % 33), // strided
                        _ => 7,                              // broadcast
                    });
                }
                for arr in [f.0, u.0] {
                    assert_eq!(
                        s.transactions_for(arr, &idxs),
                        s.transactions_for_reference(arr, &idxs),
                        "banks {banks} trial {trial} arr {arr} idxs {idxs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_accounting_matches_split_computation() {
        // The fused histogram consumer relies on this equivalence: one
        // combined pass == (reference multiplicity scan, transactions_for).
        let max_multiplicity = |vals: &[u32]| -> u64 {
            vals.iter()
                .map(|v| vals.iter().filter(|&w| w == v).count() as u64)
                .max()
                .unwrap_or(0)
        };
        for banks in [1u32, 2, 16, 32, 48] {
            let mut s = SharedSpace::new(banks);
            let _pad = s.alloc_f32(5);
            let f = s.alloc_f32(256);
            let u = s.alloc_u64(256);
            let mut x = 0xbeefu64;
            for trial in 0..400 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let len = (x % 33) as usize;
                let mut vals = Vec::with_capacity(len);
                for k in 0..len {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    vals.push(match trial % 4 {
                        0 => (x % 256) as u32,             // random scatter
                        1 => ((x % 32) + k as u64) as u32, // unit stride
                        2 => (x % 17) as u32,              // heavy contention
                        _ => 9,                            // broadcast
                    });
                }
                for arr in [f.0, u.0] {
                    assert_eq!(
                        s.atomic_scatter_accounting(arr, &vals),
                        (max_multiplicity(&vals), s.transactions_for(arr, &vals)),
                        "banks {banks} trial {trial} arr {arr} vals {vals:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_scatter_accounting_matches_stateless_oracle() {
        // The compiled/fused histogram sinks reuse one `ScatterScratch`
        // across every tile step of a pass; the counters must come back
        // clean between calls (reset via the touched list) and every
        // shape — broadcast, unit stride, pileup, random — must agree
        // with the stateless combined pass.
        let mut s = SharedSpace::new(32);
        let _pad = s.alloc_f32(5);
        let f = s.alloc_f32(256);
        let mut scratch = ScatterScratch::default();
        let mut x = 0xfeedu64;
        for trial in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = if trial % 3 == 0 {
                32
            } else {
                (x % 33) as usize
            };
            let mut vals = Vec::with_capacity(len);
            for k in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                vals.push(match trial % 5 {
                    0 => (x % 256) as u32,             // random scatter
                    1 => ((x % 32) + k as u64) as u32, // unit stride
                    2 => (x % 17) as u32,              // heavy contention
                    3 => (x % 2) as u32 * 32,          // same-bank pair
                    _ => 9,                            // broadcast
                });
            }
            assert_eq!(
                s.scatter_account(f.0, &vals, &mut scratch),
                s.atomic_scatter_accounting(f.0, &vals),
                "trial {trial} vals {vals:?}"
            );
            assert!(scratch.touched.is_empty(), "scratch not reset");
        }
    }

    #[test]
    fn scatter_account_update_matches_split_halves() {
        // The merged accounting+update walk must equal running
        // `scatter_account` and then incrementing per lane, for every
        // scatter shape, with the scratch coming back clean.
        let mut s = SharedSpace::new(32);
        let _pad = s.alloc_f32(3);
        // `b` sits 256 words (≡ 0 mod 32 banks) past `a`, so both map
        // every element to the same bank and the accounting agrees.
        let a = s.alloc_u32(256);
        let b = s.alloc_u32(256);
        let mut scratch = ScatterScratch::default();
        let mut x = 0xabc1u64;
        let mut expect = vec![0u32; 256];
        for trial in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = if trial % 3 == 0 {
                32
            } else {
                (x % 33) as usize
            };
            let mut vals = Vec::with_capacity(len);
            for k in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                vals.push(match trial % 5 {
                    0 => (x % 256) as u32,
                    1 => ((x % 32) + k as u64) as u32,
                    2 => (x % 17) as u32,
                    3 => (x % 2) as u32 * 32,
                    _ => 9,
                });
            }
            let oracle = s.scatter_account(b.0, &vals, &mut scratch);
            assert_eq!(
                s.scatter_account_update(a, &vals, &mut scratch),
                oracle,
                "trial {trial} vals {vals:?}"
            );
            for &v in &vals {
                expect[v as usize] = expect[v as usize].wrapping_add(1);
            }
            assert!(scratch.touched.is_empty(), "scratch not reset");
        }
        assert_eq!(s.u32s(a), &expect[..], "merged updates diverge");
    }

    #[test]
    fn scatter_account_update_rows_matches_per_step() {
        // The batched full-warp walk must equal per-step
        // `scatter_account_update` calls — same charge sums, same final
        // histogram — across banked layouts and every step shape, with
        // the scratch coming back clean between batches.
        for banks in [32u32, 16] {
            let mut s = SharedSpace::new(banks);
            let _pad = s.alloc_f32(7);
            let a = s.alloc_u32(1024);
            let b = s.alloc_u32(1024);
            let mut scratch = ScatterScratch::default();
            let mut x = 0x5eed5u64;
            for trial in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let steps = (x % 9) as usize;
                let mut rows = Vec::with_capacity(steps * WARP_SIZE);
                for j in 0..steps {
                    for k in 0..WARP_SIZE {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        rows.push(match (trial + j) % 6 {
                            0 => (x % 256) as u32,
                            1 => ((x % 32) + k as u64) as u32,
                            2 => (x % 17) as u32,
                            3 => (x % 2) as u32 * 32,
                            // Spread wider than one 256 window, so the
                            // batched walk's windowed fast path declines
                            // and its general fallback gets exercised
                            // under both bank layouts.
                            4 => (x % 1024) as u32,
                            _ => 9,
                        });
                    }
                }
                let mut expect = (0u64, 0u64, 0u64);
                for row in rows.chunks_exact(WARP_SIZE) {
                    let (mult, txns) = s.scatter_account_update(a, row, &mut scratch);
                    expect.0 += mult;
                    expect.1 += txns + mult - 1;
                    expect.2 += txns.saturating_sub(1);
                }
                assert_eq!(
                    s.scatter_account_update_rows(b, &rows, &mut scratch),
                    expect,
                    "banks {banks} trial {trial}"
                );
                assert!(scratch.touched.is_empty(), "scratch not reset");
            }
            // `b` sits 1024 words past `a` (≡ 0 mod either bank count),
            // so both map every element to the same bank and the
            // accounting comparison above is apples to apples; the
            // data must also agree since both saw the same rows.
            assert_eq!(s.u32s(a), s.u32s(b), "batched updates diverge");
        }
    }

    #[test]
    fn readback_roundtrip_and_bounds() {
        let mut s = SharedSpace::new(32);
        let a = s.alloc_u32(4);
        s.u32s_mut(a)[2] = 42;
        assert_eq!(s.u32s(a)[2], 42);
        assert!(s.check_bounds(a.0, 3, "t").is_ok());
        assert!(s.check_bounds(a.0, 4, "t").is_err());
    }
}
