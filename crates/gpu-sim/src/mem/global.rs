//! Device global memory: typed buffers addressed by opaque handles.
//!
//! Buffers live for the lifetime of a [`crate::Device`]; kernels refer to
//! them through the `Copy` handles [`BufF32`], [`BufU32`] and [`BufU64`],
//! mirroring how CUDA kernels capture device pointers by value.

use crate::error::SimError;

/// Handle to an `f32` buffer in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufF32(pub(crate) u32);

/// Handle to a `u32` buffer in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufU32(pub(crate) u32);

/// Handle to a `u64` buffer in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufU64(pub(crate) u32);

#[derive(Debug, Clone)]
pub(crate) enum Storage {
    F32(Vec<f32>),
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl Storage {
    fn elem_bytes(&self) -> u64 {
        match self {
            Storage::F32(_) | Storage::U32(_) => 4,
            Storage::U64(_) => 8,
        }
    }

    fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::U32(v) => v.len(),
            Storage::U64(v) => v.len(),
        }
    }
}

/// The global-memory address space of a simulated device.
///
/// Each buffer is placed at a distinct 256-byte-aligned base address so
/// sector ids never collide between buffers (matching `cudaMalloc`'s
/// alignment guarantee).
#[derive(Debug, Default)]
pub struct GlobalMem {
    buffers: Vec<Storage>,
    bases: Vec<u64>,
    next_base: u64,
}

/// Alignment of every allocation (CUDA guarantees ≥ 256 bytes).
const ALLOC_ALIGN: u64 = 256;

impl GlobalMem {
    pub fn new() -> Self {
        GlobalMem {
            buffers: Vec::new(),
            bases: Vec::new(),
            // Leave address 0 unused so a base address is never 0.
            next_base: ALLOC_ALIGN,
        }
    }

    fn push(&mut self, s: Storage) -> u32 {
        let bytes = s.elem_bytes() * s.len() as u64;
        let id = self.buffers.len() as u32;
        self.bases.push(self.next_base);
        self.next_base += bytes.div_ceil(ALLOC_ALIGN).max(1) * ALLOC_ALIGN;
        self.buffers.push(s);
        id
    }

    pub fn alloc_f32(&mut self, data: Vec<f32>) -> BufF32 {
        BufF32(self.push(Storage::F32(data)))
    }

    pub fn alloc_u32(&mut self, data: Vec<u32>) -> BufU32 {
        BufU32(self.push(Storage::U32(data)))
    }

    pub fn alloc_u64(&mut self, data: Vec<u64>) -> BufU64 {
        BufU64(self.push(Storage::U64(data)))
    }

    /// Base byte address of buffer `id` in the flat device address space.
    pub(crate) fn base_addr(&self, id: u32) -> u64 {
        self.bases[id as usize]
    }

    pub fn f32_slice(&self, b: BufF32) -> &[f32] {
        match &self.buffers[b.0 as usize] {
            Storage::F32(v) => v,
            _ => unreachable!("handle type guarantees f32 storage"),
        }
    }

    pub fn f32_slice_mut(&mut self, b: BufF32) -> &mut [f32] {
        match &mut self.buffers[b.0 as usize] {
            Storage::F32(v) => v,
            _ => unreachable!("handle type guarantees f32 storage"),
        }
    }

    pub fn u32_slice(&self, b: BufU32) -> &[u32] {
        match &self.buffers[b.0 as usize] {
            Storage::U32(v) => v,
            _ => unreachable!("handle type guarantees u32 storage"),
        }
    }

    pub fn u32_slice_mut(&mut self, b: BufU32) -> &mut [u32] {
        match &mut self.buffers[b.0 as usize] {
            Storage::U32(v) => v,
            _ => unreachable!("handle type guarantees u32 storage"),
        }
    }

    pub fn u64_slice(&self, b: BufU64) -> &[u64] {
        match &self.buffers[b.0 as usize] {
            Storage::U64(v) => v,
            _ => unreachable!("handle type guarantees u64 storage"),
        }
    }

    pub fn u64_slice_mut(&mut self, b: BufU64) -> &mut [u64] {
        match &mut self.buffers[b.0 as usize] {
            Storage::U64(v) => v,
            _ => unreachable!("handle type guarantees u64 storage"),
        }
    }

    /// Bounds-check an element access, reporting a kernel-style fault.
    pub(crate) fn check_bounds(&self, id: u32, idx: u32, what: &str) -> Result<(), SimError> {
        let len = self.buffers[id as usize].len();
        if (idx as usize) < len {
            Ok(())
        } else {
            Err(SimError::OutOfBounds {
                what: what.to_string(),
                index: idx as usize,
                len,
            })
        }
    }

    /// Total bytes allocated on the device.
    pub fn allocated_bytes(&self) -> u64 {
        self.buffers
            .iter()
            .map(|s| s.elem_bytes() * s.len() as u64)
            .sum()
    }

    /// Apply a speculative block's write log in program order (parallel
    /// engine commit path). Indices were bounds-checked when logged.
    pub(crate) fn apply_log(&mut self, log: &[crate::mem::replay::WriteOp]) {
        use crate::mem::replay::WriteOp;
        for &op in log {
            match op {
                WriteOp::StoreF32 { buf, idx, val } => {
                    self.f32_slice_mut(BufF32(buf))[idx as usize] = val;
                }
                WriteOp::StoreU32 { buf, idx, val } => {
                    self.u32_slice_mut(BufU32(buf))[idx as usize] = val;
                }
                WriteOp::StoreU64 { buf, idx, val } => {
                    self.u64_slice_mut(BufU64(buf))[idx as usize] = val;
                }
                WriteOp::AddU64 { buf, idx, val } => {
                    let slot = &mut self.u64_slice_mut(BufU64(buf))[idx as usize];
                    *slot = slot.wrapping_add(val);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_readback() {
        let mut g = GlobalMem::new();
        let b = g.alloc_f32(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.f32_slice(b), &[1.0, 2.0, 3.0]);
        g.f32_slice_mut(b)[1] = 9.0;
        assert_eq!(g.f32_slice(b)[1], 9.0);
    }

    #[test]
    fn buffers_get_disjoint_aligned_bases() {
        let mut g = GlobalMem::new();
        let a = g.alloc_f32(vec![0.0; 3]); // 12 bytes -> one 256B slot
        let b = g.alloc_u64(vec![0; 100]); // 800 bytes -> four slots
        let c = g.alloc_u32(vec![0; 1]);
        let (a, b, c) = (g.base_addr(a.0), g.base_addr(b.0), g.base_addr(c.0));
        assert!(a % ALLOC_ALIGN == 0 && b % ALLOC_ALIGN == 0 && c % ALLOC_ALIGN == 0);
        assert!(a < b && b < c);
        assert!(b - a >= 256);
        assert!(c - b >= 800);
    }

    #[test]
    fn bounds_checking() {
        let mut g = GlobalMem::new();
        let b = g.alloc_u32(vec![0; 4]);
        assert!(g.check_bounds(b.0, 3, "t").is_ok());
        assert!(g.check_bounds(b.0, 4, "t").is_err());
    }

    #[test]
    fn allocated_bytes_sums_buffers() {
        let mut g = GlobalMem::new();
        g.alloc_f32(vec![0.0; 10]);
        g.alloc_u64(vec![0; 2]);
        assert_eq!(g.allocated_bytes(), 40 + 16);
    }
}
