//! The simulated memory hierarchy.
//!
//! * [`global`] — device global memory (typed buffers) whose warp accesses
//!   are coalesced into 32-byte sectors and filtered through a functional
//!   L2 cache ([`l2`]).
//! * [`roc`] — the read-only data cache path (`const __restrict__` /
//!   texture path in CUDA terms), a small per-SM cache in front of L2.
//! * [`shared`] — per-block programmable shared memory with 32-bank
//!   conflict modeling.

pub mod fifo;
pub mod global;
pub mod l2;
pub(crate) mod replay;
pub mod roc;
pub mod shared;

pub use global::{BufF32, BufU32, BufU64, GlobalMem};
pub use l2::L2Cache;
pub use roc::RocCache;
pub use shared::{ScatterScratch, SharedSpace, ShmF32, ShmU32, ShmU64};

/// Compute the set of distinct `sector_bytes`-sized sectors touched by the
/// active lanes of a warp access, given per-lane byte addresses.
///
/// Returns the number of sectors (memory transactions). This is the
/// coalescing rule of Kepler/Maxwell-class hardware: a fully-coalesced
/// 32 × 4-byte access touches 4 sectors of 32 bytes; a worst-case strided
/// access touches 32.
pub fn count_sectors(byte_addrs: &[u64], sector_bytes: u32) -> u64 {
    // Warp accesses touch at most 32 addresses: a tiny sort-free scan over
    // a fixed array is faster than hashing.
    let mut seen = [u64::MAX; crate::WARP_SIZE];
    let mut n = 0usize;
    'outer: for &a in byte_addrs {
        let sector = a / sector_bytes as u64;
        for &s in &seen[..n] {
            if s == sector {
                continue 'outer;
            }
        }
        seen[n] = sector;
        n += 1;
    }
    n as u64
}

/// Iterate the distinct sectors touched by the active lanes, invoking `f`
/// once per sector id.
pub fn for_each_sector(byte_addrs: &[u64], sector_bytes: u32, mut f: impl FnMut(u64)) {
    let mut seen = [u64::MAX; crate::WARP_SIZE];
    let mut n = 0usize;
    'outer: for &a in byte_addrs {
        let sector = a / sector_bytes as u64;
        for &s in &seen[..n] {
            if s == sector {
                continue 'outer;
            }
        }
        seen[n] = sector;
        n += 1;
        f(sector);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_f32_access_is_four_sectors() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(count_sectors(&addrs, 32), 4);
    }

    #[test]
    fn broadcast_access_is_one_sector() {
        let addrs = vec![128u64; 32];
        assert_eq!(count_sectors(&addrs, 32), 1);
    }

    #[test]
    fn strided_access_is_thirty_two_sectors() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        assert_eq!(count_sectors(&addrs, 32), 32);
    }

    #[test]
    fn partial_warp_counts_only_active_lanes() {
        let addrs: Vec<u64> = (0..7).map(|i| i * 4).collect();
        assert_eq!(count_sectors(&addrs, 32), 1);
    }

    #[test]
    fn for_each_sector_visits_each_once() {
        let addrs: Vec<u64> = vec![0, 4, 36, 68, 68, 0];
        let mut v = vec![];
        for_each_sector(&addrs, 32, |s| v.push(s));
        assert_eq!(v, vec![0, 1, 2]);
    }
}
