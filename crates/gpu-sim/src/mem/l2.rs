//! A functional, device-wide L2 cache model.
//!
//! The L2 is shared by all SMs (paper §III-A). We model it as a
//! fully-associative FIFO over 32-byte sectors — coarse, but enough to
//! capture the two regimes that matter for 2-BS kernels: the working set
//! fits (the naive kernel becomes L2-bound, paper Table II) or it streams
//! (DRAM-bound).
//!
//! Two interchangeable bodies make identical hit/miss decisions: the
//! default [`FifoSet`]-backed one (flat arrays, no steady-state
//! allocation) and the original `HashMap + VecDeque` kept as the scalar
//! reference for differential tests and before/after measurement
//! (`DeviceConfig::with_scalar_reference`).

use std::collections::{HashMap, VecDeque};

use super::fifo::FifoSet;

#[derive(Debug)]
enum Body {
    /// Open-addressed table + intrusive FIFO ring.
    Fast(FifoSet),
    /// The pre-optimization implementation, byte-for-byte.
    Reference {
        /// sector id -> generation marker (presence implies residency).
        resident: HashMap<u64, u64>,
        fifo: VecDeque<u64>,
        capacity_sectors: usize,
    },
}

/// FIFO sector cache keyed by flat device byte address / sector size.
#[derive(Debug)]
pub struct L2Cache {
    body: Body,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Create an empty cache holding `capacity_sectors` sectors.
    pub fn new(capacity_sectors: usize) -> Self {
        L2Cache {
            body: Body::Fast(FifoSet::new(capacity_sectors)),
            hits: 0,
            misses: 0,
        }
    }

    /// Create the cache with the legacy map+deque body. Hit/miss
    /// decisions are identical to [`L2Cache::new`]; this exists so the
    /// hotpath baseline and differential tests can run the seed
    /// algorithm in the same binary.
    pub fn new_reference(capacity_sectors: usize) -> Self {
        L2Cache {
            body: Body::Reference {
                resident: HashMap::with_capacity(capacity_sectors.min(1 << 20)),
                fifo: VecDeque::with_capacity(capacity_sectors.min(1 << 20)),
                capacity_sectors: capacity_sectors.max(1),
            },
            hits: 0,
            misses: 0,
        }
    }

    /// Access one sector; returns `true` on hit. A miss inserts the sector,
    /// evicting FIFO-oldest if full.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        match &mut self.body {
            Body::Fast(set) => {
                if set.contains(sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if set.is_full() {
                    set.pop_oldest();
                }
                set.insert_new(sector);
                false
            }
            Body::Reference {
                resident,
                fifo,
                capacity_sectors,
            } => {
                if resident.contains_key(&sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if resident.len() >= *capacity_sectors {
                    // Evict until a slot frees up. Entries may be stale if the
                    // sector was re-inserted; the generation check skips those.
                    while let Some(old) = fifo.pop_front() {
                        if resident.remove(&old).is_some() {
                            break;
                        }
                    }
                }
                resident.insert(sector, 0);
                fifo.push_back(sector);
                false
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of accesses that hit, or 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut l2 = L2Cache::new(16);
        assert!(!l2.access(5));
        assert!(l2.access(5));
        assert_eq!(l2.misses(), 1);
        assert_eq!(l2.hits(), 1);
        assert!((l2.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut l2 = L2Cache::new(2);
        l2.access(1);
        l2.access(2);
        l2.access(3); // evicts 1
        assert!(!l2.access(1), "1 must have been evicted");
        assert!(l2.access(3), "3 must still be resident");
    }

    #[test]
    fn streaming_larger_than_capacity_never_hits() {
        let mut l2 = L2Cache::new(8);
        for pass in 0..2 {
            for s in 0..100u64 {
                let hit = l2.access(s);
                assert!(!hit, "pass {pass} sector {s} unexpectedly hit");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut l2 = L2Cache::new(64);
        for s in 0..32u64 {
            l2.access(s);
        }
        for s in 0..32u64 {
            assert!(l2.access(s));
        }
    }

    #[test]
    fn fast_and_reference_bodies_agree() {
        // A sawtooth with re-touches exercises hit, cold miss, and
        // capacity-eviction paths in both bodies.
        for cap in [1usize, 2, 7, 64] {
            let mut fast = L2Cache::new(cap);
            let mut refr = L2Cache::new_reference(cap);
            let mut x = 0x9e37u64;
            for _ in 0..5_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let sector = x % 96;
                assert_eq!(fast.access(sector), refr.access(sector), "cap {cap}");
            }
            assert_eq!(fast.hits(), refr.hits());
            assert_eq!(fast.misses(), refr.misses());
        }
    }
}
