//! A functional, device-wide L2 cache model.
//!
//! The L2 is shared by all SMs (paper §III-A). We model it as a
//! fully-associative FIFO over 32-byte sectors — coarse, but enough to
//! capture the two regimes that matter for 2-BS kernels: the working set
//! fits (the naive kernel becomes L2-bound, paper Table II) or it streams
//! (DRAM-bound).
//!
//! Two interchangeable bodies make identical hit/miss decisions: the
//! default [`FifoSet`]-backed one (flat arrays, no steady-state
//! allocation) and the original `HashMap + VecDeque` kept as the scalar
//! reference for differential tests and before/after measurement
//! (`DeviceConfig::with_scalar_reference`).

use std::collections::{HashMap, VecDeque};

use super::fifo::FifoSet;

#[derive(Debug)]
enum Body {
    /// Open-addressed table + intrusive FIFO ring.
    Fast(FifoSet),
    /// The pre-optimization implementation, byte-for-byte.
    Reference {
        /// sector id -> generation marker (presence implies residency).
        resident: HashMap<u64, u64>,
        fifo: VecDeque<u64>,
        capacity_sectors: usize,
    },
}

/// One generation-stamped memo slot: a contiguous sector run observed
/// fully resident at `generation`.
#[derive(Debug, Clone, Copy)]
struct RunMemo {
    base: u64,
    count: u32,
    generation: u64,
}

/// Bounds for the direct-mapped memo table (both powers of two).
///
/// The table must cover the tiling kernels' steady-state run working
/// set or it replays nothing: between two requests of the same run the
/// launch touches every other distinct run once. Tile *fetches*
/// dominate that set — each warp's unit-stride load is its own
/// `(base, count)` run, so a launch cycles through
/// `grid_dim × warps_per_block × dims` distinct bases (1 536 at
/// n = 16 K with 1024-thread blocks and D = 3, 6 144 at 64 K, 24 576 at
/// 256 K). A fixed 256-slot table therefore collapsed from a 4.3 % memo
/// hit rate at 16 K to 0.26 % at 64 K: every slot was overwritten
/// before its run repeated. Sizing the table from the cache capacity
/// restores the hit rate at every N that fits — a replayable run must
/// have been fully resident, so the number of *useful* entries can
/// never exceed `capacity_sectors` — while `MEMO_MAX_SLOTS` caps the
/// host memory spent on very large configured caches.
const MEMO_MIN_SLOTS: usize = 256;
const MEMO_MAX_SLOTS: usize = 1 << 17;

/// Memo table size for a cache of `capacity_sectors`: the next power of
/// two at or above the capacity, clamped to the bounds above.
fn memo_slots(capacity_sectors: usize) -> usize {
    capacity_sectors
        .next_power_of_two()
        .clamp(MEMO_MIN_SLOTS, MEMO_MAX_SLOTS)
}

/// FIFO sector cache keyed by flat device byte address / sector size.
#[derive(Debug)]
pub struct L2Cache {
    body: Body,
    hits: u64,
    misses: u64,
    /// Generation-stamped run memoization (None = disabled). A slot
    /// records a `(base, count)` sector run whose every sector was
    /// resident when the access completed at the stamped eviction
    /// generation; while `FifoSet::generation()` still equals the stamp,
    /// residency is monotone (inserts never remove keys), so the run can
    /// be replayed as pure hits without re-probing. The table length is
    /// a power of two chosen by [`memo_slots`] from the cache capacity.
    memo: Option<Box<[Option<RunMemo>]>>,
    /// Sectors replayed from the memo (hits credited without probing).
    memo_replayed: u64,
    /// Sectors that went through a real table probe on the run path.
    memo_probed: u64,
}

impl L2Cache {
    /// Create an empty cache holding `capacity_sectors` sectors.
    pub fn new(capacity_sectors: usize) -> Self {
        L2Cache {
            body: Body::Fast(FifoSet::new(capacity_sectors)),
            hits: 0,
            misses: 0,
            memo: None,
            memo_replayed: 0,
            memo_probed: 0,
        }
    }

    /// Like [`L2Cache::new`], with generation-stamped run memoization
    /// enabled. Hit/miss decisions and counters are identical; only the
    /// host cost of steady-state re-reads changes (O(1) per run instead
    /// of O(sectors)).
    pub fn new_memoized(capacity_sectors: usize) -> Self {
        let mut c = Self::new(capacity_sectors);
        c.memo = Some(vec![None; memo_slots(capacity_sectors)].into_boxed_slice());
        c
    }

    /// Create the cache with the legacy map+deque body. Hit/miss
    /// decisions are identical to [`L2Cache::new`]; this exists so the
    /// hotpath baseline and differential tests can run the seed
    /// algorithm in the same binary.
    pub fn new_reference(capacity_sectors: usize) -> Self {
        L2Cache {
            body: Body::Reference {
                resident: HashMap::with_capacity(capacity_sectors.min(1 << 20)),
                fifo: VecDeque::with_capacity(capacity_sectors.min(1 << 20)),
                capacity_sectors: capacity_sectors.max(1),
            },
            hits: 0,
            misses: 0,
            memo: None,
            memo_replayed: 0,
            memo_probed: 0,
        }
    }

    /// Access one sector; returns `true` on hit. A miss inserts the sector,
    /// evicting FIFO-oldest if full.
    #[inline]
    pub fn access(&mut self, sector: u64) -> bool {
        match &mut self.body {
            Body::Fast(set) => {
                if set.contains(sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if set.is_full() {
                    set.pop_oldest();
                }
                set.insert_new(sector);
                false
            }
            Body::Reference {
                resident,
                fifo,
                capacity_sectors,
            } => {
                if resident.contains_key(&sector) {
                    self.hits += 1;
                    return true;
                }
                self.misses += 1;
                if resident.len() >= *capacity_sectors {
                    // Evict until a slot frees up. Entries may be stale if the
                    // sector was re-inserted; the generation check skips those.
                    while let Some(old) = fifo.pop_front() {
                        if resident.remove(&old).is_some() {
                            break;
                        }
                    }
                }
                resident.insert(sector, 0);
                fifo.push_back(sector);
                false
            }
        }
    }

    /// Access the contiguous ascending sector run `[base, base+count)`;
    /// returns the number of hits. Equivalent to `count` calls to
    /// [`L2Cache::access`] — same hit/miss decisions, same final cache
    /// state, same counters — but when run memoization is enabled
    /// ([`L2Cache::new_memoized`]) a run that completed with the
    /// eviction generation unchanged is recorded, and an identical run
    /// replays as pure hits while the generation still matches:
    ///
    /// * no evictions during the recorded run ⇒ every touched sector was
    ///   resident when it finished (hits were already resident, misses
    ///   were inserted);
    /// * residency is monotone within a generation ⇒ they all still are;
    /// * a FIFO hit mutates nothing but the hit counter ⇒ replaying as
    ///   `count` hits is bit-exact for state and statistics.
    pub fn access_run(&mut self, base: u64, count: u32) -> u64 {
        if count == 0 {
            return 0;
        }
        if self.memo.is_none() || !matches!(self.body, Body::Fast(_)) {
            let mut hits = 0u64;
            for s in base..base + count as u64 {
                if self.access(s) {
                    hits += 1;
                }
            }
            return hits;
        }
        let memo = self.memo.as_deref_mut().expect("checked above");
        let Body::Fast(set) = &mut self.body else {
            unreachable!("checked above")
        };
        let slot = (base.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (memo.len() - 1);
        if let Some(m) = memo[slot] {
            if m.base == base && m.count == count && m.generation == set.generation() {
                self.hits += count as u64;
                self.memo_replayed += count as u64;
                return count as u64;
            }
        }
        let gen_before = set.generation();
        let mut hits = 0u64;
        for sector in base..base + count as u64 {
            if set.contains(sector) {
                hits += 1;
            } else {
                self.misses += 1;
                if set.is_full() {
                    set.pop_oldest();
                }
                set.insert_new(sector);
            }
        }
        self.hits += hits;
        self.memo_probed += count as u64;
        if set.generation() == gen_before {
            memo[slot] = Some(RunMemo {
                base,
                count,
                generation: gen_before,
            });
        } else {
            // The run itself evicted; anything recorded is suspect.
            memo[slot] = None;
        }
        hits
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sectors whose hit was replayed from the run memo (no probe).
    pub fn memo_replayed(&self) -> u64 {
        self.memo_replayed
    }

    /// Sectors that took a real probe on the [`L2Cache::access_run`] path.
    pub fn memo_probed(&self) -> u64 {
        self.memo_probed
    }

    /// Fraction of accesses that hit, or 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut l2 = L2Cache::new(16);
        assert!(!l2.access(5));
        assert!(l2.access(5));
        assert_eq!(l2.misses(), 1);
        assert_eq!(l2.hits(), 1);
        assert!((l2.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut l2 = L2Cache::new(2);
        l2.access(1);
        l2.access(2);
        l2.access(3); // evicts 1
        assert!(!l2.access(1), "1 must have been evicted");
        assert!(l2.access(3), "3 must still be resident");
    }

    #[test]
    fn streaming_larger_than_capacity_never_hits() {
        let mut l2 = L2Cache::new(8);
        for pass in 0..2 {
            for s in 0..100u64 {
                let hit = l2.access(s);
                assert!(!hit, "pass {pass} sector {s} unexpectedly hit");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut l2 = L2Cache::new(64);
        for s in 0..32u64 {
            l2.access(s);
        }
        for s in 0..32u64 {
            assert!(l2.access(s));
        }
    }

    #[test]
    fn memoized_run_replays_as_hits_and_invalidates_on_eviction() {
        let mut memo = L2Cache::new_memoized(64);
        let mut plain = L2Cache::new(64);
        // Warm-up run: all misses, generation unchanged (no evictions),
        // so the run is recorded.
        assert_eq!(memo.access_run(10, 32), plain.access_run(10, 32));
        assert_eq!(memo.memo_replayed(), 0);
        // Steady-state re-read: replayed without probing.
        assert_eq!(memo.access_run(10, 32), plain.access_run(10, 32));
        assert_eq!(memo.memo_replayed(), 32);
        assert_eq!(memo.hits(), plain.hits());
        assert_eq!(memo.misses(), plain.misses());
        // Force evictions: the generation advances and the memo must
        // fall back to real probes with identical decisions.
        for s in 100..200u64 {
            memo.access(s);
            plain.access(s);
        }
        assert_eq!(memo.access_run(10, 32), plain.access_run(10, 32));
        assert_eq!(memo.access_run(10, 32), plain.access_run(10, 32));
        assert_eq!(memo.hits(), plain.hits());
        assert_eq!(memo.misses(), plain.misses());
    }

    #[test]
    fn memo_table_scales_with_capacity() {
        // A steady-state working set far larger than the old fixed
        // 256-slot table: 2048 distinct 4-sector runs, all resident
        // (capacity 8192 sectors). After the warm-up pass every
        // subsequent pass must replay every run — collisions between
        // distinct live runs would overwrite slots and drop the rate.
        let mut l2 = L2Cache::new_memoized(8192);
        let runs: Vec<u64> = (0..2048u64).map(|i| i * 4).collect();
        for &b in &runs {
            l2.access_run(b, 4);
        }
        let probed_after_warmup = l2.memo_probed();
        for _ in 0..3 {
            for &b in &runs {
                l2.access_run(b, 4);
            }
        }
        assert_eq!(
            l2.memo_probed(),
            probed_after_warmup,
            "steady-state re-reads must replay from the memo, not probe"
        );
        assert_eq!(l2.memo_replayed(), 3 * 2048 * 4);
    }

    #[test]
    fn memo_slots_bounds() {
        assert_eq!(super::memo_slots(0), super::MEMO_MIN_SLOTS);
        assert_eq!(super::memo_slots(100), 256);
        assert_eq!(super::memo_slots(98_304), 131_072);
        assert_eq!(super::memo_slots(1 << 24), super::MEMO_MAX_SLOTS);
        for cap in [0usize, 1, 100, 4096, 98_304, 1 << 24] {
            assert!(super::memo_slots(cap).is_power_of_two());
        }
    }

    #[test]
    fn memoized_and_plain_runs_agree_under_thrash() {
        // Capacity smaller than the runs: every run evicts, the memo
        // never validates, and decisions must still match exactly.
        for cap in [1usize, 8, 48, 512] {
            let mut memo = L2Cache::new_memoized(cap);
            let mut plain = L2Cache::new(cap);
            let mut x = 0x51u64;
            for _ in 0..400 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let base = x % 96;
                let count = (x >> 8) as u32 % 40;
                assert_eq!(
                    memo.access_run(base, count),
                    plain.access_run(base, count),
                    "cap {cap} base {base} count {count}"
                );
            }
            assert_eq!(memo.hits(), plain.hits());
            assert_eq!(memo.misses(), plain.misses());
        }
    }

    #[test]
    fn fast_and_reference_bodies_agree() {
        // A sawtooth with re-touches exercises hit, cold miss, and
        // capacity-eviction paths in both bodies.
        for cap in [1usize, 2, 7, 64] {
            let mut fast = L2Cache::new(cap);
            let mut refr = L2Cache::new_reference(cap);
            let mut x = 0x9e37u64;
            for _ in 0..5_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let sector = x % 96;
                assert_eq!(fast.access(sector), refr.access(sector), "cap {cap}");
            }
            assert_eq!(fast.hits(), refr.hits());
            assert_eq!(fast.misses(), refr.misses());
        }
    }
}
