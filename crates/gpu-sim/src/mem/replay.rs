//! Deterministic-replay machinery for the parallel block engine.
//!
//! The parallel engine executes blocks *speculatively* against an immutable
//! snapshot of global memory and records, per block:
//!
//! * a [`WriteOp`] log — every global-memory mutation in program order;
//! * a [`SectorTrace`] — every L2-bound sector touch in program order,
//!   run-length-compressed (warp accesses are overwhelmingly unit-stride
//!   or broadcast);
//! * [`BufSet`]s of the buffers the block read and wrote.
//!
//! At commit time the engine walks blocks in grid order: conflict-free
//! blocks have their trace replayed through the single device-wide
//! [`crate::mem::L2Cache`] (producing the exact hit/miss split the
//! sequential engine would have measured) and their write log applied to
//! global memory. This is what makes parallel execution bit-identical to
//! sequential execution — see `exec::engine`.

use crate::mem::L2Cache;
use crate::tally::AccessTally;

/// One logged global-memory mutation (4-byte-aligned payloads keep the
/// log at 16 bytes per op).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WriteOp {
    StoreF32 {
        buf: u32,
        idx: u32,
        val: f32,
    },
    StoreU32 {
        buf: u32,
        idx: u32,
        val: u32,
    },
    StoreU64 {
        buf: u32,
        idx: u32,
        val: u64,
    },
    /// `wrapping_add` delta from a `u64` atomic (commutative, so deltas
    /// applied in block order reproduce the sequential result exactly).
    AddU64 {
        buf: u32,
        idx: u32,
        val: u64,
    },
}

/// Program-order trace of L2-bound sector accesses, compressed as runs of
/// `(base, count, step)` with `step ∈ {0, 1}` sectors.
#[derive(Debug, Default, Clone)]
pub(crate) struct SectorTrace {
    runs: Vec<(u64, u32, u8)>,
}

impl SectorTrace {
    /// Append one sector access, extending the last run when possible.
    pub(crate) fn push(&mut self, sector: u64) {
        if let Some((base, count, step)) = self.runs.last_mut() {
            if *count == 1 && (sector == *base || sector == *base + 1) {
                *step = (sector - *base) as u8;
                *count = 2;
                return;
            }
            if *count > 1 && sector == *base + *count as u64 * *step as u64 {
                *count += 1;
                return;
            }
        }
        self.runs.push((sector, 1, 0));
    }

    /// Append `count` consecutive sectors starting at `base` — the shape
    /// the coalesced fast path produces. Identical to pushing each sector
    /// (a warp access spans at most 8 sectors, so the loop is tiny; the
    /// saving is upstream, in not materializing per-lane addresses).
    pub(crate) fn push_run(&mut self, base: u64, count: u32) {
        for k in 0..count as u64 {
            self.push(base + k);
        }
    }

    /// Replay the trace through the device-wide L2, crediting hit/miss
    /// sectors to `tally` exactly as the sequential engine would.
    /// Unit-stride runs go through [`L2Cache::access_run`] so replay
    /// benefits from the same generation-stamped memoization as direct
    /// execution (identical hit/miss decisions either way).
    pub(crate) fn replay(&self, l2: &mut L2Cache, tally: &mut AccessTally) {
        for &(base, count, step) in &self.runs {
            if step == 1 {
                let hits = l2.access_run(base, count);
                tally.l2_hit_sectors += hits;
                tally.dram_sectors += count as u64 - hits;
            } else {
                // Broadcast run: `count` touches of one sector.
                for _ in 0..count {
                    if l2.access(base) {
                        tally.l2_hit_sectors += 1;
                    } else {
                        tally.dram_sectors += 1;
                    }
                }
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn num_runs(&self) -> usize {
        self.runs.len()
    }
}

/// A set of global-buffer ids, used for read/write conflict detection
/// between speculatively-executed blocks. Buffer ids are small dense
/// integers, so a growable bitset beats hashing.
#[derive(Debug, Default, Clone)]
pub(crate) struct BufSet {
    words: Vec<u64>,
}

impl BufSet {
    pub(crate) fn insert(&mut self, id: u32) {
        let w = id as usize / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (id % 64);
    }

    pub(crate) fn contains(&self, id: u32) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    pub(crate) fn intersects(&self, other: &BufSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    pub(crate) fn union_with(&mut self, other: &BufSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_compresses_unit_stride_and_broadcast_runs() {
        let mut t = SectorTrace::default();
        for s in [10, 11, 12, 13] {
            t.push(s); // unit-stride run
        }
        for _ in 0..8 {
            t.push(40); // broadcast run
        }
        t.push(7); // singleton
        assert_eq!(t.num_runs(), 3);

        let mut l2 = L2Cache::new(1024);
        let mut tally = AccessTally::new();
        t.replay(&mut l2, &mut tally);
        // 6 distinct cold sectors; the 7 repeat touches of sector 40 hit.
        assert_eq!(tally.dram_sectors, 6);
        assert_eq!(tally.l2_hit_sectors, 7);
    }

    #[test]
    fn trace_replay_preserves_program_order() {
        // Same sector stream through replay and through direct access must
        // produce the same hit/miss sequence even with evictions.
        let stream: Vec<u64> = (0..10).chain(0..10).chain([3, 99, 3]).collect();
        let mut t = SectorTrace::default();
        let mut direct_l2 = L2Cache::new(4); // tiny: forces FIFO evictions
        let mut direct = AccessTally::new();
        for &s in &stream {
            t.push(s);
            if direct_l2.access(s) {
                direct.l2_hit_sectors += 1;
            } else {
                direct.dram_sectors += 1;
            }
        }
        let mut replay_l2 = L2Cache::new(4);
        let mut replayed = AccessTally::new();
        t.replay(&mut replay_l2, &mut replayed);
        assert_eq!(replayed.l2_hit_sectors, direct.l2_hit_sectors);
        assert_eq!(replayed.dram_sectors, direct.dram_sectors);
    }

    #[test]
    fn bufset_insert_contains_intersect() {
        let mut a = BufSet::default();
        a.insert(3);
        a.insert(130);
        assert!(a.contains(3) && a.contains(130) && !a.contains(4));
        let mut b = BufSet::default();
        b.insert(4);
        assert!(!a.intersects(&b));
        b.insert(130);
        assert!(a.intersects(&b));
        let mut c = BufSet::default();
        c.union_with(&a);
        assert!(c.contains(3) && c.contains(130));
    }
}
