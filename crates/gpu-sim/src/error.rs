//! Error type for the simulator.

use std::fmt;

/// Faults a simulated kernel or launch can raise.
///
/// These mirror the failure modes a CUDA programmer actually hits:
/// out-of-bounds device accesses, launch configurations exceeding device
/// limits, and using features the architecture lacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device-memory access outside an allocation (the simulator's
    /// analogue of `cudaErrorIllegalAddress`).
    OutOfBounds {
        what: String,
        index: usize,
        len: usize,
    },
    /// The launch configuration violates a device limit.
    InvalidLaunch { reason: String },
    /// A block allocated more shared memory than the per-block limit.
    SharedMemOverflow { requested: u64, limit: u64 },
    /// The kernel used warp shuffle on a device without it (pre-Kepler).
    ShuffleUnsupported { device: &'static str },
    /// A kernel declared more registers per thread than addressable.
    TooManyRegisters { requested: u32, limit: u32 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { what, index, len } => {
                write!(
                    f,
                    "out-of-bounds access to {what}: index {index} >= len {len}"
                )
            }
            SimError::InvalidLaunch { reason } => write!(f, "invalid launch: {reason}"),
            SimError::SharedMemOverflow { requested, limit } => write!(
                f,
                "shared memory overflow: block requested {requested} B > limit {limit} B"
            ),
            SimError::ShuffleUnsupported { device } => {
                write!(f, "warp shuffle is not supported on {device}")
            }
            SimError::TooManyRegisters { requested, limit } => {
                write!(
                    f,
                    "kernel declares {requested} registers/thread > device limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::OutOfBounds {
            what: "input".into(),
            index: 10,
            len: 4,
        };
        assert!(e.to_string().contains("input"));
        assert!(e.to_string().contains("10"));
        let e = SimError::SharedMemOverflow {
            requested: 100_000,
            limit: 49_152,
        };
        assert!(e.to_string().contains("49152"));
    }
}
