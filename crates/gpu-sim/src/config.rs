//! Device configurations and calibration constants.
//!
//! Latency numbers follow the sources the paper cites in §IV-A/§IV-B:
//! global memory ≈ 350 cycles, read-only data cache ≈ 92 cycles, shared
//! memory ≈ 28 cycles, registers ≈ 1 cycle, and bandwidths of ≈ 3 TB/s for
//! shared memory vs ≈ 1 TB/s for the read-only cache on a Maxwell-class
//! part. Everything else (SM counts, shared-memory sizes, register files)
//! comes from the public GTX 980/Titan X whitepapers referenced by the
//! paper.

/// How the engine schedules thread blocks onto host threads.
///
/// Both modes produce **bit-identical** outputs, access tallies and
/// first-fault reports: the parallel engine executes blocks speculatively
/// against a memory snapshot, then commits write logs and L2 sector
/// traces in block order (see `exec::engine`). The knob therefore only
/// trades host wall-clock time, never simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One host thread runs every block in grid order (the reference
    /// semantics).
    Sequential,
    /// Blocks are sharded across a scoped worker pool and committed
    /// deterministically in block order. `threads == 0` means "use
    /// [`std::thread::available_parallelism`]".
    Parallel { threads: usize },
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Parallel { threads: 0 }
    }
}

impl ExecMode {
    /// Number of worker threads this mode resolves to on this host.
    pub fn resolved_threads(&self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ExecMode::Parallel { threads } => *threads,
        }
    }
}

/// Access latencies in clock cycles for each step of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latencies {
    /// DRAM (global-memory miss) latency. Paper §IV-A: "about 350 cycles".
    pub global: f64,
    /// L2-hit latency. Measured ≈ 190 cycles on Maxwell (LPGPU poster the
    /// paper cites).
    pub l2: f64,
    /// Read-only data cache (texture path) hit latency. Paper §IV-A:
    /// "about 64 clock cycles higher" than shared memory, i.e. ≈ 92.
    pub roc: f64,
    /// Shared-memory latency. Paper §IV-A: 28 cycles, "lowest in GPUs".
    pub shared: f64,
    /// Register access latency (one cycle, paper §IV-A citing the CUDA
    /// best-practices guide).
    pub register: f64,
    /// Dependent-issue latency of a simple arithmetic instruction
    /// (Maxwell FP32 pipeline depth ≈ 6 cycles).
    pub alu: f64,
    /// Extra serialization cycles charged per *additional* lane that hits
    /// the same shared-memory address in one atomic warp instruction.
    pub shared_atomic_replay: f64,
    /// Extra serialization cycles per additional same-address lane for a
    /// global atomic (round-trips through L2's atomic units).
    pub global_atomic_replay: f64,
}

/// Sustained throughputs used by the timing model's busy-cycle accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughputs {
    /// Device-wide DRAM bandwidth in bytes per clock cycle.
    /// Titan X: 336 GB/s at ~1.0 GHz ⇒ 336 B/cycle.
    pub dram_bytes_per_cycle: f64,
    /// Device-wide *sustained* L2 bandwidth in bytes per cycle. The
    /// paper's Table III shows the L2-bound Naive-Out kernel achieving
    /// 437 GB/s; a 600 B/cycle (≈600 GB/s) sustained ceiling reproduces
    /// the ≈5.5× Naive-vs-tiled gap of its Figure 2.
    pub l2_bytes_per_cycle: f64,
    /// Read-only cache bandwidth per SM in bytes per cycle.
    /// Paper §IV-B: ≈ 1 TB/s aggregate ⇒ 1000/24 ≈ 42 B/cycle/SM.
    pub roc_bytes_per_cycle_per_sm: f64,
    /// Shared-memory bandwidth per SM in bytes per cycle: one 128-byte
    /// warp-wide access per cycle ⇒ 128 B/cycle/SM (≈ 3 TB/s aggregate on
    /// 24 SMs at 1 GHz, matching the paper's §IV-B).
    pub shared_bytes_per_cycle_per_sm: f64,
    /// Warp instructions issued per cycle per SM (number of warp
    /// schedulers; 4 on Kepler/Maxwell).
    pub issue_per_cycle_per_sm: f64,
    /// FP32 warp-instructions retired per cycle per SM
    /// (= cores_per_sm / 32; 4 on Maxwell's 128-core SM).
    pub alu_warps_per_cycle_per_sm: f64,
    /// Global atomic operations resolved per cycle, device-wide, in the
    /// absence of address conflicts (one per L2 slice; GM200 has 24
    /// slices but the atomic units sustain far less — calibrated so the
    /// naive SDH kernel lands an order of magnitude behind the privatized
    /// kernels, as in the paper's Figure 4).
    pub global_atomics_per_cycle: f64,
}

/// Full description of a simulated device.
///
/// The default preset, [`DeviceConfig::titan_x`], models the GTX Titan X
/// (Maxwell GM200) used in the paper's evaluation. Fermi and Kepler
/// presets are provided to study how the winning technique shifts across
/// architecture generations (the paper's §III-A observation that newer
/// architectures add features such as warp shuffle).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores (FP32 lanes) per SM.
    pub cores_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: u32,
    /// Shared memory capacity per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Shared memory limit per block in bytes.
    pub shared_mem_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_registers_per_thread: u32,
    /// Read-only data cache capacity per SM in bytes (24 KB usable per
    /// Maxwell SM partition pair).
    pub roc_capacity_per_sm: u32,
    /// L2 cache capacity in bytes (3 MB on GM200).
    pub l2_capacity: u32,
    /// Memory transaction granularity in bytes (32-byte sectors on
    /// Kepler+).
    pub sector_bytes: u32,
    /// Shared-memory banks per SM (32 four-byte-wide banks).
    pub shared_banks: u32,
    /// Core clock in GHz; converts cycles to seconds.
    pub clock_ghz: f64,
    /// Whether the device supports warp shuffle (Kepler and later — the
    /// paper's §IV-E2 notes shuffle arrived with Kepler).
    pub has_shuffle: bool,
    /// Latency table.
    pub lat: Latencies,
    /// Throughput table.
    pub thr: Throughputs,
    /// Host→device transfer bandwidth in GB/s (PCI-E; §III-A "Host can
    /// transfer data to the global memory via DMA over PCI-E link").
    /// PCIe 3.0 ×16 sustains ≈ 12 GB/s.
    pub pcie_gbps: f64,
    /// Fixed per-transfer launch/DMA-setup latency in microseconds.
    pub pcie_latency_us: f64,
    /// Memory-level parallelism per warp: how many outstanding memory
    /// operations a warp keeps in flight on average (dual-issue +
    /// non-blocking loads). Divides the latency-exposure bound.
    pub latency_ilp: f64,
    /// Fixed pipeline cost of a `__syncthreads()` per warp, in cycles.
    pub sync_cycles: f64,
    /// Re-convergence overhead charged whenever a warp executes an
    /// iteration with a partially-active mask (models the branch
    /// re-convergence stack; calibrated so removing intra-block
    /// divergence wins ≈ 12 % as in the paper's Figure 7).
    pub divergence_penalty_cycles: f64,
    /// How the functional engine maps thread blocks onto host threads.
    /// Purely a host-performance knob: results are bit-identical across
    /// modes.
    pub exec_mode: ExecMode,
    /// Route the interpreter through the retained scalar reference
    /// implementations (per-lane ALU loops, map+deque caches, nested-scan
    /// bank-conflict counting) instead of the vectorized fast paths.
    /// Results are bit-identical either way — this knob exists for
    /// differential testing and before/after host-performance
    /// measurement, never for accuracy.
    pub scalar_reference: bool,
    /// Execute whole inner tile passes through the fused interpreter ops
    /// (`WarpCtx::fused_tile_pass` and friends) and enable the
    /// generation-stamped L2/ROC hit memoization. Like
    /// [`DeviceConfig::scalar_reference`], purely a host-speed knob:
    /// outputs, tallies, timing and fault blame are bit-identical with it
    /// on or off. `false` reproduces the PR-2 vectorized op-by-op route.
    /// Ignored (treated as off) when `scalar_reference` is set.
    pub fused_tile: bool,
    /// Execute whole kernel plans through the compiled route
    /// (`exec::compiled`): tile fetches, inner tile passes and
    /// intra-block loops run as straight-line host code with their
    /// instruction/byte/sector accounting charged from precomputed
    /// closed-form tally deltas instead of per-dispatch interpretation.
    /// Any shape the compiler does not support — and any pass whose
    /// fault pre-flight fails — falls back to the fused/op-by-op routes,
    /// which stay bit-identical and serve as the differential oracle.
    /// Like the other route knobs this is purely a host-speed choice:
    /// outputs, tallies, timing and fault blame never change. Ignored
    /// (treated as off) when `scalar_reference` is set. On by default in
    /// every preset; the differential suites select the op
    /// (`with_compiled(false).with_fused_tile(false)`) and fused
    /// (`with_compiled(false)`) oracle routes explicitly.
    pub compiled: bool,
}

impl DeviceConfig {
    /// GTX Titan X (Maxwell GM200) — the paper's evaluation platform:
    /// 24 SMs × 128 cores, 12 GB GDDR5, 96 KB shared memory per SM.
    pub fn titan_x() -> Self {
        DeviceConfig {
            name: "GTX Titan X (Maxwell GM200)",
            num_sms: 24,
            cores_per_sm: 128,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 96 * 1024,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 64 * 1024,
            max_registers_per_thread: 255,
            roc_capacity_per_sm: 24 * 1024,
            l2_capacity: 3 * 1024 * 1024,
            sector_bytes: 32,
            shared_banks: 32,
            clock_ghz: 1.0,
            has_shuffle: true,
            lat: Latencies {
                global: 350.0,
                l2: 190.0,
                roc: 92.0,
                shared: 28.0,
                register: 1.0,
                alu: 6.0,
                shared_atomic_replay: 6.0,
                global_atomic_replay: 120.0,
            },
            thr: Throughputs {
                dram_bytes_per_cycle: 336.0,
                l2_bytes_per_cycle: 600.0,
                roc_bytes_per_cycle_per_sm: 42.0,
                shared_bytes_per_cycle_per_sm: 128.0,
                issue_per_cycle_per_sm: 4.0,
                alu_warps_per_cycle_per_sm: 4.0,
                global_atomics_per_cycle: 0.5,
            },
            pcie_gbps: 12.0,
            pcie_latency_us: 10.0,
            latency_ilp: 1.5,
            sync_cycles: 24.0,
            divergence_penalty_cycles: 10.0,
            exec_mode: ExecMode::Parallel { threads: 0 },
            scalar_reference: false,
            fused_tile: true,
            compiled: true,
        }
    }

    /// Tesla K40 (Kepler GK110b): 15 SMX × 192 cores, 48 KB shared/SM.
    /// First generation with warp shuffle.
    pub fn kepler_k40() -> Self {
        DeviceConfig {
            name: "Tesla K40 (Kepler GK110b)",
            num_sms: 15,
            cores_per_sm: 192,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 64 * 1024,
            max_registers_per_thread: 255,
            roc_capacity_per_sm: 48 * 1024,
            l2_capacity: 1536 * 1024,
            sector_bytes: 32,
            shared_banks: 32,
            clock_ghz: 0.745,
            has_shuffle: true,
            lat: Latencies {
                global: 340.0,
                l2: 200.0,
                roc: 110.0,
                shared: 48.0,
                register: 1.0,
                alu: 9.0,
                shared_atomic_replay: 18.0,
                global_atomic_replay: 150.0,
            },
            thr: Throughputs {
                dram_bytes_per_cycle: 386.0,
                l2_bytes_per_cycle: 430.0,
                roc_bytes_per_cycle_per_sm: 48.0,
                shared_bytes_per_cycle_per_sm: 128.0,
                issue_per_cycle_per_sm: 4.0,
                alu_warps_per_cycle_per_sm: 6.0,
                global_atomics_per_cycle: 1.0,
            },
            pcie_gbps: 12.0,
            pcie_latency_us: 10.0,
            latency_ilp: 1.3,
            sync_cycles: 30.0,
            divergence_penalty_cycles: 14.0,
            exec_mode: ExecMode::Parallel { threads: 0 },
            scalar_reference: false,
            fused_tile: true,
            compiled: true,
        }
    }

    /// GTX 580 (Fermi GF110): 16 SM × 32 cores; no warp shuffle, no
    /// dedicated read-only data cache path, much slower atomics.
    pub fn fermi_gtx580() -> Self {
        DeviceConfig {
            name: "GTX 580 (Fermi GF110)",
            num_sms: 16,
            cores_per_sm: 32,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 32 * 1024,
            max_registers_per_thread: 63,
            roc_capacity_per_sm: 12 * 1024,
            l2_capacity: 768 * 1024,
            sector_bytes: 32,
            shared_banks: 32,
            clock_ghz: 1.544,
            has_shuffle: false,
            lat: Latencies {
                global: 420.0,
                l2: 240.0,
                roc: 160.0,
                shared: 50.0,
                register: 1.0,
                alu: 18.0,
                shared_atomic_replay: 40.0,
                global_atomic_replay: 300.0,
            },
            thr: Throughputs {
                dram_bytes_per_cycle: 124.0,
                l2_bytes_per_cycle: 250.0,
                roc_bytes_per_cycle_per_sm: 16.0,
                shared_bytes_per_cycle_per_sm: 64.0,
                issue_per_cycle_per_sm: 2.0,
                alu_warps_per_cycle_per_sm: 1.0,
                global_atomics_per_cycle: 0.25,
            },
            pcie_gbps: 6.0,
            pcie_latency_us: 12.0,
            latency_ilp: 1.1,
            sync_cycles: 40.0,
            divergence_penalty_cycles: 16.0,
            exec_mode: ExecMode::Parallel { threads: 0 },
            scalar_reference: false,
            fused_tile: true,
            compiled: true,
        }
    }

    /// Builder-style override of the block-scheduling mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Builder-style toggle of the scalar reference interpreter (see the
    /// [`DeviceConfig::scalar_reference`] field). Host-speed knob only;
    /// simulation results never change.
    pub fn with_scalar_reference(mut self, on: bool) -> Self {
        self.scalar_reference = on;
        self
    }

    /// Builder-style toggle of the fused tile-execution layer (see the
    /// [`DeviceConfig::fused_tile`] field). Host-speed knob only;
    /// simulation results never change. `false` selects the PR-2
    /// vectorized op-by-op route.
    pub fn with_fused_tile(mut self, on: bool) -> Self {
        self.fused_tile = on;
        self
    }

    /// Builder-style toggle of the compiled plan-execution layer (see
    /// the [`DeviceConfig::compiled`] field). Host-speed knob only;
    /// simulation results never change. Unsupported shapes fall back to
    /// the fused route when [`DeviceConfig::fused_tile`] is on, or the
    /// vectorized op-by-op route otherwise.
    pub fn with_compiled(mut self, on: bool) -> Self {
        self.compiled = on;
        self
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / crate::WARP_SIZE as u32
    }

    /// Convert a cycle count into seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// Number of 32-byte sectors the L2 can hold.
    pub fn l2_sectors(&self) -> usize {
        (self.l2_capacity / self.sector_bytes) as usize
    }

    /// Number of sectors the per-SM read-only cache can hold.
    pub fn roc_sectors(&self) -> usize {
        (self.roc_capacity_per_sm / self.sector_bytes) as usize
    }

    /// Simulated host↔device transfer time for `bytes` over PCI-E.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.pcie_latency_us * 1e-6 + bytes as f64 / (self.pcie_gbps * 1e9)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_paper_platform() {
        let cfg = DeviceConfig::titan_x();
        // Paper §III-A: up to 16+ multiprocessors, 96 KB shared memory,
        // warp size 32; §IV-A latencies 350/92/28/1.
        assert_eq!(cfg.shared_mem_per_sm, 96 * 1024);
        assert_eq!(cfg.lat.global, 350.0);
        assert_eq!(cfg.lat.roc, 92.0);
        assert_eq!(cfg.lat.shared, 28.0);
        assert_eq!(cfg.lat.register, 1.0);
        assert!(cfg.has_shuffle);
    }

    #[test]
    fn aggregate_bandwidths_match_paper_claims() {
        let cfg = DeviceConfig::titan_x();
        // §IV-B: shared ≈ 3 TB/s vs ROC ≈ 1 TB/s.
        let shared_tbps =
            cfg.thr.shared_bytes_per_cycle_per_sm * cfg.num_sms as f64 * cfg.clock_ghz / 1000.0;
        let roc_tbps =
            cfg.thr.roc_bytes_per_cycle_per_sm * cfg.num_sms as f64 * cfg.clock_ghz / 1000.0;
        assert!(
            (2.5..3.5).contains(&shared_tbps),
            "shared {shared_tbps} TB/s"
        );
        assert!((0.8..1.2).contains(&roc_tbps), "roc {roc_tbps} TB/s");
    }

    #[test]
    fn max_warps_and_unit_conversions() {
        let cfg = DeviceConfig::titan_x();
        assert_eq!(cfg.max_warps_per_sm(), 64);
        assert_eq!(cfg.cycles_to_seconds(1e9), 1.0);
        assert_eq!(cfg.l2_sectors(), 3 * 1024 * 1024 / 32);
    }

    #[test]
    fn pcie_transfer_model() {
        let cfg = DeviceConfig::titan_x();
        // 1 GB at 12 GB/s ≈ 83 ms; tiny transfers are latency-bound.
        let big = cfg.transfer_seconds(1 << 30);
        assert!((0.08..0.1).contains(&big), "{big}");
        let tiny = cfg.transfer_seconds(64);
        assert!(tiny >= 1e-5, "{tiny}");
        // An N = 2M 3-D upload (24 MB) is ~2 ms — small next to the
        // seconds-scale kernels, which is why the paper can ignore it.
        let upload = cfg.transfer_seconds(2_000_000 * 12);
        assert!(upload < 5e-3, "{upload}");
    }

    #[test]
    fn fermi_lacks_shuffle() {
        assert!(!DeviceConfig::fermi_gtx580().has_shuffle);
        assert!(DeviceConfig::kepler_k40().has_shuffle);
    }
}
