//! Profiler-style kernel reports.
//!
//! [`KernelProfile`] packages exactly the metrics the paper reads off the
//! NVidia Visual Profiler: per-unit utilization percentages (Tables II
//! and IV) and achieved bandwidth per memory system (Table III).

use crate::config::DeviceConfig;
use crate::occupancy::Occupancy;
use crate::tally::AccessTally;
use crate::timing::{Resource, TimingBreakdown};

/// Achieved-bandwidth figures in GB/s, one per memory system, as in the
/// paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AchievedBandwidth {
    /// Shared-memory bytes moved per second.
    pub shared_gbps: f64,
    /// L2 traffic (all global-path sectors) per second.
    pub l2_gbps: f64,
    /// Read-only ("data") cache traffic per second.
    pub roc_gbps: f64,
    /// Useful global load traffic per second ("Global Load" column).
    pub global_load_gbps: f64,
    /// DRAM traffic per second.
    pub dram_gbps: f64,
}

/// A complete per-kernel profiling report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name as reported by [`crate::exec::Kernel::name`].
    pub kernel: String,
    /// Utilization of the arithmetic pipes in `[0, 1]` (Tables II/IV
    /// "Arithmetic Operation").
    pub arithmetic_utilization: f64,
    /// Utilization of instruction issue by control flow (Tables II/IV
    /// "Control-flow Operation").
    pub control_flow_utilization: f64,
    /// The memory unit with the highest utilization and its value —
    /// the "Memory" column of Tables II/IV.
    pub memory_bottleneck: Resource,
    pub memory_utilization: f64,
    /// Utilization per memory unit (shared, ROC, L2, DRAM).
    pub shared_utilization: f64,
    pub roc_utilization: f64,
    pub l2_utilization: f64,
    pub dram_utilization: f64,
    /// Achieved bandwidths (Table III).
    pub bandwidth: AchievedBandwidth,
    /// SIMD efficiency (1.0 = divergence-free).
    pub simd_efficiency: f64,
    /// Achieved occupancy.
    pub occupancy: f64,
}

impl KernelProfile {
    /// Build a profile from a run's tally, occupancy and timing.
    pub fn build(
        kernel: &str,
        cfg: &DeviceConfig,
        tally: &AccessTally,
        occ: &Occupancy,
        timing: &TimingBreakdown,
    ) -> Self {
        let secs = timing.seconds.max(1e-30);
        let sector = cfg.sector_bytes as f64;
        let gb = 1e9;
        let bandwidth = AchievedBandwidth {
            shared_gbps: tally.shared_bytes as f64 / secs / gb,
            l2_gbps: tally.global_sectors() as f64 * sector / secs / gb,
            roc_gbps: tally.roc_hit_sectors as f64 * sector / secs / gb,
            global_load_gbps: tally.global_load_bytes as f64 / secs / gb,
            dram_gbps: tally.dram_sectors as f64 * sector / secs / gb,
        };

        // Control-flow utilization: issue slots spent on control
        // instructions relative to kernel time.
        let eff_issue = cfg.thr.issue_per_cycle_per_sm;
        let control_cycles = tally.control_instructions as f64 / eff_issue / (cfg.num_sms as f64)
            + tally.divergent_iterations as f64 * cfg.divergence_penalty_cycles
                / cfg.num_sms as f64;
        let control_flow_utilization = (control_cycles / timing.cycles.max(1e-30)).min(1.0);

        let shared_utilization = timing.utilization(Resource::SharedMem);
        let roc_utilization = timing.utilization(Resource::Roc);
        let l2_utilization = timing.utilization(Resource::L2);
        let dram_utilization = timing.utilization(Resource::Dram);
        let mem = [
            (shared_utilization, Resource::SharedMem),
            (roc_utilization, Resource::Roc),
            (l2_utilization, Resource::L2),
            (dram_utilization, Resource::Dram),
            (
                timing.utilization(Resource::GlobalAtomic),
                Resource::GlobalAtomic,
            ),
        ];
        let (memory_utilization, memory_bottleneck) = mem.iter().fold(
            (0.0, Resource::L2),
            |(bu, br), &(u, r)| {
                if u > bu {
                    (u, r)
                } else {
                    (bu, br)
                }
            },
        );

        KernelProfile {
            kernel: kernel.to_string(),
            arithmetic_utilization: timing.utilization(Resource::Alu),
            control_flow_utilization,
            memory_bottleneck,
            memory_utilization,
            shared_utilization,
            roc_utilization,
            l2_utilization,
            dram_utilization,
            bandwidth,
            simd_efficiency: tally.simd_efficiency(),
            occupancy: occ.occupancy,
        }
    }

    /// Render one row in the style of the paper's Table II/IV:
    /// `kernel | arithmetic % | control-flow % | memory (unit)`.
    pub fn utilization_row(&self) -> String {
        format!(
            "{:<14} {:>6.1}% {:>6.1}%   {:>5.1}% ({})",
            self.kernel,
            self.arithmetic_utilization * 100.0,
            self.control_flow_utilization * 100.0,
            self.memory_utilization * 100.0,
            self.memory_bottleneck.name()
        )
    }

    /// Render one row in the style of the paper's Table III:
    /// `kernel | shared | L2 | data cache | global load`.
    pub fn bandwidth_row(&self) -> String {
        fn fmt(gbps: f64) -> String {
            if gbps >= 1000.0 {
                format!("{:.2} TB/s", gbps / 1000.0)
            } else {
                format!("{:.0} GB/s", gbps)
            }
        }
        format!(
            "{:<14} {:>11} {:>11} {:>11} {:>11}",
            self.kernel,
            fmt(self.bandwidth.shared_gbps),
            fmt(self.bandwidth.l2_gbps),
            fmt(self.bandwidth.roc_gbps),
            fmt(self.bandwidth.global_load_gbps),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;
    use crate::timing::TimingModel;

    #[test]
    fn profile_reports_shared_memory_bottleneck() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 10_000,
            shared_load_instructions: 9_000,
            shared_transactions: 9_000,
            shared_bytes: 9_000 * 128,
            ..Default::default()
        };
        let occ = occupancy(&cfg, 1000, 1024, 32, 4096);
        let timing = TimingModel::new(&cfg).estimate(&t, &occ, 1000);
        let p = KernelProfile::build("reg-shm", &cfg, &t, &occ, &timing);
        assert_eq!(p.memory_bottleneck, Resource::SharedMem);
        assert!(p.memory_utilization > 0.9);
        assert!(p.bandwidth.shared_gbps > 0.0);
    }

    #[test]
    fn rows_render_without_panicking() {
        let cfg = DeviceConfig::titan_x();
        let t = AccessTally {
            warp_instructions: 10,
            alu_instructions: 5,
            ..Default::default()
        };
        let occ = occupancy(&cfg, 10, 256, 16, 0);
        let timing = TimingModel::new(&cfg).estimate(&t, &occ, 10);
        let p = KernelProfile::build("naive", &cfg, &t, &occ, &timing);
        assert!(p.utilization_row().contains("naive"));
        assert!(p.bandwidth_row().contains("naive"));
    }

    #[test]
    fn bandwidth_scales_with_bytes() {
        let cfg = DeviceConfig::titan_x();
        let mk = |bytes: u64| {
            let t = AccessTally {
                warp_instructions: 1000,
                shared_load_instructions: 1000,
                shared_transactions: 1000,
                shared_bytes: bytes,
                alu_instructions: 100_000, // fixes the runtime
                ..Default::default()
            };
            let occ = occupancy(&cfg, 1000, 1024, 32, 0);
            let timing = TimingModel::new(&cfg).estimate(&t, &occ, 1000);
            KernelProfile::build("k", &cfg, &t, &occ, &timing)
                .bandwidth
                .shared_gbps
        };
        let b1 = mk(1 << 20);
        let b2 = mk(1 << 21);
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
    }
}
