//! # gpu-sim — a warp-level SIMT GPU simulator
//!
//! This crate is the hardware substrate for the `twobody-rs` reproduction of
//! *"Efficient 2-Body Statistics Computation on GPUs: Parallelization &
//! Beyond"* (Pitaksirianan, Nouri, Tu — ICPP 2016). The paper's experiments
//! ran on an NVidia Titan X; this crate provides a software model of that
//! class of device so the paper's kernels can be executed, instrumented and
//! timed without GPU hardware.
//!
//! ## What is modeled
//!
//! * **SIMT execution** — kernels are written at *warp* granularity: every
//!   operation acts on 32 lanes under an explicit active [`Mask`], so
//!   divergence is a first-class, measurable effect (see
//!   [`exec::WarpCtx::divergent_loop`]).
//! * **The memory hierarchy** — global memory with coalescing into 32-byte
//!   sectors and a functional FIFO L2 cache, the read-only data cache
//!   (a.k.a. texture path, `const __restrict__` in CUDA), per-block shared
//!   memory with 32-bank conflict modeling, and registers.
//! * **Atomics** — shared- and global-memory atomic adds with contention
//!   serialization measured from the actual addresses touched by each warp.
//! * **Occupancy** — blocks-per-SM limits from threads, registers, shared
//!   memory and block slots, reproducing the step functions of the paper's
//!   Figure 5.
//! * **Timing** — a calibrated throughput/latency model
//!   ([`timing::TimingModel`]) converts instrumented access tallies into
//!   simulated kernel time, per-unit utilization and achieved bandwidth —
//!   the same quantities the paper reads off the NVidia Visual Profiler
//!   (its Tables II, III and IV).
//!
//! ## What is *not* modeled
//!
//! Instruction encodings, ECC, TLBs, texture filtering, and clock
//! throttling. The goal is faithful *relative* behaviour of the paper's
//! optimization techniques, not cycle-exact emulation; every calibration
//! constant lives in [`config::DeviceConfig`] with a comment citing its
//! source.
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::prelude::*;
//!
//! /// A kernel that doubles every element of a buffer.
//! struct DoubleKernel {
//!     input: BufF32,
//!     output: BufF32,
//!     n: u32,
//! }
//!
//! impl Kernel for DoubleKernel {
//!     fn name(&self) -> &'static str {
//!         "double"
//!     }
//!
//!     fn resources(&self) -> KernelResources {
//!         KernelResources::new(8, 0)
//!     }
//!
//!     fn run_block(&self, blk: &mut BlockCtx<'_>) {
//!         blk.for_each_warp(|w| {
//!             let tid = w.thread_ids();
//!             let mask = w.mask_lt(&tid, self.n);
//!             let x = w.global_load_f32(self.input, &tid, mask);
//!             let doubled = w.mul_f32(&x, 2.0, mask);
//!             w.global_store_f32(self.output, &tid, &doubled, mask);
//!         });
//!     }
//! }
//!
//! let mut dev = Device::new(DeviceConfig::titan_x());
//! let input = dev.alloc_f32((0..100).map(|i| i as f32).collect());
//! let output = dev.alloc_f32_zeroed(100);
//! let kernel = DoubleKernel { input, output, n: 100 };
//! let run = dev.launch(&kernel, LaunchConfig::for_n_threads(100, 64));
//! assert_eq!(dev.f32_slice(output)[3], 6.0);
//! assert!(run.timing.seconds > 0.0);
//! ```

pub mod config;
pub mod device;
pub mod error;
pub mod exec;
pub mod mem;
pub mod occupancy;
pub mod profile;
pub mod serialize;
pub mod tally;
pub mod timing;

/// Number of lanes in a warp. Fixed at 32 on every NVidia architecture the
/// paper considers (Fermi, Kepler, Maxwell).
pub const WARP_SIZE: usize = 32;

/// A 32-lane vector of `f32` values, one per warp lane.
pub type F32x32 = [f32; WARP_SIZE];
/// A 32-lane vector of `u32` values, one per warp lane.
pub type U32x32 = [u32; WARP_SIZE];
/// A 32-lane vector of `u64` values, one per warp lane.
pub type U64x32 = [u64; WARP_SIZE];

pub use config::{DeviceConfig, ExecMode, Latencies, Throughputs};
pub use device::Device;
pub use error::SimError;
pub use exec::{
    sqrt_lt_threshold, BlockCtx, CompiledKernel, CompiledSinkSpec, CompiledTile, FusedConsumer,
    FusedPred, FusedSink, FusedSrc, Kernel, KernelResources, KernelRun, LaunchConfig, Mask,
    WarpCtx,
};
pub use mem::{BufF32, BufU32, BufU64, ShmF32, ShmU32, ShmU64};
pub use occupancy::{Occupancy, OccupancyLimiter};
pub use profile::KernelProfile;
pub use tally::{AccessTally, InterpStats};
pub use timing::{Resource, TimingBreakdown, TimingModel};

/// One-stop imports for writing and launching kernels.
pub mod prelude {
    pub use crate::config::{DeviceConfig, ExecMode};
    pub use crate::device::Device;
    pub use crate::exec::{
        BlockCtx, CompiledKernel, CompiledSinkSpec, CompiledTile, FusedConsumer, FusedPred,
        FusedSink, FusedSrc, Kernel, KernelResources, KernelRun, LaunchConfig, Mask, WarpCtx,
    };
    pub use crate::mem::{BufF32, BufU32, BufU64, ShmF32, ShmU32, ShmU64};
    pub use crate::occupancy::Occupancy;
    pub use crate::profile::KernelProfile;
    pub use crate::tally::{AccessTally, InterpStats};
    pub use crate::timing::{Resource, TimingBreakdown};
    pub use crate::{F32x32, U32x32, U64x32, WARP_SIZE};
}
