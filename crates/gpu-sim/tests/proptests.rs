//! Property-based tests of the simulator's invariants.

use gpu_sim::mem::{count_sectors, L2Cache, RocCache, SharedSpace};
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceConfig, Mask, WARP_SIZE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sector_count_is_bounded_by_lanes_and_span(
        addrs in prop::collection::vec(0u64..1_000_000, 0..32)
    ) {
        let n = count_sectors(&addrs, 32);
        prop_assert!(n as usize <= addrs.len());
        if !addrs.is_empty() {
            let lo = *addrs.iter().min().unwrap() / 32;
            let hi = *addrs.iter().max().unwrap() / 32;
            prop_assert!(n >= 1);
            prop_assert!(n <= hi - lo + 1);
        } else {
            prop_assert_eq!(n, 0);
        }
    }

    #[test]
    fn sector_count_is_permutation_invariant(
        mut addrs in prop::collection::vec(0u64..100_000, 1..32),
        seed in 0u64..1000
    ) {
        let before = count_sectors(&addrs, 32);
        // Deterministic shuffle.
        let mut s = seed;
        for i in (1..addrs.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            addrs.swap(i, (s % (i as u64 + 1)) as usize);
        }
        prop_assert_eq!(count_sectors(&addrs, 32), before);
    }

    #[test]
    fn mask_algebra_laws(a in any::<u32>(), b in any::<u32>()) {
        let (ma, mb) = (Mask(a), Mask(b));
        prop_assert_eq!(ma.and(mb), mb.and(ma));
        prop_assert_eq!(ma.or(mb), mb.or(ma));
        prop_assert_eq!(ma.and(mb).count() + ma.and_not(mb).count(), ma.count());
        prop_assert_eq!(ma.lanes().count() as u32, ma.count());
        prop_assert_eq!(ma.and(Mask::FULL), ma);
        prop_assert_eq!(ma.and(Mask::NONE), Mask::NONE);
    }

    #[test]
    fn bank_conflict_degree_is_within_hardware_bounds(
        idxs in prop::collection::vec(0u32..4096, 1..32)
    ) {
        let mut shm = SharedSpace::new(32);
        let arr = shm.alloc_f32(4096);
        let txns = shm.transactions_for(0, &idxs);
        let _ = arr;
        prop_assert!(txns >= 1);
        prop_assert!(txns <= WARP_SIZE as u64, "at most one replay per lane");
        // Distinct words bound the degree too.
        let mut uniq = idxs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert!(txns <= uniq.len() as u64);
    }

    #[test]
    fn cache_accounting_balances(sectors in prop::collection::vec(0u64..512, 1..500)) {
        let mut l2 = L2Cache::new(64);
        let mut roc = RocCache::new(16);
        for &s in &sectors {
            l2.access(s);
            roc.access(s);
        }
        prop_assert_eq!(l2.hits() + l2.misses(), sectors.len() as u64);
        prop_assert_eq!(roc.hits() + roc.misses(), sectors.len() as u64);
        // (No hit-count comparison between cache sizes: FIFO replacement
        // is subject to Belady's anomaly.)
    }

    #[test]
    fn occupancy_is_monotone_in_shared_usage(
        block_dim in prop::sample::select(vec![64u32, 128, 256, 512, 1024]),
        regs in 8u32..64,
        shm1 in 0u32..40_000,
        extra in 0u32..8_000,
    ) {
        let cfg = DeviceConfig::titan_x();
        let lo = occupancy(&cfg, 10_000, block_dim, regs, shm1);
        let hi = occupancy(&cfg, 10_000, block_dim, regs, shm1 + extra);
        prop_assert!(hi.blocks_per_sm <= lo.blocks_per_sm);
        prop_assert!(hi.occupancy <= lo.occupancy + 1e-12);
        prop_assert!(lo.occupancy <= 1.0 && hi.occupancy <= 1.0);
    }

    #[test]
    fn occupancy_is_monotone_in_register_usage(
        block_dim in prop::sample::select(vec![64u32, 128, 256]),
        regs in 8u32..120,
        extra in 0u32..64,
    ) {
        let cfg = DeviceConfig::titan_x();
        let lo = occupancy(&cfg, 10_000, block_dim, regs, 0);
        let hi = occupancy(&cfg, 10_000, block_dim, regs + extra, 0);
        prop_assert!(hi.blocks_per_sm <= lo.blocks_per_sm);
    }
}
