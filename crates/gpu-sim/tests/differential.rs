//! Differential tests: the vectorized fast paths against the retained
//! scalar reference implementations.
//!
//! `DeviceConfig::with_scalar_reference(true)` routes the interpreter to
//! the original per-lane code (HashMap+VecDeque caches, nested-scan bank
//! conflicts, `from_fn` ALU ops, no access-shape detection). These tests
//! drive randomized kernels and access streams through both routes and
//! assert **bit-identical** outputs, [`AccessTally`] counters, simulated
//! timing and fault reports — the contract that makes the fast paths an
//! optimization rather than a behaviour change.

use gpu_sim::mem::{L2Cache, RocCache, SharedSpace};
use gpu_sim::prelude::*;
use gpu_sim::SimError;
use proptest::prelude::*;

/// CI exec-engine override: `TBS_DIFF_EXEC=sequential|parallel` pins
/// every device this suite builds to one execution engine, so the whole
/// differential contract is exercised under both the sequential and the
/// speculative parallel block executor (`threads: 2` forces the real
/// speculate/commit path even on a single-core host). Unset, devices
/// keep [`DeviceConfig`]'s own default. The torture proptest keeps its
/// explicit per-case mode axis regardless.
///
/// `TBS_DIFF_ROUTE=op|fused|compiled` is the interpreter-route axis of
/// the same matrix: it re-points every *default-route* device (compiled
/// on, fused tiles on, not the scalar reference) at the named route, so
/// CI can sweep {op-by-op, fused, compiled} × {sequential, parallel}.
/// Devices that explicitly selected a non-default route — the op-by-op
/// (`with_compiled(false).with_fused_tile(false)`), fused
/// (`with_compiled(false)`) and scalar legs of each differential — are
/// never touched, which keeps every bit-identity comparison meaningful
/// under any pin. Those explicit legs keep their route-*engagement*
/// asserts armed under every pin; only the default device's asserts
/// (compiled engagement) stand down when the environment re-points it,
/// guarded by [`route_pinned`].
fn exec_override(cfg: DeviceConfig) -> DeviceConfig {
    let cfg = match std::env::var("TBS_DIFF_EXEC").as_deref() {
        Ok("sequential") => cfg.with_exec_mode(ExecMode::Sequential),
        Ok("parallel") => cfg.with_exec_mode(ExecMode::Parallel { threads: 2 }),
        _ => cfg,
    };
    if cfg.scalar_reference || !cfg.fused_tile || !cfg.compiled {
        return cfg; // an explicitly chosen route: leave it alone
    }
    match std::env::var("TBS_DIFF_ROUTE").as_deref() {
        Ok("op") => cfg.with_compiled(false).with_fused_tile(false),
        Ok("fused") => cfg.with_compiled(false),
        _ => cfg, // "compiled" (and unset) keep the default route
    }
}

/// True when `TBS_DIFF_ROUTE` re-points the default-route devices away
/// from their default, in which case which executor engages on *those*
/// devices is pinned by the environment and the default-device
/// engagement asserts must stand down (identity asserts all still
/// apply). `TBS_DIFF_ROUTE=compiled` names the default route, so it
/// keeps them armed — the CI matrix's compiled leg proves compilation
/// actually engaged rather than silently falling back. The explicit op
/// and fused legs of each differential never read the environment, so
/// their engagement asserts stay armed regardless.
fn route_pinned() -> bool {
    matches!(
        std::env::var("TBS_DIFF_ROUTE").as_deref(),
        Ok(v) if v != "compiled"
    )
}

// ---------------------------------------------------------------------------
// Unit-level differentials: cache bodies and bank-conflict counting
// ---------------------------------------------------------------------------

proptest! {
    /// Open-addressed FIFO L2 vs the HashMap+VecDeque reference: every
    /// single access must make the same hit/miss decision, under thrash
    /// (capacity 1) and comfortable capacities alike.
    #[test]
    fn l2_fast_and_reference_agree_per_access(
        cap in 1usize..64,
        sectors in prop::collection::vec(0u64..256, 0..600),
    ) {
        let mut fast = L2Cache::new(cap);
        let mut refc = L2Cache::new_reference(cap);
        for &s in &sectors {
            prop_assert_eq!(fast.access(s), refc.access(s), "sector {}", s);
        }
        prop_assert_eq!(fast.hits(), refc.hits());
        prop_assert_eq!(fast.misses(), refc.misses());
    }

    /// Same contract for the read-only data cache.
    #[test]
    fn roc_fast_and_reference_agree_per_access(
        cap in 1usize..48,
        sectors in prop::collection::vec(0u64..192, 0..600),
    ) {
        let mut fast = RocCache::new(cap);
        let mut refc = RocCache::new_reference(cap);
        for &s in &sectors {
            prop_assert_eq!(fast.access(s), refc.access(s), "sector {}", s);
        }
        prop_assert_eq!(fast.hits(), refc.hits());
        prop_assert_eq!(fast.misses(), refc.misses());
    }

    /// Bank-conflict degree: bitset dedup + broadcast/unit-stride fast
    /// paths vs the original nested scan, across bank counts (including
    /// the degenerate 1-bank and >32-bank configurations) and element
    /// widths (f32 → 1 word/elem, u64 → 2 words/elem).
    #[test]
    fn bank_conflict_degree_matches_reference(
        banks in prop::sample::select(vec![1u32, 2, 16, 32, 33, 48]),
        idxs in prop::collection::vec(0u32..512, 0..32),
        stride in 0u32..40,
        pattern in 0u8..4,
    ) {
        let build = |scalar: bool| {
            let mut shm = SharedSpace::new(banks);
            shm.set_scalar_reference(scalar);
            shm.alloc_f32(2048); // array 0: 1 word/element
            shm.alloc_u64(2048); // array 1: 2 words/element
            shm
        };
        let fast = build(false);
        let refc = build(true);

        let idxs: Vec<u32> = match pattern {
            0 => idxs,                                          // random gather
            1 => (0..idxs.len() as u32).collect(),              // unit stride
            2 => idxs.iter().map(|_| stride % 2048).collect(),  // broadcast
            _ => (0..idxs.len() as u32)
                .map(|k| (k * stride) % 2048)
                .collect(),                                     // strided
        };
        for arr in [0usize, 1] {
            prop_assert_eq!(
                fast.transactions_for(arr, &idxs),
                refc.transactions_for(arr, &idxs),
                "banks={} pattern={} arr={}", banks, pattern, arr
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-op differential: every vectorized ALU op, arbitrary masks
// ---------------------------------------------------------------------------

/// Applies every vectorized ALU op under an *arbitrary* (not necessarily
/// prefix) mask and stores the full-width results, so inactive-lane
/// values produced by the branch-free blend are directly visible in the
/// output buffers.
struct AluKernel {
    a: BufF32,
    b: BufF32,
    c: BufF32,
    outs: [BufF32; 5],
    lt_out: BufU32,
    u_outs: [BufU32; 2],
    mask_bits: u32,
    scale: f32,
    thresh: f32,
    addend: u32,
    modulus: u32,
}

impl Kernel for AluKernel {
    fn name(&self) -> &'static str {
        "alu_differential"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(16, 0)
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let full = Mask::FULL;
            let m = Mask(self.mask_bits);
            let a = w.global_load_f32(self.a, &tid, full);
            let b = w.global_load_f32(self.b, &tid, full);
            let c = w.global_load_f32(self.c, &tid, full);

            let sub = w.sub_f32x(&a, &b, m);
            let add = w.add_f32x(&a, &b, m);
            let fma = w.fma_f32x(&a, &b, &c, m);
            let mul = w.mul_f32(&a, self.scale, m);
            let sq = w.sqrt_f32x(&fma, m);
            for (out, vals) in self.outs.iter().zip([&sub, &add, &fma, &mul, &sq]) {
                w.global_store_f32(*out, &tid, vals, full);
            }

            // Visualize the lt mask by storing ones under it.
            let ltm = w.lt_f32(&sq, self.thresh, m);
            let ones = [1u32; WARP_SIZE];
            w.global_store_u32(self.lt_out, &tid, &ones, ltm);

            let au = w.add_u32(&tid, self.addend, m);
            let mu = w.mod_u32(&tid, self.modulus, m);
            for (out, vals) in self.u_outs.iter().zip([&au, &mu]) {
                w.global_store_u32(*out, &tid, vals, full);
            }
        });
    }
}

fn run_alu(
    dev: &mut Device,
    k_in: (&[f32], &[f32], &[f32]),
    params: (u32, f32, f32, u32, u32),
) -> (Vec<u32>, KernelRun) {
    let (a, b, c) = k_in;
    let kernel = AluKernel {
        a: dev.alloc_f32(a.to_vec()),
        b: dev.alloc_f32(b.to_vec()),
        c: dev.alloc_f32(c.to_vec()),
        outs: [(); 5].map(|_| dev.alloc_f32_zeroed(WARP_SIZE)),
        lt_out: dev.alloc_u32_zeroed(WARP_SIZE),
        u_outs: [(); 2].map(|_| dev.alloc_u32_zeroed(WARP_SIZE)),
        mask_bits: params.0,
        scale: params.1,
        thresh: params.2,
        addend: params.3,
        modulus: params.4,
    };
    let run = dev.launch(&kernel, LaunchConfig::for_n_threads(WARP_SIZE as u32, 32));
    let mut bits = Vec::new();
    for o in kernel.outs {
        bits.extend(dev.f32_slice(o).iter().map(|v| v.to_bits()));
    }
    bits.extend_from_slice(dev.u32_slice(kernel.lt_out));
    for o in kernel.u_outs {
        bits.extend_from_slice(dev.u32_slice(o));
    }
    (bits, run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every ALU lane op, fast vs reference, including inactive-lane bit
    /// patterns (blend must produce exactly the reference's zeros) and
    /// the empty mask.
    #[test]
    fn alu_ops_bit_identical_under_any_mask(
        a in prop::collection::vec(-1e4f32..1e4, 32..33),
        b in prop::collection::vec(-1e4f32..1e4, 32..33),
        c in prop::collection::vec(-1e4f32..1e4, 32..33),
        mask_sel in 0u8..3,
        mask_raw in any::<u32>(),
        scale in -8f32..8.0,
        thresh in 0f32..2e8,
        addend in any::<u32>(),
        modulus in 1u32..100,
    ) {
        let mask_bits = match mask_sel {
            0 => Mask::NONE.0,
            1 => Mask::FULL.0,
            _ => mask_raw,
        };
        let params = (mask_bits, scale, thresh, addend, modulus);
        let mut fast = Device::new(exec_override(DeviceConfig::titan_x()));
        let mut refd = Device::new(exec_override(
            DeviceConfig::titan_x().with_scalar_reference(true),
        ));
        let (fo, fr) = run_alu(&mut fast, (&a, &b, &c), params);
        let (ro, rr) = run_alu(&mut refd, (&a, &b, &c), params);
        prop_assert_eq!(fo, ro);
        prop_assert_eq!(&fr.tally, &rr.tally);
        prop_assert_eq!(fr.timing.seconds.to_bits(), rr.timing.seconds.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Whole-kernel differential: memory shapes, divergence, atomics, faults
// ---------------------------------------------------------------------------

/// A torture kernel crossing every access-shape fast path: unit-stride
/// and gathered global loads, ROC loads, shared tiles, shared and global
/// atomics under non-prefix masks, and a data-dependent divergent loop.
/// The launch is padded past `n`, so the tail has a ragged warp and the
/// padding produces fully-empty masks.
struct TortureKernel {
    input: BufF32,
    gidx: BufU32,
    seeds: BufU64,
    out: BufF32,
    out64: BufU64,
    hist: BufU32,
    acc: BufU64,
    n: u32,
    thresh: f32,
}

impl Kernel for TortureKernel {
    fn name(&self) -> &'static str {
        "torture_differential"
    }

    fn resources(&self) -> KernelResources {
        // 192 threads max per block → 192*4 + 64*4 + 32*8 bytes shared.
        KernelResources::new(24, 192 * 4 + 64 * 4 + 32 * 8)
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let tile = blk.shared_alloc_f32(blk.block_dim as usize);
        let shist = blk.shared_alloc_u32(64);
        let stash = blk.shared_alloc_u64(32);
        blk.for_each_warp(|w| {
            let lid = w.lane_ids();
            let tid = w.thread_ids();
            let gtid = w.global_thread_ids();
            let mask = w.mask_lt(&gtid, self.n); // ragged tail + empty pads

            // Unit-stride load, gathered load, ROC load.
            let idx = w.global_load_u32(self.gidx, &gtid, mask);
            let x = w.global_load_f32(self.input, &gtid, mask);
            let y = w.global_load_f32(self.input, &idx, mask);
            let z = w.roc_load_f32(self.input, &idx, mask);

            // ALU chain feeding a non-prefix inner mask.
            let d = w.sub_f32x(&x, &y, mask);
            let zero = [0.0f32; WARP_SIZE];
            let d2 = w.fma_f32x(&d, &d, &zero, mask);
            let s = w.sqrt_f32x(&d2, mask);
            let inner = w.lt_f32(&s, self.thresh, mask); // arbitrary subset

            // Shared tile: unit-stride store/load, gathered atomic.
            w.shared_store_f32(tile, &tid, &x, mask);
            let t = w.shared_load_f32(tile, &tid, mask);
            let bin = w.mod_u32(&idx, 64, mask);
            let ones = [1u32; WARP_SIZE];
            w.shared_atomic_add_u32(shist, &bin, &ones, inner);

            // Shared u64 round-trip on lane ids (broadcast-free stride).
            let sv = w.global_load_u64(self.seeds, &lid, mask);
            w.shared_store_u64(stash, &lid, &sv, mask);
            let sv2 = w.shared_load_u64(stash, &lid, mask);

            // Data-dependent divergent loop with global atomics inside.
            let trips = w.mod_u32(&idx, 5, mask);
            w.divergent_loop(&trips, mask, |w, _j, active| {
                let gbin = w.mod_u32(&idx, 61, active);
                w.global_atomic_add_u32(self.hist, &gbin, &ones, active);
            });

            // Global atomics under the non-prefix inner mask.
            w.global_atomic_add_u64(self.acc, &bin, &sv2, inner);

            // Results out: unit-stride f32 store, gathered u64 store.
            let r = w.add_f32x(&t, &z, mask);
            w.global_store_f32(self.out, &gtid, &r, mask);
            w.global_store_u64(self.out64, &gtid, &sv2, mask);
        });
    }
}

struct TortureSetup {
    input: Vec<f32>,
    gidx: Vec<u32>,
    seeds: Vec<u64>,
    n: u32,
    padded: u32,
    block_dim: u32,
    thresh: f32,
}

fn run_torture(dev: &mut Device, s: &TortureSetup) -> Result<(Vec<u64>, KernelRun), SimError> {
    let kernel = TortureKernel {
        input: dev.alloc_f32(s.input.clone()),
        gidx: dev.alloc_u32(s.gidx.clone()),
        seeds: dev.alloc_u64(s.seeds.clone()),
        out: dev.alloc_f32_zeroed(s.padded as usize),
        out64: dev.alloc_u64_zeroed(s.padded as usize),
        hist: dev.alloc_u32_zeroed(61),
        acc: dev.alloc_u64_zeroed(64),
        n: s.n,
        thresh: s.thresh,
    };
    let run = dev.try_launch(&kernel, LaunchConfig::for_n_threads(s.padded, s.block_dim))?;
    let mut out = Vec::new();
    out.extend(dev.f32_slice(kernel.out).iter().map(|v| v.to_bits() as u64));
    out.extend_from_slice(dev.u64_slice(kernel.out64));
    out.extend(dev.u32_slice(kernel.hist).iter().map(|&v| v as u64));
    out.extend_from_slice(dev.u64_slice(kernel.acc));
    Ok((out, run))
}

/// Assemble a [`TortureSetup`] from independently-generated raw material
/// (the vendored proptest shim has no `prop_flat_map`, so length-coupled
/// vectors are generated at max size and sliced down here).
#[allow(clippy::too_many_arguments)]
fn make_setup(
    n: u32,
    pad: u32,
    block_dim: u32,
    input_raw: &[f32],
    gidx_raw: &[u32],
    seeds: Vec<u64>,
    pattern: u8,
    stride: u32,
    thresh: f32,
) -> TortureSetup {
    let len = n + 4;
    let mut gidx: Vec<u32> = gidx_raw[..(n + pad) as usize].to_vec();
    match pattern {
        0 => {
            for g in &mut gidx {
                *g %= len; // random gather
            }
        }
        1 => {
            for (k, g) in gidx.iter_mut().enumerate() {
                *g = k as u32 % len; // unit stride (mod wrap)
            }
        }
        2 => gidx.fill(stride % len), // broadcast
        _ => {
            for (k, g) in gidx.iter_mut().enumerate() {
                *g = (k as u32 * stride) % len; // strided
            }
        }
    }
    TortureSetup {
        input: input_raw[..len as usize].to_vec(),
        gidx,
        seeds,
        n,
        padded: n + pad,
        block_dim,
        thresh,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full interpreter, fast vs reference: outputs, tallies and
    /// simulated timing must agree bit-for-bit across gather shapes,
    /// ragged tails, empty warps and divergent control flow — in both
    /// execution modes on the fast side.
    #[test]
    fn torture_kernel_bit_identical(
        n in 1u32..260,
        pad in 0u32..70,
        block_dim in prop::sample::select(vec![32u32, 64, 96, 128, 160]),
        input_raw in prop::collection::vec(-100f32..100.0, 264..265),
        gidx_raw in prop::collection::vec(0u32..1 << 30, 330..331),
        seeds in prop::collection::vec(0u64..u64::MAX, 32..33),
        pattern in 0u8..4,
        stride in 1u32..80,
        thresh in 0f32..120.0,
        parallel in any::<bool>(),
    ) {
        let setup = make_setup(
            n, pad, block_dim, &input_raw, &gidx_raw, seeds, pattern, stride, thresh,
        );
        // threads: 2 forces the real speculate/commit path even on a
        // single-core host (threads: 0 would fall back to sequential).
        let mode = if parallel {
            ExecMode::Parallel { threads: 2 }
        } else {
            ExecMode::Sequential
        };
        let mut fast = Device::new(DeviceConfig::titan_x().with_exec_mode(mode));
        let mut refd = Device::new(
            DeviceConfig::titan_x()
                .with_exec_mode(ExecMode::Sequential)
                .with_scalar_reference(true),
        );
        let (fo, fr) = run_torture(&mut fast, &setup).expect("fast run faulted");
        let (ro, rr) = run_torture(&mut refd, &setup).expect("reference run faulted");
        prop_assert_eq!(fo, ro);
        prop_assert_eq!(&fr.tally, &rr.tally);
        prop_assert_eq!(fr.timing.seconds.to_bits(), rr.timing.seconds.to_bits());
    }

    /// Fault parity: a single out-of-bounds gather index must produce the
    /// *same* `SimError` (same blamed index, same buffer) from both
    /// routes, no matter where in the warp it lands — the fast paths'
    /// speculative bounds checks must not change first-fault blame.
    #[test]
    fn out_of_bounds_blame_is_identical(
        n in 1u32..260,
        pad in 0u32..70,
        block_dim in prop::sample::select(vec![32u32, 64, 96, 128, 160]),
        input_raw in prop::collection::vec(-100f32..100.0, 264..265),
        gidx_raw in prop::collection::vec(0u32..1 << 30, 330..331),
        seeds in prop::collection::vec(0u64..u64::MAX, 32..33),
        pattern in 0u8..4,
        stride in 1u32..80,
        oob_pos_seed in any::<u32>(),
        oob_excess in 0u32..10,
    ) {
        let mut setup = make_setup(
            n, pad, block_dim, &input_raw, &gidx_raw, seeds, pattern, stride, 60.0,
        );
        let pos = (oob_pos_seed as usize) % setup.gidx.len();
        setup.gidx[pos] = setup.input.len() as u32 + oob_excess;
        let mut fast = Device::new(exec_override(DeviceConfig::titan_x()));
        let mut refd = Device::new(exec_override(
            DeviceConfig::titan_x().with_scalar_reference(true),
        ));
        let fe = run_torture(&mut fast, &setup).err();
        let re = run_torture(&mut refd, &setup).err();
        prop_assert_eq!(&fe, &re);
        if (pos as u32) < setup.n {
            prop_assert!(fe.is_some(), "OOB index at live position {} not reported", pos);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------------

fn fixed_setup(n: u32, pad: u32, block_dim: u32) -> TortureSetup {
    let len = n as usize + 4;
    TortureSetup {
        input: (0..len).map(|i| (i as f32) * 0.75 - 40.0).collect(),
        gidx: (0..(n + pad)).map(|k| (k * 7) % len as u32).collect(),
        seeds: (0..32)
            .map(|k| 0x9E37_79B9u64.wrapping_mul(k + 1))
            .collect(),
        n,
        padded: n + pad,
        block_dim,
        thresh: 25.0,
    }
}

#[test]
fn ragged_last_warp_and_empty_pad_warps_match() {
    // n = 33: one full warp + a 1-lane ragged warp; pad adds two blocks
    // of entirely-empty masks past n.
    for (n, pad, bd) in [(33, 0, 64), (33, 128, 64), (1, 31, 32), (95, 65, 96)] {
        let setup = fixed_setup(n, pad, bd);
        let mut fast = Device::new(exec_override(DeviceConfig::titan_x()));
        let mut refd = Device::new(exec_override(
            DeviceConfig::titan_x().with_scalar_reference(true),
        ));
        let (fo, fr) = run_torture(&mut fast, &setup).unwrap();
        let (ro, rr) = run_torture(&mut refd, &setup).unwrap();
        assert_eq!(fo, ro, "outputs diverge at n={n} pad={pad} bd={bd}");
        assert_eq!(
            fr.tally, rr.tally,
            "tallies diverge at n={n} pad={pad} bd={bd}"
        );
    }
}

#[test]
fn zero_thread_launch_is_identical_noop() {
    let setup = fixed_setup(1, 0, 32);
    let run = |scalar: bool| {
        let mut dev = Device::new(exec_override(
            DeviceConfig::titan_x().with_scalar_reference(scalar),
        ));
        let kernel = TortureKernel {
            input: dev.alloc_f32(setup.input.clone()),
            gidx: dev.alloc_u32(setup.gidx.clone()),
            seeds: dev.alloc_u64(setup.seeds.clone()),
            out: dev.alloc_f32_zeroed(4),
            out64: dev.alloc_u64_zeroed(4),
            hist: dev.alloc_u32_zeroed(61),
            acc: dev.alloc_u64_zeroed(64),
            n: 0,
            thresh: 1.0,
        };
        dev.try_launch(&kernel, LaunchConfig::for_n_threads(0, 64))
            .unwrap()
    };
    let (f, r) = (run(false), run(true));
    assert_eq!(f.tally, r.tally);
    assert_eq!(f.tally, AccessTally::new());
}

// ---------------------------------------------------------------------------
// Fused tile passes: the batched executor vs its op-by-op mirror
// ---------------------------------------------------------------------------

/// Which operand source the probe drives through the fused executor.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ProbeSrc {
    Shared,
    Roc,
    Lane,
}

/// Which closed-form predicate the probe hands to the fused pass.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ProbePred {
    All,
    NotEqual,
    LessThan,
}

/// Which output consumer the probe drives: per-lane register tallies
/// (`CountLt`) or a privatized shared histogram with the given bucket
/// count (`Hist`), whose fused route replaces the simulated per-step
/// shared atomic with closed-form scatter accounting.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ProbeOut {
    CountLt,
    Hist(u32),
}

impl ProbeOut {
    fn buckets(self) -> u32 {
        match self {
            ProbeOut::CountLt => 0,
            ProbeOut::Hist(b) => b,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct ProbeSpec {
    /// Live threads (gid < n) — also an upper bound on point indices.
    n: u32,
    /// Points in the coordinate buffers.
    n_pts: u32,
    /// Tile length handed to the fused pass.
    len: u32,
    /// Shared-tile allocation length (< `len` forces the fallback to
    /// fault on an OOB shared read the fused pre-check must also see).
    tile_len: u32,
    /// Tile base element.
    start: u32,
    radius: f32,
    src: ProbeSrc,
    pred: ProbePred,
    /// ANDed into each warp's valid mask — forces empty / non-prefix
    /// masks onto the fused entry point.
    squeeze: Option<u32>,
    /// Output stage: register tallies or a privatized histogram.
    out: ProbeOut,
    /// Shared-histogram allocation override (< `buckets` forces the
    /// compiled and fused sink pre-flights to decline so the op-by-op
    /// scatter faults at the exact offending bucket).
    hist_alloc: Option<u32>,
    /// Poison this coordinate index with NaN in both dimensions:
    /// NaN distances must ride the sinks bit-identically (saturating
    /// to bucket 0, failing every radius compare).
    poison: Option<u32>,
}

/// A miniature Register-SHM-style inner loop with D = 2: one fused
/// Euclidean `CountLt` tile pass per warp, with the exact op-by-op
/// sequence the tiling kernels interpret as the fallback. A run where
/// fusion is declined (mask shape, OOB source, `fused_tile` off, scalar
/// reference) must stay bit-identical to a run where it engages.
struct FusedProbeKernel {
    spec: ProbeSpec,
    coords: [BufF32; 2],
    out: BufU64,
    /// Per-block flush of the privatized histogram (`grid × buckets`).
    hist_out: BufU32,
}

fn euclid2(a: &[f32; 2], b: &[f32; 2]) -> f32 {
    // Must match `fused_euclidean_tile`'s eval (sub + fma, then sqrt).
    let mut s = 0.0f32;
    for d in 0..2 {
        let diff = a[d] - b[d];
        s = diff.mul_add(diff, s);
    }
    s.sqrt()
}

impl Kernel for FusedProbeKernel {
    fn name(&self) -> &'static str {
        "fused_probe"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(32, (2 * self.spec.tile_len + self.spec.out.buckets()) * 4)
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let p = self.spec;
        let mut acc = vec![[0u64; WARP_SIZE]; blk.num_warps() as usize];

        // Stage the tile in shared memory (both routes, op by op). The
        // allocation happens for every source kind (it is part of the
        // declared resources); only the Shared probe fills and reads it.
        let tile: [ShmF32; 2] = [
            blk.shared_alloc_f32(p.tile_len as usize),
            blk.shared_alloc_f32(p.tile_len as usize),
        ];
        if p.src == ProbeSrc::Shared {
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let m = w
                    .mask_lt(&tid, p.tile_len.min(p.len))
                    .and(w.active_threads());
                for (t, c) in tile.iter().zip(self.coords.iter()) {
                    let src: U32x32 = std::array::from_fn(|i| p.start + tid[i]);
                    let v = w.global_load_f32(*c, &src, m);
                    w.shared_store_f32(*t, &tid, &v, m);
                }
            });
            blk.syncthreads();
        }

        // Privatized histogram staging for the `Hist` consumer:
        // allocate and cooperatively zero it, exactly like
        // `SharedHistogramAction::begin_block`. A `hist_alloc` override
        // under-sizes the allocation (the zero/flush loops stay in
        // bounds; only the scatter faults).
        let hb = p.out.buckets();
        let hb_alloc = p.hist_alloc.unwrap_or(hb).min(hb.max(1));
        let shist = (hb > 0).then(|| blk.shared_alloc_u32(hb_alloc as usize));
        if let Some(h) = shist {
            let bd = blk.block_dim;
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let mut off = 0u32;
                while off < hb_alloc {
                    let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                    let m = w.mask_lt(&idx, hb_alloc).and(w.active_threads());
                    if m.any() {
                        w.shared_store_u32(h, &idx, &[0; WARP_SIZE], m);
                    }
                    off += bd;
                }
            });
            blk.syncthreads();
        }
        // Histogram geometry: the probe's distances overflow the top
        // bucket on purpose, so the clamp produces scatter pileups.
        let inv_width = hb as f32 / (4.0 * p.radius);
        let hmax = hb.saturating_sub(1);

        // Lower the plan once per block, like the tiling kernels do
        // (`None` unless the device enables the compiled route).
        let sink = match p.out {
            ProbeOut::CountLt => CompiledSinkSpec::CountLt { radius: p.radius },
            ProbeOut::Hist(_) => CompiledSinkSpec::Histogram { inv_width, hmax },
        };
        let ck = CompiledKernel::lower(blk.config(), 2, p.len, sink);

        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let mut valid = w.mask_lt(&gid, p.n).and(w.active_threads());
            if let Some(s) = p.squeeze {
                valid = valid.and(Mask(s));
            }

            // Own point, derived host-side — identical on every route.
            let own: [F32x32; 2] = std::array::from_fn(|d| {
                std::array::from_fn(|i| (gid[i] % 97) as f32 * 0.37 + d as f32)
            });

            // Lane source: one coalesced load per lane, like the shuffle
            // kernel's fragment prologue (outside the fused region).
            let lane = w.lane_ids();
            let reg1: [F32x32; 2] = if p.src == ProbeSrc::Lane {
                let idx: U32x32 = std::array::from_fn(|i| p.start + lane[i]);
                let lm = w.mask_lt(&lane, p.len).and(w.active_threads());
                std::array::from_fn(|d| w.global_load_f32(self.coords[d], &idx, lm))
            } else {
                [[0.0; WARP_SIZE]; 2]
            };

            let pred = match p.pred {
                ProbePred::All => FusedPred::All,
                ProbePred::NotEqual => FusedPred::NotEqual {
                    gid0: gid[0],
                    base: p.start,
                },
                ProbePred::LessThan => FusedPred::LessThan {
                    gid0: gid[0],
                    base: p.start,
                },
            };
            let src = match p.src {
                ProbeSrc::Shared => FusedSrc::SharedBroadcast(&tile),
                ProbeSrc::Roc => FusedSrc::RocBroadcast {
                    bufs: &self.coords,
                    start: p.start,
                },
                ProbeSrc::Lane => FusedSrc::LaneBroadcast(&reg1),
            };

            w.charge_control(p.len as u64 + 1, valid);
            let a = &mut acc[w.warp_id as usize];
            // Route order exactly as the tiling kernels: compiled,
            // then fused, then the op-by-op mirror below.
            if let Some(ckk) = ck.as_ref() {
                let consumer = match p.out {
                    ProbeOut::CountLt => FusedConsumer::CountLt {
                        radius: p.radius,
                        acc: &mut *a,
                    },
                    ProbeOut::Hist(_) => FusedConsumer::Histogram {
                        inv_width,
                        hmax,
                        shm: shist.expect("Hist probe allocates its histogram"),
                    },
                };
                if w.compiled_euclidean_tile(ckk, src, p.len, pred, &own, consumer, valid) {
                    return;
                }
            }
            let consumer = match p.out {
                ProbeOut::CountLt => FusedConsumer::CountLt {
                    radius: p.radius,
                    acc: &mut *a,
                },
                ProbeOut::Hist(_) => FusedConsumer::Histogram {
                    inv_width,
                    hmax,
                    shm: shist.expect("Hist probe allocates its histogram"),
                },
            };
            if w.fused_euclidean_tile(src, p.len, pred, &own, consumer, valid) {
                return;
            }

            // The op-by-op mirror — the exact sequence the tiling
            // kernels interpret when fusion is unavailable.
            for j in 0..p.len {
                let rj: [F32x32; 2] = match p.src {
                    ProbeSrc::Shared => {
                        std::array::from_fn(|d| w.shared_load_f32(tile[d], &[j; WARP_SIZE], valid))
                    }
                    ProbeSrc::Roc => std::array::from_fn(|d| {
                        w.roc_load_f32(self.coords[d], &[p.start + j; WARP_SIZE], valid)
                    }),
                    ProbeSrc::Lane => std::array::from_fn(|d| w.shfl_bcast_f32(&reg1[d], j, valid)),
                };
                let pm = match p.pred {
                    ProbePred::All => valid,
                    ProbePred::NotEqual => {
                        Mask::from_fn(|i| valid.lane(i) && gid[i] != p.start + j)
                    }
                    ProbePred::LessThan => Mask::from_fn(|i| valid.lane(i) && gid[i] < p.start + j),
                };
                if p.pred != ProbePred::All {
                    w.charge_alu(1, valid);
                }
                if !pm.any() {
                    continue;
                }
                // Euclidean::eval ≡ cost ALU charge + per-lane host math.
                w.charge_alu(2 * 2 + 1, pm);
                let dval: F32x32 = std::array::from_fn(|i| {
                    if pm.lane(i) {
                        euclid2(&[own[0][i], own[1][i]], &[rj[0][i], rj[1][i]])
                    } else {
                        0.0
                    }
                });
                match p.out {
                    ProbeOut::CountLt => {
                        // CountWithinRadius::process — compare +
                        // predicated add.
                        let hits = w.lt_f32(&dval, p.radius, pm);
                        w.charge_alu(1, pm);
                        for l in hits.lanes() {
                            a[l] += 1;
                        }
                    }
                    ProbeOut::Hist(_) => {
                        // SharedHistogramAction::process —
                        // `bucket_lanes` (2 ALU, CUDA saturate-to-zero
                        // cast + clamp) and one simulated shared atomic
                        // whose data-dependent serialization the fused
                        // route must reproduce in closed form.
                        w.charge_alu(2, pm);
                        let bucket: U32x32 = std::array::from_fn(|i| {
                            if pm.lane(i) {
                                ((dval[i] * inv_width) as u32).min(hmax)
                            } else {
                                0
                            }
                        });
                        let h = shist.expect("Hist probe allocates its histogram");
                        w.shared_atomic_add_u32(h, &bucket, &[1; WARP_SIZE], pm);
                    }
                }
            }
        });

        let out = self.out;
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.active_threads();
            w.global_store_u64(out, &gid, &acc[w.warp_id as usize], m);
        });

        // Flush the private histogram to its per-block region so the
        // host can compare route outputs (cf.
        // `SharedHistogramAction::end_block`).
        if let Some(h) = shist {
            blk.syncthreads();
            let base = blk.block_id * hb;
            let bd = blk.block_dim;
            let hist_out = self.hist_out;
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let mut off = 0u32;
                while off < hb_alloc {
                    let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                    let m = w.mask_lt(&idx, hb_alloc).and(w.active_threads());
                    if m.any() {
                        let vals = w.shared_load_u32(h, &idx, m);
                        let slot: U32x32 = std::array::from_fn(|i| base + idx[i]);
                        w.global_store_u32(hist_out, &slot, &vals, m);
                    }
                    off += bd;
                }
            });
        }
    }
}

fn probe_coords(n_pts: u32) -> Vec<f32> {
    (0..n_pts)
        .map(|i| ((i * 37 + 11) % 113) as f32 * 0.29 - 12.0)
        .collect()
}

fn run_probe(cfg: DeviceConfig, spec: ProbeSpec) -> Result<(Vec<u64>, KernelRun), SimError> {
    let mut dev = Device::new(exec_override(cfg));
    let mut c0 = probe_coords(spec.n_pts);
    let mut c1: Vec<f32> = c0.iter().map(|x| x * 1.7 + 3.0).collect();
    if let Some(i) = spec.poison {
        c0[i as usize] = f32::NAN;
        c1[i as usize] = f32::NAN;
    }
    let coords = [dev.alloc_f32(c0), dev.alloc_f32(c1)];
    let lc = LaunchConfig::for_n_threads(spec.n.max(1), 64);
    let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
    let hist_out = dev.alloc_u32_zeroed((lc.grid_dim * spec.out.buckets()).max(1) as usize);
    let kernel = FusedProbeKernel {
        spec,
        coords,
        out,
        hist_out,
    };
    let run = dev.try_launch(&kernel, lc)?;
    let mut o: Vec<u64> = dev.u64_slice(out).to_vec();
    o.extend(dev.u32_slice(hist_out).iter().map(|&v| v as u64));
    Ok((o, run))
}

/// Run a probe on the fused, default (compiled), op-by-op and scalar
/// routes; demand bit-identical outputs, tallies and timing; return the
/// `[fused, default]` runs for engagement asserts. The fused and
/// op-by-op legs are *explicit* (`with_compiled(false)`), so their
/// route asserts hold under every `TBS_DIFF_ROUTE` pin; only the
/// default leg is environment-overridable.
fn probe_identical(spec: ProbeSpec) -> [KernelRun; 2] {
    let (of, rf) = run_probe(DeviceConfig::titan_x().with_compiled(false), spec).unwrap();
    let (oc, rc) = run_probe(DeviceConfig::titan_x(), spec).unwrap();
    let (ov, rv) = run_probe(
        DeviceConfig::titan_x()
            .with_compiled(false)
            .with_fused_tile(false),
        spec,
    )
    .unwrap();
    let (os, rs) = run_probe(DeviceConfig::titan_x().with_scalar_reference(true), spec).unwrap();
    assert_eq!(of, oc, "fused vs compiled outputs ({spec:?})");
    assert_eq!(of, ov, "fused vs op-by-op outputs ({spec:?})");
    assert_eq!(of, os, "fused vs scalar outputs ({spec:?})");
    assert_eq!(rf.tally, rc.tally, "fused vs compiled tally ({spec:?})");
    assert_eq!(rf.tally, rv.tally, "fused vs op-by-op tally ({spec:?})");
    assert_eq!(rf.tally, rs.tally, "fused vs scalar tally ({spec:?})");
    assert_eq!(rf.timing.seconds.to_bits(), rc.timing.seconds.to_bits());
    assert_eq!(rf.timing.seconds.to_bits(), rv.timing.seconds.to_bits());
    assert_eq!(rf.timing.seconds.to_bits(), rs.timing.seconds.to_bits());
    assert_eq!(rf.interp.compiled_ops, 0, "fused leg must not compile");
    assert_eq!(rv.interp.fused_ops, 0);
    assert_eq!(rs.interp.fused_ops, 0);
    assert_eq!(rv.interp.compiled_ops, 0);
    assert_eq!(rs.interp.compiled_ops, 0);
    [rf, rc]
}

fn base_spec() -> ProbeSpec {
    ProbeSpec {
        n: 128,
        n_pts: 128,
        len: 48,
        tile_len: 48,
        start: 40,
        radius: 9.0,
        src: ProbeSrc::Shared,
        pred: ProbePred::All,
        squeeze: None,
        out: ProbeOut::CountLt,
        hist_alloc: None,
        poison: None,
    }
}

#[test]
fn fused_probe_engages_for_every_source_and_predicate() {
    for src in [ProbeSrc::Shared, ProbeSrc::Roc, ProbeSrc::Lane] {
        for pred in [ProbePred::All, ProbePred::NotEqual, ProbePred::LessThan] {
            let mut spec = base_spec();
            spec.src = src;
            spec.pred = pred;
            if src == ProbeSrc::Lane {
                spec.len = 24; // lane tiles are at most one warp wide
            }
            let [rf, rc] = probe_identical(spec);
            assert!(
                rf.interp.fused_ops > 0,
                "{src:?}/{pred:?} must take the fused path"
            );
            if !route_pinned() {
                assert!(
                    rc.interp.compiled_ops > 0,
                    "{src:?}/{pred:?} must lower on the compiled route"
                );
                assert_eq!(
                    rc.interp.fused_ops, 0,
                    "{src:?}/{pred:?} compiled route must not fall back"
                );
            }
        }
    }
}

#[test]
fn fused_declines_ragged_and_sub_warp_masks_identically() {
    // Live-thread raggedness keeps valid a prefix: still fused (and
    // still compiled).
    let mut spec = base_spec();
    spec.n = 100; // last warp holds 4 live lanes
    let [rf, rc] = probe_identical(spec);
    assert!(rf.interp.fused_ops > 0, "prefix ragged warps must fuse");
    if !route_pinned() {
        assert!(rc.interp.compiled_ops > 0, "prefix ragged warps must lower");
    }

    // A non-prefix valid mask must decline — bit-identically, on the
    // compiled route too.
    spec.n = 128;
    spec.squeeze = Some(0xFFFF_FFF7); // hole at lane 3
    let [rf, rc] = probe_identical(spec);
    assert_eq!(rf.interp.fused_ops, 0, "non-prefix masks must not fuse");
    assert_eq!(rc.interp.compiled_ops, 0, "non-prefix masks must not lower");
}

#[test]
fn fused_is_a_noop_on_empty_masks_and_empty_tiles() {
    // Empty valid mask: the fused entry must return false with no side
    // effects; both routes then run the (empty-mask) op-by-op loop.
    let mut spec = base_spec();
    spec.squeeze = Some(0);
    let [rf, rc] = probe_identical(spec);
    assert_eq!(rf.interp.fused_ops, 0);
    assert_eq!(rc.interp.compiled_ops, 0);

    // Zero-length tile: nothing to do on any route.
    let mut spec = base_spec();
    spec.len = 0;
    spec.tile_len = 1; // keep a non-empty shared allocation
    let [rf, rc] = probe_identical(spec);
    assert_eq!(rf.interp.fused_ops, 0);
    assert_eq!(rc.interp.compiled_ops, 0);
}

#[test]
fn fused_oob_blame_matches_op_by_op_exactly() {
    // Shared source: tile shorter than the pass — the fused *and*
    // compiled pre-checks must decline so the fallback faults at the
    // exact op-by-op step, with identical blame.
    let mut spec = base_spec();
    spec.tile_len = 20; // reads j = 20.. fault
    let fe = run_probe(DeviceConfig::titan_x().with_compiled(false), spec).err();
    let ce = run_probe(DeviceConfig::titan_x(), spec).err();
    let ve = run_probe(
        DeviceConfig::titan_x()
            .with_compiled(false)
            .with_fused_tile(false),
        spec,
    )
    .err();
    let se = run_probe(DeviceConfig::titan_x().with_scalar_reference(true), spec).err();
    assert!(fe.is_some(), "short shared tile must fault");
    assert_eq!(fe, ce, "compiled-route blame differs from fused");
    assert_eq!(fe, ve, "fused-route blame differs from op-by-op");
    assert_eq!(fe, se, "fused-route blame differs from scalar");

    // ROC source: tile range runs past the coordinate buffers.
    let mut spec = base_spec();
    spec.src = ProbeSrc::Roc;
    spec.start = 100; // 100 + 48 > 128 points
    let fe = run_probe(DeviceConfig::titan_x().with_compiled(false), spec).err();
    let ce = run_probe(DeviceConfig::titan_x(), spec).err();
    let ve = run_probe(
        DeviceConfig::titan_x()
            .with_compiled(false)
            .with_fused_tile(false),
        spec,
    )
    .err();
    let se = run_probe(DeviceConfig::titan_x().with_scalar_reference(true), spec).err();
    assert!(fe.is_some(), "OOB ROC tile must fault");
    assert_eq!(fe, ce, "compiled-route blame differs from fused");
    assert_eq!(fe, ve);
    assert_eq!(fe, se);
}

// ---------------------------------------------------------------------------
// Fused scatter accounting vs the op-by-op simulated shared atomic
// ---------------------------------------------------------------------------

#[test]
fn fused_scatter_conflict_accounting_matches_op_by_op() {
    // The fused Histogram consumer replaces the simulated per-step
    // shared atomic with `SharedSpace::atomic_scatter_accounting`; the
    // serialization, transaction and bank-replay counters (and the
    // histogram contents) must agree bit-for-bit with the op-by-op and
    // scalar routes on every conflict shape — from a single-bucket
    // pileup (full warp-wide serialization) through spread scatters
    // with same-bank word conflicts.
    for buckets in [1u32, 4, 48, 64] {
        for pred in [ProbePred::All, ProbePred::NotEqual, ProbePred::LessThan] {
            let mut spec = base_spec();
            spec.out = ProbeOut::Hist(buckets);
            spec.pred = pred;
            let [rf, rc] = probe_identical(spec);
            assert!(
                rf.interp.fused_ops > 0,
                "hist({buckets})/{pred:?} must take the fused path"
            );
            if !route_pinned() {
                // The compiled histogram sink covers every bucket count
                // and predicate here — no fused fallback.
                assert!(
                    rc.interp.compiled_ops > 0,
                    "hist({buckets})/{pred:?} must lower on the compiled route"
                );
                assert_eq!(rc.interp.fused_ops, 0);
            }
            assert!(rf.tally.shared_atomics > 0, "hist({buckets}) must scatter");
            if buckets == 1 {
                // Pileup sanity: every active lane lands on the same
                // word, so serialization must exceed the atomic count.
                assert!(rf.tally.shared_atomic_serial > rf.tally.shared_atomics);
            }
        }
    }
}

#[test]
fn fused_scatter_declines_to_op_by_op_atomics_identically() {
    // A ragged prefix mask still fuses — closed-form accounting covers
    // the partial warp.
    let mut spec = base_spec();
    spec.out = ProbeOut::Hist(32);
    spec.n = 100; // last warp holds 4 live lanes
    let [rf, rc] = probe_identical(spec);
    assert!(rf.interp.fused_ops > 0, "prefix ragged warps must fuse");
    if !route_pinned() {
        assert!(
            rc.interp.compiled_ops > 0,
            "ragged-prefix histogram sinks must lower"
        );
    }
    assert!(rf.tally.shared_atomics > 0);

    // A non-prefix squeeze declines the whole pass, so the op-by-op
    // simulated atomics must reproduce exactly what the closed form
    // would have charged (the tally comparison inside
    // `probe_identical` enforces this against the other routes).
    spec.n = 128;
    spec.squeeze = Some(0x0F0F_0F0F);
    let [rf, rc] = probe_identical(spec);
    assert_eq!(
        rf.interp.fused_ops, 0,
        "non-prefix masks must scatter op-by-op"
    );
    assert_eq!(rc.interp.compiled_ops, 0);
    assert!(rf.tally.shared_atomics > 0);
}

#[test]
fn compiled_sink_oob_bucket_blame_matches_op_by_op() {
    // The shared histogram is allocated smaller than the bucket range,
    // so scatters past the allocation fault. The compiled and fused
    // sink pre-flights (`check_bounds(shm, hmax)`) must decline
    // side-effect-free and hand the pass to the op-by-op loop, whose
    // simulated shared atomic faults at the exact offending bucket —
    // identical op-by-op blame on all four routes.
    for alloc in [1u32, 8, 31] {
        let mut spec = base_spec();
        spec.out = ProbeOut::Hist(32);
        spec.hist_alloc = Some(alloc);
        let fe = run_probe(DeviceConfig::titan_x().with_compiled(false), spec).err();
        let ce = run_probe(DeviceConfig::titan_x(), spec).err();
        let ve = run_probe(
            DeviceConfig::titan_x()
                .with_compiled(false)
                .with_fused_tile(false),
            spec,
        )
        .err();
        let se = run_probe(DeviceConfig::titan_x().with_scalar_reference(true), spec).err();
        assert!(fe.is_some(), "alloc={alloc}: short histogram must fault");
        assert_eq!(fe, ce, "alloc={alloc}: compiled blame differs from fused");
        assert_eq!(fe, ve, "alloc={alloc}: fused blame differs from op-by-op");
        assert_eq!(fe, se, "alloc={alloc}: fused blame differs from scalar");
    }
}

#[test]
fn compiled_sink_nan_distances_are_route_identical() {
    // A NaN coordinate inside the tile makes NaN distances for every
    // lane at that step. The compiled sink's sqrt-free compares and
    // edge-table bucketing must reproduce the device convention
    // bit-for-bit: NaN fails every radius compare (CountLt adds
    // nothing) and saturates to bucket 0 (`__float2uint_rz`), while the
    // broadcast detector's compare chain must fail closed onto the
    // general path.
    for out in [ProbeOut::CountLt, ProbeOut::Hist(32)] {
        let mut spec = base_spec();
        spec.out = out;
        spec.poison = Some(45); // inside the tile range [40, 88)
        let [rf, rc] = probe_identical(spec);
        assert!(rf.interp.fused_ops > 0, "{out:?}: NaN tile must still fuse");
        if !route_pinned() {
            assert!(
                rc.interp.compiled_ops > 0,
                "{out:?}: NaN tile must still lower"
            );
        }
        if let ProbeOut::Hist(_) = out {
            assert!(rf.tally.shared_atomics > 0);
        }
    }
}
