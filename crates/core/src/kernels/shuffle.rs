//! The shuffle-tiling kernel — the paper's Algorithm 4 (§IV-E2).
//!
//! Tiles live in *registers*: each lane of a warp loads one element of
//! the R tile (a coalesced global load), and a `shfl` broadcast walks the
//! 32 register copies so every lane sees every element — no shared
//! memory, no read-only cache. "This tiling method requires only two
//! more registers and doesn't require shared memory or read-only cache."

use crate::distance::DistanceKernel;
use crate::kernels::PairScope;
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, F32x32, Kernel, KernelResources, Mask, U32x32, WarpCtx, WARP_SIZE};

/// Algorithm 4: register tiling via warp shuffle.
#[derive(Debug, Clone)]
pub struct ShuffleKernel<const D: usize, F, A> {
    /// Input point set.
    pub input: DeviceSoa<D>,
    /// Distance function.
    pub dist: F,
    /// Output action.
    pub action: A,
    /// Block size B (must equal the launch's `block_dim`).
    pub block_size: u32,
    /// Pair scope.
    pub scope: PairScope,
}

impl<const D: usize, F, A> ShuffleKernel<D, F, A> {
    pub fn new(input: DeviceSoa<D>, dist: F, action: A, block_size: u32, scope: PairScope) -> Self {
        ShuffleKernel {
            input,
            dist,
            action,
            block_size,
            scope,
        }
    }
}

pub(crate) const SHUFFLE_BASE_REGS: u32 = 18 + 4;

impl<const D: usize, F, A> ShuffleKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    /// Process one 32-element fragment of a tile: coalesced load into
    /// `reg1` (one register per lane), then broadcast each lane's value
    /// with `shfl` and evaluate (Algorithm 4 lines 4–9).
    ///
    /// `pair_filter(lane_gid, partner_gid) -> bool` predicates which
    /// pairs this fragment may produce (used to skip self-pairs and to
    /// enforce ordering in the intra phase); `pred` is the same predicate
    /// in the closed form the fused executor needs — the two must agree
    /// on every `(lane, k)`, which keeps both routes bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn fragment(
        &self,
        w: &mut WarpCtx<'_, '_>,
        ck: Option<&gpu_sim::CompiledKernel>,
        st: &mut A::Block,
        gid: &U32x32,
        valid: Mask,
        frag_start: u32,
        frag_len: u32,
        reg0: &[F32x32; D],
        pred: gpu_sim::FusedPred,
        pair_filter: impl Fn(u32, u32) -> bool,
    ) {
        // Line 4: regl <- the j-th datum, one element per lane.
        let lane = w.lane_ids();
        let src: U32x32 = std::array::from_fn(|i| frag_start + lane[i]);
        let load_mask = w.mask_lt(&lane, frag_len).and(valid.or(w.active_threads()));
        w.charge_alu(1, load_mask);
        let reg1: [F32x32; D] =
            std::array::from_fn(|d| w.global_load_f32(self.input.coords[d], &src, load_mask));

        // Lines 5–9: walk the 32 lanes by shuffle broadcast.
        w.charge_control(frag_len as u64 + 1, valid);
        if super::try_tile_pass(
            w,
            ck,
            &self.dist,
            &self.action,
            st,
            gpu_sim::FusedSrc::LaneBroadcast(&reg1),
            frag_len,
            pred,
            reg0,
            valid,
        ) {
            return;
        }
        for k in 0..frag_len {
            let regtmp: [F32x32; D] = std::array::from_fn(|d| w.shfl_bcast_f32(&reg1[d], k, valid));
            let partner = frag_start + k;
            let pm = Mask::from_fn(|i| valid.lane(i) && pair_filter(gid[i], partner));
            w.charge_alu(1, valid);
            if pm.any() {
                let dval = self.dist.eval(w, reg0, &regtmp, pm);
                let right = [partner; WARP_SIZE];
                self.action.process(w, st, gid, &right, &dval, pm);
            }
        }
    }
}

impl<const D: usize, F, A> Kernel for ShuffleKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn resources(&self) -> KernelResources {
        // "required only two more registers" than Register-SHM's base.
        KernelResources::new(
            SHUFFLE_BASE_REGS + 2 + 2 * D as u32 + self.action.regs_per_thread(),
            self.action.shared_bytes(self.block_size),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        assert_eq!(
            blk.block_dim, self.block_size,
            "launch block_dim must equal the kernel's block_size"
        );
        let n = self.input.n;
        let b = self.block_size;
        let m = super::num_blocks(n, b);
        let my_block = blk.block_id;
        let block_start = my_block * b;
        let block_n = b.min(n.saturating_sub(block_start));

        let mut st = self.action.begin_block(blk);
        let ck = super::lower_block_plan::<D, _, _>(blk, &self.dist, &self.action, b);
        // Line 1: reg0 <- own datum.
        let own = super::load_own_registers(blk, &self.input);

        let first_tile = match self.scope {
            PairScope::HalfPairs => my_block + 1,
            PairScope::AllPairs => 0,
        };

        // Line 2: inter-block phase over whole tiles.
        for i in first_tile..m {
            if self.scope == PairScope::AllPairs && i == my_block {
                continue;
            }
            let start = i * b;
            let len = b.min(n - start);
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let valid = w.mask_lt(&gid, n).and(w.active_threads());
                if !valid.any() {
                    return;
                }
                let reg0 = &own[w.warp_id as usize];
                // Line 3: for j = t%w to B step w (fragment loop).
                let mut frag = 0u32;
                while frag < len {
                    let fl = (len - frag).min(WARP_SIZE as u32);
                    let pred = gpu_sim::FusedPred::NotEqual {
                        gid0: gid[0],
                        base: start + frag,
                    };
                    self.fragment(
                        w,
                        ck.as_ref(),
                        &mut st,
                        &gid,
                        valid,
                        start + frag,
                        fl,
                        reg0,
                        pred,
                        |a, p| a != p,
                    );
                    frag += WARP_SIZE as u32;
                }
            });
        }

        // Intra phase: fragments of the own tile; ordering enforced by
        // the pair filter (lane_gid < partner for HalfPairs).
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let valid = w.mask_lt(&gid, n).and(w.active_threads());
            if !valid.any() {
                return;
            }
            let reg0 = &own[w.warp_id as usize];
            let half = self.scope == PairScope::HalfPairs;
            let mut frag = 0u32;
            while frag < block_n {
                let fl = (block_n - frag).min(WARP_SIZE as u32);
                let pred = if half {
                    gpu_sim::FusedPred::LessThan {
                        gid0: gid[0],
                        base: block_start + frag,
                    }
                } else {
                    gpu_sim::FusedPred::NotEqual {
                        gid0: gid[0],
                        base: block_start + frag,
                    }
                };
                self.fragment(
                    w,
                    ck.as_ref(),
                    &mut st,
                    &gid,
                    valid,
                    block_start + frag,
                    fl,
                    reg0,
                    pred,
                    |a, p| if half { a < p } else { a != p },
                );
                frag += WARP_SIZE as u32;
            }
        });

        self.action.end_block(blk, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::output::CountWithinRadius;
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig, SimError};

    #[test]
    fn shuffle_kernel_matches_reference_without_shared_or_roc() {
        let pts = SoaPoints::<3>::from_points(
            &(0..160).map(|i| [i as f32, 0.5, 0.25]).collect::<Vec<_>>(),
        );
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = ShuffleKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 7.5, out },
            64,
            PairScope::HalfPairs,
        );
        let run = dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        let expect: u64 = (0..160u64).map(|i| (160 - i - 1).min(7)).sum();
        assert_eq!(total, expect);
        assert!(run.tally.shuffle_instructions > 0);
        assert_eq!(run.tally.shared_transactions, 0, "no shared memory");
        assert_eq!(run.tally.roc_load_instructions, 0, "no read-only cache");
    }

    #[test]
    fn shuffle_kernel_requires_kepler_or_newer() {
        let pts =
            SoaPoints::<2>::from_points(&(0..64).map(|i| [i as f32, 0.0]).collect::<Vec<_>>());
        let mut dev = Device::new(DeviceConfig::fermi_gtx580());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 32);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = ShuffleKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 1.0, out },
            32,
            PairScope::HalfPairs,
        );
        let err = dev.try_launch(&k, lc).unwrap_err();
        assert!(matches!(err, SimError::ShuffleUnsupported { .. }));
    }

    #[test]
    fn shuffle_all_pairs_doubles_the_count() {
        let pts =
            SoaPoints::<2>::from_points(&(0..96).map(|i| [i as f32, 0.0]).collect::<Vec<_>>());
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 32);
        let o1 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let o2 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k1 = ShuffleKernel::new(
            input,
            Euclidean,
            CountWithinRadius {
                radius: 4.0,
                out: o1,
            },
            32,
            PairScope::HalfPairs,
        );
        let k2 = ShuffleKernel::new(
            input,
            Euclidean,
            CountWithinRadius {
                radius: 4.0,
                out: o2,
            },
            32,
            PairScope::AllPairs,
        );
        dev.launch(&k1, lc);
        dev.launch(&k2, lc);
        assert_eq!(
            2 * dev.u64_slice(o1).iter().sum::<u64>(),
            dev.u64_slice(o2).iter().sum::<u64>()
        );
    }
}
