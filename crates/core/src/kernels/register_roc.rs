//! The Register-ROC kernel — §IV-A's third solution.
//!
//! The own datum lives in a register; tiles are read through the
//! *read-only data cache* (`const __restrict__`) instead of shared
//! memory. Slower than Register-SHM for pure pairwise computation (92 vs
//! 28 cycles), but it leaves all of shared memory to the output stage —
//! which is why `Reg-ROC-Out` wins the SDH evaluation (§IV-D).

use crate::distance::DistanceKernel;
use crate::kernels::{IntraMode, PairScope};
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, Kernel, KernelResources, Mask, U32x32, WarpCtx, WARP_SIZE};

/// Register + read-only-cache tiling.
#[derive(Debug, Clone)]
pub struct RegisterRocKernel<const D: usize, F, A> {
    /// Input point set.
    pub input: DeviceSoa<D>,
    /// Distance function.
    pub dist: F,
    /// Output action.
    pub action: A,
    /// Block size B (must equal the launch's `block_dim`).
    pub block_size: u32,
    /// Pair scope.
    pub scope: PairScope,
    /// Intra-block iteration scheme.
    pub intra: IntraMode,
}

impl<const D: usize, F, A> RegisterRocKernel<D, F, A> {
    pub fn new(
        input: DeviceSoa<D>,
        dist: F,
        action: A,
        block_size: u32,
        scope: PairScope,
        intra: IntraMode,
    ) -> Self {
        RegisterRocKernel {
            input,
            dist,
            action,
            block_size,
            scope,
            intra,
        }
    }

    fn roc_broadcast(&self, w: &mut WarpCtx<'_, '_>, j: u32, mask: Mask) -> [gpu_sim::F32x32; D] {
        std::array::from_fn(|d| w.roc_load_f32(self.input.coords[d], &[j; WARP_SIZE], mask))
    }

    fn roc_gather(
        &self,
        w: &mut WarpCtx<'_, '_>,
        idx: &U32x32,
        mask: Mask,
    ) -> [gpu_sim::F32x32; D] {
        std::array::from_fn(|d| w.roc_load_f32(self.input.coords[d], idx, mask))
    }
}

pub(crate) const REG_ROC_BASE_REGS: u32 = 18 + 4;

impl<const D: usize, F, A> Kernel for RegisterRocKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "register-roc"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(
            REG_ROC_BASE_REGS + 2 * D as u32 + self.action.regs_per_thread(),
            // No input tile in shared memory — the point of this variant.
            self.action.shared_bytes(self.block_size),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        assert_eq!(
            blk.block_dim, self.block_size,
            "launch block_dim must equal the kernel's block_size"
        );
        let n = self.input.n;
        let b = self.block_size;
        let m = super::num_blocks(n, b);
        let my_block = blk.block_id;
        let block_start = my_block * b;
        let block_n = b.min(n.saturating_sub(block_start));

        let mut st = self.action.begin_block(blk);
        let ck = super::lower_block_plan::<D, _, _>(blk, &self.dist, &self.action, b);
        let own = super::load_own_registers(blk, &self.input);

        let first_tile = match self.scope {
            PairScope::HalfPairs => my_block + 1,
            PairScope::AllPairs => 0,
        };

        // Inter-block phase: R elements through the read-only cache.
        for i in first_tile..m {
            if self.scope == PairScope::AllPairs && i == my_block {
                continue;
            }
            let start = i * b;
            let len = b.min(n - start);
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let valid = w.mask_lt(&gid, n).and(w.active_threads());
                if !valid.any() {
                    return;
                }
                let reg = &own[w.warp_id as usize];
                w.charge_control(len as u64 + 1, valid);
                if !super::try_tile_pass(
                    w,
                    ck.as_ref(),
                    &self.dist,
                    &self.action,
                    &mut st,
                    gpu_sim::FusedSrc::RocBroadcast {
                        bufs: &self.input.coords,
                        start,
                    },
                    len,
                    gpu_sim::FusedPred::All,
                    reg,
                    valid,
                ) {
                    for j in 0..len {
                        let rj = self.roc_broadcast(w, start + j, valid);
                        let dval = self.dist.eval(w, reg, &rj, valid);
                        let right = [start + j; WARP_SIZE];
                        self.action.process(w, &mut st, &gid, &right, &dval, valid);
                    }
                }
            });
        }

        // Intra-block phase: partners also through the read-only cache.
        match self.scope {
            PairScope::HalfPairs => {
                let mode = self.intra;
                let bd = blk.block_dim;
                blk.for_each_warp(|w| {
                    let tid = w.thread_ids();
                    let gid = w.global_thread_ids();
                    let valid = w.mask_lt(&tid, block_n).and(w.active_threads());
                    let reg = &own[w.warp_id as usize];
                    match mode {
                        IntraMode::Regular => {
                            // Compiled route: the whole ROC-sourced
                            // triangle in one pass, sector stream
                            // replayed in op-by-op order.
                            if let Some(ckk) = ck.as_ref() {
                                if let Some(c) = self.action.fused_consumer(&mut st, w.warp_id) {
                                    if w.compiled_intra_regular(
                                        ckk,
                                        gpu_sim::CompiledTile::Roc(&self.input.coords),
                                        block_start,
                                        block_n,
                                        reg,
                                        c,
                                        valid,
                                    ) {
                                        return;
                                    }
                                }
                            }
                            let trips: U32x32 = std::array::from_fn(|i| {
                                if valid.lane(i) {
                                    block_n.saturating_sub(1).saturating_sub(tid[i])
                                } else {
                                    0
                                }
                            });
                            w.divergent_loop(&trips, valid, |w2, k, active| {
                                let pidx: U32x32 =
                                    std::array::from_fn(|i| block_start + tid[i] + 1 + k);
                                w2.charge_alu(1, active);
                                let partner = self.roc_gather(w2, &pidx, active);
                                let dval = self.dist.eval(w2, reg, &partner, active);
                                self.action.process(w2, &mut st, &gid, &pidx, &dval, active);
                            });
                        }
                        IntraMode::LoadBalanced => {
                            debug_assert!(bd.is_multiple_of(2));
                            let half = bd / 2;
                            let trips: U32x32 = std::array::from_fn(|i| {
                                if valid.lane(i) {
                                    if tid[i] < half {
                                        half
                                    } else {
                                        half - 1
                                    }
                                } else {
                                    0
                                }
                            });
                            w.divergent_loop(&trips, valid, |w2, k, active| {
                                let j = k + 1;
                                let local: U32x32 = std::array::from_fn(|i| (tid[i] + j) % bd);
                                w2.charge_alu(2, active);
                                let pvalid =
                                    Mask::from_fn(|i| active.lane(i) && local[i] < block_n);
                                if !pvalid.any() {
                                    return;
                                }
                                let pidx: U32x32 = std::array::from_fn(|i| block_start + local[i]);
                                let partner = self.roc_gather(w2, &pidx, pvalid);
                                let dval = self.dist.eval(w2, reg, &partner, pvalid);
                                self.action.process(w2, &mut st, &gid, &pidx, &dval, pvalid);
                            });
                        }
                    }
                });
            }
            PairScope::AllPairs => {
                blk.for_each_warp(|w| {
                    let gid = w.global_thread_ids();
                    let valid = w.mask_lt(&gid, n).and(w.active_threads());
                    if !valid.any() {
                        return;
                    }
                    let reg = &own[w.warp_id as usize];
                    w.charge_control(block_n as u64 + 1, valid);
                    if !super::try_tile_pass(
                        w,
                        ck.as_ref(),
                        &self.dist,
                        &self.action,
                        &mut st,
                        gpu_sim::FusedSrc::RocBroadcast {
                            bufs: &self.input.coords,
                            start: block_start,
                        },
                        block_n,
                        gpu_sim::FusedPred::NotEqual {
                            gid0: gid[0],
                            base: block_start,
                        },
                        reg,
                        valid,
                    ) {
                        for j in 0..block_n {
                            let rj = self.roc_broadcast(w, block_start + j, valid);
                            let pm = Mask::from_fn(|i| valid.lane(i) && gid[i] != block_start + j);
                            w.charge_alu(1, valid);
                            if pm.any() {
                                let dval = self.dist.eval(w, reg, &rj, pm);
                                let right = [block_start + j; WARP_SIZE];
                                self.action.process(w, &mut st, &gid, &right, &dval, pm);
                            }
                        }
                    }
                });
            }
        }

        self.action.end_block(blk, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::output::CountWithinRadius;
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig};

    #[test]
    fn roc_kernel_matches_reference_and_uses_roc() {
        let pts = SoaPoints::<3>::from_points(
            &(0..192).map(|i| [i as f32, 0.0, 0.0]).collect::<Vec<_>>(),
        );
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = RegisterRocKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 3.5, out },
            64,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        let expect: u64 = (0..192u64).map(|i| (192 - i - 1).min(3)).sum();
        assert_eq!(total, expect);
        assert!(
            run.tally.roc_load_instructions > 0,
            "tiles must flow through the ROC"
        );
        assert!(
            run.tally.roc_hit_sectors > run.tally.roc_miss_sectors,
            "tile reuse must hit the read-only cache"
        );
        // No input tile in shared memory: only action-allocated shared
        // (none for Type-I), so no shared traffic at all.
        assert_eq!(run.tally.shared_transactions, 0);
    }

    #[test]
    fn roc_load_balanced_matches_regular() {
        let pts = SoaPoints::<2>::from_points(
            &(0..128)
                .map(|i| [(i % 13) as f32, (i / 13) as f32])
                .collect::<Vec<_>>(),
        );
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 64);
        let o1 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let o2 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let mk = |out, intra| {
            RegisterRocKernel::new(
                input,
                Euclidean,
                CountWithinRadius { radius: 4.0, out },
                64,
                PairScope::HalfPairs,
                intra,
            )
        };
        dev.launch(&mk(o1, IntraMode::Regular), lc);
        dev.launch(&mk(o2, IntraMode::LoadBalanced), lc);
        assert_eq!(
            dev.u64_slice(o1).iter().sum::<u64>(),
            dev.u64_slice(o2).iter().sum::<u64>()
        );
    }
}
