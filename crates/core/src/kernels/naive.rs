//! The generic (naive) 2-BS kernel — the paper's Algorithm 1.
//!
//! Each thread keeps its own datum in a local variable and walks the rest
//! of the input *in global memory*: `O(N²)` total loads against a
//! 350-cycle memory, which is exactly why the tiled variants exist.

use crate::distance::DistanceKernel;
use crate::kernels::PairScope;
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, Kernel, KernelResources, Mask, U32x32, WARP_SIZE};

/// Algorithm 1: per-thread loop over the whole input in global memory.
#[derive(Debug, Clone)]
pub struct NaiveKernel<const D: usize, F, A> {
    /// Input point set (device-resident, SoA).
    pub input: DeviceSoa<D>,
    /// The pairwise distance function.
    pub dist: F,
    /// The output-stage action.
    pub action: A,
    /// Half (`i < j`) or all (`i ≠ j`) pairs.
    pub scope: PairScope,
}

impl<const D: usize, F, A> NaiveKernel<D, F, A> {
    pub fn new(input: DeviceSoa<D>, dist: F, action: A, scope: PairScope) -> Self {
        NaiveKernel {
            input,
            dist,
            action,
            scope,
        }
    }
}

/// Base register estimate for the naive kernel body (thread indexes, the
/// cached datum, loop state).
pub(crate) const NAIVE_BASE_REGS: u32 = 14 + 2;

impl<const D: usize, F, A> Kernel for NaiveKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "naive"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(
            NAIVE_BASE_REGS + 2 * D as u32 + self.action.regs_per_thread(),
            self.action.shared_bytes(0),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let n = self.input.n;
        let coords = self.input.coords;
        let mut st = self.action.begin_block(blk);

        // Line 1: currentPt <- input[t].
        let own = super::load_own_registers(blk, &self.input);

        let scope = self.scope;
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let valid = w.mask_lt(&gid, n).and(w.active_threads());
            if !valid.any() {
                return;
            }
            let reg = &own[w.warp_id as usize];
            match scope {
                PairScope::HalfPairs => {
                    // Line 2: for i = t+1 to N. Trip counts differ per
                    // lane (N−1−t) — the naive kernel is divergent at the
                    // tail of every warp's loop.
                    let trips: U32x32 =
                        std::array::from_fn(|i| if valid.lane(i) { n - 1 - gid[i] } else { 0 });
                    w.divergent_loop(&trips, valid, |w2, k, active| {
                        let idx: U32x32 = std::array::from_fn(|i| gid[i] + 1 + k);
                        w2.charge_alu(1, active);
                        let other: [_; D] =
                            std::array::from_fn(|d| w2.global_load_f32(coords[d], &idx, active));
                        let dval = self.dist.eval(w2, reg, &other, active);
                        self.action.process(w2, &mut st, &gid, &idx, &dval, active);
                    });
                }
                PairScope::AllPairs => {
                    // Every ordered pair: uniform loop over the whole
                    // input with the self-pair predicated off.
                    let trips: U32x32 = std::array::from_fn(|i| if valid.lane(i) { n } else { 0 });
                    w.divergent_loop(&trips, valid, |w2, k, active| {
                        let idx = [k; WARP_SIZE];
                        w2.charge_alu(1, active);
                        let pm = Mask::from_fn(|i| active.lane(i) && gid[i] != k);
                        let other: [_; D] =
                            std::array::from_fn(|d| w2.global_load_f32(coords[d], &idx, active));
                        if pm.any() {
                            let dval = self.dist.eval(w2, reg, &other, pm);
                            self.action.process(w2, &mut st, &gid, &idx, &dval, pm);
                        }
                    });
                }
            }
        });

        self.action.end_block(blk, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::output::CountWithinRadius;
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig};

    fn grid_points(n: usize) -> SoaPoints<2> {
        // Points on a line, spacing 1: pair (i, j) has distance |i-j|.
        SoaPoints::from_points(&(0..n).map(|i| [i as f32, 0.0]).collect::<Vec<_>>())
    }

    fn host_count_within(pts: &SoaPoints<2>, r: f32) -> u64 {
        let mut c = 0;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let (a, b) = (pts.point(i), pts.point(j));
                let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
                if d < r {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn naive_half_pairs_counts_correctly() {
        let pts = grid_points(100);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = NaiveKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 2.5, out },
            PairScope::HalfPairs,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        assert_eq!(total, host_count_within(&pts, 2.5));
    }

    #[test]
    fn naive_all_pairs_counts_each_pair_twice() {
        let pts = grid_points(70);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 32);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = NaiveKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 3.5, out },
            PairScope::AllPairs,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        assert_eq!(total, 2 * host_count_within(&pts, 3.5));
    }

    #[test]
    fn naive_distance_call_count_is_quadratic() {
        // The distance function charges cost() ALU instructions per
        // warp-eval; verify the number of pair evaluations by counting
        // useful lane-ops on a 1-bucket action.
        let pts = grid_points(64);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 32);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = NaiveKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 1e9, out },
            PairScope::HalfPairs,
        );
        dev.launch(&k, lc);
        // N(N-1)/2 pairs, all within radius.
        let total: u64 = dev.u64_slice(out).iter().sum();
        assert_eq!(total, 64 * 63 / 2);
    }
}
