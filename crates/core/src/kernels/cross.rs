//! The bipartite (two-set) pairwise kernel.
//!
//! The paper's kernels all self-join one dataset. Two of its motivating
//! applications are inherently *bipartite*: relational joins between two
//! tables (its Type-III example, He et al.) and collaborative filtering
//! (users × items). This kernel computes the full `|A| × |B|` rectangle:
//! each thread owns one A point in registers and tiles B through shared
//! memory — the Register-SHM discipline of Algorithm 3, without the
//! triangular intra phase.
//!
//! It is also the building block of the multi-GPU decomposition
//! (`tbs-apps::multi_gpu`, the paper's §V "multi-GPU environment" future
//! work): inter-chunk work items are exactly cross-joins.

use crate::distance::DistanceKernel;
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, Kernel, KernelResources, LaunchConfig, WARP_SIZE};

/// Register + shared-memory bipartite kernel over sets A and B.
#[derive(Debug, Clone)]
pub struct CrossShmKernel<const D: usize, F, A> {
    /// Left set (one point per thread).
    pub left: DeviceSoa<D>,
    /// Right set (tiled through shared memory).
    pub right: DeviceSoa<D>,
    /// Distance function.
    pub dist: F,
    /// Output action; `process` receives `(left gid, right gid)`.
    pub action: A,
    /// Block size B (must equal the launch's `block_dim`).
    pub block_size: u32,
}

impl<const D: usize, F, A> CrossShmKernel<D, F, A> {
    pub fn new(
        left: DeviceSoa<D>,
        right: DeviceSoa<D>,
        dist: F,
        action: A,
        block_size: u32,
    ) -> Self {
        CrossShmKernel {
            left,
            right,
            dist,
            action,
            block_size,
        }
    }

    /// One thread per left point.
    pub fn launch_config(&self) -> LaunchConfig {
        super::pair_launch(self.left.n, self.block_size)
    }
}

pub(crate) const CROSS_BASE_REGS: u32 = 18 + 4;

impl<const D: usize, F, A> Kernel for CrossShmKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "cross-shm"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(
            CROSS_BASE_REGS + 2 * D as u32 + self.action.regs_per_thread(),
            self.block_size * 4 * D as u32 + self.action.shared_bytes(self.block_size),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        assert_eq!(
            blk.block_dim, self.block_size,
            "launch block_dim must equal the kernel's block_size"
        );
        let (n_left, n_right) = (self.left.n, self.right.n);
        let b = self.block_size;
        let tiles = super::num_blocks(n_right, b);

        let mut st = self.action.begin_block(blk);
        let ck = super::lower_block_plan::<D, _, _>(blk, &self.dist, &self.action, b);
        // Own A datum in registers.
        let own = super::load_own_registers(blk, &self.left);
        let tile = super::alloc_tile::<D>(blk, b);

        for i in 0..tiles {
            let start = i * b;
            let len = b.min(n_right - start);
            if len == 0 {
                break;
            }
            super::load_tile_to_shared(blk, &self.right, &tile, start, len);
            blk.syncthreads();
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let valid = w.mask_lt(&gid, n_left).and(w.active_threads());
                if !valid.any() {
                    return;
                }
                let reg = &own[w.warp_id as usize];
                w.charge_control(len as u64 + 1, valid);
                if !super::try_tile_pass(
                    w,
                    ck.as_ref(),
                    &self.dist,
                    &self.action,
                    &mut st,
                    gpu_sim::FusedSrc::SharedBroadcast(&tile),
                    len,
                    gpu_sim::FusedPred::All,
                    reg,
                    valid,
                ) {
                    for j in 0..len {
                        let rj = super::broadcast_from_shared(w, &tile, j, valid);
                        let dval = self.dist.eval(w, reg, &rj, valid);
                        let right = [start + j; WARP_SIZE];
                        self.action.process(w, &mut st, &gid, &right, &dval, valid);
                    }
                }
            });
            blk.syncthreads();
        }

        self.action.end_block(blk, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::histogram::HistogramSpec;
    use crate::output::{CountWithinRadius, SharedHistogramAction};
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig};

    fn sets() -> (SoaPoints<2>, SoaPoints<2>) {
        let a = SoaPoints::from_points(&(0..100).map(|i| [i as f32, 0.0]).collect::<Vec<_>>());
        let b =
            SoaPoints::from_points(&(0..150).map(|i| [i as f32 * 0.5, 1.0]).collect::<Vec<_>>());
        (a, b)
    }

    fn host_count(a: &SoaPoints<2>, b: &SoaPoints<2>, r: f32) -> u64 {
        let mut c = 0;
        for i in 0..a.len() {
            for j in 0..b.len() {
                let (p, q) = (a.point(i), b.point(j));
                if ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt() < r {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn cross_kernel_counts_the_full_rectangle() {
        let (a, b) = sets();
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (da, db) = (a.upload(&mut dev), b.upload(&mut dev));
        let lc = crate::kernels::pair_launch(da.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = CrossShmKernel::new(
            da,
            db,
            Euclidean,
            CountWithinRadius { radius: 3.0, out },
            64,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        assert_eq!(total, host_count(&a, &b, 3.0));
    }

    #[test]
    fn cross_histogram_totals_na_times_nb() {
        let (a, b) = sets();
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (da, db) = (a.upload(&mut dev), b.upload(&mut dev));
        let spec = HistogramSpec::new(64, 200.0);
        let lc = crate::kernels::pair_launch(da.n, 32);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = CrossShmKernel::new(
            da,
            db,
            Euclidean,
            SharedHistogramAction { spec, private },
            32,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u32_slice(private).iter().map(|&x| x as u64).sum();
        assert_eq!(total, a.len() as u64 * b.len() as u64);
    }

    #[test]
    fn empty_right_set_is_a_noop() {
        let a = SoaPoints::<2>::from_points(&[[0.0, 0.0], [1.0, 1.0]]);
        let b = SoaPoints::<2>::new();
        let mut dev = Device::new(DeviceConfig::titan_x());
        let (da, db) = (a.upload(&mut dev), b.upload(&mut dev));
        let out = dev.alloc_u64_zeroed(32);
        let k = CrossShmKernel::new(
            da,
            db,
            Euclidean,
            CountWithinRadius { radius: 10.0, out },
            32,
        );
        dev.launch(&k, k.launch_config());
        assert_eq!(dev.u64_slice(out).iter().sum::<u64>(), 0);
    }
}
