//! The Register-SHM kernel — the paper's Algorithm 3 input path.
//!
//! Each thread holds its own datum in a *register* (one-cycle access);
//! the R tile is staged in shared memory and read as warp broadcasts.
//! For the intra-block triangle, the own block is re-loaded into the
//! *same* shared tile ("we overwrite the space we just used for block R",
//! §IV-A) so total shared usage stays at one tile.

use crate::distance::DistanceKernel;
use crate::kernels::{IntraMode, PairScope};
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, Kernel, KernelResources, Mask, WARP_SIZE};

/// Algorithm 3: register-held own datum + shared-memory tile.
#[derive(Debug, Clone)]
pub struct RegisterShmKernel<const D: usize, F, A> {
    /// Input point set.
    pub input: DeviceSoa<D>,
    /// Distance function.
    pub dist: F,
    /// Output action.
    pub action: A,
    /// Block size B (must equal the launch's `block_dim`).
    pub block_size: u32,
    /// Pair scope.
    pub scope: PairScope,
    /// Intra-block iteration scheme (§IV-E1).
    pub intra: IntraMode,
}

impl<const D: usize, F, A> RegisterShmKernel<D, F, A> {
    pub fn new(
        input: DeviceSoa<D>,
        dist: F,
        action: A,
        block_size: u32,
        scope: PairScope,
        intra: IntraMode,
    ) -> Self {
        RegisterShmKernel {
            input,
            dist,
            action,
            block_size,
            scope,
            intra,
        }
    }
}

pub(crate) const REG_SHM_BASE_REGS: u32 = 18 + 4;

impl<const D: usize, F, A> Kernel for RegisterShmKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "register-shm"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(
            REG_SHM_BASE_REGS + 2 * D as u32 + self.action.regs_per_thread(),
            self.block_size * 4 * D as u32 + self.action.shared_bytes(self.block_size),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        assert_eq!(
            blk.block_dim, self.block_size,
            "launch block_dim must equal the kernel's block_size"
        );
        let n = self.input.n;
        let b = self.block_size;
        let m = super::num_blocks(n, b);
        let my_block = blk.block_id;

        let mut st = self.action.begin_block(blk);
        let ck = super::lower_block_plan::<D, _, _>(blk, &self.dist, &self.action, b);

        // Line 2: reg <- the t-th datum of the b-th input data block.
        let own = super::load_own_registers(blk, &self.input);
        // One shared tile, reused for every R block and finally for L.
        let tile = super::alloc_tile::<D>(blk, b);

        let (first_tile, skip_self_pairs) = match self.scope {
            PairScope::HalfPairs => (my_block + 1, false),
            PairScope::AllPairs => (0, true),
        };

        // Lines 3–9: inter-block phase.
        for i in first_tile..m {
            if self.scope == PairScope::AllPairs && i == my_block {
                continue; // the own tile is handled by the intra phase
            }
            let start = i * b;
            let len = b.min(n - start);
            super::load_tile_to_shared(blk, &self.input, &tile, start, len);
            blk.syncthreads();
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let valid = w.mask_lt(&gid, n).and(w.active_threads());
                if !valid.any() {
                    return;
                }
                let reg = &own[w.warp_id as usize];
                // Line 5: for j = 0 to B — a uniform loop, fused into one
                // interpreter call when the distance/action pair allows.
                w.charge_control(len as u64 + 1, valid);
                if !super::try_tile_pass(
                    w,
                    ck.as_ref(),
                    &self.dist,
                    &self.action,
                    &mut st,
                    gpu_sim::FusedSrc::SharedBroadcast(&tile),
                    len,
                    gpu_sim::FusedPred::All,
                    reg,
                    valid,
                ) {
                    for j in 0..len {
                        let rj = super::broadcast_from_shared(w, &tile, j, valid);
                        let dval = self.dist.eval(w, reg, &rj, valid);
                        let right = [start + j; WARP_SIZE];
                        self.action.process(w, &mut st, &gid, &right, &dval, valid);
                    }
                }
            });
            blk.syncthreads();
        }

        // Line 10: L overwrites R's cache location; lines 11–14 intra.
        let block_start = my_block * b;
        let block_n = b.min(n.saturating_sub(block_start));
        super::load_tile_to_shared(blk, &self.input, &tile, block_start, block_n);
        blk.syncthreads();
        match self.scope {
            PairScope::HalfPairs => {
                super::intra_block_shared(
                    blk,
                    ck.as_ref(),
                    &tile,
                    &own,
                    &self.dist,
                    &self.action,
                    &mut st,
                    block_start,
                    block_n,
                    self.intra,
                );
            }
            PairScope::AllPairs => {
                // Ordered pairs within the own tile, self predicated off.
                debug_assert!(skip_self_pairs);
                blk.for_each_warp(|w| {
                    let gid = w.global_thread_ids();
                    let valid = w.mask_lt(&gid, n).and(w.active_threads());
                    if !valid.any() {
                        return;
                    }
                    let reg = &own[w.warp_id as usize];
                    w.charge_control(block_n as u64 + 1, valid);
                    if !super::try_tile_pass(
                        w,
                        ck.as_ref(),
                        &self.dist,
                        &self.action,
                        &mut st,
                        gpu_sim::FusedSrc::SharedBroadcast(&tile),
                        block_n,
                        gpu_sim::FusedPred::NotEqual {
                            gid0: gid[0],
                            base: block_start,
                        },
                        reg,
                        valid,
                    ) {
                        for j in 0..block_n {
                            let rj = super::broadcast_from_shared(w, &tile, j, valid);
                            let pm = Mask::from_fn(|i| valid.lane(i) && gid[i] != block_start + j);
                            w.charge_alu(1, valid);
                            if pm.any() {
                                let dval = self.dist.eval(w, reg, &rj, pm);
                                let right = [block_start + j; WARP_SIZE];
                                self.action.process(w, &mut st, &gid, &right, &dval, pm);
                            }
                        }
                    }
                });
            }
        }

        self.action.end_block(blk, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::histogram::HistogramSpec;
    use crate::output::{CountWithinRadius, SharedHistogramAction};
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig};

    fn line_points(n: usize) -> SoaPoints<3> {
        SoaPoints::from_points(&(0..n).map(|i| [i as f32, 0.0, 0.0]).collect::<Vec<_>>())
    }

    #[test]
    fn counts_match_naive_reference_for_ragged_n() {
        // 200 points, B = 64 -> ragged last block (200 = 3×64 + 8).
        let pts = line_points(200);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 5.5, out },
            64,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        // Pairs within 5.5 on the integer line: per i, neighbors i±1..5.
        let mut expect = 0u64;
        for i in 0..200u64 {
            expect += (200 - i - 1).min(5);
        }
        assert_eq!(total, expect);
    }

    #[test]
    fn load_balanced_intra_produces_identical_output() {
        let pts = line_points(256);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 128);
        let out_reg = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let out_lb = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let mk = |out, intra| {
            RegisterShmKernel::new(
                input,
                Euclidean,
                CountWithinRadius { radius: 100.0, out },
                128,
                PairScope::HalfPairs,
                intra,
            )
        };
        let r1 = dev.launch(&mk(out_reg, IntraMode::Regular), lc);
        let r2 = dev.launch(&mk(out_lb, IntraMode::LoadBalanced), lc);
        let t1: u64 = dev.u64_slice(out_reg).iter().sum();
        let t2: u64 = dev.u64_slice(out_lb).iter().sum();
        assert_eq!(t1, t2);
        assert_eq!(
            t1,
            256 * 255 / 2 /* all pairs within radius 100 on a 256-line */ - {
            // pairs at distance >= 100: for i, partners i+100..255
            let mut far = 0u64;
            for i in 0..256u64 {
                far += 256u64.saturating_sub(i + 100);
            }
            far
        }
        );
        // The paper's point: LB removes intra-block divergence entirely
        // for full blocks.
        assert!(
            r1.tally.divergent_iterations > 0,
            "regular intra must diverge"
        );
        assert_eq!(
            r2.tally.divergent_iterations, 0,
            "LB intra must not diverge"
        );
    }

    #[test]
    fn privatized_histogram_totals_all_pairs() {
        let pts = line_points(160);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 32);
        let spec = HistogramSpec::new(16, 160.0);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            32,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u32_slice(private).iter().map(|&x| x as u64).sum();
        assert_eq!(
            total,
            160 * 159 / 2,
            "every pair lands in exactly one bucket"
        );
    }
}
