//! The paper's GPU kernel variants for the pairwise-computation stage.
//!
//! | module | paper reference | input data path |
//! |---|---|---|
//! | [`naive`] | Algorithm 1 | global memory only |
//! | [`shm_shm`] | Algorithm 2, "SHM-SHM" | both tiles in shared memory |
//! | [`register_shm`] | Algorithm 3, "Register-SHM" | own datum in a register, R tile in shared memory |
//! | [`register_roc`] | §IV-A, "Register-ROC" | own datum in a register, tiles through the read-only cache |
//! | [`shuffle`] | Algorithm 4 | own datum + tile fragments in registers, exchanged with warp shuffle |
//! | [`reduction`] | Figure 3 | combines privatized output copies |
//!
//! Every variant is generic over the distance function and the
//! [`crate::output::PairAction`], so e.g. the paper's `Reg-ROC-Out` SDH
//! kernel is `RegisterRocKernel` × `SharedHistogramAction`.

pub mod cross;
pub mod naive;
pub mod packed;
pub mod reduction;
pub mod register_roc;
pub mod register_shm;
pub mod shm_shm;
pub mod shuffle;

pub use cross::CrossShmKernel;
pub use naive::NaiveKernel;
pub use packed::{PackedLayout, PackedPairKernel, PackedSegment};
pub use reduction::{HistogramReduceKernel, SumReduceKernel};
pub use register_roc::RegisterRocKernel;
pub use register_shm::RegisterShmKernel;
pub use shm_shm::ShmShmKernel;
pub use shuffle::ShuffleKernel;

use crate::distance::DistanceKernel;
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{
    BlockCtx, CompiledKernel, CompiledTile, F32x32, FusedPred, FusedSrc, LaunchConfig, Mask,
    ShmF32, U32x32, WarpCtx, WARP_SIZE,
};

/// Which pairs a kernel evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairScope {
    /// Each unordered pair `{i, j}` exactly once (`i < j`) — the paper's
    /// Algorithms 1–4 (2-PCF, SDH, joins, Gram matrices).
    HalfPairs,
    /// Each ordered pair `(i, j)`, `i ≠ j` — required when every point
    /// must observe every other point (kNN, KDE).
    AllPairs,
}

/// How the intra-block triangle is iterated (paper §IV-E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraMode {
    /// Thread `t` pairs with `t+1 … B−1`: divergent trip counts.
    #[default]
    Regular,
    /// The paper's load-balanced `(t + j) mod B` pairing: every thread
    /// does `B/2` iterations (upper half one fewer), divergence-free for
    /// full blocks.
    LoadBalanced,
}

/// Number of data blocks for `n` points in blocks of `b` — the paper's
/// equation (1), `M = N / B`, generalized to ragged `n`. An empty input
/// maps to an empty grid: `n = 0` launches zero blocks, which the
/// simulator treats as a documented no-op (outputs stay zeroed).
pub fn num_blocks(n: u32, b: u32) -> u32 {
    n.div_ceil(b)
}

/// Standard launch for a 2-BS kernel: one thread block per data block.
pub fn pair_launch(n: u32, block_size: u32) -> LaunchConfig {
    LaunchConfig::new(num_blocks(n, block_size), block_size)
}

// ====================================================================
// shared kernel-building blocks
// ====================================================================

/// Load each thread's own datum into "registers": one coalesced global
/// load per warp per dimension. Returns per-warp lane coordinates.
pub(crate) fn load_own_registers<const D: usize>(
    blk: &mut BlockCtx<'_>,
    input: &DeviceSoa<D>,
) -> Vec<[F32x32; D]> {
    let n = input.n;
    let coords = input.coords;
    let mut regs: Vec<[F32x32; D]> = vec![[[0.0; WARP_SIZE]; D]; blk.num_warps() as usize];
    blk.for_each_warp(|w| {
        let gid = w.global_thread_ids();
        let m = w.mask_lt(&gid, n).and(w.active_threads());
        for d in 0..D {
            regs[w.warp_id as usize][d] = w.global_load_f32(coords[d], &gid, m);
        }
    });
    regs
}

/// Load each thread's own datum from the catalog range
/// `[start, start + count)` — the packed-segment analogue of
/// [`load_own_registers`], where a block's own points live at an
/// arbitrary catalog offset instead of `block_id * B`. Lanes at or past
/// `count` are masked off (their addresses are never dereferenced).
pub(crate) fn load_own_registers_at<const D: usize>(
    blk: &mut BlockCtx<'_>,
    input: &DeviceSoa<D>,
    start: u32,
    count: u32,
) -> Vec<[F32x32; D]> {
    let coords = input.coords;
    let mut regs: Vec<[F32x32; D]> = vec![[[0.0; WARP_SIZE]; D]; blk.num_warps() as usize];
    blk.for_each_warp(|w| {
        let tid = w.thread_ids();
        let m = w.mask_lt(&tid, count).and(w.active_threads());
        let src: U32x32 = std::array::from_fn(|i| start + tid[i]);
        for d in 0..D {
            regs[w.warp_id as usize][d] = w.global_load_f32(coords[d], &src, m);
        }
    });
    regs
}

/// Allocate a shared-memory tile of `len` points × `D` coordinates.
pub(crate) fn alloc_tile<const D: usize>(blk: &mut BlockCtx<'_>, len: u32) -> [ShmF32; D] {
    std::array::from_fn(|_| blk.shared_alloc_f32(len as usize))
}

/// Cooperatively load points `[start, start + count)` into a shared tile:
/// thread `t` loads element `t` (coalesced global load + conflict-free
/// shared store per dimension). Caller must `syncthreads()` afterwards.
pub(crate) fn load_tile_to_shared<const D: usize>(
    blk: &mut BlockCtx<'_>,
    input: &DeviceSoa<D>,
    tile: &[ShmF32; D],
    start: u32,
    count: u32,
) {
    // Compiled route: the whole cooperative fetch in one closed-form
    // pass. Declines (fault pre-flight, route off) fall through to the
    // op-by-op sweep below, which reproduces the exact fault point.
    if blk.compiled_tile_load(tile, &input.coords, start, count) {
        return;
    }
    let coords = input.coords;
    blk.for_each_warp(|w| {
        let tid = w.thread_ids();
        let m = w.mask_lt(&tid, count).and(w.active_threads());
        if !m.any() {
            return;
        }
        let src: U32x32 = std::array::from_fn(|i| start + tid[i]);
        w.charge_alu(1, m);
        for d in 0..D {
            let v = w.global_load_f32(coords[d], &src, m);
            w.shared_store_f32(tile[d], &tid, &v, m);
        }
    });
}

/// Try to execute one inner tile pass through the fused fast path
/// (`WarpCtx::fused_tile_pass`): the distance must opt in via
/// [`DistanceKernel::fusible`] and the action must expose a
/// [`gpu_sim::FusedConsumer`] view of its per-warp state. Returns `false`
/// when the caller must interpret the loop op by op — either because the
/// pair is not fusible or because a `fused_tile_pass` precondition failed
/// (scalar reference, `fused_tile` off, non-prefix mask, potential
/// mid-pass fault, …). Both routes are bit-identical in outputs, tally
/// and cache state; only host-side speed differs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_fused_pass<const D: usize, F: DistanceKernel<D>, A: PairAction>(
    w: &mut WarpCtx<'_, '_>,
    dist: &F,
    action: &A,
    st: &mut A::Block,
    src: FusedSrc<'_, D>,
    len: u32,
    pred: FusedPred,
    own: &[F32x32; D],
    valid: Mask,
) -> bool {
    if !dist.fusible() {
        return false;
    }
    match action.fused_consumer(st, w.warp_id) {
        // The plain Euclidean chain gets the lane-vectorized
        // specialization; anything else runs the generic per-lane
        // `eval_host` body. Same bits either way.
        Some(c) if dist.euclidean_form() => w.fused_euclidean_tile(src, len, pred, own, c, valid),
        Some(c) => w.fused_tile_pass(
            src,
            len,
            pred,
            dist.cost(),
            |a, b| dist.eval_host(a, b),
            own,
            c,
            valid,
        ),
        None => false,
    }
}

/// Lower this kernel's plan for the compiled route: `Some` only when the
/// distance is the fusible Euclidean chain, the action declares a
/// compiled sink, and the device config enables the route. Kernels call
/// this once per block and thread the result through every tile pass.
pub(crate) fn lower_block_plan<const D: usize, F: DistanceKernel<D>, A: PairAction>(
    blk: &BlockCtx<'_>,
    dist: &F,
    action: &A,
    tile_len: u32,
) -> Option<CompiledKernel> {
    crate::plan::lower_pair_plan::<D, F, A>(blk.config(), dist, action, tile_len)
}

/// Run one inner tile pass through the fastest applicable route:
/// compiled (plan-lowered, closed-form charges) when `ck` is lowered and
/// the shape is supported, else the fused fast path, else `false` — the
/// caller interprets op by op. All three routes are bit-identical in
/// outputs, tally and cache state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_tile_pass<const D: usize, F: DistanceKernel<D>, A: PairAction>(
    w: &mut WarpCtx<'_, '_>,
    ck: Option<&CompiledKernel>,
    dist: &F,
    action: &A,
    st: &mut A::Block,
    src: FusedSrc<'_, D>,
    len: u32,
    pred: FusedPred,
    own: &[F32x32; D],
    valid: Mask,
) -> bool {
    if let Some(ck) = ck {
        // `lower_block_plan` already verified the distance shape; the
        // consumer view re-borrows per warp.
        if let Some(c) = action.fused_consumer(st, w.warp_id) {
            if w.compiled_euclidean_tile(ck, src, len, pred, own, c, valid) {
                return true;
            }
        }
    }
    try_fused_pass(w, dist, action, st, src, len, pred, own, valid)
}

/// Read tile element `j` as a warp broadcast from shared memory (one
/// transaction per dimension).
pub(crate) fn broadcast_from_shared<const D: usize>(
    w: &mut WarpCtx<'_, '_>,
    tile: &[ShmF32; D],
    j: u32,
    mask: Mask,
) -> [F32x32; D] {
    std::array::from_fn(|d| w.shared_load_f32(tile[d], &[j; WARP_SIZE], mask))
}

/// Gather per-lane tile elements (staggered, conflict-free for
/// consecutive indices) from shared memory.
pub(crate) fn gather_from_shared<const D: usize>(
    w: &mut WarpCtx<'_, '_>,
    tile: &[ShmF32; D],
    idx: &U32x32,
    mask: Mask,
) -> [F32x32; D] {
    std::array::from_fn(|d| w.shared_load_f32(tile[d], idx, mask))
}

/// The intra-block pair phase over a tile resident in shared memory
/// (paper Algorithm 2 lines 9–12 / Algorithm 3 lines 11–14), in either
/// [`IntraMode`]. `block_n` is the number of valid points in this block.
///
/// Reads partners from shared memory; `own` holds each thread's datum in
/// registers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn intra_block_shared<const D: usize, F: DistanceKernel<D>, A: PairAction>(
    blk: &mut BlockCtx<'_>,
    ck: Option<&CompiledKernel>,
    tile: &[ShmF32; D],
    own: &[[F32x32; D]],
    dist: &F,
    action: &A,
    st: &mut A::Block,
    block_start: u32,
    block_n: u32,
    mode: IntraMode,
) {
    let bd = blk.block_dim;
    blk.for_each_warp(|w| {
        let tid = w.thread_ids();
        let gid = w.global_thread_ids();
        let valid = w.mask_lt(&tid, block_n).and(w.active_threads());
        let reg = &own[w.warp_id as usize];
        match mode {
            IntraMode::Regular => {
                // Compiled route: the whole divergent triangle in one
                // closed-form pass. Declines fall through to the
                // op-by-op loop below (identical bits either way).
                if let Some(ckk) = ck {
                    if let Some(c) = action.fused_consumer(st, w.warp_id) {
                        if w.compiled_intra_regular(
                            ckk,
                            CompiledTile::Shared(tile),
                            block_start,
                            block_n,
                            reg,
                            c,
                            valid,
                        ) {
                            return;
                        }
                    }
                }
                // Thread t pairs with t+1 .. block_n-1: divergent trips.
                let trips: U32x32 = std::array::from_fn(|i| {
                    if valid.lane(i) {
                        block_n.saturating_sub(1).saturating_sub(tid[i])
                    } else {
                        0
                    }
                });
                w.divergent_loop(&trips, valid, |w2, k, active| {
                    let pidx: U32x32 = std::array::from_fn(|i| tid[i] + 1 + k);
                    w2.charge_alu(1, active);
                    let partner = gather_from_shared(w2, tile, &pidx, active);
                    let d = dist.eval(w2, reg, &partner, active);
                    let right: U32x32 = std::array::from_fn(|i| block_start + pidx[i]);
                    action.process(w2, st, &gid, &right, &d, active);
                });
            }
            IntraMode::LoadBalanced => {
                // Thread t pairs with (t + j) mod B for j = 1 .. B/2;
                // only the lower half runs the final iteration (paper
                // Figure 6). Trip counts are uniform within each warp, so
                // full blocks incur zero divergence.
                debug_assert!(
                    bd.is_multiple_of(2),
                    "load balancing requires an even block size"
                );
                let half = bd / 2;
                let trips: U32x32 = std::array::from_fn(|i| {
                    if valid.lane(i) {
                        if tid[i] < half {
                            half
                        } else {
                            half - 1
                        }
                    } else {
                        0
                    }
                });
                w.divergent_loop(&trips, valid, |w2, k, active| {
                    let j = k + 1;
                    let pidx: U32x32 = std::array::from_fn(|i| (tid[i] + j) % bd);
                    // Address computation + partner-validity test.
                    w2.charge_alu(2, active);
                    let pvalid = Mask::from_fn(|i| active.lane(i) && pidx[i] < block_n);
                    if !pvalid.any() {
                        return;
                    }
                    let partner = gather_from_shared(w2, tile, &pidx, pvalid);
                    let d = dist.eval(w2, reg, &partner, pvalid);
                    let right: U32x32 = std::array::from_fn(|i| block_start + pidx[i]);
                    action.process(w2, st, &gid, &right, &d, pvalid);
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_blocks_matches_equation_one() {
        assert_eq!(num_blocks(1024, 256), 4); // M = N / B
        assert_eq!(num_blocks(1000, 256), 4); // ragged
        assert_eq!(num_blocks(1, 256), 1);
        // N = 0 is an empty grid, not a stray single block: an empty
        // input must be a no-op launch with zeroed outputs.
        assert_eq!(num_blocks(0, 256), 0);
    }

    #[test]
    fn pair_launch_geometry() {
        let lc = pair_launch(2048, 128);
        assert_eq!(lc.grid_dim, 16);
        assert_eq!(lc.block_dim, 128);
    }
}
