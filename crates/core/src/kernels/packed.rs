//! The packed multi-cell-pair kernel: many small pairwise work items in
//! ONE simulated launch.
//!
//! The uniform-grid front end ([`crate::grid`]) prunes most of the N²/2
//! pair mass but leaves thousands of *tiny* work items — one triangular
//! range per occupied cell plus one rectangle per surviving inter-cell
//! pair. Launching each item separately pays the per-launch floor
//! (cold L2, occupancy ramp, host dispatch) thousands of times; the
//! paper's kernels assume launches big enough to saturate the device.
//! This kernel restores that assumption: a block→segment descriptor
//! table maps every block of one launch onto one slice of one work
//! item, so a whole population class of cell pairs runs as a single
//! launch.
//!
//! ## Descriptor table
//!
//! A [`PackedSegment`] names one work item by *catalog offsets* into a
//! device-resident SoA (the CSR-ordered gridded catalog):
//!
//! * intra segment — the triangular half-pair range over
//!   `left[left_start .. left_start + left_len)`, exactly the pairs an
//!   Algorithm-3 launch over that slice would evaluate;
//! * cross segment — the full `left_len × right_len` rectangle between
//!   two disjoint slices, exactly a [`super::CrossShmKernel`] launch.
//!
//! [`PackedLayout`] lays segments out over consecutive blocks — segment
//! `s` owns `ceil(left_len / B)` blocks — and the kernel recovers
//! `(segment, block-within-segment)` from `block_id` in O(1).
//!
//! ## Output-region soundness
//!
//! No per-segment output descriptors are needed: every
//! [`crate::output::PairAction`] used on the gridded route *stores*
//! (not accumulates) its per-block result into a region indexed by the
//! launch-global thread id (Type-I counts) or `block_id` (Type-II
//! privatized histograms) in `end_block`. Distinct blocks therefore
//! write disjoint regions whatever segment they serve, and the host
//! merges once per launch instead of once per cell pair.
//!
//! ## Bit-identity
//!
//! Each block evaluates exactly the pair multiset of the unpacked
//! launch it replaces, through the same compiled → fused → op-by-op
//! route ladder (per-warp valid masks are prefix masks, so the fast
//! routes engage exactly as they do for a ragged final block). The
//! sinks are integer accumulators, so "same pair multiset" is already
//! bit-identity — packed output == unpacked output == all-pairs output,
//! enforced by `core/tests/grid_identity.rs`.

use crate::distance::DistanceKernel;
use crate::kernels::IntraMode;
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, CompiledKernel, Kernel, KernelResources, LaunchConfig, ShmF32, WARP_SIZE};

/// One work item of a packed launch, in catalog offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedSegment {
    /// Start of the left (own-point) slice in the left catalog.
    pub left_start: u32,
    /// Points in the left slice (one thread each).
    pub left_len: u32,
    /// Start of the right (tiled) slice in the right catalog.
    pub right_start: u32,
    /// Points in the right slice.
    pub right_len: u32,
    /// Triangular half-pair range (`true`) or full rectangle (`false`).
    /// Intra segments must have identical left and right slices.
    pub intra: bool,
}

impl PackedSegment {
    /// Triangular intra-cell segment over one catalog slice.
    pub fn intra(start: u32, len: u32) -> Self {
        PackedSegment {
            left_start: start,
            left_len: len,
            right_start: start,
            right_len: len,
            intra: true,
        }
    }

    /// Rectangular inter-cell segment between two slices.
    pub fn cross(left_start: u32, left_len: u32, right_start: u32, right_len: u32) -> Self {
        PackedSegment {
            left_start,
            left_len,
            right_start,
            right_len,
            intra: false,
        }
    }

    /// Point pairs this segment evaluates.
    pub fn pair_count(&self) -> u64 {
        if self.intra {
            let n = self.left_len as u64;
            n * n.saturating_sub(1) / 2
        } else {
            self.left_len as u64 * self.right_len as u64
        }
    }
}

/// The block→segment descriptor table of one packed launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLayout {
    /// The packed work items.
    pub segments: Vec<PackedSegment>,
    /// Block size B every segment is tiled with.
    pub block_size: u32,
    /// `blocks[block_id] = (segment index, block within segment)`.
    blocks: Vec<(u32, u32)>,
}

impl PackedLayout {
    /// Lay `segments` out over consecutive blocks of size `block_size`.
    /// Segments must be non-empty on the left side (a zero-thread
    /// segment would own zero blocks and silently drop its pairs).
    pub fn new(segments: Vec<PackedSegment>, block_size: u32) -> Self {
        assert!(block_size > 0, "packed layout needs a positive block size");
        let mut blocks = Vec::new();
        for (s, seg) in segments.iter().enumerate() {
            assert!(
                seg.left_len > 0,
                "packed segment {s} has an empty left slice"
            );
            if seg.intra {
                assert!(
                    seg.left_start == seg.right_start && seg.left_len == seg.right_len,
                    "intra segment {s} must have identical left/right slices"
                );
            }
            for b in 0..super::num_blocks(seg.left_len, block_size) {
                blocks.push((s as u32, b));
            }
        }
        PackedLayout {
            segments,
            block_size,
            blocks,
        }
    }

    /// Blocks in the packed launch.
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// The launch covering every segment (grid = total blocks).
    pub fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(self.num_blocks(), self.block_size)
    }

    /// Point pairs across all segments.
    pub fn pair_count(&self) -> u64 {
        self.segments.iter().map(PackedSegment::pair_count).sum()
    }
}

/// The packed kernel: one launch, many cell-pair work items. `left` and
/// `right` are the catalogs the segment offsets index (the same
/// [`DeviceSoa`] twice for a self-join).
#[derive(Debug, Clone)]
pub struct PackedPairKernel<const D: usize, F, A> {
    /// Catalog holding every left (own-point) slice.
    pub left: DeviceSoa<D>,
    /// Catalog holding every right (tiled) slice.
    pub right: DeviceSoa<D>,
    /// Distance function.
    pub dist: F,
    /// Output action; per-block regions as argued in the module docs.
    pub action: A,
    /// The block→segment descriptor table.
    pub layout: PackedLayout,
}

impl<const D: usize, F, A> PackedPairKernel<D, F, A> {
    pub fn new(
        left: DeviceSoa<D>,
        right: DeviceSoa<D>,
        dist: F,
        action: A,
        layout: PackedLayout,
    ) -> Self {
        PackedPairKernel {
            left,
            right,
            dist,
            action,
            layout,
        }
    }

    /// Self-join constructor: both sides index the same catalog.
    pub fn self_join(points: DeviceSoa<D>, dist: F, action: A, layout: PackedLayout) -> Self {
        Self::new(points, points, dist, action, layout)
    }
}

impl<const D: usize, F, A> PackedPairKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    /// One shared-tile pass: stage `src[t_start .. t_start + t_len)`
    /// and pair it against the block's own registers through the
    /// compiled → fused → op-by-op ladder.
    #[allow(clippy::too_many_arguments)]
    fn tile_pass(
        &self,
        blk: &mut BlockCtx<'_>,
        ck: Option<&CompiledKernel>,
        st: &mut A::Block,
        own: &[[gpu_sim::F32x32; D]],
        tile: &[ShmF32; D],
        src: &DeviceSoa<D>,
        t_start: u32,
        t_len: u32,
        own_count: u32,
    ) {
        super::load_tile_to_shared(blk, src, tile, t_start, t_len);
        blk.syncthreads();
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let valid = w.mask_lt(&tid, own_count).and(w.active_threads());
            if !valid.any() {
                return;
            }
            let reg = &own[w.warp_id as usize];
            w.charge_control(t_len as u64 + 1, valid);
            if !super::try_tile_pass(
                w,
                ck,
                &self.dist,
                &self.action,
                st,
                gpu_sim::FusedSrc::SharedBroadcast(tile),
                t_len,
                gpu_sim::FusedPred::All,
                reg,
                valid,
            ) {
                let gid = w.global_thread_ids();
                for j in 0..t_len {
                    let rj = super::broadcast_from_shared(w, tile, j, valid);
                    let dval = self.dist.eval(w, reg, &rj, valid);
                    let right = [t_start + j; WARP_SIZE];
                    self.action.process(w, st, &gid, &right, &dval, valid);
                }
            }
        });
        blk.syncthreads();
    }
}

impl<const D: usize, F, A> Kernel for PackedPairKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "packed-pair"
    }

    fn resources(&self) -> KernelResources {
        let b = self.layout.block_size;
        // Same register/shared shape as Register-SHM / Cross-SHM: own
        // datum in registers, one shared tile, plus the action's state.
        KernelResources::new(
            super::register_shm::REG_SHM_BASE_REGS + 2 * D as u32 + self.action.regs_per_thread(),
            b * 4 * D as u32 + self.action.shared_bytes(b),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        assert_eq!(
            blk.block_dim, self.layout.block_size,
            "launch block_dim must equal the layout's block_size"
        );
        let b = self.layout.block_size;
        let (seg_idx, blk_in_seg) = self.layout.blocks[blk.block_id as usize];
        let seg = self.layout.segments[seg_idx as usize];

        let mut st = self.action.begin_block(blk);
        let ck = super::lower_block_plan::<D, _, _>(blk, &self.dist, &self.action, b);

        // This block owns `left[own_start .. own_start + own_count)`.
        let own_start = seg.left_start + blk_in_seg * b;
        let own_count = b.min(seg.left_len - blk_in_seg * b);
        let own = super::load_own_registers_at(blk, &self.left, own_start, own_count);
        let tile = super::alloc_tile::<D>(blk, b);

        if seg.intra {
            // The Algorithm-3 discipline over the segment's slice:
            // forward inter-block tiles, then the own-block triangle
            // (own tile loaded last, overwriting the shared space).
            let m = super::num_blocks(seg.left_len, b);
            for i in blk_in_seg + 1..m {
                let t_start = seg.left_start + i * b;
                let t_len = b.min(seg.left_len - i * b);
                self.tile_pass(
                    blk,
                    ck.as_ref(),
                    &mut st,
                    &own,
                    &tile,
                    &self.left,
                    t_start,
                    t_len,
                    own_count,
                );
            }
            super::load_tile_to_shared(blk, &self.left, &tile, own_start, own_count);
            blk.syncthreads();
            super::intra_block_shared(
                blk,
                ck.as_ref(),
                &tile,
                &own,
                &self.dist,
                &self.action,
                &mut st,
                own_start,
                own_count,
                IntraMode::Regular,
            );
        } else {
            // The Cross-SHM rectangle: tile the whole right slice.
            let tiles = super::num_blocks(seg.right_len, b);
            for i in 0..tiles {
                let t_start = seg.right_start + i * b;
                let t_len = b.min(seg.right_len - i * b);
                self.tile_pass(
                    blk,
                    ck.as_ref(),
                    &mut st,
                    &own,
                    &tile,
                    &self.right,
                    t_start,
                    t_len,
                    own_count,
                );
            }
        }

        self.action.end_block(blk, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::histogram::HistogramSpec;
    use crate::kernels::{pair_launch, PairScope, RegisterShmKernel};
    use crate::output::{CountWithinRadius, SharedHistogramAction};
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig};

    fn line_points(n: usize) -> SoaPoints<3> {
        SoaPoints::from_points(&(0..n).map(|i| [i as f32, 0.0, 0.0]).collect::<Vec<_>>())
    }

    fn host_count(pts: &SoaPoints<3>, seg: &PackedSegment, r: f32) -> u64 {
        let dist = |i: usize, j: usize| {
            let (p, q) = (pts.point(i), pts.point(j));
            ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2)).sqrt()
        };
        let mut c = 0;
        if seg.intra {
            for i in 0..seg.left_len as usize {
                for j in i + 1..seg.left_len as usize {
                    if dist(seg.left_start as usize + i, seg.left_start as usize + j) < r {
                        c += 1;
                    }
                }
            }
        } else {
            for i in 0..seg.left_len as usize {
                for j in 0..seg.right_len as usize {
                    if dist(seg.left_start as usize + i, seg.right_start as usize + j) < r {
                        c += 1;
                    }
                }
            }
        }
        c
    }

    #[test]
    fn layout_assigns_consecutive_blocks_per_segment() {
        let layout = PackedLayout::new(
            vec![
                PackedSegment::intra(0, 200),            // 4 blocks at B = 64
                PackedSegment::cross(200, 64, 300, 100), // 1 block
                PackedSegment::intra(400, 1),            // 1 block
            ],
            64,
        );
        assert_eq!(layout.num_blocks(), 6);
        assert_eq!(layout.launch_config().grid_dim, 6);
        assert_eq!(layout.pair_count(), 200 * 199 / 2 + 64 * 100);
    }

    #[test]
    fn single_intra_segment_is_bit_identical_to_register_shm() {
        // One segment covering the whole set lays blocks out exactly
        // like the monolithic launch, so even the per-thread output
        // regions must match bit for bit.
        let pts = line_points(200);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = pair_launch(input.n, 64);
        let out_ref = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k_ref = RegisterShmKernel::new(
            input,
            Euclidean,
            CountWithinRadius {
                radius: 5.5,
                out: out_ref,
            },
            64,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k_ref, lc);

        let layout = PackedLayout::new(vec![PackedSegment::intra(0, 200)], 64);
        let lc_packed = layout.launch_config();
        assert_eq!(lc_packed.grid_dim, lc.grid_dim);
        let out_packed = dev.alloc_u64_zeroed(lc_packed.total_threads() as usize);
        let k = PackedPairKernel::self_join(
            input,
            Euclidean,
            CountWithinRadius {
                radius: 5.5,
                out: out_packed,
            },
            layout,
        );
        dev.launch(&k, lc_packed);
        assert_eq!(dev.u64_slice(out_ref), dev.u64_slice(out_packed));
    }

    #[test]
    fn multi_segment_counts_match_host_reference() {
        // Three intra cells (one ragged, one single-point) and two
        // cross rectangles, with segment boundaries off block edges.
        let pts = line_points(500);
        let segs = vec![
            PackedSegment::intra(0, 130),
            PackedSegment::intra(130, 1),
            PackedSegment::intra(131, 64),
            PackedSegment::cross(0, 130, 131, 64),
            PackedSegment::cross(195, 100, 300, 200),
        ];
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let layout = PackedLayout::new(segs.clone(), 64);
        let lc = layout.launch_config();
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = PackedPairKernel::self_join(
            input,
            Euclidean,
            CountWithinRadius { radius: 7.5, out },
            layout,
        );
        dev.launch(&k, lc);
        let got: u64 = dev.u64_slice(out).iter().sum();
        let want: u64 = segs.iter().map(|s| host_count(&pts, s, 7.5)).sum();
        assert_eq!(got, want);
    }

    #[test]
    fn packed_histogram_bins_every_segment_pair_once() {
        let pts = line_points(300);
        let segs = vec![
            PackedSegment::intra(0, 100),
            PackedSegment::cross(100, 50, 150, 150),
        ];
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let layout = PackedLayout::new(segs, 32);
        let lc = layout.launch_config();
        let spec = HistogramSpec::new(16, 400.0);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = PackedPairKernel::self_join(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            layout,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u32_slice(private).iter().map(|&x| x as u64).sum();
        assert_eq!(total, 100 * 99 / 2 + 50 * 150);
    }

    #[test]
    fn sequential_and_parallel_engines_agree_with_compiled_on_and_off() {
        let pts = line_points(260);
        let segs = vec![
            PackedSegment::intra(0, 97),
            PackedSegment::cross(97, 33, 130, 130),
        ];
        let want: u64 = segs.iter().map(|s| host_count(&pts, s, 9.5)).sum();
        for compiled in [false, true] {
            for mode in [
                gpu_sim::ExecMode::Sequential,
                gpu_sim::ExecMode::Parallel { threads: 0 },
            ] {
                let cfg = DeviceConfig::titan_x()
                    .with_compiled(compiled)
                    .with_exec_mode(mode);
                let mut dev = Device::new(cfg);
                let input = pts.upload(&mut dev);
                let layout = PackedLayout::new(segs.clone(), 64);
                let lc = layout.launch_config();
                let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
                let k = PackedPairKernel::self_join(
                    input,
                    Euclidean,
                    CountWithinRadius { radius: 9.5, out },
                    layout,
                );
                dev.launch(&k, lc);
                let got: u64 = dev.u64_slice(out).iter().sum();
                assert_eq!(got, want, "compiled={compiled} mode={mode:?}");
            }
        }
    }

    #[test]
    fn empty_layout_is_a_noop_launch() {
        let pts = line_points(8);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let layout = PackedLayout::new(vec![], 32);
        let lc = layout.launch_config();
        assert_eq!(lc.grid_dim, 0);
        let out = dev.alloc_u64_zeroed(32);
        let k = PackedPairKernel::self_join(
            input,
            Euclidean,
            CountWithinRadius { radius: 1.0, out },
            layout,
        );
        dev.launch(&k, lc);
        assert_eq!(dev.u64_slice(out).iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "empty left slice")]
    fn zero_length_segments_are_rejected() {
        PackedLayout::new(vec![PackedSegment::intra(0, 0)], 32);
    }
}
