//! The SHM-SHM kernel — the paper's Algorithm 2 with both blocks L and R
//! cached in shared memory.
//!
//! The starting point of the paper's §IV-A discussion: every distance
//! evaluation reads *both* operands from shared memory, which is why its
//! shared-access count (equation 4) is twice Register-SHM's (equation 5)
//! — and why the paper promotes the own datum into a register.

use crate::distance::DistanceKernel;
use crate::kernels::{IntraMode, PairScope};
use crate::output::PairAction;
use crate::point::DeviceSoa;
use gpu_sim::{BlockCtx, Kernel, KernelResources, Mask, U32x32, WARP_SIZE};

/// Algorithm 2: L and R tiles both in shared memory.
#[derive(Debug, Clone)]
pub struct ShmShmKernel<const D: usize, F, A> {
    /// Input point set.
    pub input: DeviceSoa<D>,
    /// Distance function.
    pub dist: F,
    /// Output action.
    pub action: A,
    /// Block size B (must equal the launch's `block_dim`).
    pub block_size: u32,
    /// Pair scope.
    pub scope: PairScope,
    /// Intra-block iteration scheme.
    pub intra: IntraMode,
}

impl<const D: usize, F, A> ShmShmKernel<D, F, A> {
    pub fn new(
        input: DeviceSoa<D>,
        dist: F,
        action: A,
        block_size: u32,
        scope: PairScope,
        intra: IntraMode,
    ) -> Self {
        ShmShmKernel {
            input,
            dist,
            action,
            block_size,
            scope,
            intra,
        }
    }
}

pub(crate) const SHM_SHM_BASE_REGS: u32 = 16 + 4;

impl<const D: usize, F, A> Kernel for ShmShmKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn name(&self) -> &'static str {
        "shm-shm"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(
            SHM_SHM_BASE_REGS + 2 * D as u32 + self.action.regs_per_thread(),
            // Two tiles: L and R.
            2 * self.block_size * 4 * D as u32 + self.action.shared_bytes(self.block_size),
        )
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        assert_eq!(
            blk.block_dim, self.block_size,
            "launch block_dim must equal the kernel's block_size"
        );
        let n = self.input.n;
        let b = self.block_size;
        let m = super::num_blocks(n, b);
        let my_block = blk.block_id;
        let block_start = my_block * b;
        let block_n = b.min(n.saturating_sub(block_start));

        let mut st = self.action.begin_block(blk);
        let ck = super::lower_block_plan::<D, _, _>(blk, &self.dist, &self.action, b);

        // Line 1: L <- the b-th input data block loaded to cache.
        let l_tile = super::alloc_tile::<D>(blk, b);
        let r_tile = super::alloc_tile::<D>(blk, b);
        super::load_tile_to_shared(blk, &self.input, &l_tile, block_start, block_n);
        blk.syncthreads();

        let first_tile = match self.scope {
            PairScope::HalfPairs => my_block + 1,
            PairScope::AllPairs => 0,
        };

        // Lines 2–8: inter-block phase.
        for i in first_tile..m {
            if self.scope == PairScope::AllPairs && i == my_block {
                continue;
            }
            let start = i * b;
            let len = b.min(n - start);
            super::load_tile_to_shared(blk, &self.input, &r_tile, start, len);
            blk.syncthreads();
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let gid = w.global_thread_ids();
                let valid = w.mask_lt(&gid, n).and(w.active_threads());
                if !valid.any() {
                    return;
                }
                // L[t] is loop-invariant: the compiler keeps it in a
                // register across the j loop (one shared read per tile,
                // not per iteration) — which is exactly why the paper
                // *measures* only a narrow SHM-SHM vs Register-SHM gap
                // (5.3× vs 5.5×) even though its per-access equation (4)
                // counts 2× the shared reads of equation (5).
                let lt = super::gather_from_shared(w, &l_tile, &tid, valid);
                w.charge_control(len as u64 + 1, valid);
                if !super::try_tile_pass(
                    w,
                    ck.as_ref(),
                    &self.dist,
                    &self.action,
                    &mut st,
                    gpu_sim::FusedSrc::SharedBroadcast(&r_tile),
                    len,
                    gpu_sim::FusedPred::All,
                    &lt,
                    valid,
                ) {
                    for j in 0..len {
                        let rj = super::broadcast_from_shared(w, &r_tile, j, valid);
                        let dval = self.dist.eval(w, &lt, &rj, valid);
                        let right = [start + j; WARP_SIZE];
                        self.action.process(w, &mut st, &gid, &right, &dval, valid);
                    }
                }
            });
            blk.syncthreads();
        }

        // Lines 9–12: intra-block phase, both operands from L.
        match self.scope {
            PairScope::HalfPairs => {
                self.intra_shared_shared(blk, ck.as_ref(), &l_tile, &mut st, block_start, block_n)
            }
            PairScope::AllPairs => {
                blk.for_each_warp(|w| {
                    let tid = w.thread_ids();
                    let gid = w.global_thread_ids();
                    let valid = w.mask_lt(&gid, n).and(w.active_threads());
                    if !valid.any() {
                        return;
                    }
                    let lt = super::gather_from_shared(w, &l_tile, &tid, valid);
                    w.charge_control(block_n as u64 + 1, valid);
                    if !super::try_tile_pass(
                        w,
                        ck.as_ref(),
                        &self.dist,
                        &self.action,
                        &mut st,
                        gpu_sim::FusedSrc::SharedBroadcast(&l_tile),
                        block_n,
                        gpu_sim::FusedPred::NotEqual {
                            gid0: gid[0],
                            base: block_start,
                        },
                        &lt,
                        valid,
                    ) {
                        for j in 0..block_n {
                            let rj = super::broadcast_from_shared(w, &l_tile, j, valid);
                            let pm = Mask::from_fn(|i| valid.lane(i) && gid[i] != block_start + j);
                            w.charge_alu(1, valid);
                            if pm.any() {
                                let dval = self.dist.eval(w, &lt, &rj, pm);
                                let right = [block_start + j; WARP_SIZE];
                                self.action.process(w, &mut st, &gid, &right, &dval, pm);
                            }
                        }
                    }
                });
            }
        }

        self.action.end_block(blk, st);
    }
}

impl<const D: usize, F, A> ShmShmKernel<D, F, A>
where
    F: DistanceKernel<D>,
    A: PairAction,
{
    fn intra_shared_shared(
        &self,
        blk: &mut BlockCtx<'_>,
        ck: Option<&gpu_sim::CompiledKernel>,
        l_tile: &[gpu_sim::ShmF32; D],
        st: &mut A::Block,
        block_start: u32,
        block_n: u32,
    ) {
        let bd = blk.block_dim;
        let mode = self.intra;
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let gid = w.global_thread_ids();
            let valid = w.mask_lt(&tid, block_n).and(w.active_threads());
            // L[t] hoisted into a register for the whole intra loop.
            let lt = super::gather_from_shared(w, l_tile, &tid, valid);
            match mode {
                IntraMode::Regular => {
                    // Compiled route for the whole triangle; declines
                    // fall through to the divergent loop below.
                    if let Some(ckk) = ck {
                        if let Some(c) = self.action.fused_consumer(st, w.warp_id) {
                            if w.compiled_intra_regular(
                                ckk,
                                gpu_sim::CompiledTile::Shared(l_tile),
                                block_start,
                                block_n,
                                &lt,
                                c,
                                valid,
                            ) {
                                return;
                            }
                        }
                    }
                    let trips: U32x32 = std::array::from_fn(|i| {
                        if valid.lane(i) {
                            block_n.saturating_sub(1).saturating_sub(tid[i])
                        } else {
                            0
                        }
                    });
                    w.divergent_loop(&trips, valid, |w2, k, active| {
                        let pidx: U32x32 = std::array::from_fn(|i| tid[i] + 1 + k);
                        w2.charge_alu(1, active);
                        let partner = super::gather_from_shared(w2, l_tile, &pidx, active);
                        let dval = self.dist.eval(w2, &lt, &partner, active);
                        let right: U32x32 = std::array::from_fn(|i| block_start + pidx[i]);
                        self.action.process(w2, st, &gid, &right, &dval, active);
                    });
                }
                IntraMode::LoadBalanced => {
                    debug_assert!(bd.is_multiple_of(2));
                    let half = bd / 2;
                    let trips: U32x32 = std::array::from_fn(|i| {
                        if valid.lane(i) {
                            if tid[i] < half {
                                half
                            } else {
                                half - 1
                            }
                        } else {
                            0
                        }
                    });
                    w.divergent_loop(&trips, valid, |w2, k, active| {
                        let j = k + 1;
                        let pidx: U32x32 = std::array::from_fn(|i| (tid[i] + j) % bd);
                        w2.charge_alu(2, active);
                        let pvalid = Mask::from_fn(|i| active.lane(i) && pidx[i] < block_n);
                        if !pvalid.any() {
                            return;
                        }
                        let partner = super::gather_from_shared(w2, l_tile, &pidx, pvalid);
                        let dval = self.dist.eval(w2, &lt, &partner, pvalid);
                        let right: U32x32 = std::array::from_fn(|i| block_start + pidx[i]);
                        self.action.process(w2, st, &gid, &right, &dval, pvalid);
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::output::CountWithinRadius;
    use crate::point::SoaPoints;
    use gpu_sim::{Device, DeviceConfig};

    #[test]
    fn shm_shm_matches_reference_count() {
        let pts = SoaPoints::<2>::from_points(
            &(0..150).map(|i| [i as f32 * 0.5, 0.0]).collect::<Vec<_>>(),
        );
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = ShmShmKernel::new(
            input,
            Euclidean,
            CountWithinRadius { radius: 1.1, out },
            64,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k, lc);
        let total: u64 = dev.u64_slice(out).iter().sum();
        // Spacing 0.5: pairs within 1.1 are offsets 1 and 2.
        let expect: u64 = (0..150u64).map(|i| (150 - i - 1).min(2)).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn shm_shm_uses_double_the_shared_accesses_of_register_shm() {
        use crate::kernels::RegisterShmKernel;
        let pts = SoaPoints::<3>::from_points(
            &(0..128).map(|i| [i as f32, 1.0, 2.0]).collect::<Vec<_>>(),
        );
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = super::super::pair_launch(input.n, 32);
        let out1 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let out2 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let shm = ShmShmKernel::new(
            input,
            Euclidean,
            CountWithinRadius {
                radius: 10.0,
                out: out1,
            },
            32,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let reg = RegisterShmKernel::new(
            input,
            Euclidean,
            CountWithinRadius {
                radius: 10.0,
                out: out2,
            },
            32,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let r_shm = dev.launch(&shm, lc);
        let r_reg = dev.launch(&reg, lc);
        assert_eq!(
            dev.u64_slice(out1).iter().sum::<u64>(),
            dev.u64_slice(out2).iter().sum::<u64>()
        );
        // With L[t] hoisted into a register by the compiler, SHM-SHM's
        // extra shared traffic is one gather per (tile, warp) — a few
        // percent, matching the paper's *measured* narrow margin (5.3×
        // vs 5.5× in its Figure 2) rather than the 2× of its per-access
        // equation (4).
        let extra = r_shm.tally.shared_load_instructions - r_reg.tally.shared_load_instructions;
        assert!(extra > 0, "SHM-SHM must issue extra L[t] gathers");
        let ratio = r_shm.tally.shared_load_instructions as f64
            / r_reg.tally.shared_load_instructions.max(1) as f64;
        assert!(ratio > 1.0 && ratio < 1.2, "shared-load ratio {ratio}");
    }
}
