//! The output-reduction kernel — the paper's Figure 3.
//!
//! After a privatized SDH/RDF kernel finishes, global memory holds one
//! private `u32` histogram copy per block. This kernel is "configured to
//! have one thread handle one element in the output array": thread `h`
//! sums `private[m·H + h]` over all `m` copies (coalesced loads — copies
//! are contiguous) and writes the final `u64` count.

use gpu_sim::{BlockCtx, BufU32, BufU64, Kernel, KernelResources, U32x32, U64x32, WARP_SIZE};

/// Figure-3 reduction: combine per-block private histogram copies.
#[derive(Debug, Clone, Copy)]
pub struct HistogramReduceKernel {
    /// Private copies, `copies × buckets` u32 values.
    pub private: BufU32,
    /// Final histogram, `buckets` u64 values.
    pub out: BufU64,
    /// Histogram size H.
    pub buckets: u32,
    /// Number of private copies (the pair kernel's grid size M).
    pub copies: u32,
}

impl HistogramReduceKernel {
    /// The launch geometry the paper prescribes: one thread per bucket.
    pub fn launch_config(&self, block_dim: u32) -> gpu_sim::LaunchConfig {
        gpu_sim::LaunchConfig::for_n_threads(self.buckets, block_dim)
    }
}

impl Kernel for HistogramReduceKernel {
    fn name(&self) -> &'static str {
        "histogram-reduce"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(16, 0)
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let (private, out, h, m) = (self.private, self.out, self.buckets, self.copies);
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let mask = w.mask_lt(&gid, h).and(w.active_threads());
            if !mask.any() {
                return;
            }
            let mut acc: U64x32 = [0; WARP_SIZE];
            // The compiled route lowers the whole copy loop — control
            // charge included — to one call (bit-identical tally and L2
            // stream). On decline, charge the loop control and take the
            // fused packed reduction, or the op-by-op loop when that
            // declines too (scalar reference, fast paths off, ragged
            // masks, out-of-bounds copies).
            if !w.compiled_copy_reduce_u32(private, &gid, h, m, &mut acc, mask) {
                w.charge_control(m as u64 + 1, mask);
                if !w.fused_copy_reduce_u32(private, &gid, h, m, &mut acc, mask) {
                    for copy in 0..m {
                        let idx: U32x32 = std::array::from_fn(|i| copy * h + gid[i]);
                        let vals = w.global_load_u32(private, &idx, mask);
                        w.charge_alu(2, mask); // address + accumulate
                        for lane in mask.lanes() {
                            acc[lane] += vals[lane] as u64;
                        }
                    }
                }
            }
            w.global_store_u64(out, &gid, &acc, mask);
        });
    }
}

/// Device-side sum reduction of a `u64` array to a single value —
/// warp-level `shfl_down` tree (the technique of the paper's reduction
/// reference \[24\]) plus one global atomic per warp. Used to finish
/// Type-I outputs on-device instead of summing on the host.
#[derive(Debug, Clone, Copy)]
pub struct SumReduceKernel {
    /// Values to sum.
    pub input: BufU64,
    /// One-element output accumulator (must be zeroed by the host).
    pub out: BufU64,
    /// Number of valid input elements.
    pub n: u32,
}

impl SumReduceKernel {
    /// One thread per element.
    pub fn launch_config(&self, block_dim: u32) -> gpu_sim::LaunchConfig {
        gpu_sim::LaunchConfig::for_n_threads(self.n, block_dim)
    }
}

impl Kernel for SumReduceKernel {
    fn name(&self) -> &'static str {
        "sum-reduce"
    }

    fn resources(&self) -> KernelResources {
        KernelResources::new(12, 0)
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let (input, out, n) = (self.input, self.out, self.n);
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let mask = w.mask_lt(&gid, n).and(w.active_threads());
            if !mask.any() {
                return;
            }
            let mut vals = w.global_load_u64(input, &gid, mask);
            // shfl_down tree: after log2(32) steps lane 0 holds the warp
            // sum. Inactive lanes contribute zero (the load masked them).
            let mut delta = WARP_SIZE as u32 / 2;
            while delta > 0 {
                let shifted = w.shfl_down_u64(&vals, delta, gpu_sim::Mask::FULL);
                w.charge_alu(1, gpu_sim::Mask::FULL);
                for lane in 0..WARP_SIZE {
                    // Lanes beyond 32-delta receive their own value from
                    // shfl_down; add only the genuinely shifted ones.
                    vals[lane] = vals[lane].wrapping_add(if lane + (delta as usize) < WARP_SIZE {
                        shifted[lane]
                    } else {
                        0
                    });
                }
                delta /= 2;
            }
            // One atomic per warp, from lane 0.
            let leader = gpu_sim::Mask(1);
            w.global_atomic_add_u64(out, &[0; WARP_SIZE], &vals, leader);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceConfig};

    #[test]
    fn reduces_private_copies_to_final_histogram() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        // 3 copies × 5 buckets.
        let private = dev.alloc_u32(vec![
            1, 2, 3, 4, 5, // copy 0
            10, 20, 30, 40, 50, // copy 1
            100, 200, 300, 400, 500, // copy 2
        ]);
        let out = dev.alloc_u64_zeroed(5);
        let k = HistogramReduceKernel {
            private,
            out,
            buckets: 5,
            copies: 3,
        };
        dev.launch(&k, k.launch_config(32));
        assert_eq!(dev.u64_slice(out), &[111, 222, 333, 444, 555]);
    }

    #[test]
    fn handles_more_buckets_than_one_block() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let h = 300u32;
        let copies = 4u32;
        let data: Vec<u32> = (0..h * copies).map(|i| i % 7).collect();
        let out = dev.alloc_u64_zeroed(h as usize);
        let private = dev.alloc_u32(data.clone());
        let k = HistogramReduceKernel {
            private,
            out,
            buckets: h,
            copies,
        };
        dev.launch(&k, k.launch_config(128));
        let result = dev.u64_slice(out);
        for b in 0..h {
            let expect: u64 = (0..copies).map(|c| data[(c * h + b) as usize] as u64).sum();
            assert_eq!(result[b as usize], expect, "bucket {b}");
        }
    }

    #[test]
    fn sum_reduce_matches_host_sum() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let data: Vec<u64> = (0..1000u64).map(|i| i * 3 + 1).collect();
        let expect: u64 = data.iter().sum();
        let input = dev.alloc_u64(data);
        let out = dev.alloc_u64_zeroed(1);
        let k = SumReduceKernel {
            input,
            out,
            n: 1000,
        };
        dev.launch(&k, k.launch_config(128));
        assert_eq!(dev.u64_slice(out)[0], expect);
    }

    #[test]
    fn sum_reduce_uses_one_atomic_per_warp() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = dev.alloc_u64(vec![1; 256]);
        let out = dev.alloc_u64_zeroed(1);
        let k = SumReduceKernel { input, out, n: 256 };
        let run = dev.launch(&k, k.launch_config(64));
        assert_eq!(dev.u64_slice(out)[0], 256);
        assert_eq!(run.tally.global_atomics, 8, "8 warps -> 8 atomics");
        // 5 shfl_down steps per warp.
        assert_eq!(run.tally.shuffle_instructions, 8 * 5);
    }

    #[test]
    fn sum_reduce_handles_ragged_tail() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = dev.alloc_u64((1..=77u64).collect());
        let out = dev.alloc_u64_zeroed(1);
        let k = SumReduceKernel { input, out, n: 77 };
        dev.launch(&k, k.launch_config(32));
        assert_eq!(dev.u64_slice(out)[0], 77 * 78 / 2);
    }

    #[test]
    fn reduction_loads_are_coalesced() {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let h = 256u32;
        let copies = 8u32;
        let private = dev.alloc_u32(vec![1; (h * copies) as usize]);
        let out = dev.alloc_u64_zeroed(h as usize);
        let k = HistogramReduceKernel {
            private,
            out,
            buckets: h,
            copies,
        };
        let run = dev.launch(&k, k.launch_config(256));
        // 8 warps × 8 copies coalesced loads, 4 sectors each.
        assert_eq!(run.tally.global_load_instructions, 64);
        assert_eq!(
            run.tally.global_sectors() - run.tally.global_sectors() % 4,
            run.tally.global_sectors()
        );
    }
}
