//! Automatic kernel selection — the paper's stated vision ("a framework
//! that can automatically generate optimized code for any new 2-BS
//! problems", §I and §V), built on the analytical models of
//! [`crate::analytic`].
//!
//! Given a problem description, [`choose_plan`] enumerates every feasible
//! (input path × output path × intra mode) combination, predicts each
//! one's runtime with the closed-form profiles and the device timing
//! model, and returns the fastest — reproducing the paper's conclusions
//! (Register-SHM for Type-I, Reg-ROC-Out for Type-II) as *derived*
//! results rather than hard-coded rules.
//!
//! ```
//! use gpu_sim::DeviceConfig;
//! use tbs_core::plan::{choose_plan, ProblemOutput, ProblemSpec};
//!
//! let plan = choose_plan(
//!     &ProblemSpec {
//!         n: 512 * 1024,
//!         dims: 3,
//!         dist_cost: 7,
//!         output: ProblemOutput::Histogram { buckets: 4096 },
//!     },
//!     &DeviceConfig::titan_x(),
//! );
//! // Type-II at paper scale: privatized output wins (§IV-D).
//! assert!(matches!(
//!     plan.spec.output,
//!     tbs_core::analytic::OutputPath::SharedHistogram { .. }
//! ));
//! assert!(plan.predicted_seconds > 0.0);
//! ```

use crate::analytic::profiles::{predicted_run, InputPath, KernelSpec, OutputPath, Workload};
use crate::distance::DistanceKernel;
use crate::kernels::IntraMode;
use crate::output::{OutputClass, PairAction};
use gpu_sim::{CompiledKernel, DeviceConfig};

/// A 2-BS problem, described abstractly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemSpec {
    /// Input size.
    pub n: u32,
    /// Point dimensionality.
    pub dims: u32,
    /// ALU cost of one distance evaluation.
    pub dist_cost: u64,
    /// Output shape.
    pub output: ProblemOutput,
}

/// Output requirements of a problem (drives the Type-I/II/III choice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProblemOutput {
    /// A few registers per thread (2-PCF, kNN, KDE).
    Scalar,
    /// A histogram of `buckets` buckets (SDH, RDF).
    Histogram { buckets: u32 },
}

impl ProblemOutput {
    /// The paper's classification of this output.
    pub fn class(&self, cfg: &DeviceConfig) -> OutputClass {
        match *self {
            ProblemOutput::Scalar => OutputClass::TypeI,
            ProblemOutput::Histogram { buckets } => {
                if buckets * 4 <= cfg.shared_mem_per_block {
                    OutputClass::TypeII
                } else {
                    OutputClass::TypeIII
                }
            }
        }
    }
}

/// The chosen execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Kernel configuration to run.
    pub spec: KernelSpec,
    /// Block size to launch with.
    pub block_size: u32,
    /// Predicted kernel time in seconds.
    pub predicted_seconds: f64,
    /// Every candidate considered, best first (for reports/ablations).
    pub candidates: Vec<(KernelSpec, u32, f64)>,
}

/// Block sizes considered by the planner. The paper uses 1024 (from the
/// optimization model of its reference \[23\]) for the main experiments and
/// 256 for the histogram-size study.
pub const CANDIDATE_BLOCK_SIZES: &[u32] = &[128, 256, 512, 1024];

/// Enumerate feasible kernel specs for a problem on a device.
pub fn feasible_specs(p: &ProblemSpec, cfg: &DeviceConfig, b: u32) -> Vec<KernelSpec> {
    let mut specs = Vec::new();
    let outputs: Vec<OutputPath> = match p.output {
        ProblemOutput::Scalar => vec![OutputPath::RegisterCount],
        ProblemOutput::Histogram { buckets } => {
            let mut v = vec![OutputPath::GlobalHistogram { buckets }];
            if buckets * 4 <= cfg.shared_mem_per_block {
                v.push(OutputPath::SharedHistogram { buckets });
            }
            v
        }
    };
    for input in [
        InputPath::Naive,
        InputPath::ShmShm,
        InputPath::RegisterShm,
        InputPath::RegisterRoc,
        InputPath::Shuffle,
    ] {
        if input == InputPath::Shuffle && !cfg.has_shuffle {
            continue;
        }
        for &output in &outputs {
            // Tiles + privatized output must fit the per-block limit.
            let tile = input.tile_shared_bytes(b, p.dims);
            let out_shm = match output {
                OutputPath::SharedHistogram { buckets } => buckets * 4,
                _ => 0,
            };
            if tile + out_shm > cfg.shared_mem_per_block {
                continue;
            }
            for intra in [IntraMode::Regular, IntraMode::LoadBalanced] {
                // Shuffle has its own intra scheme; only emit one.
                if input == InputPath::Shuffle && intra == IntraMode::LoadBalanced {
                    continue;
                }
                specs.push(KernelSpec {
                    input,
                    output,
                    intra,
                });
            }
        }
    }
    specs
}

/// Lower a whole kernel plan — distance function × output action × tile
/// shape — to a [`CompiledKernel`] of closed-form host passes, computed
/// once before launch instead of re-derived on every warp dispatch.
///
/// Lowering succeeds only when every stage of the plan is expressible in
/// straight-line form: the distance must be the fusible Euclidean chain
/// (`DistanceKernel::fusible` + `euclidean_form`) and the action must
/// declare a [`gpu_sim::CompiledSinkSpec`] via
/// [`PairAction::compiled_sink`]. Anything else returns `None` and the
/// kernel runs its fused/op-by-op routes unchanged — as it also does,
/// tile by tile, whenever a *lowered* plan meets a shape the compiled
/// passes decline (non-prefix masks, would-fault accesses, load-balanced
/// intra phases). The declining routes double as the differential oracle
/// for the compiled one.
pub fn lower_pair_plan<const D: usize, F: DistanceKernel<D>, A: PairAction>(
    cfg: &DeviceConfig,
    dist: &F,
    action: &A,
    tile_len: u32,
) -> Option<CompiledKernel> {
    if !dist.fusible() || !dist.euclidean_form() {
        return None;
    }
    let sink = action.compiled_sink()?;
    CompiledKernel::lower(cfg, D as u32, tile_len, sink)
}

/// Which front end a [`SpatialPlan`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialRoute {
    /// One monolithic all-pairs launch (the pre-grid behavior).
    AllPairs,
    /// Uniform-grid pruning: the surviving cell pairs run as packed
    /// segmented sweeps (a handful of launches per population class).
    Grid,
}

/// Cap on blocks per packed launch — shared with the packed executor
/// (`apps::gridded`) so the planner prices exactly the launch chunking
/// the executor performs.
pub const MAX_PACKED_BLOCKS_PER_LAUNCH: u32 = 4096;

/// Typical number of population classes a fitted grid produces: the
/// occupancy-targeted sizing rule keeps cell lengths within a few
/// octaves of `target_points_per_cell`, so the packed route plans a
/// handful of power-of-two classes regardless of N.
pub const PACKED_CLASS_ESTIMATE: u64 = 4;

/// Residual per-segment overhead of a packed sweep, as a fraction of
/// the per-launch floor: ragged last tiles, the own-register reload at
/// each segment's blocks, and last-block padding. Calibrated against
/// the packed-vs-unpacked gridpath measurements (`BENCH_sim_gridpath`).
pub const PACKED_SEGMENT_OVERHEAD: f64 = 1.0 / 64.0;

/// Closed-form estimate of the packed route's launch count from pruning
/// statistics alone: surviving cell pairs occupy ≈ one block each
/// (occupancy-targeted cells span at most a few blocks), chunked at
/// [`MAX_PACKED_BLOCKS_PER_LAUNCH`] blocks per launch, plus roughly one
/// launch per population class.
pub fn estimate_packed_launches(cell_pairs: u64) -> u64 {
    cell_pairs
        .div_ceil(MAX_PACKED_BLOCKS_PER_LAUNCH as u64)
        .max(1)
        + PACKED_CLASS_ESTIMATE
}

/// The spatial layer above [`ExecutionPlan`]: given the pruning
/// accounting of a built grid ([`crate::grid::PruneStats`]), decide
/// whether the grid front end or the monolithic all-pairs launch is
/// predicted faster.
///
/// The model extends the analytic kernel profiles one level up: the
/// tiled kernels' cost is dominated by pair evaluations, so the grid
/// route costs the all-pairs prediction scaled by the surviving-pair
/// fraction, plus a per-launch floor (one minimal-`n` predicted run)
/// for each *packed* launch ([`estimate_packed_launches`] of them, not
/// one per cell pair), plus a small per-segment residual
/// ([`PACKED_SEGMENT_OVERHEAD`]) for tile raggedness and per-segment
/// register reloads. When pruning is weak — `r_max` comparable to the
/// box, so the fraction approaches 1 — the overhead makes the grid
/// strictly worse and the plan falls back to
/// [`SpatialRoute::AllPairs`]; exactly the graceful degradation the
/// grid's single-cell geometry also provides.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialPlan {
    /// The per-launch kernel plan (shared by both routes: the grid
    /// route launches it once per surviving cell pair).
    pub inner: ExecutionPlan,
    /// The selected front end.
    pub route: SpatialRoute,
    /// Predicted seconds for the monolithic all-pairs launch.
    pub all_pairs_seconds: f64,
    /// Predicted seconds for the grid route (scaled work + launch
    /// floors).
    pub grid_seconds: f64,
}

impl SpatialPlan {
    /// Predicted speedup of the grid route over all-pairs (>1 means
    /// the grid wins).
    pub fn predicted_speedup(&self) -> f64 {
        self.all_pairs_seconds / self.grid_seconds
    }
}

/// Choose between the grid front end and a monolithic all-pairs launch
/// for a problem whose grid produced `stats`.
pub fn choose_spatial_plan(
    p: &ProblemSpec,
    stats: &crate::grid::PruneStats,
    cfg: &DeviceConfig,
) -> SpatialPlan {
    let inner = choose_plan(p, cfg);
    let frac = if stats.total_point_pairs == 0 {
        1.0
    } else {
        stats.candidate_point_pairs as f64 / stats.total_point_pairs as f64
    };
    // Launch floor: the predicted cost of the chosen spec at the
    // smallest launchable size — pure per-launch overhead, paid once
    // per *packed* launch (the executor batches cell pairs into
    // segmented sweeps, so launches scale with population classes).
    let floor_wl = Workload {
        n: inner.block_size.min(p.n.max(1)),
        b: inner.block_size,
        dims: p.dims,
        dist_cost: p.dist_cost,
    };
    let per_launch = predicted_run(&floor_wl, &inner.spec, cfg).timing.seconds;
    let all_pairs_seconds = inner.predicted_seconds;
    let launches = estimate_packed_launches(stats.cell_pairs) as f64;
    let per_segment = per_launch * PACKED_SEGMENT_OVERHEAD;
    let grid_seconds =
        all_pairs_seconds * frac + launches * per_launch + stats.cell_pairs as f64 * per_segment;
    let route = if grid_seconds < all_pairs_seconds {
        SpatialRoute::Grid
    } else {
        SpatialRoute::AllPairs
    };
    SpatialPlan {
        inner,
        route,
        all_pairs_seconds,
        grid_seconds,
    }
}

/// Choose the fastest feasible plan for a problem by analytical
/// prediction.
pub fn choose_plan(p: &ProblemSpec, cfg: &DeviceConfig) -> ExecutionPlan {
    let mut candidates: Vec<(KernelSpec, u32, f64)> = Vec::new();
    for &b in CANDIDATE_BLOCK_SIZES {
        if b > cfg.max_threads_per_block || b > p.n {
            continue;
        }
        let wl = Workload {
            n: p.n,
            b,
            dims: p.dims,
            dist_cost: p.dist_cost,
        };
        for spec in feasible_specs(p, cfg, b) {
            let run = predicted_run(&wl, &spec, cfg);
            candidates.push((spec, b, run.timing.seconds));
        }
    }
    assert!(
        !candidates.is_empty(),
        "no feasible kernel for problem {p:?}"
    );
    candidates.sort_by(|a, b| a.2.total_cmp(&b.2));
    let best = candidates[0];
    ExecutionPlan {
        spec: best.0,
        block_size: best.1,
        predicted_seconds: best.2,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn type_i_problems_avoid_the_naive_kernel() {
        // §IV-B conclusion: for 2-PCF-like problems the tiled kernels
        // dominate; Register-SHM is the paper's winner.
        let p = ProblemSpec {
            n: 256 * 1024,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Scalar,
        };
        let plan = choose_plan(&p, &titan());
        assert_ne!(plan.spec.input, InputPath::Naive);
        // The winner must beat naive by a clear margin.
        let naive_time = plan
            .candidates
            .iter()
            .filter(|(s, _, _)| s.input == InputPath::Naive)
            .map(|&(_, _, t)| t)
            .fold(f64::INFINITY, f64::min);
        assert!(naive_time > 2.0 * plan.predicted_seconds);
    }

    #[test]
    fn type_ii_problems_choose_privatized_output() {
        // §IV-D: privatization wins by ~an order of magnitude.
        let p = ProblemSpec {
            n: 256 * 1024,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Histogram { buckets: 2048 },
        };
        let plan = choose_plan(&p, &titan());
        assert!(
            matches!(plan.spec.output, OutputPath::SharedHistogram { .. }),
            "planner chose {:?}",
            plan.spec
        );
        let global_best = plan
            .candidates
            .iter()
            .filter(|(s, _, _)| matches!(s.output, OutputPath::GlobalHistogram { .. }))
            .map(|&(_, _, t)| t)
            .fold(f64::INFINITY, f64::min);
        assert!(global_best > 3.0 * plan.predicted_seconds);
    }

    #[test]
    fn oversized_histograms_fall_back_to_global_memory() {
        // > 48 KB of buckets cannot be privatized in shared memory:
        // Type-III territory.
        let p = ProblemSpec {
            n: 64 * 1024,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Histogram { buckets: 100_000 },
        };
        assert_eq!(
            p.output.class(&titan()),
            crate::output::OutputClass::TypeIII
        );
        let plan = choose_plan(&p, &titan());
        assert!(matches!(
            plan.spec.output,
            OutputPath::GlobalHistogram { .. }
        ));
    }

    #[test]
    fn fermi_never_gets_shuffle_plans() {
        let p = ProblemSpec {
            n: 64 * 1024,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Scalar,
        };
        let plan = choose_plan(&p, &DeviceConfig::fermi_gtx580());
        assert!(plan
            .candidates
            .iter()
            .all(|(s, _, _)| s.input != InputPath::Shuffle));
    }

    #[test]
    fn spatial_plan_picks_grid_when_pruning_is_strong() {
        let p = ProblemSpec {
            n: 1 << 20,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Scalar,
        };
        // Small r_max in a big box: ~99% of pairs pruned over ~2k
        // surviving cell pairs.
        let stats = crate::grid::PruneStats {
            n: 1 << 20,
            cells: 4096,
            occupied_cells: 4096,
            cell_pairs: 2_048,
            candidate_point_pairs: (1u64 << 39) / 100,
            total_point_pairs: 1u64 << 39,
        };
        let plan = choose_spatial_plan(&p, &stats, &titan());
        assert_eq!(plan.route, SpatialRoute::Grid);
        assert!(plan.predicted_speedup() > 10.0, "{plan:?}");
    }

    #[test]
    fn spatial_plan_crossover_sits_well_below_a_million_points() {
        // Pruning statistics mirroring the gridpath bench at
        // N = 65,536 and N = 262,144 (where the measured packed route
        // wins): pricing packed launches instead of per-cell-pair
        // launches must move the model's crossover below both.
        for (n, cell_pairs, frac) in [(65_536u32, 1_161u64, 0.141), (262_144, 5_346, 0.041)] {
            let p = ProblemSpec {
                n,
                dims: 3,
                dist_cost: 7,
                output: ProblemOutput::Scalar,
            };
            let total = n as u64 * (n as u64 - 1) / 2;
            let stats = crate::grid::PruneStats {
                n: n as u64,
                cells: 4096,
                occupied_cells: 4096,
                cell_pairs,
                candidate_point_pairs: (total as f64 * frac) as u64,
                total_point_pairs: total,
            };
            let plan = choose_spatial_plan(&p, &stats, &titan());
            assert_eq!(plan.route, SpatialRoute::Grid, "n={n}: {plan:?}");
            assert!(plan.predicted_speedup() > 1.0, "n={n}: {plan:?}");
        }
    }

    #[test]
    fn spatial_plan_falls_back_when_pruning_is_nil() {
        let p = ProblemSpec {
            n: 4096,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Scalar,
        };
        // r_max ≥ box: single cell, nothing pruned — the launch floor
        // makes the grid route strictly worse.
        let stats = crate::grid::PruneStats {
            n: 4096,
            cells: 1,
            occupied_cells: 1,
            cell_pairs: 1,
            candidate_point_pairs: 4096 * 4095 / 2,
            total_point_pairs: 4096 * 4095 / 2,
        };
        let plan = choose_spatial_plan(&p, &stats, &titan());
        assert_eq!(plan.route, SpatialRoute::AllPairs);
        assert!(plan.grid_seconds > plan.all_pairs_seconds);
    }

    #[test]
    fn candidates_are_sorted_best_first() {
        let p = ProblemSpec {
            n: 32 * 1024,
            dims: 2,
            dist_cost: 5,
            output: ProblemOutput::Scalar,
        };
        let plan = choose_plan(&p, &titan());
        for w in plan.candidates.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        assert_eq!(plan.predicted_seconds, plan.candidates[0].2);
    }
}
