//! The data-output stage: the paper's Type-I/II/III taxonomy (§III-B)
//! realized as composable [`PairAction`]s.
//!
//! Every pairwise kernel variant (naive, tiled, shuffle — see
//! [`crate::kernels`]) is generic over a `PairAction`: the kernel owns
//! *where the inputs come from* (global / shared / ROC / registers), the
//! action owns *where each result goes*:
//!
//! * **Type-I** ([`CountWithinRadius`], [`KnnAction`], [`KdeAction`]) —
//!   output lives in per-thread registers and is written out once when
//!   the block finishes.
//! * **Type-II** ([`SharedHistogramAction`], [`GlobalHistogramAction`]) —
//!   a histogram, privatized per block in shared memory (the paper's
//!   Algorithm 3 + Figure 3 reduction) or updated directly in global
//!   memory with atomics (the unoptimized comparison point).
//! * **Type-III** ([`PairListAction`], [`MatrixWriteAction`]) — output too
//!   large for on-chip storage; written straight to global memory. The
//!   paper defers these to future work; we implement them, including a
//!   warp-aggregated allocation scheme that amortizes the output-counter
//!   atomic across the warp.

use crate::histogram::HistogramSpec;
use gpu_sim::{
    BlockCtx, BufF32, BufU32, BufU64, CompiledSinkSpec, F32x32, FusedConsumer, FusedSink, Mask,
    ShmU32, U32x32, U64x32, WarpCtx, WARP_SIZE,
};

/// The paper's output classification (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputClass {
    /// Output fits in registers (a few words per thread).
    TypeI,
    /// Output fits in shared memory (tens of KB per block).
    TypeII,
    /// Output only fits in global memory (up to O(N²)).
    TypeIII,
}

/// What a kernel does with each computed pair value.
///
/// `Block` is per-block state: shared-memory handles and/or per-warp
/// register accumulators (indexed by warp id).
pub trait PairAction: Sync {
    type Block;

    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Which output class this action realizes.
    fn class(&self) -> OutputClass;

    /// Per-block setup: allocate/zero shared structures, set up register
    /// accumulators.
    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block;

    /// Consume one warp of pair results. `left`/`right` are the global
    /// point indices of each lane's pair and `value` the distance-function
    /// result; only `mask` lanes are valid.
    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        left: &U32x32,
        right: &U32x32,
        value: &F32x32,
        mask: Mask,
    );

    /// Per-block teardown: write private output out.
    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block);

    /// Shared-memory bytes the action allocates per block.
    fn shared_bytes(&self, _block_dim: u32) -> u32 {
        0
    }

    /// Registers per thread the action's accumulators occupy.
    fn regs_per_thread(&self) -> u32 {
        2
    }

    /// Fixed ALU instructions charged per `process` call (mirrored by the
    /// analytic model).
    fn alu_per_pair(&self) -> u64;

    /// A borrowed [`FusedConsumer`] view of warp `warp_id`'s accumulator
    /// state, when [`PairAction::process`] is one of the shapes
    /// `WarpCtx::fused_tile_pass` can execute (its per-step charges must
    /// equal [`PairAction::alu_per_pair`]). `None` — the default — keeps
    /// the kernel on the op-by-op interpretation route.
    fn fused_consumer<'s>(
        &self,
        _st: &'s mut Self::Block,
        _warp_id: u32,
    ) -> Option<FusedConsumer<'s>> {
        None
    }

    /// The action's output-sink shape for plan lowering
    /// (`gpu_sim::CompiledKernel::lower`). Unlike
    /// [`PairAction::fused_consumer`] this borrows no per-block state —
    /// lowering happens once, before any block runs. `None` — the
    /// default — keeps the plan off the compiled route (fused/op-by-op
    /// still apply).
    fn compiled_sink(&self) -> Option<CompiledSinkSpec> {
        None
    }
}

// ====================================================================
// Type-I
// ====================================================================

/// 2-point-correlation-function output: each thread counts pairs within
/// `radius` in a register; counts are stored to `out[global_tid]` when
/// the block exits and summed on the host.
#[derive(Debug, Clone, Copy)]
pub struct CountWithinRadius {
    /// Count pairs with distance strictly below this radius.
    pub radius: f32,
    /// Per-thread output counts, length ≥ total threads of the launch.
    pub out: BufU64,
}

impl PairAction for CountWithinRadius {
    /// One `U64x32` register accumulator per warp.
    type Block = Vec<U64x32>;

    fn name(&self) -> &'static str {
        "count-within-radius"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeI
    }

    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block {
        vec![[0u64; WARP_SIZE]; blk.num_warps() as usize]
    }

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        _left: &U32x32,
        _right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        // Compare (1 ALU) + predicated increment (1 ALU).
        let hits = w.lt_f32(value, self.radius, mask);
        w.charge_alu(1, mask);
        let acc = &mut st[w.warp_id as usize];
        for lane in hits.lanes() {
            acc[lane] += 1;
        }
    }

    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block) {
        let out = self.out;
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.active_threads();
            w.global_store_u64(out, &gid, &st[w.warp_id as usize], m);
        });
    }

    fn alu_per_pair(&self) -> u64 {
        2
    }

    fn fused_consumer<'s>(
        &self,
        st: &'s mut Self::Block,
        warp_id: u32,
    ) -> Option<FusedConsumer<'s>> {
        Some(FusedConsumer::CountLt {
            radius: self.radius,
            acc: &mut st[warp_id as usize],
        })
    }

    fn compiled_sink(&self) -> Option<CompiledSinkSpec> {
        Some(CompiledSinkSpec::CountLt {
            radius: self.radius,
        })
    }
}

/// Per-point k-nearest-neighbor distances (small k — a Type-I output per
/// the paper's §III-B: "all-point k-nearest neighbors (when k is
/// small)"). Each thread keeps its k best distances and neighbor ids in
/// registers via predicated insertion.
///
/// Requires kernels running in [`crate::kernels::PairScope::AllPairs`]
/// mode so every point sees every other point.
#[derive(Debug, Clone, Copy)]
pub struct KnnAction<const K: usize> {
    /// Best-distance output, laid out `out_dist[k * n + point]`
    /// (coalesced per-k stores).
    pub out_dist: BufF32,
    /// Matching neighbor indices, same layout.
    pub out_idx: BufU32,
    /// Number of points.
    pub n: u32,
}

/// Per-warp kNN register state.
pub struct KnnBlock<const K: usize> {
    dists: Vec<[F32x32; K]>,
    idxs: Vec<[U32x32; K]>,
}

impl<const K: usize> PairAction for KnnAction<K> {
    type Block = KnnBlock<K>;

    fn name(&self) -> &'static str {
        "knn"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeI
    }

    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block {
        let w = blk.num_warps() as usize;
        KnnBlock {
            dists: vec![[[f32::INFINITY; WARP_SIZE]; K]; w],
            idxs: vec![[[u32::MAX; WARP_SIZE]; K]; w],
        }
    }

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        _left: &U32x32,
        right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        // SIMT predication: the insertion network executes on every lane
        // regardless of whether it inserts — fixed cost 2·K + 1.
        w.charge_alu(2 * K as u64 + 1, mask);
        let wid = w.warp_id as usize;
        for lane in mask.lanes() {
            let (d, idx) = (value[lane], right[lane]);
            let dists = &mut st.dists[wid];
            let idxs = &mut st.idxs[wid];
            if d < dists[K - 1][lane] {
                // Insertion sort from the back.
                let mut pos = K - 1;
                while pos > 0 && dists[pos - 1][lane] > d {
                    dists[pos][lane] = dists[pos - 1][lane];
                    idxs[pos][lane] = idxs[pos - 1][lane];
                    pos -= 1;
                }
                dists[pos][lane] = d;
                idxs[pos][lane] = idx;
            }
        }
    }

    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block) {
        let (out_dist, out_idx, n) = (self.out_dist, self.out_idx, self.n);
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.mask_lt(&gid, n).and(w.active_threads());
            for k in 0..K {
                let slot: U32x32 = std::array::from_fn(|i| k as u32 * n + gid[i]);
                w.charge_alu(1, m);
                w.global_store_f32(out_dist, &slot, &st.dists[w.warp_id as usize][k], m);
                w.global_store_u32(out_idx, &slot, &st.idxs[w.warp_id as usize][k], m);
            }
        });
    }

    fn regs_per_thread(&self) -> u32 {
        2 + 2 * K as u32
    }

    fn alu_per_pair(&self) -> u64 {
        2 * K as u64 + 1
    }
}

/// Kernel density estimation: each thread accumulates Σ K(xᵢ, xⱼ) over
/// all other points in a register (Type-I). The "distance function"
/// should be a kernel weight such as [`crate::distance::GaussianRbf`].
///
/// Requires [`crate::kernels::PairScope::AllPairs`].
#[derive(Debug, Clone, Copy)]
pub struct KdeAction {
    /// Per-point density sums, length ≥ n.
    pub out: BufF32,
    /// Number of points.
    pub n: u32,
}

impl PairAction for KdeAction {
    type Block = Vec<F32x32>;

    fn name(&self) -> &'static str {
        "kde"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeI
    }

    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block {
        vec![[0.0; WARP_SIZE]; blk.num_warps() as usize]
    }

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        _left: &U32x32,
        _right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        w.charge_alu(1, mask);
        let acc = &mut st[w.warp_id as usize];
        for lane in mask.lanes() {
            acc[lane] += value[lane];
        }
    }

    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block) {
        let (out, n) = (self.out, self.n);
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.mask_lt(&gid, n).and(w.active_threads());
            w.global_store_f32(out, &gid, &st[w.warp_id as usize], m);
        });
    }

    fn alu_per_pair(&self) -> u64 {
        1
    }

    fn fused_consumer<'s>(
        &self,
        st: &'s mut Self::Block,
        warp_id: u32,
    ) -> Option<FusedConsumer<'s>> {
        Some(FusedConsumer::Sum {
            acc: &mut st[warp_id as usize],
        })
    }

    fn compiled_sink(&self) -> Option<CompiledSinkSpec> {
        Some(CompiledSinkSpec::Sum)
    }
}

// ====================================================================
// Type-II
// ====================================================================

/// The paper's privatized histogram output (Algorithm 3): one private
/// `u32` copy per block in shared memory, updated with shared-memory
/// atomics, then flushed to a per-block region of global memory. A
/// separate reduction kernel ([`crate::kernels::HistogramReduceKernel`])
/// combines the private copies (Figure 3).
#[derive(Debug, Clone, Copy)]
pub struct SharedHistogramAction {
    /// Histogram geometry.
    pub spec: HistogramSpec,
    /// Private copies: `grid_dim × buckets` u32 values, block `b`'s copy
    /// at `[b * buckets .. (b+1) * buckets]`.
    pub private: BufU32,
}

impl PairAction for SharedHistogramAction {
    type Block = ShmU32;

    fn name(&self) -> &'static str {
        "shared-histogram"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeII
    }

    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block {
        let h = self.spec.buckets;
        let shm = blk.shared_alloc_u32(h as usize);
        // Algorithm 3, line 1: initialize shared memory to zero,
        // cooperatively (thread t zeroes buckets t, t+B, t+2B, …).
        let bd = blk.block_dim;
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let mut off = 0u32;
            while off < h {
                let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                let m = w.mask_lt(&idx, h).and(w.active_threads());
                if m.any() {
                    w.shared_store_u32(shm, &idx, &[0; WARP_SIZE], m);
                }
                off += bd;
            }
        });
        blk.syncthreads();
        shm
    }

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        _left: &U32x32,
        _right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        // Algorithm 3, line 7: SHMOut[d] += 1 via shared atomic.
        let bucket = self.spec.bucket_lanes(w, value, mask);
        w.shared_atomic_add_u32(*st, &bucket, &[1; WARP_SIZE], mask);
    }

    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block) {
        // Algorithm 3, line 15: Output[b][t] <- SHMOut[t], strided so the
        // global stores coalesce.
        blk.syncthreads();
        let h = self.spec.buckets;
        let base = blk.block_id * h;
        let bd = blk.block_dim;
        let private = self.private;
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let mut off = 0u32;
            while off < h {
                let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                let m = w.mask_lt(&idx, h).and(w.active_threads());
                if m.any() {
                    let vals = w.shared_load_u32(st, &idx, m);
                    let slot: U32x32 = std::array::from_fn(|i| base + idx[i]);
                    w.charge_alu(1, m);
                    w.global_store_u32(private, &slot, &vals, m);
                }
                off += bd;
            }
        });
    }

    fn shared_bytes(&self, _block_dim: u32) -> u32 {
        self.spec.shared_bytes()
    }

    fn alu_per_pair(&self) -> u64 {
        2 // bucket computation; the atomic itself is a memory op
    }

    fn fused_consumer<'s>(
        &self,
        st: &'s mut Self::Block,
        _warp_id: u32,
    ) -> Option<FusedConsumer<'s>> {
        Some(FusedConsumer::Histogram {
            inv_width: self.spec.inv_width(),
            hmax: self.spec.buckets.saturating_sub(1),
            shm: *st,
        })
    }

    fn compiled_sink(&self) -> Option<CompiledSinkSpec> {
        Some(CompiledSinkSpec::Histogram {
            inv_width: self.spec.inv_width(),
            hmax: self.spec.buckets.saturating_sub(1),
        })
    }
}

/// Multi-copy privatized histogram: `copies` private histograms per
/// block, lane `l` updating copy `l mod copies` — sub-warp privatization
/// that spreads a warp's simultaneous updates over several addresses.
///
/// Reproduces the paper's §IV-C aside: *"We tested more private copies
/// per block and found that it does not bring overall performance
/// advantage (data not shown)"* — extra copies cut same-address
/// contention but cost shared memory (occupancy) and a wider end-of-block
/// reduction; the `ext_multicopy` bench maps out both regimes.
#[derive(Debug, Clone, Copy)]
pub struct MultiCopyHistogramAction {
    /// Histogram geometry.
    pub spec: HistogramSpec,
    /// Private per-block output, `grid_dim × buckets` (copies are merged
    /// before leaving the block).
    pub private: BufU32,
    /// Private copies per block (≥ 1).
    pub copies: u32,
}

impl PairAction for MultiCopyHistogramAction {
    type Block = ShmU32;

    fn name(&self) -> &'static str {
        "multicopy-histogram"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeII
    }

    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block {
        let total = self.spec.buckets * self.copies.max(1);
        let shm = blk.shared_alloc_u32(total as usize);
        let bd = blk.block_dim;
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let mut off = 0u32;
            while off < total {
                let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                let m = w.mask_lt(&idx, total).and(w.active_threads());
                if m.any() {
                    w.shared_store_u32(shm, &idx, &[0; WARP_SIZE], m);
                }
                off += bd;
            }
        });
        blk.syncthreads();
        shm
    }

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        _left: &U32x32,
        _right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        let bucket = self.spec.bucket_lanes(w, value, mask);
        let copies = self.copies.max(1);
        let h = self.spec.buckets;
        let idx: U32x32 = std::array::from_fn(|i| (i as u32 % copies) * h + bucket[i]);
        w.charge_alu(1, mask);
        w.shared_atomic_add_u32(*st, &idx, &[1; WARP_SIZE], mask);
    }

    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block) {
        blk.syncthreads();
        let h = self.spec.buckets;
        let copies = self.copies.max(1);
        let base = blk.block_id * h;
        let bd = blk.block_dim;
        let private = self.private;
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let mut off = 0u32;
            while off < h {
                let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                let m = w.mask_lt(&idx, h).and(w.active_threads());
                if m.any() {
                    // Sum the copies for these buckets — packed route
                    // first (one fused call for the whole copy loop,
                    // bit-identical charges), op-by-op fallback when it
                    // declines.
                    let mut acc = [0u32; WARP_SIZE];
                    if !w.fused_shared_copy_reduce_u32(st, &idx, h, copies, &mut acc, m) {
                        for c in 0..copies {
                            let src: U32x32 = std::array::from_fn(|i| c * h + idx[i]);
                            let vals = w.shared_load_u32(st, &src, m);
                            w.charge_alu(1, m);
                            for lane in m.lanes() {
                                acc[lane] = acc[lane].wrapping_add(vals[lane]);
                            }
                        }
                    }
                    let slot: U32x32 = std::array::from_fn(|i| base + idx[i]);
                    w.charge_alu(1, m);
                    w.global_store_u32(private, &slot, &acc, m);
                }
                off += bd;
            }
        });
    }

    fn shared_bytes(&self, _block_dim: u32) -> u32 {
        self.spec.shared_bytes() * self.copies.max(1)
    }

    fn alu_per_pair(&self) -> u64 {
        3
    }
}

/// Unprivatized Type-II output: every update is an atomic on the final
/// `u64` histogram in global memory — the paper's baseline output stage
/// whose cost privatization removes ("about one order of magnitude",
/// §IV-D).
#[derive(Debug, Clone, Copy)]
pub struct GlobalHistogramAction {
    /// Histogram geometry.
    pub spec: HistogramSpec,
    /// Final histogram, length = buckets.
    pub out: BufU64,
}

impl PairAction for GlobalHistogramAction {
    type Block = ();

    fn name(&self) -> &'static str {
        "global-histogram"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeII
    }

    fn begin_block(&self, _blk: &mut BlockCtx<'_>) -> Self::Block {}

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        _st: &mut Self::Block,
        _left: &U32x32,
        _right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        let bucket = self.spec.bucket_lanes(w, value, mask);
        w.global_atomic_add_u64(self.out, &bucket, &[1; WARP_SIZE], mask);
    }

    fn end_block(&self, _blk: &mut BlockCtx<'_>, _st: Self::Block) {}

    fn alu_per_pair(&self) -> u64 {
        2
    }
}

// ====================================================================
// Type-III
// ====================================================================

/// Distance-join output: pairs within `radius` are appended to a global
/// pair list through an atomically-bumped cursor (Type-III — the output
/// can be quadratic).
///
/// With `aggregated = true`, the allocation atomic is issued once per
/// warp instead of once per lane: the warp counts its hits, one lane
/// reserves the whole range, and the base slot is shuffled to everyone —
/// our implementation of the paper's future-work direction for Type-III.
#[derive(Debug, Clone, Copy)]
pub struct PairListAction {
    /// Join radius (inclusive comparison is `<`).
    pub radius: f32,
    /// One-element cursor; final value = total matches (may exceed
    /// capacity, in which case the list is truncated).
    pub cursor: BufU32,
    /// Matched left indices.
    pub out_left: BufU32,
    /// Matched right indices.
    pub out_right: BufU32,
    /// Capacity of the output arrays.
    pub capacity: u32,
    /// Use warp-aggregated slot allocation.
    pub aggregated: bool,
}

impl PairAction for PairListAction {
    type Block = ();

    fn name(&self) -> &'static str {
        if self.aggregated {
            "pair-list-aggregated"
        } else {
            "pair-list"
        }
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeIII
    }

    fn begin_block(&self, _blk: &mut BlockCtx<'_>) -> Self::Block {}

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        _st: &mut Self::Block,
        left: &U32x32,
        right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        let hits = w.lt_f32(value, self.radius, mask);
        if !hits.any() {
            return;
        }
        let slots: U32x32;
        if self.aggregated {
            // ballot + popc + per-lane rank (prefix over the hit mask).
            w.charge_alu(3, mask);
            let total = hits.count();
            // One lane performs the allocation for the warp.
            let leader = Mask(1 << hits.lanes().next().expect("hits is non-empty"));
            let mut amounts = [0u32; WARP_SIZE];
            for lane in leader.lanes() {
                amounts[lane] = total;
            }
            let old = w.global_atomic_add_u32(self.cursor, &[0; WARP_SIZE], &amounts, leader);
            let base = w.shfl_bcast_u32(&old, hits.lanes().next().unwrap() as u32, hits);
            let mut rank = 0u32;
            slots = std::array::from_fn(|i| {
                if hits.lane(i) {
                    let s = base[i] + rank;
                    rank += 1;
                    s
                } else {
                    0
                }
            });
        } else {
            // Every hit lane bumps the cursor itself: maximal contention,
            // the naive Type-III allocation.
            let old = w.global_atomic_add_u32(self.cursor, &[0; WARP_SIZE], &[1; WARP_SIZE], hits);
            slots = old;
        }
        // Drop writes beyond capacity (the cursor still counts them).
        let writable = Mask::from_fn(|i| hits.lane(i) && slots[i] < self.capacity);
        w.charge_alu(1, hits);
        if writable.any() {
            w.global_store_u32(self.out_left, &slots, left, writable);
            w.global_store_u32(self.out_right, &slots, right, writable);
        }
    }

    fn end_block(&self, _blk: &mut BlockCtx<'_>, _st: Self::Block) {}

    fn alu_per_pair(&self) -> u64 {
        if self.aggregated {
            5
        } else {
            2
        }
    }
}

/// Kernel (Gram) matrix output: `out[j·n + i] = K(xᵢ, xⱼ)` for every
/// pair — a dense N × N Type-III output.
///
/// Stores are issued into the row of the *broadcast* point (`right`), so
/// consecutive lanes write consecutive addresses and coalesce; with
/// `symmetric = true`, the mirrored (strided, 32-sector) store fills the
/// other triangle — the honest cost of symmetric Type-III output.
#[derive(Debug, Clone, Copy)]
pub struct MatrixWriteAction {
    /// Output matrix, `n × n`, row-major.
    pub out: BufF32,
    /// Matrix dimension.
    pub n: u32,
    /// Also write the transposed entry.
    pub symmetric: bool,
}

impl PairAction for MatrixWriteAction {
    type Block = ();

    fn name(&self) -> &'static str {
        "matrix-write"
    }

    fn class(&self) -> OutputClass {
        OutputClass::TypeIII
    }

    fn begin_block(&self, _blk: &mut BlockCtx<'_>) -> Self::Block {}

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        _st: &mut Self::Block,
        left: &U32x32,
        right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        let n = self.n;
        // Coalesced row write: right is (usually) uniform across lanes,
        // left consecutive.
        let slot: U32x32 = std::array::from_fn(|i| right[i].wrapping_mul(n).wrapping_add(left[i]));
        w.charge_alu(1, mask);
        w.global_store_f32(self.out, &slot, value, mask);
        if self.symmetric {
            let t: U32x32 = std::array::from_fn(|i| left[i].wrapping_mul(n).wrapping_add(right[i]));
            w.charge_alu(1, mask);
            w.global_store_f32(self.out, &t, value, mask);
        }
    }

    fn end_block(&self, _blk: &mut BlockCtx<'_>, _st: Self::Block) {}

    fn alu_per_pair(&self) -> u64 {
        if self.symmetric {
            2
        } else {
            1
        }
    }
}

// ====================================================================
// Batched multi-query (the serve layer's coalesced sweep)
// ====================================================================

/// One count-within-radius consumer of a [`MultiQueryAction`] batch —
/// the [`CountWithinRadius`] shape with its own radius and output.
#[derive(Debug, Clone, Copy)]
pub struct MultiCountSink {
    /// Count pairs with distance strictly below this radius.
    pub radius: f32,
    /// Per-thread output counts, length ≥ total threads of the launch.
    pub out: BufU64,
}

/// One privatized-histogram consumer of a [`MultiQueryAction`] batch —
/// the [`SharedHistogramAction`] shape with its own geometry and
/// private-copy output.
#[derive(Debug, Clone, Copy)]
pub struct MultiHistSink {
    /// Histogram geometry.
    pub spec: HistogramSpec,
    /// Private copies: `grid_dim × buckets` u32 values, block `b`'s copy
    /// at `[b * buckets .. (b+1) * buckets]`.
    pub private: BufU32,
}

/// Many queries, one pairwise sweep: each computed distance feeds every
/// count sink and every histogram sink in order, so `k` queries that
/// share a dataset + distance kernel cost one O(N²) stage instead of
/// `k`. This is the engine half of the `tbs-serve` query batcher
/// (CADISHI's producer/consumer pipeline shape: one distance evaluation,
/// many histogram consumers).
///
/// Per-sink behaviour — outputs *and* charges — replicates the
/// standalone actions exactly ([`CountWithinRadius`],
/// [`SharedHistogramAction`]), and the fused route drives all sinks from
/// one `FusedConsumer::Multi` pass, so a batched run stays bit-identical
/// to issuing each query alone (the differential suites enforce this).
/// The compiled route lowers the same sink list
/// (`CompiledSinkSpec::Multi`, counts then histograms), so coalesced
/// SDH batches ride the compiled inter-tile pass; the intra triangle
/// stays on the fused route.
#[derive(Debug, Clone, Default)]
pub struct MultiQueryAction {
    /// Count consumers, fed first (in order).
    pub counts: Vec<MultiCountSink>,
    /// Histogram consumers, fed after the counts (in order).
    pub hists: Vec<MultiHistSink>,
}

/// Per-block state of a [`MultiQueryAction`]: one register accumulator
/// per warp per count sink, one privatized shared histogram per
/// histogram sink.
pub struct MultiQueryBlock {
    counts: Vec<Vec<U64x32>>,
    hists: Vec<ShmU32>,
}

impl PairAction for MultiQueryAction {
    type Block = MultiQueryBlock;

    fn name(&self) -> &'static str {
        "multi-query"
    }

    fn class(&self) -> OutputClass {
        if self.hists.is_empty() {
            OutputClass::TypeI
        } else {
            OutputClass::TypeII
        }
    }

    fn begin_block(&self, blk: &mut BlockCtx<'_>) -> Self::Block {
        let counts = self
            .counts
            .iter()
            .map(|_| vec![[0u64; WARP_SIZE]; blk.num_warps() as usize])
            .collect();
        // Zero every sink's private histogram cooperatively, then one
        // barrier covers them all (Algorithm 3, line 1, per sink).
        let bd = blk.block_dim;
        let hists: Vec<ShmU32> = self
            .hists
            .iter()
            .map(|hs| {
                let h = hs.spec.buckets;
                let shm = blk.shared_alloc_u32(h as usize);
                blk.for_each_warp(|w| {
                    let tid = w.thread_ids();
                    let mut off = 0u32;
                    while off < h {
                        let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                        let m = w.mask_lt(&idx, h).and(w.active_threads());
                        if m.any() {
                            w.shared_store_u32(shm, &idx, &[0; WARP_SIZE], m);
                        }
                        off += bd;
                    }
                });
                shm
            })
            .collect();
        if !hists.is_empty() {
            blk.syncthreads();
        }
        MultiQueryBlock { counts, hists }
    }

    fn process(
        &self,
        w: &mut WarpCtx<'_, '_>,
        st: &mut Self::Block,
        _left: &U32x32,
        _right: &U32x32,
        value: &F32x32,
        mask: Mask,
    ) {
        // Sink order here must match `fused_consumer` below: counts
        // first, then histograms — each body identical to its standalone
        // action's `process`.
        for (cs, acc) in self.counts.iter().zip(st.counts.iter_mut()) {
            let hits = w.lt_f32(value, cs.radius, mask);
            w.charge_alu(1, mask);
            let acc = &mut acc[w.warp_id as usize];
            for lane in hits.lanes() {
                acc[lane] += 1;
            }
        }
        for (hs, shm) in self.hists.iter().zip(st.hists.iter()) {
            let bucket = hs.spec.bucket_lanes(w, value, mask);
            w.shared_atomic_add_u32(*shm, &bucket, &[1; WARP_SIZE], mask);
        }
    }

    fn end_block(&self, blk: &mut BlockCtx<'_>, st: Self::Block) {
        if !st.hists.is_empty() {
            blk.syncthreads();
        }
        let bd = blk.block_dim;
        for (hs, shm) in self.hists.iter().zip(st.hists.iter()) {
            let h = hs.spec.buckets;
            let base = blk.block_id * h;
            let private = hs.private;
            let shm = *shm;
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let mut off = 0u32;
                while off < h {
                    let idx: U32x32 = std::array::from_fn(|i| off + tid[i]);
                    let m = w.mask_lt(&idx, h).and(w.active_threads());
                    if m.any() {
                        let vals = w.shared_load_u32(shm, &idx, m);
                        let slot: U32x32 = std::array::from_fn(|i| base + idx[i]);
                        w.charge_alu(1, m);
                        w.global_store_u32(private, &slot, &vals, m);
                    }
                    off += bd;
                }
            });
        }
        for (cs, acc) in self.counts.iter().zip(st.counts.iter()) {
            let out = cs.out;
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let m = w.active_threads();
                w.global_store_u64(out, &gid, &acc[w.warp_id as usize], m);
            });
        }
    }

    fn shared_bytes(&self, _block_dim: u32) -> u32 {
        self.hists.iter().map(|hs| hs.spec.shared_bytes()).sum()
    }

    fn regs_per_thread(&self) -> u32 {
        (2 * self.counts.len() as u32).max(2)
    }

    fn alu_per_pair(&self) -> u64 {
        // Two per sink: compare+add for counts, bucket+clamp for
        // histograms (each atomic itself is a memory op).
        2 * (self.counts.len() + self.hists.len()) as u64
    }

    fn fused_consumer<'s>(
        &self,
        st: &'s mut Self::Block,
        warp_id: u32,
    ) -> Option<FusedConsumer<'s>> {
        let mut sinks = Vec::with_capacity(self.counts.len() + self.hists.len());
        for (cs, acc) in self.counts.iter().zip(st.counts.iter_mut()) {
            sinks.push(FusedSink::CountLt {
                radius: cs.radius,
                acc: &mut acc[warp_id as usize],
            });
        }
        for (hs, shm) in self.hists.iter().zip(st.hists.iter()) {
            sinks.push(FusedSink::Histogram {
                inv_width: hs.spec.inv_width(),
                hmax: hs.spec.buckets.saturating_sub(1),
                shm: *shm,
            });
        }
        Some(FusedConsumer::Multi(sinks))
    }

    fn compiled_sink(&self) -> Option<CompiledSinkSpec> {
        Some(CompiledSinkSpec::Multi {
            counts: self.counts.iter().map(|cs| cs.radius).collect(),
            hists: self
                .hists
                .iter()
                .map(|hs| (hs.spec.inv_width(), hs.spec.buckets.saturating_sub(1)))
                .collect(),
        })
    }
}
