//! Uniform-grid spatial decomposition — the sub-quadratic front end.
//!
//! Every kernel in this crate is all-pairs O(N²). The production
//! pair-counting toolkits the roadmap names (CUTE, FCFC) win at large N
//! by binning points into a uniform grid sized from the largest radius
//! of interest and *skipping every cell pair whose minimum separation
//! exceeds that radius*: for r_max ≪ box, almost all of the N²/2 pairs
//! are provably beyond range and never evaluated. The surviving cell
//! pairs are then handed to the paper's tiled kernels unchanged — the
//! intra-cell triangle through the regular `HalfPairs` path, inter-cell
//! rectangles through [`crate::kernels::CrossShmKernel`] — so the whole
//! op-by-op / fused / compiled route matrix and its bit-identity
//! contract apply *per cell pair* exactly as they do to a monolithic
//! launch.
//!
//! ## The exactness contract
//!
//! Pruning must be invisible in the outputs: grid-pruned pair counts
//! and bounded histograms are **bit-identical** to the all-pairs route.
//! Three properties make that hold (argued in DESIGN.md §"Spatial
//! pruning front end" and enforced by `core/tests/grid_identity.rs`):
//!
//! 1. **No qualifying pair is culled.** A cell pair is skipped only
//!    when the minimum gap between the two cells is at least
//!    `r_cull = r_max · (1 + R_CULL_MARGIN)`. The margin strictly
//!    dominates every rounding source between "true separation" and the
//!    f32 distance the kernels compute (cell assignment happens in f64;
//!    the fused/compiled Euclidean chain is within a few ulp of exact),
//!    so any pair whose *computed* distance is `< r_max` lives in a
//!    surviving cell pair.
//! 2. **No pair is double-counted.** Intra-cell pairs run once through
//!    the triangular `HalfPairs` path; inter-cell pairs are enumerated
//!    over a lexicographically-forward stencil, so each unordered cell
//!    pair `{a, b}` appears exactly once.
//! 3. **Out-of-range pairs cannot leak into bounded outputs.** A pair
//!    evaluated by one route but culled by the other necessarily has
//!    computed distance `≥ r_max`; counts use a strict `< radius ≤
//!    r_max` predicate and [`RadialBins`] histograms shunt everything
//!    `≥ r_max` into a discarded overflow bucket, so such pairs
//!    contribute to neither route's retained output.
//!
//! Integer outputs (u64 counts, u32/u64 bucket counts) are
//! order-insensitive, so "same multiset of contributing pairs" is
//! already bit-identity; no floating-point accumulation crosses a cell
//! pair boundary.

use crate::histogram::{Histogram, HistogramSpec};
use crate::point::SoaPoints;

/// Relative safety margin on the culling radius: a cell pair is pruned
/// only when its minimum gap is ≥ `r_max * (1 + R_CULL_MARGIN)`. The
/// margin (10⁻⁵) exceeds the worst-case relative error of the f32
/// fused-multiply-add distance chain (~7·10⁻⁷ for D ≤ 8) plus the f64
/// cell-assignment rounding (~10⁻¹⁵) by more than an order of
/// magnitude, so culling can only ever drop pairs whose computed
/// distance is strictly above `r_max`. Costs nothing in practice: gaps
/// come in multiples of the cell edge, which the sizing rule keeps
/// ≥ `r_cull`.
pub const R_CULL_MARGIN: f64 = 1e-5;

/// Tuning knobs for grid construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOptions {
    /// Soft lower bound on the average occupancy of a cell. Smaller
    /// cells prune more pairs but multiply kernel launches; the sizing
    /// rule refuses to create more than ~`n / target_points_per_cell`
    /// cells so per-launch overhead stays amortized.
    pub target_points_per_cell: u32,
    /// Hard cap on total cells (memory guard for adversarial
    /// `r_max / extent` ratios).
    pub max_cells: u32,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            // ~2 blocks of paper-default work per cell pair: big enough
            // to amortize a simulated launch, small enough to prune.
            target_points_per_cell: 512,
            max_cells: 1 << 20,
        }
    }
}

/// The geometry of a uniform grid: a box partitioned into
/// `dims[0] × … × dims[D-1]` cells of per-axis edge `edge[d]`
/// (f64 — cell assignment and culling arithmetic run in f64 so their
/// rounding is negligible next to [`R_CULL_MARGIN`]).
///
/// Two point sets binned with the *same* `GridGeometry` (see
/// [`GridGeometry::fit`] over multiple sets) share cell indices, which
/// is what makes bipartite (DR-style) pruning valid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridGeometry<const D: usize> {
    /// Lower corner of the covered box.
    pub origin: [f32; D],
    /// Per-axis cell edge length.
    pub edge: [f64; D],
    /// Cells per axis (≥ 1).
    pub dims: [u32; D],
    /// The radius the grid was sized for.
    pub r_max: f32,
    /// Effective culling radius `r_max · (1 + R_CULL_MARGIN)`.
    pub r_cull: f64,
}

impl<const D: usize> GridGeometry<D> {
    /// Fit a grid over the union bounding box of `sets`, sized for
    /// `r_max`: per axis, the largest cell count whose edge stays
    /// ≥ `r_cull`, clamped so average occupancy respects
    /// `opts.target_points_per_cell` and the total respects
    /// `opts.max_cells`. Degenerate inputs (empty sets, zero extent,
    /// `r_max` ≥ extent) collapse to a single cell on the affected
    /// axes — the grid then degrades gracefully toward the all-pairs
    /// launch it replaces.
    pub fn fit(sets: &[&SoaPoints<D>], r_max: f32, opts: &GridOptions) -> Self {
        assert!(r_max > 0.0 && r_max.is_finite(), "r_max must be positive");
        let n: usize = sets.iter().map(|s| s.len()).sum();
        let mut lo = [f32::INFINITY; D];
        let mut hi = [f32::NEG_INFINITY; D];
        for s in sets {
            for d in 0..D {
                for &x in s.coord(d) {
                    assert!(x.is_finite(), "grid input coordinates must be finite");
                    lo[d] = lo[d].min(x);
                    hi[d] = hi[d].max(x);
                }
            }
        }
        if n == 0 {
            (lo, hi) = ([0.0; D], [0.0; D]);
        }
        let r_cull = r_max as f64 * (1.0 + R_CULL_MARGIN);
        // Radius rule: per axis, the most cells whose edge stays
        // ≥ r_cull (so the stencil reach is 1 on every subdivided
        // axis).
        let mut dims = [1u64; D];
        for d in 0..D {
            let extent = (hi[d] - lo[d]) as f64;
            let by_radius = if extent > 0.0 {
                (extent / r_cull).floor() as u64
            } else {
                0
            };
            dims[d] = by_radius.max(1);
        }
        // Occupancy + memory clamp on the *total* cell count (at most
        // ~n / target cells, and never more than max_cells), spent
        // where it matters: repeatedly halve the widest axis until the
        // budget holds. Degenerate axes (dims == 1) cost nothing, so
        // anisotropic data keeps its resolution on the axes that have
        // extent.
        let target = opts.target_points_per_cell.max(1) as u64;
        let budget = (n as u64 / target).max(1).min(opts.max_cells.max(1) as u64);
        while dims.iter().product::<u64>() > budget {
            let widest = (0..D).max_by_key(|&d| dims[d]).unwrap();
            if dims[widest] == 1 {
                break;
            }
            dims[widest] = dims[widest].div_ceil(2);
        }
        let mut dims = dims.map(|c| c as u32);
        let mut edge = [0f64; D];
        for d in 0..D {
            let extent = (hi[d] - lo[d]) as f64;
            // f64 division can nudge the edge a hair under r_cull when
            // extent/r_cull is near-integral; back off until the sizing
            // invariant `edge ≥ r_cull` holds (or the axis is one cell).
            while dims[d] > 1 && extent / (dims[d] as f64) < r_cull {
                dims[d] -= 1;
            }
            edge[d] = if extent > 0.0 {
                extent / dims[d] as f64
            } else {
                1.0
            };
        }
        GridGeometry {
            origin: lo,
            edge,
            dims,
            r_max,
            r_cull,
        }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Row-major index of the cell containing `p` (clamped into the
    /// grid, so points on the upper boundary bin into the last cell).
    pub fn cell_of(&self, p: [f32; D]) -> usize {
        let mut idx = 0usize;
        for (d, &x) in p.iter().enumerate() {
            let rel = (x as f64 - self.origin[d] as f64) / self.edge[d];
            let i = (rel.floor() as i64).clamp(0, self.dims[d] as i64 - 1) as usize;
            idx = idx * self.dims[d] as usize + i;
        }
        idx
    }

    /// Per-axis coordinates of a row-major cell index.
    pub fn cell_coords(&self, mut idx: usize) -> [u32; D] {
        let mut c = [0u32; D];
        for d in (0..D).rev() {
            c[d] = (idx % self.dims[d] as usize) as u32;
            idx /= self.dims[d] as usize;
        }
        c
    }

    /// Squared minimum separation between two cells at per-axis index
    /// offset `off`: adjacent or overlapping axes contribute zero, an
    /// axis `k ≥ 2` apart contributes `((k-1)·edge)²`.
    pub fn min_gap_sq(&self, off: &[i64; D]) -> f64 {
        let mut s = 0.0;
        for (d, &o) in off.iter().enumerate() {
            let gap_cells = (o.abs() - 1).max(0) as f64;
            let g = gap_cells * self.edge[d];
            s += g * g;
        }
        s
    }

    /// True when a cell pair at offset `off` is provably out of range
    /// (minimum separation ≥ `r_cull`) and may be pruned.
    pub fn culled(&self, off: &[i64; D]) -> bool {
        self.min_gap_sq(off) >= self.r_cull * self.r_cull
    }

    /// Per-axis stencil reach: how many cells away a neighbor can be
    /// and still contain in-range points. With the sizing invariant
    /// `edge ≥ r_cull` this is 1 (the 3^D stencil); it widens only on
    /// axes collapsed below `r_cull` by the occupancy clamp or a
    /// degenerate extent.
    pub fn reach(&self) -> [i64; D] {
        std::array::from_fn(|d| {
            if self.dims[d] == 1 {
                0
            } else {
                ((self.r_cull / self.edge[d]).ceil() as i64).clamp(1, self.dims[d] as i64 - 1)
            }
        })
    }

    /// All in-range neighbor offsets that are lexicographically
    /// *forward* (first nonzero component positive): visiting each
    /// cell's forward neighbors enumerates every unordered cell pair
    /// exactly once — the symmetry/dedup rule of the front end.
    pub fn forward_stencil(&self) -> Vec<[i64; D]> {
        self.stencil(true)
    }

    /// All in-range neighbor offsets including zero and backward ones —
    /// the bipartite stencil, where (data cell, random cell) pairs are
    /// ordered and every ordered pair must appear once.
    pub fn full_stencil(&self) -> Vec<[i64; D]> {
        self.stencil(false)
    }

    fn stencil(&self, forward_only: bool) -> Vec<[i64; D]> {
        let reach = self.reach();
        let mut out = Vec::new();
        let mut off = [0i64; D];
        for d in 0..D {
            off[d] = -reach[d];
        }
        loop {
            let fwd = off.iter().find(|&&o| o != 0).is_none_or(|&o| o > 0);
            let include = if forward_only {
                fwd && off != [0i64; D]
            } else {
                true
            };
            if include && !self.culled(&off) {
                out.push(off);
            }
            // Odometer increment over [-reach, reach]^D.
            let mut d = D;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if off[d] < reach[d] {
                    off[d] += 1;
                    break;
                }
                off[d] = -reach[d];
            }
        }
    }

    /// Apply offset `off` to cell `idx`; `None` when it leaves the grid.
    pub fn neighbor(&self, idx: usize, off: &[i64; D]) -> Option<usize> {
        let c = self.cell_coords(idx);
        let mut out = 0usize;
        for d in 0..D {
            let i = c[d] as i64 + off[d];
            if i < 0 || i >= self.dims[d] as i64 {
                return None;
            }
            out = out * self.dims[d] as usize + i as usize;
        }
        Some(out)
    }
}

/// A point set binned into a [`GridGeometry`]: points reordered
/// cell-by-cell (CSR layout) so each cell is a contiguous slice ready
/// for upload as its own kernel input.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGrid<const D: usize> {
    /// The shared geometry.
    pub geom: GridGeometry<D>,
    /// Points reordered so cell `c` owns `points[cell_start[c] ..
    /// cell_start[c+1]]`.
    pub points: SoaPoints<D>,
    /// `perm[i]` is the original index of reordered point `i`.
    pub perm: Vec<u32>,
    /// CSR cell offsets, length `num_cells() + 1`.
    pub cell_start: Vec<u32>,
}

impl<const D: usize> UniformGrid<D> {
    /// Bin `pts` into an existing geometry (counting sort: one pass to
    /// count, prefix-sum, one pass to scatter — O(N + cells)).
    pub fn bin(geom: GridGeometry<D>, pts: &SoaPoints<D>) -> Self {
        let n = pts.len();
        let cells = geom.num_cells();
        let mut counts = vec![0u32; cells + 1];
        let cell_idx: Vec<u32> = (0..n)
            .map(|i| {
                let c = geom.cell_of(pts.point(i)) as u32;
                counts[c as usize + 1] += 1;
                c
            })
            .collect();
        for c in 0..cells {
            counts[c + 1] += counts[c];
        }
        let cell_start = counts.clone();
        let mut perm = vec![0u32; n];
        let mut cursor = counts;
        for (i, &c) in cell_idx.iter().enumerate() {
            let slot = cursor[c as usize];
            cursor[c as usize] += 1;
            perm[slot as usize] = i as u32;
        }
        let mut points = SoaPoints::with_capacity(n);
        for &src in &perm {
            points.push(pts.point(src as usize));
        }
        UniformGrid {
            geom,
            points,
            perm,
            cell_start,
        }
    }

    /// Build geometry and bin in one step (the self-join entry point).
    pub fn build(pts: &SoaPoints<D>, r_max: f32, opts: &GridOptions) -> Self {
        Self::bin(GridGeometry::fit(&[pts], r_max, opts), pts)
    }

    /// Number of points in cell `c`.
    pub fn cell_len(&self, c: usize) -> u32 {
        self.cell_start[c + 1] - self.cell_start[c]
    }

    /// The reordered-point index range of cell `c`.
    pub fn cell_range(&self, c: usize) -> std::ops::Range<usize> {
        self.cell_start[c] as usize..self.cell_start[c + 1] as usize
    }

    /// Indices of non-empty cells.
    pub fn occupied_cells(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.geom.num_cells()).filter(|&c| self.cell_len(c) > 0)
    }
}

/// One surviving cell pair: `a == b` is the triangular intra-cell case,
/// `a != b` the rectangular inter-cell case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPair {
    pub a: u32,
    pub b: u32,
}

impl CellPair {
    /// Intra-cell (triangular) pair?
    pub fn is_intra(&self) -> bool {
        self.a == self.b
    }
}

/// Enumerate the surviving cell pairs of a self-join: every non-empty
/// cell once against itself (intra), plus each unordered pair of
/// distinct non-empty cells within culling range once (forward
/// stencil).
pub fn candidate_pairs<const D: usize>(grid: &UniformGrid<D>) -> Vec<CellPair> {
    let stencil = grid.geom.forward_stencil();
    let mut out = Vec::new();
    for a in grid.occupied_cells() {
        out.push(CellPair {
            a: a as u32,
            b: a as u32,
        });
        for off in &stencil {
            if let Some(b) = grid.geom.neighbor(a, off) {
                if grid.cell_len(b) > 0 {
                    out.push(CellPair {
                        a: a as u32,
                        b: b as u32,
                    });
                }
            }
        }
    }
    out
}

/// Enumerate surviving *ordered* cell pairs of a bipartite join
/// (`left` cell × `right` cell, full stencil). Both grids must share a
/// geometry — bin both sets with one [`GridGeometry::fit`] over both.
pub fn candidate_cross_pairs<const D: usize>(
    left: &UniformGrid<D>,
    right: &UniformGrid<D>,
) -> Vec<CellPair> {
    assert_eq!(
        left.geom, right.geom,
        "bipartite pruning requires a shared grid geometry"
    );
    let stencil = left.geom.full_stencil();
    let mut out = Vec::new();
    for a in left.occupied_cells() {
        for off in &stencil {
            if let Some(b) = left.geom.neighbor(a, off) {
                if right.cell_len(b) > 0 {
                    out.push(CellPair {
                        a: a as u32,
                        b: b as u32,
                    });
                }
            }
        }
    }
    out
}

/// Closed-form pruning accounting for a set of candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStats {
    /// Points in the (left) set.
    pub n: u64,
    /// Total cells and non-empty cells.
    pub cells: u64,
    pub occupied_cells: u64,
    /// Surviving cell pairs (intra + inter, as enumerated).
    pub cell_pairs: u64,
    /// Point pairs the pruned route will evaluate.
    pub candidate_point_pairs: u64,
    /// Point pairs the all-pairs route evaluates.
    pub total_point_pairs: u64,
}

impl PruneStats {
    /// Fraction of all-pairs work the grid provably skips.
    pub fn pruned_fraction(&self) -> f64 {
        if self.total_point_pairs == 0 {
            0.0
        } else {
            1.0 - self.candidate_point_pairs as f64 / self.total_point_pairs as f64
        }
    }
}

/// Pruning statistics of a self-join.
pub fn prune_stats<const D: usize>(grid: &UniformGrid<D>, pairs: &[CellPair]) -> PruneStats {
    let n = grid.points.len() as u64;
    let candidate = pairs
        .iter()
        .map(|p| {
            let (ca, cb) = (
                grid.cell_len(p.a as usize) as u64,
                grid.cell_len(p.b as usize) as u64,
            );
            if p.is_intra() {
                ca * (ca - 1) / 2
            } else {
                ca * cb
            }
        })
        .sum();
    PruneStats {
        n,
        cells: grid.geom.num_cells() as u64,
        occupied_cells: grid.occupied_cells().count() as u64,
        cell_pairs: pairs.len() as u64,
        candidate_point_pairs: candidate,
        total_point_pairs: n * n.saturating_sub(1) / 2,
    }
}

/// Pruning statistics of a bipartite join (`total` = |L|·|R| ordered
/// pairs; the executor evaluates each ordered candidate once).
pub fn cross_prune_stats<const D: usize>(
    left: &UniformGrid<D>,
    right: &UniformGrid<D>,
    pairs: &[CellPair],
) -> PruneStats {
    let (nl, nr) = (left.points.len() as u64, right.points.len() as u64);
    let candidate = pairs
        .iter()
        .map(|p| left.cell_len(p.a as usize) as u64 * right.cell_len(p.b as usize) as u64)
        .sum();
    PruneStats {
        n: nl,
        cells: left.geom.num_cells() as u64,
        occupied_cells: left.occupied_cells().count() as u64,
        cell_pairs: pairs.len() as u64,
        candidate_point_pairs: candidate,
        total_point_pairs: nl * nr,
    }
}

// ====================================================================
// Bounded radial histograms — the pruning-compatible Type-II contract
// ====================================================================

/// A bounded distance histogram: `bins` equal-width bins covering
/// `[0, r_max)`, with everything at or beyond `r_max` *discarded*
/// rather than clamped (the cosmology pair-count convention — DD(r) in
/// radial bins).
///
/// The device kernels keep the framework's clamp-into-last-bucket
/// semantics untouched: [`RadialBins::device_spec`] appends one
/// overflow bucket past `r_max`, every out-of-range pair lands there
/// (on either route — see the module docs for why no in-range bucket
/// can absorb a pair the grid culls), and [`RadialBins::finalize`]
/// drops it. The retained `bins` buckets are bit-identical between the
/// grid-pruned and all-pairs routes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadialBins {
    /// Number of retained bins over `[0, r_max)`.
    pub bins: u32,
    /// Upper edge of the retained range; also the grid's pruning
    /// radius.
    pub r_max: f32,
}

impl RadialBins {
    pub fn new(bins: u32, r_max: f32) -> Self {
        assert!(bins > 0, "radial binning needs at least one bin");
        assert!(
            r_max > 0.0 && r_max.is_finite(),
            "r_max must be positive and finite"
        );
        RadialBins { bins, r_max }
    }

    /// Width of one retained bin.
    pub fn bin_width(&self) -> f32 {
        self.r_max / self.bins as f32
    }

    /// The [`HistogramSpec`] the kernels actually run: `bins + 1`
    /// buckets over `[0, r_max · (bins+1)/bins)`, so bucket `bins` is
    /// the overflow/clamp bucket that absorbs every distance ≥ r_max.
    pub fn device_spec(&self) -> HistogramSpec {
        let max = (self.r_max as f64 * (self.bins as f64 + 1.0) / self.bins as f64) as f32;
        HistogramSpec::new(self.bins + 1, max)
    }

    /// Strip the overflow bucket from a device histogram, keeping the
    /// `bins` retained counts.
    pub fn finalize(&self, device: &Histogram) -> Histogram {
        assert_eq!(
            device.counts().len(),
            self.bins as usize + 1,
            "device histogram does not match this RadialBins spec"
        );
        Histogram::from_counts(device.counts()[..self.bins as usize].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(n: usize, step: f32) -> SoaPoints<3> {
        SoaPoints::from_points(
            &(0..n)
                .map(|i| [i as f32 * step, 0.0, 0.0])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn fit_respects_radius_and_occupancy() {
        let pts = crate::point::SoaPoints::<3>::from_points(
            &(0..4096)
                .map(|i| {
                    let x = (i % 16) as f32 * 6.25;
                    let y = ((i / 16) % 16) as f32 * 6.25;
                    let z = (i / 256) as f32 * 6.25;
                    [x, y, z]
                })
                .collect::<Vec<_>>(),
        );
        let g = GridGeometry::fit(&[&pts], 5.0, &GridOptions::default());
        for d in 0..3 {
            assert!(g.edge[d] >= g.r_cull, "edge {} < r_cull", g.edge[d]);
            assert!(g.dims[d] >= 1);
        }
        // Occupancy clamp: no more than ~n/target cells.
        assert!(g.num_cells() as f64 <= 4096.0 / 512.0 * 8.0 + 1.0);
    }

    #[test]
    fn single_cell_when_radius_covers_the_box() {
        let pts = line_points(100, 1.0);
        let g = GridGeometry::fit(&[&pts], 1000.0, &GridOptions::default());
        assert_eq!(g.num_cells(), 1);
        let grid = UniformGrid::bin(g, &pts);
        let pairs = candidate_pairs(&grid);
        assert_eq!(pairs, vec![CellPair { a: 0, b: 0 }]);
        let stats = prune_stats(&grid, &pairs);
        assert_eq!(stats.candidate_point_pairs, stats.total_point_pairs);
        assert_eq!(stats.pruned_fraction(), 0.0);
    }

    #[test]
    fn binning_is_a_permutation() {
        let pts = crate::point::SoaPoints::<2>::from_points(&[
            [0.5, 0.5],
            [9.5, 9.5],
            [0.6, 9.4],
            [9.4, 0.6],
            [5.0, 5.0],
        ]);
        let grid = UniformGrid::build(
            &pts,
            1.0,
            &GridOptions {
                target_points_per_cell: 1,
                max_cells: 1 << 20,
            },
        );
        assert_eq!(grid.points.len(), pts.len());
        let mut seen: Vec<u32> = grid.perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..pts.len() as u32).collect::<Vec<_>>());
        for i in 0..grid.points.len() {
            assert_eq!(grid.points.point(i), pts.point(grid.perm[i] as usize));
        }
        // CSR covers everything exactly once.
        assert_eq!(*grid.cell_start.last().unwrap() as usize, pts.len());
        // Each cell's slice really contains its own points.
        for c in grid.occupied_cells() {
            for i in grid.cell_range(c) {
                assert_eq!(grid.geom.cell_of(grid.points.point(i)), c);
            }
        }
    }

    #[test]
    fn forward_stencil_covers_each_unordered_pair_once() {
        let pts = line_points(1, 1.0);
        let mut g = GridGeometry::fit(&[&pts], 1.0, &GridOptions::default());
        g.dims = [3, 3, 3];
        // Edge ≥ r_cull: the sizing invariant that keeps reach at 1.
        g.edge = [1.1; 3];
        let fwd = g.forward_stencil();
        // 3^3 - 1 = 26 neighbors; forward half = 13, none culled at
        // edge == r_cull-ish scale.
        assert_eq!(fwd.len(), 13);
        for off in &fwd {
            let neg = off.map(|o| -o);
            assert!(
                !fwd.contains(&neg),
                "offset {off:?} and its negation both forward"
            );
        }
        let full = g.full_stencil();
        assert_eq!(full.len(), 27);
    }

    #[test]
    fn culling_skips_far_cells_only() {
        let pts = line_points(1, 1.0);
        let mut g = GridGeometry::fit(&[&pts], 1.0, &GridOptions::default());
        g.dims = [10, 1, 1];
        g.edge = [2.0, 1.0, 1.0];
        g.r_cull = 1.0 * (1.0 + R_CULL_MARGIN);
        // Adjacent cells share a face: never culled.
        assert!(!g.culled(&[1, 0, 0]));
        // Two apart: gap = edge = 2.0 ≥ r_cull.
        assert!(g.culled(&[2, 0, 0]));
        assert!(g.culled(&[-2, 0, 0]));
    }

    #[test]
    fn marginal_gap_is_not_culled() {
        // Gap exactly r_max: the margin keeps the pair (rounding could
        // otherwise drop a computed-distance-< r_max pair).
        let pts = line_points(1, 1.0);
        let mut g = GridGeometry::fit(&[&pts], 1.0, &GridOptions::default());
        g.dims = [10, 1, 1];
        g.edge = [1.0, 1.0, 1.0];
        g.r_cull = 1.0 * (1.0 + R_CULL_MARGIN);
        assert!(!g.culled(&[2, 0, 0]), "gap == r_max must survive");
        assert!(g.culled(&[3, 0, 0]));
    }

    #[test]
    fn prune_stats_account_every_candidate_pair() {
        let pts = line_points(64, 1.0);
        let grid = UniformGrid::build(
            &pts,
            4.0,
            &GridOptions {
                target_points_per_cell: 4,
                max_cells: 1 << 20,
            },
        );
        // Line data: the whole cell budget goes to the one axis with
        // extent, so the x axis actually subdivides.
        assert!(grid.geom.dims[0] >= 8, "{:?}", grid.geom);
        let pairs = candidate_pairs(&grid);
        let stats = prune_stats(&grid, &pairs);
        assert_eq!(stats.total_point_pairs, 64 * 63 / 2);
        assert!(stats.candidate_point_pairs <= stats.total_point_pairs);
        assert!(stats.pruned_fraction() > 0.0, "{stats:?}");
        // Brute-force the candidate pair count.
        let mut brute = 0u64;
        for p in &pairs {
            let (ca, cb) = (
                grid.cell_len(p.a as usize) as u64,
                grid.cell_len(p.b as usize) as u64,
            );
            brute += if p.is_intra() {
                ca * (ca - 1) / 2
            } else {
                ca * cb
            };
        }
        assert_eq!(brute, stats.candidate_point_pairs);
    }

    #[test]
    fn cross_pairs_are_ordered_and_shared_geometry_is_enforced() {
        let a = line_points(32, 1.0);
        let b = line_points(48, 0.7);
        let geom = GridGeometry::fit(
            &[&a, &b],
            3.0,
            &GridOptions {
                target_points_per_cell: 4,
                max_cells: 1 << 20,
            },
        );
        let ga = UniformGrid::bin(geom.clone(), &a);
        let gb = UniformGrid::bin(geom, &b);
        let pairs = candidate_cross_pairs(&ga, &gb);
        let stats = cross_prune_stats(&ga, &gb, &pairs);
        assert_eq!(stats.total_point_pairs, 32 * 48);
        assert!(stats.candidate_point_pairs <= stats.total_point_pairs);
        // Every ordered pair appears at most once.
        let mut seen = std::collections::BTreeSet::new();
        for p in &pairs {
            assert!(seen.insert((p.a, p.b)), "duplicate cross pair {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "shared grid geometry")]
    fn mismatched_geometries_are_rejected() {
        let a = line_points(8, 1.0);
        let b = line_points(8, 2.0);
        let ga = UniformGrid::build(&a, 1.0, &GridOptions::default());
        let gb = UniformGrid::build(&b, 1.0, &GridOptions::default());
        candidate_cross_pairs(&ga, &gb);
    }

    #[test]
    fn empty_input_yields_no_pairs() {
        let pts = SoaPoints::<3>::new();
        let grid = UniformGrid::build(&pts, 1.0, &GridOptions::default());
        assert!(candidate_pairs(&grid).is_empty());
        let stats = prune_stats(&grid, &[]);
        assert_eq!(stats.candidate_point_pairs, 0);
        assert_eq!(stats.total_point_pairs, 0);
    }

    #[test]
    fn radial_bins_overflow_contract() {
        let rb = RadialBins::new(32, 25.0);
        let spec = rb.device_spec();
        assert_eq!(spec.buckets, 33);
        // Retained-bin width is preserved.
        assert!((spec.bucket_width() - rb.bin_width()).abs() < 1e-4);
        // Distances at/above r_max land in the overflow bucket.
        assert_eq!(spec.bucket_of(25.0), 32);
        assert_eq!(spec.bucket_of(24.999), 31);
        assert_eq!(spec.bucket_of(1e9), 32);
        // finalize drops exactly the overflow bucket.
        let mut dev = Histogram::zeroed(33);
        dev.add(0);
        dev.add(32);
        dev.add(32);
        let kept = rb.finalize(&dev);
        assert_eq!(kept.counts().len(), 32);
        assert_eq!(kept.total(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn finalize_rejects_wrong_size() {
        RadialBins::new(8, 1.0).finalize(&Histogram::zeroed(8));
    }
}
