//! # tbs-core — a framework for 2-body statistics on (simulated) GPUs
//!
//! This crate is the primary contribution of the `twobody-rs`
//! reproduction of *"Efficient 2-Body Statistics Computation on GPUs:
//! Parallelization & Beyond"* (ICPP 2016): a framework in which any
//! 2-body statistic — a computation over all pairs of an N-point dataset
//! — is assembled from three orthogonal choices:
//!
//! 1. **a distance function** ([`distance`]) — Euclidean, cosine, RBF, …;
//! 2. **a pairwise-computation kernel** ([`kernels`]) — how input data is
//!    staged: naive global loads, shared-memory tiling (SHM-SHM /
//!    Register-SHM), the read-only cache (Register-ROC), or register
//!    tiling via warp shuffle, with regular or load-balanced intra-block
//!    iteration;
//! 3. **an output action** ([`output`]) — the paper's Type-I (registers),
//!    Type-II (privatized shared-memory histograms + reduction) and
//!    Type-III (global memory) output classes.
//!
//! The [`analytic`] module provides closed-form access-count models
//! (including the paper's equations 2–7) that mirror the simulator's
//! accounting rules exactly, and [`plan`] uses them to *select* the best
//! kernel combination for a problem — the "framework that can
//! automatically generate optimized code for any new 2-BS problem" the
//! paper sets as its vision.
//!
//! Applications built from these pieces (2-PCF, SDH, RDF, kNN, KDE,
//! joins, Gram matrices) live in the `tbs-apps` crate.
//!
//! ## Composing a 2-BS kernel
//!
//! ```
//! use gpu_sim::{Device, DeviceConfig};
//! use tbs_core::kernels::{pair_launch, IntraMode, PairScope, RegisterShmKernel};
//! use tbs_core::{CountWithinRadius, Euclidean, SoaPoints};
//!
//! // Twenty points on a line; count pairs closer than 2.5.
//! let pts = SoaPoints::<2>::from_points(
//!     &(0..20).map(|i| [i as f32, 0.0]).collect::<Vec<_>>(),
//! );
//! let mut dev = Device::new(DeviceConfig::titan_x());
//! let input = pts.upload(&mut dev);
//! let lc = pair_launch(input.n, 32);
//! let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
//!
//! // The paper's Algorithm 3 (Register-SHM) with a Type-I output.
//! let kernel = RegisterShmKernel::new(
//!     input,
//!     Euclidean,
//!     CountWithinRadius { radius: 2.5, out },
//!     32,
//!     PairScope::HalfPairs,
//!     IntraMode::LoadBalanced,
//! );
//! let run = dev.launch(&kernel, lc);
//! let count: u64 = dev.u64_slice(out).iter().sum();
//! assert_eq!(count, 19 + 18); // offsets 1 and 2 on the integer line
//! assert!(run.timing.seconds > 0.0);
//! ```

pub mod analytic;
pub mod distance;
pub mod grid;
pub mod histogram;
pub mod kernels;
pub mod output;
pub mod plan;
pub mod point;

pub use grid::{
    candidate_cross_pairs, candidate_pairs, cross_prune_stats, prune_stats, CellPair, GridGeometry,
    GridOptions, PruneStats, RadialBins, UniformGrid,
};

pub use distance::{
    CosineDissimilarity, DistanceKernel, DotProduct, Euclidean, GaussianRbf, Manhattan,
    PeriodicEuclidean, SquaredEuclidean,
};
pub use histogram::{Histogram, HistogramSpec};
pub use kernels::{
    CrossShmKernel, HistogramReduceKernel, IntraMode, NaiveKernel, PairScope, RegisterRocKernel,
    RegisterShmKernel, ShmShmKernel, ShuffleKernel, SumReduceKernel,
};
pub use output::{
    CountWithinRadius, GlobalHistogramAction, KdeAction, KnnAction, MatrixWriteAction,
    MultiCopyHistogramAction, MultiCountSink, MultiHistSink, MultiQueryAction, MultiQueryBlock,
    OutputClass, PairAction, PairListAction, SharedHistogramAction,
};
pub use point::{DeviceSoa, SoaPoints};
