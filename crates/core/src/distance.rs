//! Distance functions.
//!
//! The paper's abstraction (§I): a 2-BS is "solved by computing a
//! function between all pairs of datum... such a function often demands
//! constant time to compute; for convenience of presentation, let us call
//! them distance functions."
//!
//! A [`DistanceKernel`] computes 32 lane values at once on the simulated
//! device, charging a fixed, documented instruction cost (so the analytic
//! access model can mirror it exactly), and also offers a host-side
//! scalar evaluation used by the CPU baseline and by verification tests.

use gpu_sim::{F32x32, Mask, WarpCtx, WARP_SIZE};

/// A constant-time pairwise function (the paper's "distance function").
pub trait DistanceKernel<const D: usize>: Sync {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// ALU warp instructions charged per warp evaluation. Must be
    /// independent of the data (SIMT predication executes both sides of
    /// short branches anyway).
    fn cost(&self) -> u64;

    /// Evaluate all lanes: `a` and `b` hold per-lane coordinates.
    /// Implementations must charge exactly [`DistanceKernel::cost`] ALU
    /// instructions under `mask`.
    fn eval(&self, w: &mut WarpCtx<'_, '_>, a: &[F32x32; D], b: &[F32x32; D], mask: Mask)
        -> F32x32;

    /// Host-side scalar evaluation (reference semantics for the GPU
    /// path; used by the CPU baseline).
    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32;

    /// Whether [`DistanceKernel::eval`] is exactly *charge
    /// [`DistanceKernel::cost`] ALU under the mask, then
    /// [`DistanceKernel::eval_host`] per active lane* — the contract the
    /// fused tile executor (`WarpCtx::fused_tile_pass`) relies on to
    /// batch the charges in closed form. All built-ins qualify; the
    /// default is conservative for implementations that charge
    /// data-dependent costs or keep lane state.
    fn fusible(&self) -> bool {
        false
    }

    /// Whether [`DistanceKernel::eval_host`] is exactly the closed-form
    /// Euclidean chain — per-dimension `sub` + `mul_add`, then `sqrt` —
    /// *and* [`DistanceKernel::cost`] is `2·D + 1`. The fused dispatcher
    /// then routes through `WarpCtx::fused_euclidean_tile`, whose
    /// lane-vectorized evaluation is bit-identical to calling `eval_host`
    /// per lane but substantially faster. Only [`Euclidean`] qualifies.
    fn euclidean_form(&self) -> bool {
        false
    }
}

#[inline]
fn lanes<const D: usize>(
    a: &[F32x32; D],
    b: &[F32x32; D],
    mask: Mask,
    f: impl Fn([f32; D], [f32; D]) -> f32,
) -> F32x32 {
    std::array::from_fn(|i| {
        if mask.lane(i) {
            f(
                std::array::from_fn(|d| a[d][i]),
                std::array::from_fn(|d| b[d][i]),
            )
        } else {
            0.0
        }
    })
}

/// Euclidean (L2) distance — the distance of 2-PCF, SDH and RDF.
///
/// Cost: one subtract + one FMA per dimension, plus one square root:
/// `2·D + 1` instructions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euclidean;

impl<const D: usize> DistanceKernel<D> for Euclidean {
    fn name(&self) -> &'static str {
        "euclidean"
    }

    fn cost(&self) -> u64 {
        2 * D as u64 + 1
    }

    fn fusible(&self) -> bool {
        true
    }

    fn euclidean_form(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let mut s = 0.0f32;
        for d in 0..D {
            let diff = a[d] - b[d];
            s = diff.mul_add(diff, s);
        }
        s.sqrt()
    }
}

/// Squared Euclidean distance (saves the square root when only
/// comparisons against a squared radius are needed — e.g. joins).
///
/// Cost: `2·D` instructions.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquaredEuclidean;

impl<const D: usize> DistanceKernel<D> for SquaredEuclidean {
    fn name(&self) -> &'static str {
        "squared-euclidean"
    }

    fn cost(&self) -> u64 {
        2 * D as u64
    }

    fn fusible(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let mut s = 0.0f32;
        for d in 0..D {
            let diff = a[d] - b[d];
            s = diff.mul_add(diff, s);
        }
        s
    }
}

/// Manhattan (L1) distance.
///
/// Cost: subtract + abs + add per dimension: `3·D` instructions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Manhattan;

impl<const D: usize> DistanceKernel<D> for Manhattan {
    fn name(&self) -> &'static str {
        "manhattan"
    }

    fn cost(&self) -> u64 {
        3 * D as u64
    }

    fn fusible(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let mut s = 0.0f32;
        for d in 0..D {
            s += (a[d] - b[d]).abs();
        }
        s
    }
}

/// Euclidean distance under periodic boundary conditions (the
/// minimum-image convention of molecular-dynamics codes — the RDF
/// application the paper cites computes exactly this).
///
/// Per dimension: `Δ = a − b; Δ −= L·round(Δ/L)`, then the usual square
/// root. Cost: subtract, scale, round, FMA-correct, FMA-accumulate per
/// dimension plus the square root: `5·D + 1`.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicEuclidean {
    /// Box edge length L (> 0); the box is `[0, L)^D`.
    pub box_edge: f32,
}

impl PeriodicEuclidean {
    pub fn new(box_edge: f32) -> Self {
        assert!(box_edge > 0.0, "periodic box edge must be positive");
        PeriodicEuclidean { box_edge }
    }
}

impl<const D: usize> DistanceKernel<D> for PeriodicEuclidean {
    fn name(&self) -> &'static str {
        "periodic-euclidean"
    }

    fn cost(&self) -> u64 {
        5 * D as u64 + 1
    }

    fn fusible(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let l = self.box_edge;
        let mut s = 0.0f32;
        for d in 0..D {
            let mut diff = a[d] - b[d];
            diff -= l * (diff / l).round();
            s = diff.mul_add(diff, s);
        }
        s.sqrt()
    }
}

/// Cosine *dissimilarity* `1 − cos(a, b)` — the pairwise-comparison
/// measure of the recommendation-system applications the paper cites
/// (§II: content-based and collaborative filtering).
///
/// Cost: three FMAs per dimension plus normalization (rsqrt ×2, mul,
/// sub): `3·D + 4`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDissimilarity;

impl<const D: usize> DistanceKernel<D> for CosineDissimilarity {
    fn name(&self) -> &'static str {
        "cosine"
    }

    fn cost(&self) -> u64 {
        3 * D as u64 + 4
    }

    fn fusible(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
        for d in 0..D {
            dot = a[d].mul_add(b[d], dot);
            na = a[d].mul_add(a[d], na);
            nb = b[d].mul_add(b[d], nb);
        }
        let denom = (na * nb).sqrt();
        if denom == 0.0 {
            1.0
        } else {
            1.0 - dot / denom
        }
    }
}

/// Gaussian (RBF) kernel value `exp(−‖a−b‖² / (2σ²))` — the kernel-method
/// "distance function" of the paper's Type-III examples (SVM Gram
/// matrices) and the weight function of kernel density estimation.
///
/// Cost: `2·D` for the squared distance + scale + exp: `2·D + 2`.
#[derive(Debug, Clone, Copy)]
pub struct GaussianRbf {
    /// Bandwidth σ (> 0).
    pub sigma: f32,
}

impl GaussianRbf {
    pub fn new(sigma: f32) -> Self {
        assert!(sigma > 0.0, "RBF bandwidth must be positive");
        GaussianRbf { sigma }
    }
}

impl<const D: usize> DistanceKernel<D> for GaussianRbf {
    fn name(&self) -> &'static str {
        "gaussian-rbf"
    }

    fn cost(&self) -> u64 {
        2 * D as u64 + 2
    }

    fn fusible(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let mut s = 0.0f32;
        for d in 0..D {
            let diff = a[d] - b[d];
            s = diff.mul_add(diff, s);
        }
        (-s / (2.0 * self.sigma * self.sigma)).exp()
    }
}

/// Dot product `a · b` — the linear-kernel Gram matrix entry.
///
/// Cost: one FMA per dimension: `D`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DotProduct;

impl<const D: usize> DistanceKernel<D> for DotProduct {
    fn name(&self) -> &'static str {
        "dot-product"
    }

    fn cost(&self) -> u64 {
        D as u64
    }

    fn fusible(&self) -> bool {
        true
    }

    fn eval(
        &self,
        w: &mut WarpCtx<'_, '_>,
        a: &[F32x32; D],
        b: &[F32x32; D],
        mask: Mask,
    ) -> F32x32 {
        w.charge_alu(<Self as DistanceKernel<D>>::cost(self), mask);
        lanes(a, b, mask, |pa, pb| self.eval_host(&pa, &pb))
    }

    fn eval_host(&self, a: &[f32; D], b: &[f32; D]) -> f32 {
        let mut s = 0.0f32;
        for d in 0..D {
            s = a[d].mul_add(b[d], s);
        }
        s
    }
}

/// Split a warp's worth of lane coordinates out of a host slice, for
/// tests and host-side reference paths.
pub fn lanes_from_host<const D: usize>(pts: &[[f32; D]]) -> [F32x32; D] {
    std::array::from_fn(|d| {
        std::array::from_fn(|i| {
            if i < pts.len() && i < WARP_SIZE {
                pts[i][d]
            } else {
                0.0
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_host_matches_hand_computation() {
        let e = Euclidean;
        let d = <Euclidean as DistanceKernel<3>>::eval_host(&e, &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]);
        assert!((d - 5.0).abs() < 1e-6);
        assert_eq!(<Euclidean as DistanceKernel<3>>::cost(&e), 7);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        let a = [1.0, -2.0];
        let b = [4.0, 2.0];
        let d = <Euclidean as DistanceKernel<2>>::eval_host(&Euclidean, &a, &b);
        let d2 = <SquaredEuclidean as DistanceKernel<2>>::eval_host(&SquaredEuclidean, &a, &b);
        assert!((d * d - d2).abs() < 1e-4);
    }

    #[test]
    fn manhattan_and_dot() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.0, 3.0];
        assert_eq!(
            <Manhattan as DistanceKernel<3>>::eval_host(&Manhattan, &a, &b),
            3.0
        );
        assert_eq!(
            <DotProduct as DistanceKernel<3>>::eval_host(&DotProduct, &a, &b),
            11.0
        );
    }

    #[test]
    fn cosine_identical_vectors_is_zero() {
        let a = [0.5, 0.5];
        let d = <CosineDissimilarity as DistanceKernel<2>>::eval_host(&CosineDissimilarity, &a, &a);
        assert!(d.abs() < 1e-6);
        // Orthogonal vectors -> 1.
        let d = <CosineDissimilarity as DistanceKernel<2>>::eval_host(
            &CosineDissimilarity,
            &[1.0, 0.0],
            &[0.0, 1.0],
        );
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = GaussianRbf::new(1.0);
        let same = <GaussianRbf as DistanceKernel<2>>::eval_host(&k, &[1.0, 1.0], &[1.0, 1.0]);
        assert!((same - 1.0).abs() < 1e-6);
        let far = <GaussianRbf as DistanceKernel<2>>::eval_host(&k, &[0.0, 0.0], &[10.0, 0.0]);
        assert!(far < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rbf_rejects_zero_sigma() {
        GaussianRbf::new(0.0);
    }

    #[test]
    fn periodic_wraps_across_the_boundary() {
        let pe = PeriodicEuclidean::new(100.0);
        // 1 and 99 are 2 apart through the boundary, not 98.
        let d = <PeriodicEuclidean as DistanceKernel<1>>::eval_host(&pe, &[1.0], &[99.0]);
        assert!((d - 2.0).abs() < 1e-4, "{d}");
        // Interior pairs match plain Euclidean.
        let d =
            <PeriodicEuclidean as DistanceKernel<2>>::eval_host(&pe, &[10.0, 10.0], &[13.0, 14.0]);
        assert!((d - 5.0).abs() < 1e-4);
    }

    #[test]
    fn periodic_distance_never_exceeds_half_diagonal() {
        let pe = PeriodicEuclidean::new(10.0);
        for i in 0..20 {
            for j in 0..20 {
                let a = [i as f32 * 0.5, (i * 7 % 20) as f32 * 0.5];
                let b = [j as f32 * 0.5, (j * 3 % 20) as f32 * 0.5];
                let d = <PeriodicEuclidean as DistanceKernel<2>>::eval_host(&pe, &a, &b);
                assert!(d <= 5.0 * 2f32.sqrt() + 1e-4, "{a:?} {b:?} -> {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn periodic_rejects_zero_box() {
        PeriodicEuclidean::new(0.0);
    }

    #[test]
    fn lanes_from_host_packs_coordinates() {
        let pts = vec![[1.0, 10.0], [2.0, 20.0]];
        let l = lanes_from_host(&pts);
        assert_eq!(l[0][0], 1.0);
        assert_eq!(l[1][1], 20.0);
        assert_eq!(l[0][5], 0.0);
    }
}
