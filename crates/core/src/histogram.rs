//! Histogram specification and host-side histogram type (the SDH/RDF
//! output structure — the paper's Type-II output).

use gpu_sim::{F32x32, Mask, U32x32, WarpCtx};

/// Specification of a distance histogram: `buckets` equal-width buckets
/// covering `[0, max_distance)`; distances beyond the range clamp into
/// the last bucket (matching the usual SDH convention where
/// `max_distance` is the domain diagonal, so nothing actually clamps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Number of buckets (the paper's histogram size `Hs`).
    pub buckets: u32,
    /// Upper edge of the histogram range.
    pub max_distance: f32,
}

impl HistogramSpec {
    pub fn new(buckets: u32, max_distance: f32) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(max_distance > 0.0, "histogram range must be positive");
        HistogramSpec {
            buckets,
            max_distance,
        }
    }

    /// Bucket width `w = max_distance / buckets`.
    pub fn bucket_width(&self) -> f32 {
        self.max_distance / self.buckets as f32
    }

    /// Reciprocal width, the constant the kernels multiply by.
    pub fn inv_width(&self) -> f32 {
        self.buckets as f32 / self.max_distance
    }

    /// Host-side bucket index for a distance.
    ///
    /// Requires a finite, non-negative distance: a NaN or negative input
    /// is a bug in the caller's distance function, not a valid
    /// observation, so debug builds reject it instead of silently binning
    /// it into bucket 0 (Rust's saturating `as u32` cast sends NaN and
    /// negatives to 0, which corrupts the histogram undetectably).
    /// `+inf` is fine — it clamps into the last bucket like any
    /// beyond-range distance.
    pub fn bucket_of(&self, d: f32) -> u32 {
        debug_assert!(
            !d.is_nan(),
            "bucket_of(NaN): distance function produced NaN"
        );
        debug_assert!(d >= 0.0, "bucket_of({d}): distances must be non-negative");
        ((d * self.inv_width()) as u32).min(self.buckets - 1)
    }

    /// Device-side bucket computation: multiply by the reciprocal width,
    /// truncate, clamp. Charges exactly 2 ALU warp instructions
    /// (`FMUL` + `F2I`-with-clamp), the cost the analytic model mirrors.
    ///
    /// Matches CUDA `__float2uint_rz` semantics for exceptional inputs:
    /// NaN and negative lanes convert to 0 (bucket 0). That is the
    /// documented device-path convention — the host-side
    /// [`bucket_of`](HistogramSpec::bucket_of)
    /// additionally debug-asserts finiteness because on the host such
    /// inputs indicate a broken distance function rather than hardware
    /// saturation behavior.
    pub fn bucket_lanes(&self, w: &mut WarpCtx<'_, '_>, d: &F32x32, mask: Mask) -> U32x32 {
        w.charge_alu(2, mask);
        let out = self.bucket_lanes_all(d);
        std::array::from_fn(|i| if mask.lane(i) { out[i] } else { 0 })
    }

    /// All 32 lanes' bucket indices in one flat vectorizable pass — no
    /// mask, no warp context, no charge. Per lane the result is exactly
    /// [`bucket_lanes`](HistogramSpec::bucket_lanes)'s active-lane value
    /// (`FMUL` then saturating truncation, then clamp); callers apply
    /// their own predicate. This is the bucketing the fused tile pass
    /// mirrors.
    pub fn bucket_lanes_all(&self, d: &F32x32) -> U32x32 {
        let inv = self.inv_width();
        let hmax = self.buckets - 1;
        let mut out = [0u32; 32];
        for (o, &v) in out.iter_mut().zip(d.iter()) {
            *o = ((v * inv) as u32).min(hmax);
        }
        out
    }

    /// Bytes one private `u32` copy of this histogram occupies in shared
    /// memory.
    pub fn shared_bytes(&self) -> u32 {
        self.buckets * 4
    }
}

/// A host-side distance histogram with `u64` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// A zeroed histogram with `buckets` buckets.
    pub fn zeroed(buckets: u32) -> Self {
        Histogram {
            counts: vec![0; buckets as usize],
        }
    }

    /// Wrap existing counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Histogram { counts }
    }

    /// The bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Add one observation to bucket `b`.
    pub fn add(&mut self, b: u32) {
        self.counts[b as usize] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, o: &Histogram) {
        assert_eq!(self.counts.len(), o.counts.len(), "histogram sizes differ");
        for (a, b) in self.counts.iter_mut().zip(&o.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_edges() {
        let spec = HistogramSpec::new(10, 10.0);
        assert_eq!(spec.bucket_of(0.0), 0);
        assert_eq!(spec.bucket_of(0.999), 0);
        assert_eq!(spec.bucket_of(1.0), 1);
        assert_eq!(spec.bucket_of(9.99), 9);
        // Clamping at and beyond the range.
        assert_eq!(spec.bucket_of(10.0), 9);
        assert_eq!(spec.bucket_of(1e9), 9);
        // +inf is just "beyond the range": last bucket, like CUDA's
        // saturating float-to-uint conversion.
        assert_eq!(spec.bucket_of(f32::INFINITY), 9);
        // Denormals and true zero land in bucket 0.
        assert_eq!(spec.bucket_of(f32::MIN_POSITIVE), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "produced NaN")]
    fn bucket_of_rejects_nan_in_debug_builds() {
        HistogramSpec::new(10, 10.0).bucket_of(f32::NAN);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative")]
    fn bucket_of_rejects_negative_in_debug_builds() {
        HistogramSpec::new(10, 10.0).bucket_of(-1.0);
    }

    #[test]
    fn device_lane_convention_sends_nan_to_bucket_zero() {
        // The device path mirrors CUDA `__float2uint_rz`: NaN and
        // negative lanes saturate to 0. Exercised through a real warp
        // context by the `nan_lanes_follow_device_convention` test in
        // the simulator-backed integration suite; here we pin the scalar
        // rule the lanes implement.
        let spec = HistogramSpec::new(10, 10.0);
        assert_eq!((f32::NAN * spec.inv_width()) as u32, 0);
        assert_eq!((-3.0f32 * spec.inv_width()) as u32, 0);
    }

    #[test]
    fn widths_are_consistent() {
        let spec = HistogramSpec::new(250, 173.2);
        assert!((spec.bucket_width() * spec.buckets as f32 - spec.max_distance).abs() < 1e-3);
        assert!((spec.inv_width() - 1.0 / spec.bucket_width()).abs() < 1e-6);
        assert_eq!(spec.shared_bytes(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        HistogramSpec::new(0, 1.0);
    }

    #[test]
    fn histogram_accumulates_and_merges() {
        let mut h = Histogram::zeroed(4);
        h.add(0);
        h.add(3);
        h.add(3);
        assert_eq!(h.total(), 3);
        let mut g = Histogram::zeroed(4);
        g.add(1);
        g.merge(&h);
        assert_eq!(g.counts(), &[1, 1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn merge_rejects_mismatched_sizes() {
        Histogram::zeroed(3).merge(&Histogram::zeroed(4));
    }
}
