//! Input data layout.
//!
//! The paper's first implementation decision (§IV-A): *"the input data is
//! stored in the form of multiple arrays of single-dimension values
//! instead of using an array of structures... This will ensure coalesced
//! memory access."* [`SoaPoints`] is that structure-of-arrays layout, and
//! [`DeviceSoa`] is its uploaded, device-resident form.

use gpu_sim::{BufF32, Device};

/// An `N × D` point set in structure-of-arrays layout: one contiguous
/// array per coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaPoints<const D: usize> {
    coords: [Vec<f32>; D],
}

impl<const D: usize> SoaPoints<D> {
    /// Create an empty point set.
    pub fn new() -> Self {
        SoaPoints {
            coords: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Create with capacity for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        SoaPoints {
            coords: std::array::from_fn(|_| Vec::with_capacity(n)),
        }
    }

    /// Build from a list of points.
    pub fn from_points(pts: &[[f32; D]]) -> Self {
        let mut s = Self::with_capacity(pts.len());
        for p in pts {
            s.push(*p);
        }
        s
    }

    /// Append one point.
    pub fn push(&mut self, p: [f32; D]) {
        for (d, &c) in p.iter().enumerate() {
            self.coords[d].push(c);
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords[0].len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `d`-th coordinate array.
    pub fn coord(&self, d: usize) -> &[f32] {
        &self.coords[d]
    }

    /// Point `i` as an array.
    pub fn point(&self, i: usize) -> [f32; D] {
        std::array::from_fn(|d| self.coords[d][i])
    }

    /// Iterate points as arrays.
    pub fn iter(&self) -> impl Iterator<Item = [f32; D]> + '_ {
        (0..self.len()).map(move |i| self.point(i))
    }

    /// Extract a contiguous sub-range of points (used by the multi-GPU
    /// decomposition to form per-device chunks).
    pub fn slice(&self, range: std::ops::Range<usize>) -> SoaPoints<D> {
        SoaPoints {
            coords: std::array::from_fn(|d| self.coords[d][range.clone()].to_vec()),
        }
    }

    /// Upload to a device (one buffer per coordinate — the coalesced
    /// layout of §IV-A).
    pub fn upload(&self, dev: &mut Device) -> DeviceSoa<D> {
        DeviceSoa {
            coords: std::array::from_fn(|d| dev.alloc_f32(self.coords[d].clone())),
            n: self.len() as u32,
        }
    }
}

impl<const D: usize> Default for SoaPoints<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// Device-resident structure-of-arrays point set: `D` coordinate buffers
/// plus the point count. `Copy`, so kernels capture it by value the way
/// CUDA kernels capture device pointers.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSoa<const D: usize> {
    /// One global buffer per coordinate.
    pub coords: [BufF32; D],
    /// Number of points.
    pub n: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    #[test]
    fn soa_roundtrip() {
        let pts = vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let s = SoaPoints::<3>::from_points(&pts);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(1), [4.0, 5.0, 6.0]);
        assert_eq!(s.coord(2), &[3.0, 6.0]);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, pts);
    }

    #[test]
    fn upload_produces_per_dimension_buffers() {
        let s = SoaPoints::<2>::from_points(&[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]]);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let d = s.upload(&mut dev);
        assert_eq!(d.n, 3);
        assert_eq!(dev.f32_slice(d.coords[0]), &[1.0, 2.0, 3.0]);
        assert_eq!(dev.f32_slice(d.coords[1]), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn empty_and_push() {
        let mut s = SoaPoints::<1>::new();
        assert!(s.is_empty());
        s.push([7.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.point(0), [7.0]);
    }
}
