//! The paper's analytical model, verbatim: equations (2)–(7) of §IV-B
//! and §IV-D, expressed over the symbols of its Table I.
//!
//! These are *per-thread-perspective access counts* (each datum touched
//! by a thread counts once), coarser than the warp-transaction accounting
//! of [`super::profiles`]; they are kept in their published form so tests
//! can check the paper's own claims — e.g. that Register-SHM halves the
//! shared-memory accesses of SHM-SHM.

/// Equation (2): global-memory accesses of the Naive kernel —
/// `N + Σ_{i=1..N} (N − i)`: one load of the own datum per thread plus
/// one load per distance evaluation.
pub fn eq2_naive_global(n: u64) -> u64 {
    n + n * (n - 1) / 2
}

/// Equation (3): global accesses of all three tiled kernels —
/// `N + Σ_{i=1..M} (M − i)·B`: the own datum plus each tile loaded once
/// per higher-indexed block.
pub fn eq3_tiled_global(n: u64, b: u64) -> u64 {
    let m = n / b;
    n + m * (m - 1) / 2 * b
}

/// Equation (4): shared-memory accesses of SHM-SHM —
/// `2·[Σ_{i=1..M} (M − i)·B² + Σ_{j=1..B} (B − j)·M]`: both operands of
/// every inter-block and intra-block distance call come from shared
/// memory.
pub fn eq4_shm_shm_shared(n: u64, b: u64) -> u64 {
    let m = n / b;
    2 * (m * (m - 1) / 2 * b * b + b * (b - 1) / 2 * m)
}

/// Equation (5): shared-memory accesses of Register-SHM —
/// `Σ_{i=1..M} (M − i)·B² + Σ_{j=1..B} (B − j)·M`: only the R-side (or
/// partner-side) operand is read from shared memory; the own datum sits
/// in a register.
pub fn eq5_register_shm_shared(n: u64, b: u64) -> u64 {
    let m = n / b;
    m * (m - 1) / 2 * b * b + b * (b - 1) / 2 * m
}

/// Register-ROC's read-only-cache access count equals equation (5) with
/// the ROC in place of shared memory (§IV-B: "the number of accesses to
/// this memory is the same as the number of accesses of Register-SHM to
/// shared memory").
pub fn roc_accesses(n: u64, b: u64) -> u64 {
    eq5_register_shm_shared(n, b)
}

/// Equation (6): shared-memory atomic cost of the privatized output
/// stage's update phase, in cycles — `Σ_{i=1..N} (N + B − i) · C_shmAtomic`
/// (every distance result is one shared atomic).
pub fn eq6_update_cost(n: u64, b: u64, c_shm_atomic: f64) -> f64 {
    // Σ_{i=1..N} (N + B − i) = N·(N + B) − N(N+1)/2
    let accesses = n * (n + b) - n * (n + 1) / 2;
    accesses as f64 * c_shm_atomic
}

/// Equation (7): reduction-stage cost —
/// `H·[M·(C_GR + C_shmR + C_GR) + C_GW]` in the paper's symbols (reading
/// each private copy, combining, and one final write per bucket).
pub fn eq7_reduction_cost(h: u64, m: u64, c_gw: f64, c_shm_r: f64, c_gr: f64) -> f64 {
    h as f64 * (m as f64 * (c_gw + c_shm_r + c_gr) + c_gw)
}

/// §IV-D's headline claim: privatization cuts global-memory accesses for
/// output from `N²` to `H·(2M + 1)`.
pub fn privatized_global_output_accesses(h: u64, m: u64) -> u64 {
    h * (2 * m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_small_case() {
        // N = 4: 4 own loads + 3+2+1 = 6 pair loads.
        assert_eq!(eq2_naive_global(4), 10);
    }

    #[test]
    fn eq3_reduces_global_traffic_by_factor_b() {
        let (n, b) = (1 << 20, 1024);
        let naive = eq2_naive_global(n);
        let tiled = eq3_tiled_global(n, b);
        let ratio = naive as f64 / tiled as f64;
        // Pair term: (N²/2) / (M²/2·B) = B; own-datum terms dilute it
        // slightly.
        assert!(
            ratio > 0.9 * b as f64 && ratio <= b as f64 + 1.0,
            "ratio {ratio}"
        );
    }

    #[test]
    fn register_shm_halves_shm_shm_accesses() {
        // §IV-B: "Register-SHM cuts the number of accesses quite
        // considerably, dropping by half."
        let (n, b) = (1 << 18, 256);
        assert_eq!(eq4_shm_shm_shared(n, b), 2 * eq5_register_shm_shared(n, b));
    }

    #[test]
    fn shared_access_totals_count_every_pair() {
        // Register-SHM reads one shared operand per distance call:
        // inter-block calls (each thread × each R datum) plus intra-block
        // calls. For N=M·B the call count is N(N−1)/2 … but eq (5)'s
        // inter term counts B² per block pair (thread × datum), i.e.
        // exactly the pair count between two blocks, and the intra term
        // B(B−1)/2 per block.
        let (n, b) = (1024u64, 128u64);
        let m = n / b;
        let pairs = n * (n - 1) / 2;
        let inter_intra = m * (m - 1) / 2 * b * b + m * b * (b - 1) / 2;
        assert_eq!(inter_intra, pairs);
        assert_eq!(eq5_register_shm_shared(n, b), pairs);
    }

    #[test]
    fn privatization_reduces_output_traffic() {
        // §IV-D: N² drops to H(2M+1).
        let (n, b, h) = (512_000u64, 1024u64, 10_000u64);
        let m = n / b;
        assert!(privatized_global_output_accesses(h, m) < n * n / 10_000);
    }

    #[test]
    fn cost_equations_are_monotone() {
        assert!(eq6_update_cost(2048, 256, 28.0) > eq6_update_cost(1024, 256, 28.0));
        assert!(
            eq7_reduction_cost(4096, 100, 350.0, 28.0, 350.0)
                > eq7_reduction_cost(1024, 100, 350.0, 28.0, 350.0)
        );
    }
}
