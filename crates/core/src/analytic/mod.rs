//! Analytical performance models.
//!
//! Two layers:
//!
//! * [`paper`] — the paper's own equations (2)–(7), in their published
//!   per-thread-access form, used to check its qualitative claims;
//! * [`profiles`] — warp-transaction-precise closed forms that mirror the
//!   simulator's accounting rule-for-rule, so `predicted_tally` equals a
//!   functional run's measured tally on every data-independent counter.
//!   Feeding these into the timing model gives paper-scale (N = 2×10⁶)
//!   performance predictions in microseconds of host time.
//!
//! [`contention`] estimates the data-dependent counters (atomic
//! serialization) from balls-into-bins statistics.

pub mod contention;
pub mod paper;
pub mod profiles;

pub use contention::{expected_distinct_addresses, expected_max_multiplicity};
pub use profiles::{
    predicted_cross_run, predicted_cross_tally, predicted_intra_only_run,
    predicted_intra_only_tally, predicted_reduction_run, predicted_run, predicted_tally, InputPath,
    KernelSpec, OutputPath, Workload,
};
