//! Atomic-contention estimation.
//!
//! The serialization cost of a warp-wide atomic update is the maximum
//! number of lanes hitting the same address (the hardware replays the
//! instruction once per colliding group). For histogram updates over
//! uniformly-distributed distances this is a balls-into-bins maximum:
//! 32 balls into `h` bins. The paper observes both regimes in its
//! Figure 5: large `h` → no contention; tiny `h` → "the many threads in
//! the block always compete for accessing an output element".

/// Expected maximum multiplicity when 32 i.i.d. uniform lanes update a
/// histogram with `h` buckets — `E[max_k B_k]` for multinomial(32, h).
///
/// Computed deterministically from the Poisson approximation
/// `B_k ~ Poisson(32/h)`: `E[max] ≈ Σ_{t≥1} P(max ≥ t)` with
/// `P(max ≥ t) ≈ min(1, h·P(X ≥ t))`. Exact at the extremes
/// (`h = 1 → 32`, `h → ∞ → 1`) and within a few percent elsewhere,
/// which is all the timing model needs.
pub fn expected_max_multiplicity(h: u32) -> f64 {
    let h = h.max(1);
    if h == 1 {
        return 32.0;
    }
    let lambda = 32.0 / h as f64;
    // Poisson tail probabilities P(X >= t).
    let mut p_le = (-lambda).exp(); // P(X <= t-1) running, start P(X=0)
    let mut pmf = p_le;
    let mut e_max = 0.0f64;
    for t in 1..=32u32 {
        // P(X >= t) = 1 - P(X <= t-1)
        let tail = (1.0 - p_le).max(0.0);
        let p_any = (h as f64 * tail).min(1.0);
        e_max += p_any;
        // advance: pmf(t) = pmf(t-1) * lambda / t
        pmf *= lambda / t as f64;
        p_le += pmf;
    }
    e_max.max(1.0)
}

/// Expected number of *distinct* buckets hit by a 32-lane uniform update
/// — `h·(1 − (1 − 1/h)^32)` — used to estimate the bank-conflict
/// component of shared atomics.
pub fn expected_distinct_addresses(h: u32) -> f64 {
    let h = h.max(1) as f64;
    h * (1.0 - (1.0 - 1.0 / h).powi(32))
}

/// Expected serialized shared-memory transactions for one warp-wide
/// histogram atomic: same-address replays (max multiplicity) plus bank
/// conflicts among the distinct addresses spread over 32 banks.
pub fn expected_shared_atomic_transactions(h: u32) -> f64 {
    let mult = expected_max_multiplicity(h);
    let distinct = expected_distinct_addresses(h);
    // Distinct addresses uniform over 32 banks: conflict degree is the
    // balls-in-bins maximum of `distinct` balls in 32 bins; reuse the
    // Poisson machinery by scaling (32 lanes -> `distinct` effective).
    let bank_degree = if distinct <= 1.0 {
        1.0
    } else {
        // max-of-bins for `distinct` balls in 32 bins ≈ scaled formula.
        let lambda = distinct / 32.0;
        let mut p_le = (-lambda).exp();
        let mut pmf = p_le;
        let mut e = 0.0f64;
        for t in 1..=32u32 {
            let tail = (1.0 - p_le).max(0.0);
            e += (32.0 * tail).min(1.0);
            pmf *= lambda / t as f64;
            p_le += pmf;
        }
        e.max(1.0)
    };
    bank_degree + mult - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes() {
        assert_eq!(expected_max_multiplicity(1), 32.0);
        assert!(expected_max_multiplicity(1_000_000) < 1.1);
    }

    #[test]
    fn monotone_decreasing_in_buckets() {
        let mut prev = f64::INFINITY;
        for h in [1u32, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096] {
            let e = expected_max_multiplicity(h);
            assert!(e <= prev + 1e-9, "h={h}: {e} > {prev}");
            assert!(e >= 1.0);
            prev = e;
        }
    }

    #[test]
    fn matches_monte_carlo_within_tolerance() {
        // Deterministic LCG Monte-Carlo reference.
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for &h in &[8u32, 32, 128, 1024] {
            let trials = 4000;
            let mut sum = 0u64;
            for _ in 0..trials {
                let mut bins = vec![0u32; h as usize];
                let mut mx = 0;
                for _ in 0..32 {
                    let b = (rand() % h) as usize;
                    bins[b] += 1;
                    mx = mx.max(bins[b]);
                }
                sum += mx as u64;
            }
            let mc = sum as f64 / trials as f64;
            let est = expected_max_multiplicity(h);
            assert!(
                (est - mc).abs() / mc < 0.15,
                "h={h}: poisson {est} vs monte-carlo {mc}"
            );
        }
    }

    #[test]
    fn distinct_addresses_bounds() {
        assert!((expected_distinct_addresses(1) - 1.0).abs() < 1e-9);
        let d = expected_distinct_addresses(1_000_000);
        assert!(d > 31.9 && d <= 32.0);
    }

    #[test]
    fn transactions_at_least_one() {
        for h in [1u32, 7, 100, 10_000] {
            assert!(expected_shared_atomic_transactions(h) >= 1.0);
        }
    }
}
