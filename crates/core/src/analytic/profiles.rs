//! Closed-form access profiles: the paper's analytical-model idea carried
//! to warp-transaction precision.
//!
//! [`predicted_tally`] produces the same [`AccessTally`] the simulator
//! measures, but from arithmetic instead of execution, by walking the
//! kernels' loop structures symbolically. Property tests
//! (`tests/it_analytic.rs`) assert field-by-field equality with functional
//! runs for every data-independent counter; data-dependent counters
//! (atomic contention, cache hit splits) use the estimators in
//! [`super::contention`] and are validated within tolerance.
//!
//! Exactness contract: formulas are exact for **full launches** —
//! `n % b == 0` and `b % 32 == 0` (the paper's experiments always satisfy
//! this; its equation 1 assumes `M = N/B`). Ragged launches still get
//! predictions, rounded from the same formulas, but only the full case is
//! bit-exact.

use crate::analytic::contention::{
    expected_distinct_addresses, expected_max_multiplicity, expected_shared_atomic_transactions,
};
use crate::kernels::IntraMode;
use gpu_sim::{AccessTally, DeviceConfig, KernelRun, LaunchConfig, WARP_SIZE};

/// Workload parameters shared by every 2-BS kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of input points.
    pub n: u32,
    /// Block size B (= threads per block).
    pub b: u32,
    /// Point dimensionality D.
    pub dims: u32,
    /// ALU instructions per distance evaluation
    /// ([`crate::distance::DistanceKernel::cost`]).
    pub dist_cost: u64,
}

impl Workload {
    /// Number of blocks M (equation 1).
    pub fn m(&self) -> u64 {
        (self.n as u64).div_ceil(self.b as u64).max(1)
    }

    /// Warps per block.
    pub fn w(&self) -> u64 {
        (self.b as u64).div_ceil(WARP_SIZE as u64)
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> u64 {
        self.m() * self.w()
    }

    /// Inter-block tile pairs Σ (M − i) = M(M−1)/2.
    pub fn block_pairs(&self) -> u64 {
        let m = self.m();
        m * (m - 1) / 2
    }

    /// All point pairs N(N−1)/2.
    pub fn pairs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) / 2
    }

    /// Whether the exactness contract holds.
    pub fn is_full(&self) -> bool {
        self.n.is_multiple_of(self.b) && self.b.is_multiple_of(WARP_SIZE as u32)
    }

    /// The launch the pair kernels use.
    pub fn launch(&self) -> LaunchConfig {
        crate::kernels::pair_launch(self.n, self.b)
    }
}

/// Which input path a kernel uses (the §IV-A/§IV-E variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputPath {
    /// Algorithm 1: every partner read from global memory.
    Naive,
    /// Algorithm 2: both tiles in shared memory.
    ShmShm,
    /// Algorithm 3: register + shared-memory tile.
    RegisterShm,
    /// Register + read-only cache.
    RegisterRoc,
    /// Algorithm 4: register tiling via warp shuffle.
    Shuffle,
}

impl InputPath {
    /// Display name matching the kernel structs.
    pub fn name(&self) -> &'static str {
        match self {
            InputPath::Naive => "naive",
            InputPath::ShmShm => "shm-shm",
            InputPath::RegisterShm => "register-shm",
            InputPath::RegisterRoc => "register-roc",
            InputPath::Shuffle => "shuffle",
        }
    }

    /// Base registers per thread, mirroring each kernel's `resources()`.
    pub fn base_regs(&self, dims: u32) -> u32 {
        let two_d = 2 * dims;
        match self {
            InputPath::Naive => crate::kernels::naive::NAIVE_BASE_REGS + two_d,
            InputPath::ShmShm => crate::kernels::shm_shm::SHM_SHM_BASE_REGS + two_d,
            InputPath::RegisterShm => crate::kernels::register_shm::REG_SHM_BASE_REGS + two_d,
            InputPath::RegisterRoc => crate::kernels::register_roc::REG_ROC_BASE_REGS + two_d,
            InputPath::Shuffle => crate::kernels::shuffle::SHUFFLE_BASE_REGS + 2 + two_d,
        }
    }

    /// Input-tile shared memory per block, mirroring `resources()`.
    pub fn tile_shared_bytes(&self, b: u32, dims: u32) -> u32 {
        match self {
            InputPath::ShmShm => 2 * b * 4 * dims,
            InputPath::RegisterShm => b * 4 * dims,
            _ => 0,
        }
    }
}

/// Which output path (the §III-B output classes as concretely realized by
/// `crate::output`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputPath {
    /// [`crate::output::CountWithinRadius`]: Type-I register accumulator.
    RegisterCount,
    /// [`crate::output::SharedHistogramAction`]: Type-II privatized.
    SharedHistogram { buckets: u32 },
    /// [`crate::output::GlobalHistogramAction`]: Type-II via global
    /// atomics.
    GlobalHistogram { buckets: u32 },
}

impl OutputPath {
    pub fn name(&self) -> &'static str {
        match self {
            OutputPath::RegisterCount => "count-within-radius",
            OutputPath::SharedHistogram { .. } => "shared-histogram",
            OutputPath::GlobalHistogram { .. } => "global-histogram",
        }
    }

    fn regs(&self) -> u32 {
        2
    }

    fn shared_bytes(&self) -> u32 {
        match self {
            OutputPath::SharedHistogram { buckets } => buckets * 4,
            _ => 0,
        }
    }

    /// ALU instructions per `process` call.
    fn alu_per_pair(&self) -> u64 {
        2
    }
}

/// A complete kernel configuration to predict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    pub input: InputPath,
    pub output: OutputPath,
    pub intra: IntraMode,
}

impl KernelSpec {
    pub fn new(input: InputPath, output: OutputPath) -> Self {
        KernelSpec {
            input,
            output,
            intra: IntraMode::Regular,
        }
    }

    pub fn with_intra(mut self, intra: IntraMode) -> Self {
        self.intra = intra;
        self
    }

    /// Registers/shared-memory mirroring the kernel's `resources()`.
    pub fn resources(&self, wl: &Workload) -> (u32, u32) {
        (
            self.input.base_regs(wl.dims) + self.output.regs(),
            self.input.tile_shared_bytes(wl.b, wl.dims) + self.output.shared_bytes(),
        )
    }
}

// ====================================================================
// the accumulator
// ====================================================================

/// Mirrors the engine's charging rules (see `gpu_sim::exec::warp` docs)
/// while building a tally arithmetically.
struct Acc {
    t: AccessTally,
}

impl Acc {
    fn new() -> Self {
        Acc {
            t: AccessTally::new(),
        }
    }

    /// `count` generic warp instructions, `useful` active lane-slots in
    /// total (approximated as full warps unless stated).
    fn instr(&mut self, count: u64, useful: u64) {
        self.t.warp_instructions += count;
        self.t.useful_lane_ops += useful;
        self.t.predicated_lane_slots += count * WARP_SIZE as u64 - useful.min(count * 32);
    }

    fn alu(&mut self, count: u64) {
        self.instr(count, count * 32);
        self.t.alu_instructions += count;
    }

    fn alu_partial(&mut self, count: u64, useful: u64) {
        self.instr(count, useful);
        self.t.alu_instructions += count;
    }

    fn control(&mut self, count: u64) {
        self.instr(count, count * 32);
        self.t.control_instructions += count;
    }

    fn control_partial(&mut self, count: u64, useful: u64) {
        self.instr(count, useful);
        self.t.control_instructions += count;
    }

    fn sync(&mut self, warps: u64) {
        self.t.sync_instructions += warps;
        self.t.warp_instructions += warps;
        self.t.useful_lane_ops += warps * 32;
    }

    fn shuffle(&mut self, count: u64) {
        self.instr(count, count * 32);
        self.t.shuffle_instructions += count;
    }

    fn gload(&mut self, count: u64, bytes: u64) {
        self.instr(count, bytes / 4);
        self.t.global_load_instructions += count;
        self.t.global_load_bytes += bytes;
    }

    fn gstore(&mut self, count: u64, bytes: u64) {
        self.instr(count, (bytes / 4).min(count * 32));
        self.t.global_store_instructions += count;
        self.t.global_store_bytes += bytes;
    }

    fn roc_load(&mut self, count: u64, bytes: u64) {
        self.instr(count, bytes / 4);
        self.t.roc_load_instructions += count;
        self.t.roc_bytes += bytes;
    }

    fn sload(&mut self, count: u64, txns: u64, bytes: u64) {
        self.instr(count, bytes / 4);
        self.t.shared_load_instructions += count;
        self.t.shared_transactions += txns;
        self.t.shared_bank_replays += txns - count.min(txns);
        self.t.shared_bytes += bytes;
    }

    fn sstore(&mut self, count: u64, txns: u64, bytes: u64) {
        self.instr(count, bytes / 4);
        self.t.shared_store_instructions += count;
        self.t.shared_transactions += txns;
        self.t.shared_bank_replays += txns - count.min(txns);
        self.t.shared_bytes += bytes;
    }

    fn shared_atomic(&mut self, count: u64, serial: u64, txns: u64, bytes: u64) {
        self.instr(count, bytes / 4);
        self.t.shared_atomics += count;
        self.t.shared_atomic_serial += serial;
        self.t.shared_transactions += txns;
        self.t.shared_bank_replays += txns.saturating_sub(serial);
        self.t.shared_bytes += bytes;
    }

    fn global_atomic(&mut self, count: u64, serial: u64) {
        self.instr(count, count * 32);
        self.t.global_atomics += count;
        self.t.global_atomic_serial += serial;
    }

    fn divergent(&mut self, count: u64) {
        self.t.divergent_iterations += count;
    }
}

// ====================================================================
// prediction
// ====================================================================

/// Predict the full access tally of `spec` on `wl`.
pub fn predicted_tally(wl: &Workload, spec: &KernelSpec, cfg: &DeviceConfig) -> AccessTally {
    let mut acc = Acc::new();
    let d = wl.dims as u64;
    let dc = wl.dist_cost;
    let (m, w, b) = (wl.m(), wl.w(), wl.b as u64);
    let ap = spec.output.alu_per_pair();

    acc.t.blocks_executed = m;
    acc.t.warps_executed = wl.total_warps();

    // ---- per-pair-call cost of the output stage ----
    // alu per call + the memory op per call, expressed as closures over
    // call counts so every phase can reuse them.
    // `calls` = warp-level process invocations; `lane_pairs` = total
    // active lanes across them (the pair count they cover).
    let out_mem = |acc: &mut Acc, calls: u64, lane_pairs: u64| match spec.output {
        OutputPath::RegisterCount => {}
        OutputPath::SharedHistogram { buckets } => {
            let serial = (calls as f64 * expected_max_multiplicity(buckets)).round() as u64;
            let txns = (calls as f64 * expected_shared_atomic_transactions(buckets)).round() as u64;
            acc.shared_atomic(calls, serial.max(calls), txns.max(calls), 4 * lane_pairs);
        }
        OutputPath::GlobalHistogram { buckets } => {
            let serial = (calls as f64 * expected_max_multiplicity(buckets)).round() as u64;
            acc.global_atomic(calls, serial.max(calls));
        }
    };

    // ---- action begin/end per block ----
    let action_begin = |acc: &mut Acc| {
        if let OutputPath::SharedHistogram { buckets } = spec.output {
            let chunks = (buckets as u64).div_ceil(32);
            acc.sstore(chunks, chunks, 4 * buckets as u64);
            acc.sync(w);
        }
    };
    let action_end = |acc: &mut Acc| match spec.output {
        OutputPath::RegisterCount => {
            acc.gstore(w, w * 32 * 8);
        }
        OutputPath::SharedHistogram { buckets } => {
            acc.sync(w);
            let chunks = (buckets as u64).div_ceil(32);
            acc.sload(chunks, chunks, 4 * buckets as u64);
            acc.alu(chunks);
            acc.gstore(chunks, 4 * buckets as u64);
        }
        OutputPath::GlobalHistogram { .. } => {}
    };

    // ---- load_own_registers: once per block ----
    let own_loads = |acc: &mut Acc| {
        acc.gload(w * d, w * d * 128);
    };

    // ---- one cooperative tile load + the syncthreads after it ----
    let tile_load = |acc: &mut Acc| {
        acc.alu(w);
        acc.gload(w * d, w * d * 128);
        acc.sstore(w * d, w * d, w * d * 128);
        acc.sync(w);
    };

    // ---- intra-phase iteration counts (per block) ----
    // Regular: warp w runs I_w = b−1−32w iterations, 31 of them divergent.
    // Load-balanced: uniform b/2 (lower half) / b/2−1 (upper half), none
    // divergent.
    let intra_iters: u64 = match spec.intra {
        IntraMode::Regular => (0..w).map(|wi| b - 1 - 32 * wi).sum(),
        IntraMode::LoadBalanced => w / 2 * (b / 2) + (w - w / 2) * (b / 2 - 1),
    };
    let intra_divergent: u64 = match spec.intra {
        IntraMode::Regular => 31 * w,
        IntraMode::LoadBalanced => 0,
    };
    // Useful lane-slots across intra iterations = intra pair count.
    let intra_pairs = b * (b - 1) / 2;

    match spec.input {
        InputPath::Naive => {
            for blk in 0..m {
                action_begin(&mut acc);
                own_loads(&mut acc);
                for wi in 0..w {
                    let g0 = blk * b + 32 * wi;
                    let iters = (wl.n as u64 - 1).saturating_sub(g0); // max trips in warp
                    let lanes: u64 = (0..32u64)
                        .map(|l| (wl.n as u64 - 1).saturating_sub(g0 + l))
                        .sum();
                    acc.control_partial(iters + u64::from(iters > 0), lanes.min(iters * 32));
                    acc.alu_partial(iters, lanes); // idx computation
                    acc.gload(iters * d, 4 * d * lanes);
                    acc.alu_partial(iters * dc, lanes * dc);
                    acc.alu_partial(iters * ap, lanes * ap);
                    out_mem(&mut acc, iters, lanes);
                    acc.divergent(iters.min(31));
                }
                action_end(&mut acc);
            }
        }
        InputPath::RegisterShm | InputPath::ShmShm => {
            // Both kernels read one shared operand (the partner) per
            // inner-loop iteration; SHM-SHM additionally re-reads its own
            // datum L[t] from shared memory once per tile / intra phase
            // (hoisted out of the j loop by the compiler — the reason the
            // paper measures only a narrow gap despite equation (4)
            // counting 2× equation (5)).
            let loads_per_iter = d;
            for blk in 0..m {
                action_begin(&mut acc);
                // SHM-SHM never touches registers for the own datum — it
                // reads L[t] from shared memory (that's its defect).
                if spec.input == InputPath::RegisterShm {
                    own_loads(&mut acc);
                }
                let tiles = m - 1 - blk;
                // SHM-SHM loads L up front; Register-SHM reloads it for
                // the intra phase: either way tiles+1 cooperative loads.
                for _ in 0..tiles + 1 {
                    tile_load(&mut acc);
                }
                // Inter-block compute: per tile, per warp: control(b+1) +
                // b × (loads + dist + action), then a trailing sync.
                let calls = tiles * w * b;
                if spec.input == InputPath::ShmShm {
                    // Hoisted L[t] read, once per tile per warp.
                    acc.sload(tiles * w * d, tiles * w * d, tiles * w * d * 128);
                }
                acc.control(tiles * w * (b + 1));
                acc.sload(
                    calls * loads_per_iter,
                    calls * loads_per_iter,
                    calls * loads_per_iter * 128,
                );
                acc.alu(calls * dc);
                acc.alu(calls * ap);
                out_mem(&mut acc, calls, calls * 32);
                acc.sync(tiles * w);
                // Intra phase.
                let it = intra_iters;
                let extra_alu = match spec.intra {
                    IntraMode::Regular => 1,
                    IntraMode::LoadBalanced => 2,
                };
                if spec.input == InputPath::ShmShm {
                    // Hoisted L[t] read before the intra loop.
                    acc.sload(w * d, w * d, w * d * 128);
                }
                acc.control_partial(it + w, intra_pairs.min(it * 32) + w * 32);
                acc.alu_partial(it * extra_alu, intra_pairs * extra_alu);
                acc.sload(
                    it * loads_per_iter,
                    it * loads_per_iter,
                    4 * intra_pairs * loads_per_iter,
                );
                acc.alu_partial(it * dc, intra_pairs * dc);
                acc.alu_partial(it * ap, intra_pairs * ap);
                out_mem(&mut acc, it, intra_pairs);
                acc.divergent(intra_divergent);
                action_end(&mut acc);
            }
        }
        InputPath::RegisterRoc => {
            for blk in 0..m {
                action_begin(&mut acc);
                own_loads(&mut acc);
                let tiles = m - 1 - blk;
                let calls = tiles * w * b;
                acc.control(tiles * w * (b + 1));
                acc.roc_load(calls * d, calls * d * 128);
                acc.alu(calls * dc);
                acc.alu(calls * ap);
                out_mem(&mut acc, calls, calls * 32);
                // ROC hit/miss split: per tile, the first touch of each
                // sector misses (b/8 sectors per dimension), everything
                // else hits — provided the tile fits the per-SM ROC.
                let tile_sectors = d * b / 8;
                let accesses_per_tile = w * b * d; // broadcast: 1 sector each
                if tile_sectors <= cfg.roc_sectors() as u64 {
                    acc.t.roc_miss_sectors += tiles * tile_sectors;
                    acc.t.roc_hit_sectors += tiles * (accesses_per_tile - tile_sectors);
                } else {
                    acc.t.roc_miss_sectors += tiles * accesses_per_tile;
                }
                // Intra phase through the ROC.
                let it = intra_iters;
                let extra_alu = match spec.intra {
                    IntraMode::Regular => 1,
                    IntraMode::LoadBalanced => 2,
                };
                acc.control_partial(it + w, intra_pairs.min(it * 32) + w * 32);
                acc.alu_partial(it * extra_alu, intra_pairs * extra_alu);
                acc.roc_load(it * d, 4 * intra_pairs * d);
                // Gathers touch ~ one sector per 8 active lanes (+ one
                // alignment straddle): compulsory misses = own tile.
                let gather_sectors = (4 * intra_pairs * d) / 32 + it * d / 2;
                acc.t.roc_miss_sectors += d * b / 8;
                acc.t.roc_hit_sectors += gather_sectors.saturating_sub(d * b / 8);
                acc.alu_partial(it * dc, intra_pairs * dc);
                acc.alu_partial(it * ap, intra_pairs * ap);
                out_mem(&mut acc, it, intra_pairs);
                acc.divergent(intra_divergent);
                action_end(&mut acc);
            }
        }
        InputPath::Shuffle => {
            let frags = b / 32;
            for blk in 0..m {
                action_begin(&mut acc);
                own_loads(&mut acc);
                let tiles = m - 1 - blk;
                // Inter: per tile per warp per fragment: 1 alu + D loads
                // + control(33) + 32 × (D shfl + 1 alu) + 32 calls.
                let frag_count = tiles * w * frags;
                acc.alu(frag_count);
                acc.gload(frag_count * d, frag_count * d * 128);
                acc.control(frag_count * 33);
                acc.shuffle(frag_count * 32 * d);
                acc.alu(frag_count * 32); // pair filter
                let calls = frag_count * 32;
                acc.alu(calls * dc);
                acc.alu(calls * ap);
                out_mem(&mut acc, calls, calls * 32);
                // Intra: same fragment structure over the own tile, but
                // distance/action only fire for partner > lane-minimum:
                // warp w evaluates b−1−32w of the b broadcasts.
                let intra_frag = w * frags;
                acc.alu(intra_frag);
                acc.gload(intra_frag * d, intra_frag * d * 128);
                acc.control(intra_frag * 33);
                acc.shuffle(intra_frag * 32 * d);
                acc.alu(intra_frag * 32);
                let intra_calls: u64 = (0..w).map(|wi| b - 1 - 32 * wi).sum();
                acc.alu_partial(intra_calls * dc, intra_pairs * dc);
                acc.alu_partial(intra_calls * ap, intra_pairs * ap);
                out_mem(&mut acc, intra_calls, intra_pairs);
                action_end(&mut acc);
            }
        }
    }

    // ---- L2 / DRAM split ----
    finish_global_sectors(&mut acc, wl, spec, cfg);
    acc.t
}

/// Distribute the global-path traffic between L2 hits and DRAM.
///
/// Unique (compulsory) sectors go to DRAM once per *wave* of concurrent
/// blocks; all remaining traffic hits L2. When the whole working set fits
/// L2, that reduces to "first touch misses, the rest hit", which exactly
/// matches the sequential functional engine.
fn finish_global_sectors(acc: &mut Acc, wl: &Workload, spec: &KernelSpec, cfg: &DeviceConfig) {
    let d = wl.dims as u64;
    let n = wl.n as u64;
    let (m, w, b) = (wl.m(), wl.w(), wl.b as u64);

    // Total sector-touches on the global path (loads + stores + ROC
    // misses + atomics), mirroring engine coalescing.
    let mut touches: u64 = acc.t.roc_miss_sectors;
    let input_sectors = d * n.div_ceil(8);
    let mut unique = input_sectors;

    match spec.input {
        InputPath::Naive => {
            // Own loads: 4 sectors per warp per dim. Inner loads: active
            // lanes span bytes/32 sectors plus an alignment straddle ~7/8
            // per load.
            touches += wl.total_warps() * d * 4;
            let inner_loads = acc.t.global_load_instructions - wl.total_warps() * d;
            touches += acc
                .t
                .global_load_bytes
                .saturating_sub(wl.total_warps() * d * 128)
                / 32
                + inner_loads * 7 / 8;
        }
        InputPath::RegisterShm | InputPath::ShmShm => {
            // Own loads + cooperative tile loads, all fully coalesced.
            touches += (acc.t.global_load_instructions) * 4;
        }
        InputPath::RegisterRoc => {
            touches += acc.t.global_load_instructions * 4; // own loads only
        }
        InputPath::Shuffle => {
            touches += acc.t.global_load_instructions * 4;
        }
    }

    match spec.output {
        OutputPath::RegisterCount => {
            touches += m * w * 8; // u64 stores, 8 sectors per warp
            unique += n.div_ceil(4);
        }
        OutputPath::SharedHistogram { buckets } => {
            let chunks = (buckets as u64).div_ceil(32);
            touches += m * chunks * 4;
            unique += (m * buckets as u64).div_ceil(8);
        }
        OutputPath::GlobalHistogram { buckets } => {
            let per_call = expected_distinct_addresses(buckets.div_ceil(4)).min(32.0);
            touches += (acc.t.global_atomics as f64 * per_call) as u64;
            unique += (buckets as u64).div_ceil(4);
        }
    }

    // Waves of concurrent blocks: data is re-fetched from DRAM once per
    // wave when the working set exceeds L2.
    let (_regs, shm) = spec.resources(wl);
    let occ = gpu_sim::occupancy::occupancy(cfg, m as u32, b as u32, _regs, shm);
    let concurrent = (cfg.num_sms as u64 * occ.blocks_per_sm as u64).max(1);
    let fits = unique <= cfg.l2_sectors() as u64;
    let dram = if fits {
        unique.min(touches)
    } else {
        (unique * m.div_ceil(concurrent)).min(touches)
    };
    acc.t.dram_sectors = dram;
    acc.t.l2_hit_sectors = touches.saturating_sub(dram);
}

/// Predict a complete [`KernelRun`] (tally + occupancy + timing +
/// profile) without executing anything — the paper-scale path.
pub fn predicted_run(wl: &Workload, spec: &KernelSpec, cfg: &DeviceConfig) -> KernelRun {
    let tally = predicted_tally(wl, spec, cfg);
    let (regs, shm) = spec.resources(wl);
    let dev = gpu_sim::Device::new(cfg.clone());
    dev.estimate(spec.input.name(), &tally, wl.launch(), regs, shm)
}

/// Predict the access tally of the bipartite
/// [`crate::kernels::CrossShmKernel`] over an `n_left × n_right`
/// rectangle (exact for full launches, mirroring the self-join rules).
pub fn predicted_cross_tally(
    n_left: u32,
    n_right: u32,
    b: u32,
    dims: u32,
    dist_cost: u64,
    output: OutputPath,
    _cfg: &DeviceConfig,
) -> AccessTally {
    let mut acc = Acc::new();
    let d = dims as u64;
    let dc = dist_cost;
    let b64 = b as u64;
    let m_left = (n_left as u64).div_ceil(b64).max(1);
    let w = b64.div_ceil(WARP_SIZE as u64);
    let tiles = (n_right as u64).div_ceil(b64);
    let ap = output.alu_per_pair();
    acc.t.blocks_executed = m_left;
    acc.t.warps_executed = m_left * w;

    // Action begin/end, mirroring predicted_tally's shared-histogram
    // bookkeeping.
    for _ in 0..m_left {
        if let OutputPath::SharedHistogram { buckets } = output {
            let chunks = (buckets as u64).div_ceil(32);
            acc.sstore(chunks, chunks, 4 * buckets as u64);
            acc.sync(w);
        }
        // Own A loads.
        acc.gload(w * d, w * d * 128);
        // All tiles of B, each: cooperative load + 2 syncs + compute.
        for _ in 0..tiles {
            acc.alu(w);
            acc.gload(w * d, w * d * 128);
            acc.sstore(w * d, w * d, w * d * 128);
            acc.sync(w);
            let calls = w * b64;
            acc.control(w * (b64 + 1));
            acc.sload(calls * d, calls * d, calls * d * 128);
            acc.alu(calls * dc);
            acc.alu(calls * ap);
            match output {
                OutputPath::RegisterCount => {}
                OutputPath::SharedHistogram { buckets } => {
                    let serial = (calls as f64 * expected_max_multiplicity(buckets)).round() as u64;
                    let txns = (calls as f64 * expected_shared_atomic_transactions(buckets)).round()
                        as u64;
                    acc.shared_atomic(calls, serial.max(calls), txns.max(calls), calls * 128);
                }
                OutputPath::GlobalHistogram { buckets } => {
                    let serial = (calls as f64 * expected_max_multiplicity(buckets)).round() as u64;
                    acc.global_atomic(calls, serial.max(calls));
                }
            }
            acc.sync(w);
        }
        match output {
            OutputPath::RegisterCount => acc.gstore(w, w * 32 * 8),
            OutputPath::SharedHistogram { buckets } => {
                acc.sync(w);
                let chunks = (buckets as u64).div_ceil(32);
                acc.sload(chunks, chunks, 4 * buckets as u64);
                acc.alu(chunks);
                acc.gstore(chunks, 4 * buckets as u64);
            }
            OutputPath::GlobalHistogram { .. } => {}
        }
    }

    // Global-sector split: first touch of inputs/outputs misses.
    let touches = acc.t.global_load_instructions * 4
        + acc.t.global_store_instructions * 4
        + acc.t.global_atomics;
    let unique = d * (n_left as u64 + n_right as u64).div_ceil(8)
        + match output {
            OutputPath::RegisterCount => (n_left as u64).div_ceil(4),
            OutputPath::SharedHistogram { buckets } => (m_left * buckets as u64).div_ceil(8),
            OutputPath::GlobalHistogram { buckets } => (buckets as u64).div_ceil(4),
        };
    acc.t.dram_sectors = unique.min(touches);
    acc.t.l2_hit_sectors = touches.saturating_sub(acc.t.dram_sectors);
    acc.t
}

/// Predict a [`KernelRun`] for the bipartite cross kernel.
pub fn predicted_cross_run(
    n_left: u32,
    n_right: u32,
    b: u32,
    dims: u32,
    dist_cost: u64,
    output: OutputPath,
    cfg: &DeviceConfig,
) -> KernelRun {
    let tally = predicted_cross_tally(n_left, n_right, b, dims, dist_cost, output, cfg);
    let regs = crate::kernels::cross::CROSS_BASE_REGS + 2 * dims + 2;
    let shm = b * 4 * dims
        + match output {
            OutputPath::SharedHistogram { buckets } => buckets * 4,
            _ => 0,
        };
    let lc = LaunchConfig::for_n_threads(n_left, b);
    let dev = gpu_sim::Device::new(cfg.clone());
    dev.estimate("cross-shm", &tally, lc, regs, shm)
}

/// Predict the tally of the *intra-block phase only* of a Register-SHM
/// kernel — the quantity the paper's Figure 7 isolates ("we only record
/// the time for processing intra-block distance function computations").
pub fn predicted_intra_only_tally(wl: &Workload, intra: IntraMode) -> AccessTally {
    let mut acc = Acc::new();
    let d = wl.dims as u64;
    let dc = wl.dist_cost;
    let (m, w, b) = (wl.m(), wl.w(), wl.b as u64);
    let ap = 2u64; // CountWithinRadius-style register output
    acc.t.blocks_executed = m;
    acc.t.warps_executed = wl.total_warps();
    let intra_pairs = b * (b - 1) / 2;
    let (iters, divergent, extra_alu): (u64, u64, u64) = match intra {
        IntraMode::Regular => ((0..w).map(|wi| b - 1 - 32 * wi).sum(), 31 * w, 1),
        IntraMode::LoadBalanced => (w / 2 * (b / 2) + (w - w / 2) * (b / 2 - 1), 0, 2),
    };
    for _ in 0..m {
        acc.control_partial(iters + w, intra_pairs.min(iters * 32) + w * 32);
        acc.alu_partial(iters * extra_alu, intra_pairs * extra_alu);
        acc.sload(iters * d, iters * d, 4 * intra_pairs * d);
        acc.alu_partial(iters * dc, intra_pairs * dc);
        acc.alu_partial(iters * ap, intra_pairs * ap);
        acc.divergent(divergent);
    }
    acc.t
}

/// Predict a [`KernelRun`] for the intra-only phase (Figure 7's series).
pub fn predicted_intra_only_run(wl: &Workload, intra: IntraMode, cfg: &DeviceConfig) -> KernelRun {
    let tally = predicted_intra_only_tally(wl, intra);
    let spec = KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount).with_intra(intra);
    let (regs, shm) = spec.resources(wl);
    let dev = gpu_sim::Device::new(cfg.clone());
    dev.estimate(
        match intra {
            IntraMode::Regular => "register-shm",
            IntraMode::LoadBalanced => "register-shm-lb",
        },
        &tally,
        wl.launch(),
        regs,
        shm,
    )
}

/// Predict the Figure-3 reduction kernel's tally (for end-to-end SDH
/// predictions): one thread per bucket, summing `copies` private copies.
pub fn predicted_reduction_run(buckets: u32, copies: u32, cfg: &DeviceConfig) -> KernelRun {
    let mut acc = Acc::new();
    let lc = LaunchConfig::for_n_threads(buckets, 256);
    let warps = (buckets as u64).div_ceil(32);
    let m = copies as u64;
    acc.control(warps * (m + 1));
    acc.gload(warps * m, 4 * buckets as u64 * m);
    acc.alu(warps * m * 2);
    acc.gstore(warps, 8 * buckets as u64);
    acc.t.blocks_executed = lc.grid_dim as u64;
    acc.t.warps_executed = lc.grid_dim as u64 * lc.warps_per_block() as u64;
    let touches = warps * m * 4 + warps * 8;
    let unique = (buckets as u64 * m).div_ceil(8) + (buckets as u64).div_ceil(4);
    acc.t.dram_sectors = unique.min(touches);
    acc.t.l2_hit_sectors = touches - acc.t.dram_sectors;
    let dev = gpu_sim::Device::new(cfg.clone());
    dev.estimate("histogram-reduce", &acc.t, lc, 16, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        Workload {
            n: 1024,
            b: 128,
            dims: 3,
            dist_cost: 7,
        }
    }

    #[test]
    fn workload_arithmetic() {
        let w = wl();
        assert_eq!(w.m(), 8);
        assert_eq!(w.w(), 4);
        assert_eq!(w.block_pairs(), 28);
        assert_eq!(w.pairs(), 1024 * 1023 / 2);
        assert!(w.is_full());
    }

    #[test]
    fn every_variant_produces_a_positive_prediction() {
        let cfg = DeviceConfig::titan_x();
        for input in [
            InputPath::Naive,
            InputPath::ShmShm,
            InputPath::RegisterShm,
            InputPath::RegisterRoc,
            InputPath::Shuffle,
        ] {
            for output in [
                OutputPath::RegisterCount,
                OutputPath::SharedHistogram { buckets: 256 },
                OutputPath::GlobalHistogram { buckets: 256 },
            ] {
                let run = predicted_run(&wl(), &KernelSpec::new(input, output), &cfg);
                assert!(
                    run.timing.seconds > 0.0,
                    "{}/{} must cost time",
                    input.name(),
                    output.name()
                );
            }
        }
    }

    #[test]
    fn predictions_scale_quadratically() {
        let cfg = DeviceConfig::titan_x();
        let spec = KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount);
        let t1 = predicted_run(
            &Workload {
                n: 64 * 1024,
                ..wl()
            },
            &spec,
            &cfg,
        )
        .seconds();
        let t2 = predicted_run(
            &Workload {
                n: 128 * 1024,
                ..wl()
            },
            &spec,
            &cfg,
        )
        .seconds();
        let ratio = t2 / t1;
        assert!(
            (3.0..5.0).contains(&ratio),
            "quadratic scaling, got {ratio}"
        );
    }

    #[test]
    fn shm_shm_predicts_slightly_more_shared_traffic() {
        let cfg = DeviceConfig::titan_x();
        let a = predicted_tally(
            &wl(),
            &KernelSpec::new(InputPath::ShmShm, OutputPath::RegisterCount),
            &cfg,
        );
        let b = predicted_tally(
            &wl(),
            &KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount),
            &cfg,
        );
        // Hoisted L[t]: one extra gather per (tile, warp) + per intra
        // phase, not 2× (see the kernel's comment on equation 4 vs 5).
        assert!(a.shared_load_instructions > b.shared_load_instructions);
        let ratio = a.shared_load_instructions as f64 / b.shared_load_instructions as f64;
        assert!((1.0..1.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn load_balancing_removes_predicted_divergence() {
        let cfg = DeviceConfig::titan_x();
        let spec = KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount);
        let reg = predicted_tally(&wl(), &spec, &cfg);
        let lb = predicted_tally(&wl(), &spec.with_intra(IntraMode::LoadBalanced), &cfg);
        assert!(reg.divergent_iterations > 0);
        assert_eq!(lb.divergent_iterations, 0);
    }

    #[test]
    fn reduction_prediction_is_small_relative_to_pair_stage() {
        let cfg = DeviceConfig::titan_x();
        let pair = predicted_run(
            &Workload {
                n: 128 * 1024,
                b: 1024,
                dims: 3,
                dist_cost: 7,
            },
            &KernelSpec::new(
                InputPath::RegisterShm,
                OutputPath::SharedHistogram { buckets: 1024 },
            ),
            &cfg,
        );
        let red = predicted_reduction_run(1024, 128, &cfg);
        assert!(red.seconds() < pair.seconds() / 10.0);
    }
}
