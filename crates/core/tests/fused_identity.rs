//! Route-matrix differential tests across the tiling kernels.
//!
//! Every kernel × action pair that routes through `try_tile_pass` is run
//! on four interpreter routes — the plan compiler (the default), fused
//! tile passes (`with_compiled(false)`), op-by-op vectorized
//! (`with_compiled(false).with_fused_tile(false)`), and the scalar
//! reference — and must produce bit-identical output buffers,
//! `AccessTally` counters and simulated timing. Host-side `InterpStats`
//! are the only permitted difference: the fused route must report
//! `fused_ops > 0` and the compiled route `compiled_ops > 0` wherever
//! its plan lowers (or exactly zero where it must decline); the
//! op-by-op and scalar routes report zero for both. The fused and
//! op-by-op legs pin their route explicitly so these asserts stay armed
//! now that the compiled route is the preset default.

use gpu_sim::{Device, DeviceConfig, KernelRun};
use tbs_core::distance::{Euclidean, GaussianRbf};
use tbs_core::histogram::HistogramSpec;
use tbs_core::kernels::{
    pair_launch, CrossShmKernel, HistogramReduceKernel, IntraMode, PairScope, RegisterRocKernel,
    RegisterShmKernel, ShmShmKernel, ShuffleKernel,
};
use tbs_core::output::{
    CountWithinRadius, KdeAction, MultiCopyHistogramAction, MultiCountSink, MultiHistSink,
    MultiQueryAction, SharedHistogramAction,
};
use tbs_core::point::SoaPoints;

const B: u32 = 64;

/// Deterministic pseudo-random cloud in a 100³ box (xorshift64).
fn cloud(n: usize) -> SoaPoints<3> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let pts: Vec<[f32; 3]> = (0..n)
        .map(|_| {
            std::array::from_fn(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 10_000) as f32 * 0.01
            })
        })
        .collect();
    SoaPoints::from_points(&pts)
}

/// Device output read back as raw bit words.
type Bits = Vec<u64>;

fn routes() -> [DeviceConfig; 4] {
    [
        DeviceConfig::titan_x(), // compiled is the preset default
        DeviceConfig::titan_x().with_compiled(false),
        DeviceConfig::titan_x()
            .with_compiled(false)
            .with_fused_tile(false),
        DeviceConfig::titan_x().with_scalar_reference(true),
    ]
}

/// Run `go` once per interpreter route and demand bit-identical device
/// state; returns `[compiled, fused, op-by-op, scalar]` runs for extra
/// asserts. `expect_compiled` states whether any stage of the plan must
/// lower (`compiled_ops > 0`) or the compiler must decline the whole
/// kernel (`compiled_ops == 0`) — either way the outputs stay
/// bit-identical.
fn assert_routes(
    go: impl Fn(&mut Device) -> (Bits, KernelRun),
    expect_compiled: bool,
) -> [KernelRun; 4] {
    let mut results: Vec<(Bits, KernelRun)> = routes()
        .into_iter()
        .map(|cfg| go(&mut Device::new(cfg)))
        .collect();
    let (bits_s, run_s) = results.pop().unwrap();
    let (bits_v, run_v) = results.pop().unwrap();
    let (bits_f, run_f) = results.pop().unwrap();
    let (bits_c, run_c) = results.pop().unwrap();
    assert_eq!(bits_f, bits_c, "fused vs compiled output bits");
    assert_eq!(bits_f, bits_v, "fused vs op-by-op output bits");
    assert_eq!(bits_f, bits_s, "fused vs scalar output bits");
    assert_eq!(run_f.tally, run_c.tally, "fused vs compiled tally");
    assert_eq!(run_f.tally, run_v.tally, "fused vs op-by-op tally");
    assert_eq!(run_f.tally, run_s.tally, "fused vs scalar tally");
    assert_eq!(
        run_f.timing.seconds.to_bits(),
        run_c.timing.seconds.to_bits(),
        "fused vs compiled timing"
    );
    assert_eq!(
        run_f.timing.seconds.to_bits(),
        run_v.timing.seconds.to_bits(),
        "fused vs op-by-op timing"
    );
    assert_eq!(
        run_f.timing.seconds.to_bits(),
        run_s.timing.seconds.to_bits(),
        "fused vs scalar timing"
    );
    assert!(
        run_f.interp.fused_ops > 0,
        "default route must take fused tile passes"
    );
    if expect_compiled {
        assert!(
            run_c.interp.compiled_ops > 0,
            "compiled route must lower at least one pass"
        );
    } else {
        assert_eq!(
            run_c.interp.compiled_ops, 0,
            "this plan must decline compilation entirely"
        );
    }
    for (run, name) in [(&run_f, "fused"), (&run_v, "op-by-op"), (&run_s, "scalar")] {
        assert_eq!(run.interp.compiled_ops, 0, "{name} route must not compile");
    }
    assert_eq!(run_v.interp.fused_ops, 0, "op-by-op route must not fuse");
    assert_eq!(run_s.interp.fused_ops, 0, "scalar route must not fuse");
    [run_c, run_f, run_v, run_s]
}

/// The common case: the plan lowers, `compiled_ops > 0` on route 0.
fn assert_identical(go: impl Fn(&mut Device) -> (Bits, KernelRun)) -> [KernelRun; 4] {
    assert_routes(go, true)
}

/// For plans the compiler must decline whole (non-Euclidean distances
/// with no tile fetch, unsupported sinks, reduction kernels): the
/// compiled route still runs bit-identically with `compiled_ops == 0`.
fn assert_identical_uncompiled(go: impl Fn(&mut Device) -> (Bits, KernelRun)) -> [KernelRun; 4] {
    assert_routes(go, false)
}

fn count_run(
    dev: &mut Device,
    pts: &SoaPoints<3>,
    mk: impl Fn(tbs_core::point::DeviceSoa<3>, CountWithinRadius) -> Box<dyn gpu_sim::Kernel>,
) -> (Bits, KernelRun) {
    let input = pts.upload(dev);
    let lc = pair_launch(input.n, B);
    let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
    let k = mk(input, CountWithinRadius { radius: 9.0, out });
    let run = dev.launch(&*k, lc);
    (dev.u64_slice(out).to_vec(), run)
}

#[test]
fn register_shm_count_half_pairs_is_route_identical() {
    // 200 = 3×64 + 8: ragged last block AND ragged last warp.
    let pts = cloud(200);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn register_shm_count_all_pairs_is_route_identical() {
    // AllPairs exercises the NotEqual predicate in the intra phase.
    let pts = cloud(200);
    let [compiled, fused, _, _] = assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
    // Both phases fuse: most useful lane work must flow the fused path.
    assert!(
        fused.interp.fused_coverage(&fused.tally) > 0.5,
        "coverage {}",
        fused.interp.fused_coverage(&fused.tally)
    );
    // And the compiled route must lower essentially all of it: tile
    // fetches, inter passes and the NotEqual intra passes.
    assert!(
        compiled.interp.compiled_coverage(&compiled.tally) > 0.5,
        "compiled coverage {}",
        compiled.interp.compiled_coverage(&compiled.tally)
    );
}

#[test]
fn shm_shm_count_all_pairs_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShmShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn shm_shm_count_half_pairs_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShmShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn register_roc_count_all_pairs_is_route_identical() {
    let pts = cloud(200);
    let [_, fused, _, _] = assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterRocKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
    // The fused ROC path must keep the read-only cache hot — same hit
    // pattern the op-by-op route produces (the tally equality above
    // proves equal; this proves non-trivial).
    assert!(fused.tally.roc_hit_sectors > fused.tally.roc_miss_sectors);
}

#[test]
fn register_roc_count_half_pairs_is_route_identical() {
    let pts = cloud(200);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterRocKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn shuffle_count_half_pairs_is_route_identical() {
    // HalfPairs intra fragments use the LessThan predicate.
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShuffleKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
            ))
        })
    });
}

#[test]
fn shuffle_count_all_pairs_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShuffleKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
            ))
        })
    });
}

#[test]
fn cross_count_is_route_identical() {
    let a = cloud(130);
    let b = cloud(150);
    assert_identical(|dev| {
        let da = a.upload(dev);
        let db = b.upload(dev);
        let lc = pair_launch(da.n, B);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = CrossShmKernel::new(da, db, Euclidean, CountWithinRadius { radius: 9.0, out }, B);
        let run = dev.launch(&k, lc);
        (dev.u64_slice(out).to_vec(), run)
    });
}

#[test]
fn register_shm_histogram_is_route_identical() {
    // Histogram consumer: per-step shared atomics inside the fused pass.
    let pts = cloud(200);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let spec = HistogramSpec::new(32, 180.0);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev.u32_slice(private).iter().map(|&x| x as u64).collect();
        (bits, run)
    });
}

#[test]
fn register_roc_histogram_is_route_identical() {
    // The paper's winning SDH configuration: ROC input, SHM output.
    // The compiled histogram sink lowers the ROC inter-tile passes
    // (sqrt-free bucketing + closed-form scatter accounting); only the
    // AllPairs intra triangle stays on the fused/op route.
    let pts = cloud(200);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let spec = HistogramSpec::new(32, 180.0);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterRocKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::AllPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev.u32_slice(private).iter().map(|&x| x as u64).collect();
        (bits, run)
    });
}

#[test]
fn histogram_nan_inputs_follow_device_convention_on_all_routes() {
    // NaN coordinates make NaN distances; the device convention
    // (CUDA `__float2uint_rz`) saturates those lanes to bucket 0. The
    // vectorized fused bucketing must reproduce that bit-for-bit on
    // every route — and every pair must still bin exactly once.
    let n = 150usize;
    let mut raw: Vec<[f32; 3]> = (0..n)
        .map(|i| {
            [
                (i as f32 * 1.37) % 100.0,
                (i as f32 * 2.11) % 100.0,
                (i as f32 * 0.59) % 100.0,
            ]
        })
        .collect();
    raw[7] = [f32::NAN, 0.0, 0.0];
    raw[100][1] = f32::NAN;
    let pts = SoaPoints::from_points(&raw);
    let spec = HistogramSpec::new(32, 180.0);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let vals = dev.u32_slice(private);
        let total: u64 = vals.iter().map(|&v| v as u64).sum();
        let bucket0: u64 = vals
            .iter()
            .step_by(spec.buckets as usize)
            .map(|&v| v as u64)
            .sum();
        assert_eq!(
            total,
            (n * (n - 1) / 2) as u64,
            "every half-pair must bin exactly once, NaN or not"
        );
        // Pairs touching the two NaN points: (n-1) + (n-1) - 1.
        assert!(
            bucket0 >= (2 * (n - 1) - 1) as u64,
            "NaN distances must land in bucket 0"
        );
        (vals.iter().map(|&x| x as u64).collect(), run)
    });
}

#[test]
fn histogram_bucket_boundary_distances_are_route_identical() {
    // Points on an exact lattice along x with spacing == bucket width:
    // every distance is a whole number of bucket widths, so every
    // `d * inv_width` lands exactly on a bucket edge — the worst case
    // for any float reassociation in the vectorized bucketing. Also
    // exercises the clamp edge: |i-j| >= buckets clamps into the last
    // bucket.
    let n = 120usize;
    let spec = HistogramSpec::new(32, 160.0); // width = 5.0
    let raw: Vec<[f32; 3]> = (0..n).map(|i| [i as f32 * 5.0, 0.0, 0.0]).collect();
    let pts = SoaPoints::from_points(&raw);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let vals = dev.u32_slice(private);
        // Host truth: pairs at lattice distance k bin into bucket k
        // (clamped); there are n-k such pairs.
        let mut expect = vec![0u64; spec.buckets as usize];
        for k in 1..n {
            expect[k.min(spec.buckets as usize - 1)] += (n - k) as u64;
        }
        let mut merged = vec![0u64; spec.buckets as usize];
        for (i, &v) in vals.iter().enumerate() {
            merged[i % spec.buckets as usize] += v as u64;
        }
        assert_eq!(merged, expect, "boundary distances binned wrong");
        (vals.iter().map(|&x| x as u64).collect(), run)
    });
}

#[test]
fn privatized_reduce_is_route_identical() {
    // The Figure-3 cross-copy reduction behind the *-Out family: the
    // compiled route (one `compiled_copy_reduce_u32` per warp, control
    // charge folded in) and the packed fused route
    // (`fused_copy_reduce_u32`) must match the op-by-op copy loop and
    // the scalar reference bit-for-bit, tally included. The measured
    // launch is the reduce kernel.
    let pts = cloud(300);
    let spec = HistogramSpec::new(48, 180.0);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k, lc);
        let out = dev.alloc_u64_zeroed(spec.buckets as usize);
        let r = HistogramReduceKernel {
            private,
            out,
            buckets: spec.buckets,
            copies: lc.grid_dim,
        };
        let run = dev.launch(&r, r.launch_config(64));
        (dev.u64_slice(out).to_vec(), run)
    });
}

#[test]
fn multicopy_end_block_reduce_is_route_identical() {
    // MultiCopyHistogramAction's end-of-block merge: the packed
    // shared-memory reduction (`fused_shared_copy_reduce_u32`) against
    // its per-copy op-by-op fallback and the scalar reference.
    let pts = cloud(200);
    let spec = HistogramSpec::new(32, 180.0);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            MultiCopyHistogramAction {
                spec,
                private,
                copies: 2,
            },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev.u32_slice(private).iter().map(|&x| x as u64).collect();
        (bits, run)
    });
}

#[test]
fn register_shm_kde_gaussian_is_route_identical() {
    // Sum consumer + a transcendental distance (exp in eval_host). The
    // non-Euclidean plan declines every tile pass, but the cooperative
    // tile fetch still compiles — `compiled_ops > 0` from that alone.
    let pts = cloud(200);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let n = input.n;
        let lc = pair_launch(n, B);
        let out = dev.alloc_f32_zeroed(lc.total_threads() as usize);
        let k = RegisterShmKernel::new(
            input,
            GaussianRbf::new(12.0),
            KdeAction { out, n },
            B,
            PairScope::AllPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev
            .f32_slice(out)
            .iter()
            .map(|&x| x.to_bits() as u64)
            .collect();
        (bits, run)
    });
}

#[test]
fn shuffle_kde_gaussian_is_route_identical() {
    // A non-Euclidean distance on a kernel with no shared tile fetch:
    // the plan never lowers, so `compiled_ops` must stay zero.
    let pts = cloud(150);
    assert_identical_uncompiled(|dev| {
        let input = pts.upload(dev);
        let n = input.n;
        let lc = pair_launch(n, B);
        let out = dev.alloc_f32_zeroed(lc.total_threads() as usize);
        let k = ShuffleKernel::new(
            input,
            GaussianRbf::new(12.0),
            KdeAction { out, n },
            B,
            PairScope::AllPairs,
        );
        let run = dev.launch(&k, lc);
        let bits = dev
            .f32_slice(out)
            .iter()
            .map(|&x| x.to_bits() as u64)
            .collect();
        (bits, run)
    });
}

#[test]
fn multi_query_mixed_batch_is_route_identical() {
    // The serve layer's coalesced sweep: two count sinks + two histogram
    // sinks fed by one pairwise stage. `MultiQueryAction` lowers the
    // whole sink list (`CompiledSinkSpec::Multi`), so the compiled
    // inter-tile pass drives all four sinks in one straight-line walk;
    // the fused route must drive them through one `FusedConsumer::Multi`
    // pass per tile.
    let pts = cloud(200);
    let spec_a = HistogramSpec::new(32, 180.0);
    let spec_b = HistogramSpec::new(48, 90.0);
    let [compiled, fused, _, _] = assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let c0 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let c1 = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let h0 = dev.alloc_u32_zeroed((lc.grid_dim * spec_a.buckets) as usize);
        let h1 = dev.alloc_u32_zeroed((lc.grid_dim * spec_b.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            MultiQueryAction {
                counts: vec![
                    MultiCountSink {
                        radius: 9.0,
                        out: c0,
                    },
                    MultiCountSink {
                        radius: 25.0,
                        out: c1,
                    },
                ],
                hists: vec![
                    MultiHistSink {
                        spec: spec_a,
                        private: h0,
                    },
                    MultiHistSink {
                        spec: spec_b,
                        private: h1,
                    },
                ],
            },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let mut bits: Bits = dev.u64_slice(c0).to_vec();
        bits.extend(dev.u64_slice(c1));
        bits.extend(dev.u32_slice(h0).iter().map(|&x| x as u64));
        bits.extend(dev.u32_slice(h1).iter().map(|&x| x as u64));
        (bits, run)
    });
    assert!(
        fused.interp.fused_coverage(&fused.tally) > 0.5,
        "multi-sink batches must still flow the fused path (coverage {})",
        fused.interp.fused_coverage(&fused.tally)
    );
    assert!(
        compiled.interp.compiled_coverage(&compiled.tally) > 0.5,
        "multi-sink batches must flow the compiled path (coverage {})",
        compiled.interp.compiled_coverage(&compiled.tally)
    );
}

#[test]
fn multi_query_counts_only_is_route_identical() {
    // A pure 2-PCF batch (many radii, no histograms): Type-I shape, no
    // shared output allocations, still one sweep feeding every radius
    // on both fast routes.
    let pts = cloud(150);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let outs: Vec<_> = (0..3)
            .map(|_| dev.alloc_u64_zeroed(lc.total_threads() as usize))
            .collect();
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            MultiQueryAction {
                counts: outs
                    .iter()
                    .enumerate()
                    .map(|(i, &out)| MultiCountSink {
                        radius: 5.0 + 10.0 * i as f32,
                        out,
                    })
                    .collect(),
                hists: vec![],
            },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let mut bits: Bits = Vec::new();
        for &out in &outs {
            bits.extend(dev.u64_slice(out));
        }
        (bits, run)
    });
}

#[test]
fn multi_query_batch_matches_single_query_oracles() {
    // Batching must be invisible: every sink of a coalesced sweep must
    // produce the exact bits the standalone single-query action
    // produces. (The route matrix above proves route identity; this
    // proves batched-vs-sequential identity.)
    let pts = cloud(200);
    let spec = HistogramSpec::new(32, 180.0);
    let radii = [4.0f32, 9.0, 30.0];
    for cfg in routes() {
        let dev = &mut Device::new(cfg);
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let couts: Vec<_> = radii
            .iter()
            .map(|_| dev.alloc_u64_zeroed(lc.total_threads() as usize))
            .collect();
        let hpriv = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            MultiQueryAction {
                counts: radii
                    .iter()
                    .zip(&couts)
                    .map(|(&radius, &out)| MultiCountSink { radius, out })
                    .collect(),
                hists: vec![MultiHistSink {
                    spec,
                    private: hpriv,
                }],
            },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k, lc);
        for (&radius, &out) in radii.iter().zip(&couts) {
            let solo = dev.alloc_u64_zeroed(lc.total_threads() as usize);
            let k = RegisterShmKernel::new(
                input,
                Euclidean,
                CountWithinRadius { radius, out: solo },
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            );
            dev.launch(&k, lc);
            assert_eq!(
                dev.u64_slice(out),
                dev.u64_slice(solo),
                "batched count at radius {radius} must bit-match the standalone query"
            );
        }
        let solo = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction {
                spec,
                private: solo,
            },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        dev.launch(&k, lc);
        assert_eq!(
            dev.u32_slice(hpriv),
            dev.u32_slice(solo),
            "batched histogram must bit-match the standalone query"
        );
    }
}

#[test]
fn sub_block_input_is_route_identical() {
    // n = 20 < B: a single ragged block whose only warp is partially
    // valid — the fused predicate masks must match lane-exact.
    let pts = cloud(20);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
}
